// Ablation — robustness of identification to imperfect captures.
//
// The paper's gateway sees every packet (it *is* the AP). A tap-based or
// busy deployment drops and reorders frames. Because the fingerprint is an
// order-sensitive packet sequence, loss/reordering directly perturbs both
// F and F' — this sweep quantifies how gracefully accuracy degrades.
//
// Usage: ablation_capture_noise [probes_per_point]   (default 270)
#include <cstdio>

#include "bench_util.h"
#include "core/device_identifier.h"
#include "devices/simulator.h"

namespace {
using namespace sentinel;

std::vector<net::ParsedPacket> Perturb(
    const std::vector<net::ParsedPacket>& packets, double drop_probability,
    double swap_probability, ml::Rng& rng) {
  std::vector<net::ParsedPacket> out;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (const auto& packet : packets) {
    if (coin(rng) < drop_probability) continue;
    out.push_back(packet);
  }
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (coin(rng) < swap_probability) std::swap(out[i], out[i + 1]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t probes = bench::ArgCount(argc, argv, 270);

  bench::Header("Ablation: identification under capture loss / reordering",
                "finding: the order-sensitive fingerprint NEEDS the "
                "gateway-grade capture the paper assumes — loss hurts "
                "quickly, reordering is milder");

  // Train on clean captures (models are built in the lab).
  const auto dataset = devices::GenerateFingerprintDataset(20, 42);
  std::vector<core::LabelledFingerprint> train;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    train.push_back(core::LabelledFingerprint{
        &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
  core::DeviceIdentifier identifier;
  identifier.Train(train);

  std::printf("%10s %10s | %10s %10s\n", "drop prob", "swap prob", "accuracy",
              "unknown");
  struct Point {
    double drop, swap;
  };
  const Point points[] = {{0.00, 0.00}, {0.05, 0.00}, {0.10, 0.00},
                          {0.20, 0.00}, {0.30, 0.00}, {0.00, 0.10},
                          {0.00, 0.30}, {0.10, 0.10}, {0.20, 0.20}};

  for (const auto& point : points) {
    ml::Rng rng(1234);
    devices::DeviceSimulator simulator(987);
    std::size_t correct = 0, unknown = 0;
    for (std::size_t p = 0; p < probes; ++p) {
      const auto type =
          static_cast<devices::DeviceTypeId>(p % devices::DeviceTypeCount());
      const auto episode = simulator.RunSetupEpisode(type);
      const auto packets = Perturb(
          devices::DeviceSimulator::DevicePackets(episode), point.drop,
          point.swap, rng);
      const auto full = features::Fingerprint::FromPackets(packets);
      const auto fixed = features::FixedFingerprint::FromFingerprint(full);
      const auto result = identifier.Identify(full, fixed);
      if (!result.IsKnown()) {
        ++unknown;
      } else if (*result.type == type) {
        ++correct;
      }
    }
    std::printf("%10.2f %10.2f | %10.3f %10.3f\n", point.drop, point.swap,
                static_cast<double>(correct) / static_cast<double>(probes),
                static_cast<double>(unknown) / static_cast<double>(probes));
  }
  std::printf(
      "\nshape check: packet loss degrades accuracy steeply (a dropped "
      "packet shifts every later F' position; most failures fall to "
      "'unknown', i.e. safe strict isolation rather than misidentification),"
      " while reordering costs single transpositions and degrades gently — "
      "quantifying why the paper runs the fingerprinter ON the gateway "
      "instead of on a lossy tap\n");
  bench::Footer();
  return 0;
}
