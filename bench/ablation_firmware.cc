// Ablation — impact of software updates (paper Sect. VI-B and VIII-B).
//
// The paper observed that SmarterCoffee and iKettle2 received a firmware
// update during data collection and "these fingerprints were
// distinguishable from the one generated with their older firmware
// version", concluding that vulnerability patching changes the fingerprint
// (a feature, not a bug: a patched device is a different device-type).
//
// This harness (1) shows updated-firmware traffic is NOT identified as the
// factory type, and (2) shows that adding the updated variants as new
// device-types (via the incremental AddType path, no retraining of the
// other classifiers) separates factory from updated cleanly.
//
// Usage: ablation_firmware [episodes_per_type]   (default 20)
#include <cstdio>

#include "bench_util.h"
#include "core/device_identifier.h"
#include "devices/simulator.h"

namespace {
using namespace sentinel;

std::pair<features::Fingerprint, features::FixedFingerprint> Episode(
    devices::DeviceSimulator& simulator, devices::DeviceTypeId type,
    devices::FirmwareVersion firmware) {
  const auto episode = simulator.RunSetupEpisode(type, firmware);
  auto full = devices::DeviceSimulator::ExtractFingerprint(episode);
  auto fixed = features::FixedFingerprint::FromFingerprint(full);
  return {std::move(full), std::move(fixed)};
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t episodes = bench::ArgCount(argc, argv, 20);

  bench::Header("Ablation: firmware updates change device fingerprints "
                "(Sect. VIII-B)",
                "updated firmware produces distinguishable fingerprints; "
                "patched devices register as new device-types");

  const auto dataset = devices::GenerateFingerprintDataset(episodes, 42);
  std::vector<core::LabelledFingerprint> train;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    train.push_back(core::LabelledFingerprint{
        &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
  core::DeviceIdentifier identifier;
  identifier.Train(train);

  const devices::DeviceTypeId targets[] = {
      devices::FindDeviceType("SmarterCoffee"),
      devices::FindDeviceType("iKettle2"),
      devices::FindDeviceType("EdimaxPlug1101W")};

  devices::DeviceSimulator probe_sim(9001);
  std::printf("Stage 1: probe factory-trained identifier with updated-"
              "firmware episodes\n");
  std::printf("%-18s %22s %22s\n", "device", "factory probes as-self",
              "updated probes as-self");
  for (const auto type : targets) {
    int factory_self = 0, updated_self = 0;
    const int probes = 20;
    for (int i = 0; i < probes; ++i) {
      const auto [ff, fx] =
          Episode(probe_sim, type, devices::FirmwareVersion::kFactory);
      const auto rf = identifier.Identify(ff, fx);
      factory_self += (rf.IsKnown() && *rf.type == type) ? 1 : 0;
      const auto [uf, ux] =
          Episode(probe_sim, type, devices::FirmwareVersion::kUpdated);
      const auto ru = identifier.Identify(uf, ux);
      updated_self += (ru.IsKnown() && *ru.type == type) ? 1 : 0;
    }
    std::printf("%-18s %18d/%d %18d/%d\n",
                devices::GetDeviceType(type).identifier.c_str(), factory_self,
                probes, updated_self, probes);
  }

  std::printf(
      "\nStage 2: register updated firmware as new device-types via the "
      "incremental AddType path\n");
  devices::DeviceSimulator train_sim(555);
  std::vector<std::vector<features::Fingerprint>> updated_full(3);
  std::vector<std::vector<features::FixedFingerprint>> updated_fixed(3);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < episodes; ++i) {
      auto [ff, fx] =
          Episode(train_sim, targets[k], devices::FirmwareVersion::kUpdated);
      updated_full[k].push_back(std::move(ff));
      updated_fixed[k].push_back(std::move(fx));
    }
  }
  for (std::size_t k = 0; k < 3; ++k) {
    std::vector<core::LabelledFingerprint> positives;
    const int new_label = 100 + static_cast<int>(k);
    for (std::size_t i = 0; i < episodes; ++i)
      positives.push_back(core::LabelledFingerprint{
          &updated_full[k][i], &updated_fixed[k][i], new_label});
    identifier.AddType(new_label, positives, train);
  }

  std::printf("%-18s %26s\n", "device",
              "updated probes -> updated-type");
  devices::DeviceSimulator verify_sim(31337);
  for (std::size_t k = 0; k < 3; ++k) {
    int as_updated = 0;
    const int probes = 20;
    for (int i = 0; i < probes; ++i) {
      const auto [uf, ux] =
          Episode(verify_sim, targets[k], devices::FirmwareVersion::kUpdated);
      const auto r = identifier.Identify(uf, ux);
      as_updated += (r.IsKnown() && *r.type == 100 + static_cast<int>(k)) ? 1 : 0;
    }
    std::printf("%-18s %22d/%d\n",
                devices::GetDeviceType(targets[k]).identifier.c_str(),
                as_updated, probes);
  }
  std::printf(
      "\nshape check: updated firmware never identifies as the factory type "
      "(stage 1, right column 0) and is recovered once trained as its own "
      "type (stage 2) — the two Smarter variants keep confusing *each "
      "other* after the update, exactly as their factory versions do in "
      "Table III\n");
  bench::Footer();
  return 0;
}
