// Ablation — length of the fixed fingerprint F'.
//
// The paper fixes F' at 12 packets after a preliminary analysis: "long
// enough to distinguish device-types and short enough to be fully filled
// with unique packets from F". This ablation sweeps the prefix length and
// measures the classification-stage separability (per-type one-vs-rest
// forests, highest-probability assignment) to expose the knee.
//
// Usage: ablation_fprime_len [episodes_per_type]   (default 20)
#include <cstdio>

#include "bench_util.h"
#include "devices/simulator.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace {

using namespace sentinel;

// F'-style row limited to the first `max_packets` unique packet vectors.
std::vector<double> PrefixRow(const features::Fingerprint& fp,
                              std::size_t max_packets) {
  std::vector<double> row(max_packets * features::kFeatureCount, 0.0);
  std::vector<const features::PacketFeatureVector*> unique;
  for (const auto& packet : fp.packets()) {
    bool seen = false;
    for (const auto* u : unique) {
      if (*u == packet) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    unique.push_back(&packet);
    if (unique.size() == max_packets) break;
  }
  for (std::size_t i = 0; i < unique.size(); ++i)
    for (std::size_t j = 0; j < features::kFeatureCount; ++j)
      row[i * features::kFeatureCount + j] =
          static_cast<double>((*unique[i])[j]);
  return row;
}

double EvaluateLength(const devices::FingerprintDataset& dataset,
                      std::size_t length) {
  ml::Rng rng(4242);
  const auto folds = ml::StratifiedKFold(dataset.labels, 10, rng);
  std::size_t correct = 0, total = 0;

  for (const auto& fold : folds) {
    // One binary forest per type, trained one-vs-rest on the fold.
    const std::size_t types = devices::DeviceTypeCount();
    std::vector<ml::RandomForest> forests(types);
    for (std::size_t t = 0; t < types; ++t) {
      ml::Dataset data(length * features::kFeatureCount);
      for (const std::size_t i : fold.train_indices) {
        data.Add(PrefixRow(dataset.fingerprints[i], length),
                 dataset.labels[i] == static_cast<int>(t) ? 1 : 0);
      }
      ml::RandomForestConfig config;
      config.tree_count = 20;
      config.seed = 1000 + t;
      forests[t].Train(data, config);
    }
    for (const std::size_t i : fold.test_indices) {
      const auto row = PrefixRow(dataset.fingerprints[i], length);
      double best = -1.0;
      std::size_t arg = 0;
      for (std::size_t t = 0; t < types; ++t) {
        const double proba = forests[t].PositiveProba(row);
        if (proba > best) {
          best = proba;
          arg = t;
        }
      }
      correct += (static_cast<int>(arg) == dataset.labels[i]) ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t episodes = bench::ArgCount(argc, argv, 20);

  bench::Header("Ablation: F' length (packets concatenated into the fixed "
                "fingerprint)",
                "the paper picks 12 packets as the accuracy/size trade-off; "
                "expect a knee: short prefixes lose signal, long ones add "
                "only padding");

  const auto dataset = devices::GenerateFingerprintDataset(episodes, 42);
  std::printf("%10s %12s %12s\n", "F' packets", "dimensions",
              "cls accuracy");
  for (const std::size_t length : {2u, 4u, 6u, 8u, 10u, 12u, 16u, 20u}) {
    const double accuracy = EvaluateLength(dataset, length);
    std::printf("%10zu %12zu %12.3f%s\n", length,
                length * sentinel::features::kFeatureCount, accuracy,
                length == 12 ? "   <- paper's choice" : "");
  }
  std::printf(
      "\n(classification-stage argmax accuracy; the full pipeline adds "
      "edit-distance discrimination on top)\n");
  bench::Footer();
  return 0;
}
