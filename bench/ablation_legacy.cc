// Ablation — legacy-installation support (paper Sect. VIII-A).
//
// For devices already installed before the Security Gateway arrives,
// fingerprinting must rely on standby/operational traffic (heartbeats,
// periodic announcements) instead of the setup burst. The paper's working
// hypothesis: "message exchanges during standby and operation cycles are
// likely to be characteristic for particular device-types and therefore
// form a good basis for device-type identification" — flagged as future
// work. This harness tests that hypothesis on the simulator.
//
// Usage: ablation_legacy [episodes_per_type]   (default 20)
#include <cstdio>

#include "bench_util.h"
#include "core/device_identifier.h"
#include "devices/simulator.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"

namespace {
using namespace sentinel;

double Evaluate(const devices::FingerprintDataset& dataset) {
  ml::Rng rng(2468);
  const auto folds = ml::StratifiedKFold(dataset.labels, 10, rng);
  std::size_t correct = 0, total = 0;
  for (const auto& fold : folds) {
    std::vector<core::LabelledFingerprint> train;
    for (const std::size_t i : fold.train_indices)
      train.push_back(core::LabelledFingerprint{
          &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
    core::DeviceIdentifier identifier;
    identifier.Train(train);
    for (const std::size_t i : fold.test_indices) {
      const auto result =
          identifier.Identify(dataset.fingerprints[i], dataset.fixed[i]);
      correct += (result.IsKnown() && *result.type == dataset.labels[i]) ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t episodes = bench::ArgCount(argc, argv, 20);

  bench::Header("Ablation: legacy installations — identification from "
                "standby traffic (Sect. VIII-A)",
                "hypothesis: standby/heartbeat exchanges are characteristic "
                "enough for device-type identification (future work in the "
                "paper)");

  const auto setup = devices::GenerateFingerprintDataset(episodes, 42);
  const auto standby =
      devices::GenerateStandbyFingerprintDataset(episodes, 4242);

  const double setup_accuracy = Evaluate(setup);
  const double standby_accuracy = Evaluate(standby);

  std::printf("%-28s %12s\n", "traffic used for fingerprint", "accuracy");
  std::printf("%-28s %12.3f\n", "setup phase (paper's mode)", setup_accuracy);
  std::printf("%-28s %12.3f\n", "standby / operational", standby_accuracy);
  std::printf("%-28s %12.3f\n", "random-guess baseline",
              1.0 / static_cast<double>(devices::DeviceTypeCount()));
  std::printf(
      "\nshape check: standby accuracy below setup accuracy but far above "
      "chance — the paper's hypothesis holds on the simulated fleet\n");
  bench::Footer();
  return 0;
}
