// Ablation — two-stage pipeline vs its components (paper Sect. IV-B:
// "While edit distance could be used alone to identify device-types, this
// procedure is far more time consuming than classification").
//
// Compares three identification strategies on the same train/test split:
//   rf-only      — per-type forests, argmax probability (no edit distance)
//   edit-only    — nearest type by summed edit distance to 5 references
//   hybrid       — the paper's design (classification + discrimination)
// reporting accuracy and mean identification time.
//
// Usage: ablation_pipeline [episodes_per_type]   (default 20)
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/device_identifier.h"
#include "devices/simulator.h"
#include "ml/cross_validation.h"

namespace {
using namespace sentinel;
using Clock = std::chrono::steady_clock;

struct Outcome {
  double accuracy = 0.0;
  double mean_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t episodes = bench::ArgCount(argc, argv, 20);

  bench::Header("Ablation: hybrid pipeline vs classification-only vs "
                "edit-distance-only",
                "hybrid keeps edit-distance accuracy at classification-like "
                "cost; edit distance alone is far slower");

  const auto dataset = devices::GenerateFingerprintDataset(episodes, 42);
  ml::Rng rng(777);
  const auto folds = ml::StratifiedKFold(dataset.labels, 5, rng);
  const auto& fold = folds[0];
  const std::size_t types = devices::DeviceTypeCount();

  // Shared training material.
  std::vector<core::LabelledFingerprint> train;
  for (const std::size_t i : fold.train_indices)
    train.push_back(core::LabelledFingerprint{
        &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});

  // Hybrid: the paper's identifier.
  core::DeviceIdentifier hybrid;
  hybrid.Train(train);

  // rf-only: same forests, argmax of the positive probability.
  // (Reuses the hybrid's forests through Identify's matched set would
  // change semantics, so train an identical bank here.)
  std::vector<ml::RandomForest> forests(types);
  for (std::size_t t = 0; t < types; ++t) {
    ml::Dataset data(features::kFPrimeDim);
    for (const auto& example : train)
      data.Add(example.fixed->ToVector(),
               example.label == static_cast<int>(t) ? 1 : 0);
    ml::RandomForestConfig config;
    config.tree_count = 30;
    config.seed = 31 + t;
    forests[t].Train(data, config);
  }

  // edit-only references: 5 per type from the training fold.
  std::vector<std::vector<const features::Fingerprint*>> references(types);
  for (const auto& example : train) {
    auto& refs = references[static_cast<std::size_t>(example.label)];
    if (refs.size() < 5) refs.push_back(example.full);
  }

  Outcome rf_only, edit_only, hybrid_outcome;
  std::size_t total = 0;
  for (const std::size_t i : fold.test_indices) {
    const int actual = dataset.labels[i];
    const auto row = dataset.fixed[i].ToVector();
    ++total;

    {
      const auto t0 = Clock::now();
      double best = -1;
      std::size_t arg = 0;
      for (std::size_t t = 0; t < types; ++t) {
        const double proba = forests[t].PositiveProba(row);
        if (proba > best) {
          best = proba;
          arg = t;
        }
      }
      rf_only.mean_us += std::chrono::duration<double, std::micro>(
                             Clock::now() - t0)
                             .count();
      rf_only.accuracy += (static_cast<int>(arg) == actual) ? 1 : 0;
    }
    {
      const auto t0 = Clock::now();
      double best = 1e18;
      std::size_t arg = 0;
      for (std::size_t t = 0; t < types; ++t) {
        double score = 0;
        for (const auto* ref : references[t])
          score += features::NormalizedEditDistance(dataset.fingerprints[i],
                                                    *ref);
        if (score < best) {
          best = score;
          arg = t;
        }
      }
      edit_only.mean_us += std::chrono::duration<double, std::micro>(
                               Clock::now() - t0)
                               .count();
      edit_only.accuracy += (static_cast<int>(arg) == actual) ? 1 : 0;
    }
    {
      const auto t0 = Clock::now();
      const auto result =
          hybrid.Identify(dataset.fingerprints[i], dataset.fixed[i]);
      hybrid_outcome.mean_us += std::chrono::duration<double, std::micro>(
                                    Clock::now() - t0)
                                    .count();
      hybrid_outcome.accuracy +=
          (result.IsKnown() && *result.type == actual) ? 1 : 0;
    }
  }

  auto report = [total](const char* name, Outcome& o) {
    std::printf("%-12s accuracy %.3f   mean time %8.1f us\n", name,
                o.accuracy / static_cast<double>(total),
                o.mean_us / static_cast<double>(total));
  };
  report("rf-only", rf_only);
  report("edit-only", edit_only);
  report("hybrid", hybrid_outcome);
  std::printf(
      "\nshape check: the hybrid reaches edit-distance-level accuracy on the "
      "ambiguous cluster devices at a small multiple of the rf-only cost — "
      "the paper's scalability argument (edit-only pays the full 27-type "
      "distance bill on every identification)\n");
  bench::Footer();
  return 0;
}
