// Ablation — training-set size: how many setup episodes per device-type
// does the identifier need?
//
// The paper collects 20 episodes per type ("the typical device setup
// process was repeated n = 20 times in order to generate sufficient
// fingerprints for classification model training") without justifying the
// number. This sweep quantifies the trade-off: global accuracy and the
// distinct-type floor as functions of episodes per type.
//
// Usage: ablation_training_size [repetitions]   (default 3)
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const std::size_t reps = bench::ArgCount(argc, argv, 3);

  bench::Header("Ablation: episodes per type in the training corpus",
                "the paper uses 20; expect diminishing returns once the "
                "within-type behavioural variation is covered");

  std::printf("%14s | %8s | %18s | %16s\n", "episodes/type", "global",
              "distinct-type min", "cluster-type avg");

  util::ThreadPool pool;
  for (const std::size_t episodes : {4u, 6u, 8u, 12u, 16u, 20u, 30u}) {
    const auto dataset = devices::GenerateFingerprintDataset(episodes, 42);
    eval::CrossValidationConfig config;
    config.repetitions = reps;
    // k-fold requires at least k examples per class.
    config.folds = std::min<std::size_t>(10, episodes);
    const auto outcome = eval::RunCrossValidation(dataset, config, &pool);

    double distinct_min = 1.0;
    double cluster_sum = 0.0;
    std::size_t cluster_count = 0;
    for (const auto& info : devices::DeviceCatalog()) {
      const double accuracy =
          outcome.PerTypeAccuracy(static_cast<std::size_t>(info.id));
      if (info.cluster == devices::SimilarityCluster::kNone) {
        distinct_min = std::min(distinct_min, accuracy);
      } else {
        cluster_sum += accuracy;
        ++cluster_count;
      }
    }
    std::printf("%14zu | %8.3f | %18.3f | %16.3f%s\n", episodes,
                outcome.OverallAccuracy(), distinct_min,
                cluster_sum / static_cast<double>(cluster_count),
                episodes == 20 ? "   <- paper" : "");
  }
  std::printf(
      "\nshape check: the distinct types saturate with few episodes; extra "
      "data mostly stabilizes the sibling clusters (whose ceiling is set by "
      "behavioural overlap, not data volume)\n");
  bench::Footer();
  return 0;
}
