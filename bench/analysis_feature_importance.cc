// Analysis — which Table I features carry the identification signal?
//
// The paper motivates its 23 features but never reports their relative
// contribution. This harness trains the 27 one-vs-rest forests and
// aggregates normalized mean-decrease-in-impurity importance (a) per
// Table I feature (summed over the 12 packet positions of F') and (b) per
// packet position (summed over the 23 features).
//
// Usage: analysis_feature_importance [episodes_per_type]   (default 20)
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "devices/simulator.h"
#include "ml/random_forest.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const std::size_t episodes = bench::ArgCount(argc, argv, 20);

  bench::Header("Analysis: Table I feature importance (mean decrease in "
                "impurity, aggregated over 27 per-type forests)",
                "the paper motivates 23 features but never ranks them; "
                "expect packet sizes, destination counters and port classes "
                "to dominate, with protocol flags splitting coarse groups");

  const auto dataset = devices::GenerateFingerprintDataset(episodes, 42);
  std::vector<double> per_dimension(features::kFPrimeDim, 0.0);

  for (std::size_t t = 0; t < devices::DeviceTypeCount(); ++t) {
    ml::Dataset data(features::kFPrimeDim);
    for (std::size_t i = 0; i < dataset.size(); ++i)
      data.Add(dataset.fixed[i].ToVector(),
               dataset.labels[i] == static_cast<int>(t) ? 1 : 0);
    ml::RandomForest forest;
    ml::RandomForestConfig config;
    config.tree_count = 30;
    config.seed = 100 + t;
    forest.Train(data, config);
    const auto importances = forest.FeatureImportances();
    for (std::size_t d = 0; d < per_dimension.size(); ++d)
      per_dimension[d] += importances[d];
  }
  // Normalize to fractions of total importance.
  double total = 0.0;
  for (const double v : per_dimension) total += v;
  for (double& v : per_dimension) v /= total;

  // (a) per Table I feature.
  std::vector<std::pair<double, std::size_t>> per_feature(
      features::kFeatureCount);
  for (std::size_t f = 0; f < features::kFeatureCount; ++f) {
    per_feature[f] = {0.0, f};
    for (std::size_t p = 0; p < features::kFPrimePackets; ++p)
      per_feature[f].first += per_dimension[p * features::kFeatureCount + f];
  }
  std::sort(per_feature.rbegin(), per_feature.rend());
  std::printf("importance by Table I feature (fraction of total):\n");
  for (const auto& [importance, feature] : per_feature) {
    if (importance < 0.001) continue;
    std::printf("  %-18s %6.1f%%  %s\n",
                features::FeatureName(feature).c_str(), 100.0 * importance,
                std::string(static_cast<std::size_t>(importance * 200),
                            '#').c_str());
  }

  // (b) per packet position in F'.
  std::printf("\nimportance by packet position (1..12):\n");
  for (std::size_t p = 0; p < features::kFPrimePackets; ++p) {
    double sum = 0.0;
    for (std::size_t f = 0; f < features::kFeatureCount; ++f)
      sum += per_dimension[p * features::kFeatureCount + f];
    std::printf("  p%-2zu %6.1f%%  %s\n", p + 1, 100.0 * sum,
                std::string(static_cast<std::size_t>(sum * 200), '#').c_str());
  }
  std::printf(
      "\nreading: integer-valued features (sizes, port classes, destination "
      "counter) carry ~55%% of the signal; positionally the signal sits in "
      "packets ~6-12 — the first packets (association, DHCP) look alike on "
      "every device, the divergence starts at discovery and cloud traffic. "
      "That is exactly why the F' ablation knee sits near 6 packets and why "
      "the paper's 12 covers the informative region with margin\n");
  bench::Footer();
  return 0;
}
