// Shared formatting helpers for the table/figure reproduction benchmarks.
// Every bench prints the paper's reported numbers next to the measured
// ones so the shape comparison is immediate.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"

namespace sentinel::bench {

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void Footer() { std::printf("\n"); }

/// Parses argv[1] as a positive integer (e.g. repetition count); returns
/// `fallback` when absent or malformed.
inline std::size_t ArgCount(int argc, char** argv, std::size_t fallback) {
  if (argc < 2) return fallback;
  const long value = std::strtol(argv[1], nullptr, 10);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

/// RAII metrics session for benches. Activated by `--metrics-out <file>`
/// on the command line or the SENTINEL_METRICS_OUT environment variable:
/// installs a registry as the process default (thread pools and the
/// instrumented pipeline then report into it) and writes the Prometheus
/// exposition on destruction. Inactive — null registry, zero overhead,
/// byte-identical bench output — when neither is given.
class MetricsSession {
 public:
  MetricsSession(int argc, char** argv) {
    if (const char* env = std::getenv("SENTINEL_METRICS_OUT")) path_ = env;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc)
        path_ = argv[i + 1];
    }
    if (!path_.empty()) obs::SetDefaultRegistry(&registry_);
  }
  ~MetricsSession() {
    if (path_.empty()) return;
    obs::SetDefaultRegistry(nullptr);
    registry_.WriteFile(path_);
    std::printf("wrote metrics to %s\n", path_.c_str());
  }
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  /// The session registry, or nullptr when the session is inactive.
  obs::MetricsRegistry* registry() {
    return path_.empty() ? nullptr : &registry_;
  }

 private:
  obs::MetricsRegistry registry_;
  std::string path_;
};

}  // namespace sentinel::bench
