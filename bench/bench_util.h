// Shared formatting helpers for the table/figure reproduction benchmarks.
// Every bench prints the paper's reported numbers next to the measured
// ones so the shape comparison is immediate.
#pragma once

#include <cstdio>
#include <string>

namespace sentinel::bench {

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void Footer() { std::printf("\n"); }

/// Parses argv[1] as a positive integer (e.g. repetition count); returns
/// `fallback` when absent or malformed.
inline std::size_t ArgCount(int argc, char** argv, std::size_t fallback) {
  if (argc < 2) return fallback;
  const long value = std::strtol(argv[1], nullptr, 10);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

}  // namespace sentinel::bench
