// Shared formatting helpers for the table/figure reproduction benchmarks.
// Every bench prints the paper's reported numbers next to the measured
// ones so the shape comparison is immediate.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/lock_telemetry.h"

namespace sentinel::bench {

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void Footer() { std::printf("\n"); }

/// Parses argv[1] as a positive integer (e.g. repetition count); returns
/// `fallback` when absent or malformed.
inline std::size_t ArgCount(int argc, char** argv, std::size_t fallback) {
  if (argc < 2) return fallback;
  const long value = std::strtol(argv[1], nullptr, 10);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

/// RAII metrics session for benches. The metrics half is activated by
/// `--metrics-out <file>` on the command line or the SENTINEL_METRICS_OUT
/// environment variable: installs a registry as the process default
/// (thread pools and the instrumented pipeline then report into it) and
/// writes the Prometheus exposition on destruction; without either the
/// registry stays null and bench output is byte-identical. The profiler
/// half is always on — every bench run captures the frame tree behind
/// SENTINEL_PROFILE_SCOPE (overhead gated at <=2% by throughput_identify)
/// so the machine-readable baselines can carry an observability summary.
class MetricsSession {
 public:
  MetricsSession(int argc, char** argv) : scoped_profiler_(&profiler_) {
    if (const char* env = std::getenv("SENTINEL_METRICS_OUT")) path_ = env;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc)
        path_ = argv[i + 1];
    }
    if (!path_.empty()) obs::SetDefaultRegistry(&registry_);
  }
  ~MetricsSession() {
    if (path_.empty()) return;
    obs::SetDefaultRegistry(nullptr);
    registry_.WriteFile(path_);
    std::printf("wrote metrics to %s\n", path_.c_str());
  }
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  /// The session registry, or nullptr when the session is inactive.
  obs::MetricsRegistry* registry() {
    return path_.empty() ? nullptr : &registry_;
  }

  /// The session profiler (always attached for the session's lifetime).
  obs::Profiler* profiler() { return &profiler_; }

  /// Compact observability summary for the BENCH_*.json baselines: the
  /// top self-time profiler frames (merged across threads and call
  /// paths) plus every lock site that saw contention during the run.
  [[nodiscard]] std::string ObservabilityJson() const {
    std::vector<std::pair<std::string, std::pair<std::uint64_t,
                                                 std::uint64_t>>> frames;
    AccumulateSelf(profiler_.Snapshot(), /*depth=*/0, frames);
    std::sort(frames.begin(), frames.end(), [](const auto& a, const auto& b) {
      return a.second.second > b.second.second;
    });
    if (frames.size() > 8) frames.resize(8);

    std::string out = "{\"profiler\": {\"threads\": " +
                      std::to_string(profiler_.thread_count()) +
                      ", \"dropped_paths\": " +
                      std::to_string(profiler_.dropped_paths()) +
                      ", \"top_self\": [";
    for (std::size_t i = 0; i < frames.size(); ++i) {
      out += i == 0 ? "" : ", ";
      out += "{\"name\": " + obs::JsonQuote(frames[i].first) +
             ", \"count\": " + std::to_string(frames[i].second.first) +
             ", \"self_ns\": " + std::to_string(frames[i].second.second) +
             "}";
    }
    out += "]}, \"locks\": {\"enabled\": ";
    out += LockTelemetryEnabled() ? "true" : "false";
    out += ", \"contended_sites\": [";
    bool first = true;
    for (std::size_t i = 0; i < LockSiteCount(); ++i) {
      const LockSiteStats& site = LockSiteAt(i);
      // ordering: relaxed — monotonic scrape-style counter reads.
      const std::uint64_t contended =
          site.contended.load(std::memory_order_relaxed);
      if (contended == 0) continue;
      out += first ? "" : ", ";
      first = false;
      out += "{\"name\": " + obs::JsonQuote(site.Name()) +
             ", \"acquisitions\": " +
             std::to_string(
                 site.acquisitions.load(std::memory_order_relaxed)) +
             ", \"contended\": " + std::to_string(contended) +
             ", \"wait_ns_total\": " +
             std::to_string(
                 site.wait_ns_total.load(std::memory_order_relaxed)) +
             "}";
    }
    out += "]}}";
    return out;
  }

 private:
  /// Merges `node`'s subtree into `frames` keyed by frame name, summing
  /// count and self time across threads and distinct call paths.
  static void AccumulateSelf(
      const obs::Profiler::Node& node, std::size_t depth,
      std::vector<std::pair<std::string,
                            std::pair<std::uint64_t, std::uint64_t>>>&
          frames) {
    if (depth > 0 && node.self_ns > 0) {
      auto it = std::find_if(frames.begin(), frames.end(), [&](const auto& f) {
        return f.first == node.name;
      });
      if (it == frames.end()) {
        frames.push_back({node.name, {node.count, node.self_ns}});
      } else {
        it->second.first += node.count;
        it->second.second += node.self_ns;
      }
    }
    for (const auto& child : node.children)
      AccumulateSelf(child, depth + 1, frames);
  }

  obs::Profiler profiler_;
  obs::ScopedProfiler scoped_profiler_;  // installs profiler_ while alive
  obs::MetricsRegistry registry_;
  std::string path_;
};

}  // namespace sentinel::bench
