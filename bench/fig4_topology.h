// The paper's lab topology (Fig. 4) for the enforcement benchmarks:
// wireless user devices D1..D4 behind the Security Gateway, a local server
// on Ethernet and a remote server behind a WAN link.
#pragma once

#include <memory>
#include <vector>

#include "core/enforcement.h"
#include "ml/metrics.h"
#include "netsim/network.h"
#include "obs/metrics.h"

namespace sentinel::bench {

struct LabSetup {
  std::unique_ptr<netsim::Network> network;
  netsim::SimHost* d1 = nullptr;
  netsim::SimHost* d2 = nullptr;
  netsim::SimHost* d3 = nullptr;
  netsim::SimHost* d4 = nullptr;
  netsim::SimHost* s_local = nullptr;
  netsim::SimHost* s_remote = nullptr;
  std::unique_ptr<core::EnforcementEngine> enforcement;
};

/// Builds the Fig. 4 network. Per-device WiFi base latencies are calibrated
/// so the no-filtering RTTs land in Table V's bands (D-D ~24-28 ms,
/// D-S_local ~15-18 ms, D-S_remote ~20 ms).
inline LabSetup BuildLabTopology(std::uint64_t seed = 7) {
  using netsim::LinkKind;
  LabSetup lab;
  lab.network = std::make_unique<netsim::Network>(seed);
  auto& net = *lab.network;
  lab.d1 = net.AddHost("D1", net::Ipv4Address(192, 168, 1, 11),
                       {LinkKind::kWifi, 5'500'000, 400'000});
  lab.d2 = net.AddHost("D2", net::Ipv4Address(192, 168, 1, 12),
                       {LinkKind::kWifi, 7'200'000, 450'000});
  lab.d3 = net.AddHost("D3", net::Ipv4Address(192, 168, 1, 13),
                       {LinkKind::kWifi, 6'800'000, 420'000});
  lab.d4 = net.AddHost("D4", net::Ipv4Address(192, 168, 1, 14),
                       {LinkKind::kWifi, 5'700'000, 400'000});
  lab.s_local = net.AddHost("S_local", net::Ipv4Address(192, 168, 1, 2),
                            {LinkKind::kEthernet, 1'600'000, 200'000});
  lab.s_remote = net.AddHost("S_remote", net::Ipv4Address(52, 20, 30, 40),
                             {LinkKind::kWan, 3'900'000, 900'000});
  net.InstallStaticForwarding();

  lab.enforcement = std::make_unique<core::EnforcementEngine>(
      *net::MacAddress::Parse("02:00:5e:00:00:01"),
      net::Ipv4Address(192, 168, 1, 1));
  // When a bench MetricsSession is active, the lab datapath and enforcement
  // engine report into the same registry as the live gateway; a null default
  // registry leaves them uninstrumented.
  net.gateway_switch().set_metrics(obs::DefaultRegistry());
  lab.enforcement->set_metrics(obs::DefaultRegistry());
  return lab;
}

/// Turns traffic filtering on: the gateway CPU pays the rule-cache lookup
/// per packet, the datapath detours through the OVS wireless-isolation
/// path, and per-device enforcement rules populate the caches (real memory,
/// real lookup structures).
inline void EnableFiltering(LabSetup& lab) {
  lab.network->cpu().set_filtering(true);
  auto devices = {lab.d1, lab.d2, lab.d3, lab.d4};
  for (const auto* host : devices) {
    core::EnforcementRule rule;
    rule.device_mac = host->mac();
    rule.level = core::IsolationLevel::kRestricted;
    rule.allowed_endpoints = {lab.s_remote->ip()};
    rule.allowed_endpoint_names = {"vendor-cloud.example.com"};
    lab.enforcement->Install(rule);

    // The matching datapath rule: permit the allowlisted remote endpoint
    // explicitly (drop-by-policy happens on table miss in live operation).
    sdn::FlowRule allow;
    allow.priority = 50;
    allow.match.eth_src = host->mac();
    allow.match.ip_dst = lab.s_remote->ip();
    allow.cookie = rule.Hash();
    allow.actions = {sdn::ActionOutput{lab.s_remote->port()}};
    lab.network->gateway_switch().flow_table().Add(std::move(allow));
  }
}

/// Mean/stdev RTT (ms) over `iterations` pings src -> dst, spaced 1 s.
/// Runs the simulation in 1-second windows so pings interleave with any
/// background flows instead of waiting for them to finish.
inline ml::MeanStd PingSeries(LabSetup& lab, netsim::SimHost& src,
                              netsim::SimHost& dst, int iterations) {
  obs::MetricsRegistry* metrics = obs::DefaultRegistry();
  obs::Histogram* rtt_hist =
      metrics != nullptr
          ? &metrics->GetHistogram("sentinel_bench_ping_rtt_ns",
                                   "simulated ping round-trip time in the "
                                   "Fig. 4 lab topology")
          : nullptr;
  std::vector<double> rtts;
  for (int i = 0; i < iterations; ++i) {
    src.Ping(dst, [&](netsim::SimTime rtt) {
      rtts.push_back(static_cast<double>(rtt) / 1e6);
      if (rtt_hist != nullptr) rtt_hist->Observe(static_cast<double>(rtt));
    });
    lab.network->RunUntil(lab.network->queue().now() + 1'000'000'000ull);
  }
  return ml::ComputeMeanStd(rtts);
}

}  // namespace sentinel::bench
