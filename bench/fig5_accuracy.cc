// Fig. 5 — Ratio of correct identification for 27 device-types.
//
// Protocol (paper Sect. VI-B): 540 fingerprints (27 types x 20 setup
// episodes), stratified 10-fold cross-validation repeated 10 times; one
// binary Random Forest per type (negatives 10x positives); multi-matches
// discriminated by edit distance over 5 reference fingerprints.
//
// Usage: fig5_accuracy [repetitions]   (default 10, as in the paper)
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "util/thread_pool.h"

namespace {

// Fig. 5 bar heights as read off the paper's figure (approximate for the
// 17 high-accuracy types, exact for Table III's diagonal / 200).
constexpr double kPaperAccuracy[27] = {
    0.95, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00,  // Aria..EdimaxCam
    1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00,        // ..D-LinkCam
    0.62, 0.52, 0.44, 0.39,                                // D-Link family
    0.66, 0.56,                                            // TP-Link plugs
    0.63, 0.58,                                            // Edimax plugs
    0.45, 0.42};                                           // Smarter pair
}  // namespace

int main(int argc, char** argv) {
  using namespace sentinel;
  const std::size_t reps = bench::ArgCount(argc, argv, 10);

  bench::Header(
      "Fig. 5: per-device-type identification accuracy (27 types)",
      "accuracy > 0.95 for 17 types, ~0.5 for the 10 same-vendor "
      "sibling types, global ratio 0.815");

  std::printf("generating dataset: 27 types x 20 episodes...\n");
  const auto dataset = devices::GenerateFingerprintDataset(20, 42);
  eval::CrossValidationConfig config;
  config.repetitions = reps;
  std::printf("running %zu repetitions of stratified 10-fold CV...\n\n",
              reps);
  util::ThreadPool pool;  // sized by SENTINEL_THREADS / hardware
  const auto outcome = eval::RunCrossValidation(dataset, config, &pool);

  std::printf("%-20s %10s %10s\n", "device-type", "paper", "measured");
  for (std::size_t t = 0; t < devices::DeviceTypeCount(); ++t) {
    std::printf("%-20s %10.2f %10.3f\n",
                devices::GetDeviceType(static_cast<int>(t)).identifier.c_str(),
                kPaperAccuracy[t], outcome.PerTypeAccuracy(t));
  }
  std::printf("%-20s %10.3f %10.3f\n", "GLOBAL", 0.815,
              outcome.OverallAccuracy());
  std::printf(
      "\nmulti-match rate: %.1f%% of identifications needed edit-distance "
      "discrimination (paper: 55%%)\n",
      100.0 * static_cast<double>(outcome.multi_match_count) /
          static_cast<double>(outcome.total_identifications));
  std::size_t unknowns = 0;
  for (auto u : outcome.unknown_per_type) unknowns += u;
  std::printf("unknown-device verdicts: %zu / %zu\n", unknowns,
              outcome.total_identifications);
  sentinel::bench::Footer();
  return 0;
}
