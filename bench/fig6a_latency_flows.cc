// Fig. 6a — Latency experienced by device pairs versus the number of
// concurrent flows in the network, with and without filtering.
//
// Paper: D1-D2 and D1-D3 latency rises only insignificantly as concurrent
// flows grow from 20 to 150; filtering curves sit marginally above the
// non-filtering ones.
//
// Usage: fig6a_latency_flows [iterations_per_point]   (default 15)
#include <cstdio>

#include "bench_util.h"
#include "fig4_topology.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const int iterations = static_cast<int>(bench::ArgCount(argc, argv, 15));
  bench::MetricsSession session(argc, argv);

  bench::Header("Fig. 6a: latency vs number of concurrent flows",
                "latency increase from 20 to 150 concurrent flows is "
                "insignificant for user experience (a few ms at most)");

  std::printf("%6s | %-17s %-17s | %-17s %-17s\n", "flows",
              "D1-D2 w/o filter", "D1-D2 w/ filter", "D1-D3 w/o filter",
              "D1-D3 w/ filter");

  for (int flows = 20; flows <= 150; flows += 10) {
    double d12[2], d13[2];
    for (const bool filtering : {false, true}) {
      auto lab = bench::BuildLabTopology(/*seed=*/13);
      if (filtering) bench::EnableFiltering(lab);

      // `flows` concurrent constant-rate UDP flows across the gateway,
      // alternating among the wireless devices and the local server.
      netsim::SimHost* endpoints[] = {lab.d3, lab.d4, lab.s_local,
                                      lab.s_remote};
      for (int f = 0; f < flows; ++f) {
        auto* src = endpoints[f % 2 == 0 ? 0 : 1];
        auto* dst = endpoints[2 + (f % 2)];
        // 10 pkt/s of ~380-byte payloads per flow: at 150 flows the shared
        // radio runs at ~75% airtime utilization, which is what makes the
        // latency curve bend gently upward as in the paper's figure.
        lab.network->StartFlow(*src, *dst, /*pps=*/10.0, /*payload=*/380,
                               /*duration=*/120'000'000'000ull);
      }
      const std::size_t idx = filtering ? 1 : 0;
      d12[idx] = bench::PingSeries(lab, *lab.d1, *lab.d2, iterations).mean;
      d13[idx] = bench::PingSeries(lab, *lab.d1, *lab.d3, iterations).mean;
    }
    std::printf("%6d | %14.2f ms %14.2f ms | %14.2f ms %14.2f ms\n", flows,
                d12[0], d12[1], d13[0], d13[1]);
  }
  std::printf(
      "\nshape check: both pairs rise by only a few ms across the sweep "
      "and the filtering curve tracks the baseline closely\n");
  bench::Footer();
  return 0;
}
