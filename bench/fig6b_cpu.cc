// Fig. 6b — Security Gateway CPU utilization versus concurrent flows,
// with and without filtering.
//
// Paper: utilization grows from ~37% to ~50% between 0 and 150 concurrent
// flows; the filtering and non-filtering curves nearly coincide — a
// Raspberry Pi 2 class device suffices for a typical deployment.
//
// Usage: fig6b_cpu [measure_seconds]   (default 20)
#include <cstdio>

#include "bench_util.h"
#include "fig4_topology.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const auto seconds = bench::ArgCount(argc, argv, 20);
  bench::MetricsSession session(argc, argv);
  const netsim::SimTime window =
      static_cast<netsim::SimTime>(seconds) * 1'000'000'000ull;

  bench::Header("Fig. 6b: gateway CPU utilization vs concurrent flows",
                "~36% base load rising to ~50% at 150 flows; filtering "
                "and non-filtering curves nearly coincide");

  std::printf("%6s | %16s | %16s\n", "flows", "w/o filtering", "w/ filtering");
  for (int flows = 0; flows <= 150; flows += 10) {
    double util[2];
    for (const bool filtering : {false, true}) {
      auto lab = bench::BuildLabTopology(/*seed=*/17);
      if (filtering) bench::EnableFiltering(lab);
      netsim::SimHost* endpoints[] = {lab.d1, lab.d2, lab.d3, lab.d4};
      for (int f = 0; f < flows; ++f) {
        auto* src = endpoints[f % 4];
        auto* dst = f % 2 == 0 ? lab.s_local : lab.s_remote;
        lab.network->StartFlow(*src, *dst, /*pps=*/5.0, /*payload=*/256,
                               window);
      }
      lab.network->cpu().ResetWindow();
      const auto start = lab.network->queue().now();
      lab.network->RunUntil(start + window);
      util[filtering ? 1 : 0] =
          lab.network->cpu().Utilization(start, start + window);
      if (auto* metrics = session.registry()) {
        metrics->GetHistogram(
                   filtering ? "sentinel_bench_cpu_utilization_filtering"
                             : "sentinel_bench_cpu_utilization_baseline",
                   "gateway CPU utilization ratio per measurement window",
                   {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
            .Observe(util[filtering ? 1 : 0]);
        metrics->GetGauge("sentinel_bench_concurrent_flows",
                          "concurrent flows in the most recent window")
            .Set(static_cast<double>(flows));
      }
    }
    std::printf("%6d | %15.1f%% | %15.1f%%\n", flows, 100.0 * util[0],
                100.0 * util[1]);
  }
  std::printf(
      "\nshape check: linear growth of ~12-13 percentage points across the "
      "sweep; filtering adds well under 1 point (paper: +0.63%%)\n");
  bench::Footer();
  return 0;
}
