// Fig. 6c — Security Gateway memory consumption versus the number of
// enforcement rules, with and without filtering.
//
// Paper: without filtering memory stays flat (~40 MB); with filtering it
// grows linearly with the enforcement-rule cache up to 20000 rules. Their
// Floodlight/Java rules weigh ~2.5 KB each; our C++ rules are leaner, so
// the measured line has a shallower slope — the linear-vs-flat shape is
// the reproduced claim.
//
// Usage: fig6c_memory [max_rules]   (default 20000)
#include <cstdio>

#include "bench_util.h"
#include "fig4_topology.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const std::size_t max_rules = bench::ArgCount(argc, argv, 20000);

  bench::Header("Fig. 6c: gateway memory vs number of enforcement rules",
                "flat ~40 MB without filtering; linear growth with the rule "
                "cache when filtering (paper reaches ~90 MB at 20000 rules)");

  std::printf("%8s | %18s | %18s\n", "rules", "w/o filtering (MB)",
              "w/ filtering (MB)");

  for (std::size_t rules = 0; rules <= max_rules; rules += max_rules / 8) {
    double mb[2];
    for (const bool filtering : {false, true}) {
      auto lab = bench::BuildLabTopology(/*seed=*/19);
      if (filtering) {
        lab.network->cpu().set_filtering(true);
        // Populate the enforcement-rule cache and the datapath flow table
        // with one restricted-device rule per entry — real allocations,
        // really measured.
        for (std::size_t i = 0; i < rules; ++i) {
          core::EnforcementRule rule;
          rule.device_mac = net::MacAddress::FromUint64(0x020000000000ull + i);
          rule.level = core::IsolationLevel::kRestricted;
          rule.allowed_endpoints = {net::Ipv4Address(52, 1, 2, 3),
                                    net::Ipv4Address(52, 4, 5, 6)};
          rule.allowed_endpoint_names = {"api.vendor-cloud.example",
                                         "fw.vendor-cloud.example"};
          lab.enforcement->Install(rule);

          sdn::FlowRule flow;
          flow.priority = 50;
          flow.match.eth_src = rule.device_mac;
          flow.match.ip_dst = rule.allowed_endpoints.front();
          flow.cookie = rule.Hash();
          flow.actions = {sdn::ActionOutput{lab.s_remote->port()}};
          lab.network->gateway_switch().flow_table().Add(std::move(flow));
        }
      }
      const std::size_t bytes = lab.network->GatewayMemoryBytes(
          filtering ? lab.enforcement->MemoryBytes() : 0);
      mb[filtering ? 1 : 0] = static_cast<double>(bytes) / (1024.0 * 1024.0);
    }
    std::printf("%8zu | %18.2f | %18.2f\n", rules, mb[0], mb[1]);
  }
  std::printf(
      "\nshape check: the no-filtering column is constant; the filtering "
      "column grows linearly in the rule count\n");
  bench::Footer();
  return 0;
}
