// Closed-loop load generator for the always-on identification service:
// a trained 31-type bank behind TelemetryServer POST routes, driven over
// real loopback sockets with HTTP/1.1 keep-alive + pipelining.
//
// Phases:
//   1. differential — every served verdict is compared byte-for-byte
//      (rendered verdict JSON) against the per-call Identify() path.
//   2. per-call baseline — batch target 1, pipeline depth 1: the QPS an
//      unbatched serve loop reaches.
//   3. offered-load sweep — batched server (target 16), pipeline depth
//      1/4/16/32: QPS and p50/p99 vs offered concurrency; the deepest
//      row is saturation and must clear 2x the per-call baseline.
//   4. moderate load — two un-pipelined closed-loop connections: p99
//      must stay bounded by the configured latency bound (the adaptive
//      batcher may hold a probe, but never past the deadline).
//   5. overload — a tiny admission queue flooded with distinct-MAC and
//      same-MAC probes: explicit 429s with Retry-After, and
//      shed-oldest-per-MAC superseding.
//
//   load_serve [--quick] [--json <path>]
//
// --quick shrinks request counts for the CI smoke job; --json writes the
// machine-readable baseline (scripts/serve_baseline.sh commits it as
// BENCH_serve.json).
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/device_identifier.h"
#include "core/identify_server.h"
#include "devices/simulator.h"
#include "features/fingerprint.h"
#include "features/fingerprint_codec.h"
#include "obs/telemetry_server.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;
using sentinel::core::DeviceIdentifier;
using sentinel::core::IdentificationResult;
using sentinel::core::IdentifyServer;
using sentinel::core::IdentifyServerConfig;
using sentinel::core::LabelledFingerprint;

/// Widens the 27-type catalog dataset to `type_count` synthetic types —
/// same protocol as throughput_identify so the bank is comparable.
sentinel::devices::FingerprintDataset Widen(
    const sentinel::devices::FingerprintDataset& base,
    std::size_t type_count) {
  int catalog = 0;
  for (const int label : base.labels) catalog = std::max(catalog, label + 1);
  sentinel::devices::FingerprintDataset out;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (static_cast<std::size_t>(base.labels[i]) >= type_count) continue;
    out.fingerprints.push_back(base.fingerprints[i]);
    out.fixed.push_back(base.fixed[i]);
    out.labels.push_back(base.labels[i]);
  }
  for (std::size_t s = static_cast<std::size_t>(catalog); s < type_count;
       ++s) {
    const int src = static_cast<int>(s) % catalog;
    const auto offset = 911u * static_cast<std::uint32_t>(
                                   s - static_cast<std::size_t>(catalog) + 1);
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base.labels[i] != src) continue;
      auto packets = base.fingerprints[i].packets();
      for (auto& packet : packets)
        packet[sentinel::features::kFeatPacketSize] += offset;
      auto fp = sentinel::features::Fingerprint::FromPacketVectors(packets);
      out.fixed.push_back(
          sentinel::features::FixedFingerprint::FromFingerprint(fp));
      out.fingerprints.push_back(std::move(fp));
      out.labels.push_back(static_cast<int>(s));
    }
  }
  return out;
}

std::vector<LabelledFingerprint> ToExamples(
    const sentinel::devices::FingerprintDataset& dataset) {
  std::vector<LabelledFingerprint> examples;
  examples.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    examples.push_back(LabelledFingerprint{
        &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
  }
  return examples;
}

/// One in-process service instance: identification server + HTTP front.
struct Service {
  IdentifyServer ids;
  sentinel::obs::TelemetryServer http;
  std::thread serving;

  Service(const DeviceIdentifier* identifier, IdentifyServerConfig config,
          std::size_t serve_threads)
      : ids(identifier, std::move(config)),
        http(nullptr, nullptr, {.serve_threads = serve_threads}) {
    http.set_post_routes(&ids, {"/identify", "/ingest"},
                         {"application/octet-stream", "application/json"});
    ids.Start();
    http.Start();
    serving = std::thread([this] { http.Serve(); });
  }
  ~Service() {
    http.Stop();
    serving.join();
    ids.Stop();
  }
};

/// Binary probe request: 6 MAC octets + the SFP fingerprint codec. The
/// serving hot path deliberately never touches JSON.
std::string ProbeRequest(std::uint32_t mac_seq,
                         const sentinel::features::Fingerprint& fingerprint) {
  std::array<std::uint8_t, 6> mac{0x02, 0x00,
                                  static_cast<std::uint8_t>(mac_seq >> 24),
                                  static_cast<std::uint8_t>(mac_seq >> 16),
                                  static_cast<std::uint8_t>(mac_seq >> 8),
                                  static_cast<std::uint8_t>(mac_seq)};
  std::string body(reinterpret_cast<const char*>(mac.data()), mac.size());
  const auto bytes = sentinel::features::SerializeFingerprint(fingerprint);
  body.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return "POST /identify HTTP/1.1\r\nHost: bench\r\n"
         "Content-Type: application/octet-stream\r\n"
         "Content-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

int ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SENTINEL_CHECK(fd >= 0) << "socket() failed";
  const int one = 1;
  SENTINEL_CHECK(
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0)
      << "TCP_NODELAY failed";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  SENTINEL_CHECK(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "connect() failed";
  return fd;
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    SENTINEL_CHECK(n > 0) << "send() failed";
    sent += static_cast<std::size_t>(n);
  }
}

/// Buffered reader that peels complete HTTP responses off a connection.
class ResponseStream {
 public:
  explicit ResponseStream(int fd) : fd_(fd) {}

  /// Blocks until one full response is buffered; returns its status and
  /// (optionally) its body.
  int Next(std::string* body_out) {
    for (;;) {
      const auto header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::size_t content_length = ContentLength(header_end);
        const std::size_t total = header_end + 4 + content_length;
        if (buffer_.size() >= total) {
          const int status = std::atoi(buffer_.c_str() + 9);  // "HTTP/1.1 "
          if (body_out != nullptr)
            *body_out = buffer_.substr(header_end + 4, content_length);
          buffer_.erase(0, total);
          return status;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      SENTINEL_CHECK(n > 0) << "connection closed mid-response";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  std::size_t ContentLength(std::size_t header_end) const {
    const std::string headers = buffer_.substr(0, header_end);
    const auto pos = headers.find("Content-Length:");
    SENTINEL_CHECK(pos != std::string::npos) << "response without length";
    return static_cast<std::size_t>(
        std::atol(headers.c_str() + pos + std::strlen("Content-Length:")));
  }

  int fd_;
  std::string buffer_;
};

struct ClientRun {
  std::vector<std::uint64_t> latencies_ns;  // send-of-burst to response
  std::vector<std::string> bodies;          // when capture_bodies
  double elapsed_s = 0.0;
  std::size_t ok = 0;
  std::size_t too_many = 0;  // 429s (rejected or superseded)
};

/// Closed loop on one connection: send `pipeline` requests in one write,
/// read the `pipeline` responses, repeat until `requests` are done.
ClientRun DriveConnection(std::uint16_t port,
                          const std::vector<std::string>& requests,
                          std::size_t total, std::size_t pipeline,
                          bool capture_bodies) {
  const int fd = ConnectLoopback(port);
  ResponseStream responses(fd);
  ClientRun run;
  run.latencies_ns.reserve(total);
  const auto t_start = Clock::now();
  std::size_t next = 0;
  std::size_t done = 0;
  while (done < total) {
    const std::size_t burst = std::min(pipeline, total - done);
    std::string wire;
    for (std::size_t b = 0; b < burst; ++b) {
      wire += requests[next];
      next = (next + 1) % requests.size();
    }
    const auto t_send = Clock::now();
    SendAll(fd, wire);
    for (std::size_t b = 0; b < burst; ++b) {
      std::string body;
      const int status = responses.Next(capture_bodies ? &body : nullptr);
      const auto t_done = Clock::now();
      if (status == 200) {
        ++run.ok;
      } else if (status == 429) {
        ++run.too_many;
      } else {
        SENTINEL_CHECK(false) << "unexpected status " << status;
      }
      run.latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t_done - t_send)
              .count()));
      if (capture_bodies) run.bodies.push_back(std::move(body));
    }
    done += burst;
  }
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - t_start).count();
  ::close(fd);
  return run;
}

std::uint64_t Percentile(std::vector<std::uint64_t> values, double p) {
  SENTINEL_CHECK(!values.empty());
  const auto nth = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + nth, values.end());
  return values[nth];
}

struct PhaseNumbers {
  std::size_t pipeline = 0;
  std::size_t requests = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

PhaseNumbers Summarize(const ClientRun& run, std::size_t pipeline) {
  PhaseNumbers numbers;
  numbers.pipeline = pipeline;
  numbers.requests = run.latencies_ns.size();
  numbers.qps = static_cast<double>(run.latencies_ns.size()) / run.elapsed_s;
  numbers.p50_us =
      static_cast<double>(Percentile(run.latencies_ns, 0.50)) / 1e3;
  numbers.p99_us =
      static_cast<double>(Percentile(run.latencies_ns, 0.99)) / 1e3;
  return numbers;
}

constexpr std::uint64_t kLatencyBoundNs = 2'000'000;  // 2 ms
constexpr std::size_t kBatchTarget = 16;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[i + 1];
  }
  sentinel::bench::MetricsSession session(argc, argv);
  sentinel::bench::Header(
      "Serving-path load: adaptive micro-batching vs per-call over HTTP",
      "the always-on service batches concurrent probes through the batch "
      "fast path; per-call serving pays the full bank scan per request");

  const std::size_t bank_types = 31;
  const auto train_base =
      sentinel::devices::GenerateFingerprintDataset(quick ? 4 : 6, 42);
  const auto probe_base =
      sentinel::devices::GenerateFingerprintDataset(2, 4242);
  const auto train = Widen(train_base, bank_types);
  const auto probes = Widen(probe_base, bank_types);

  DeviceIdentifier identifier;
  {
    sentinel::util::ThreadPool pool;
    identifier.set_thread_pool(&pool);
    identifier.Train(ToExamples(train));
    identifier.set_thread_pool(nullptr);
  }

  // Pre-built binary probe requests, one distinct MAC per probe.
  std::vector<std::string> requests;
  requests.reserve(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i)
    requests.push_back(
        ProbeRequest(static_cast<std::uint32_t>(i), probes.fingerprints[i]));

  // --- Phase 1: differential (untimed) ---------------------------------
  std::size_t mismatches = 0;
  {
    Service service(&identifier,
                    {.queue_depth = 256,
                     .batch = {.batch_target = kBatchTarget,
                               .latency_bound_ns = kLatencyBoundNs}},
                    /*serve_threads=*/1);
    const auto run = DriveConnection(service.http.port(), requests,
                                     probes.size(), /*pipeline=*/8,
                                     /*capture_bodies=*/true);
    SENTINEL_CHECK(run.ok == probes.size()) << "differential probes failed";
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const std::string expected =
          "\"verdict\":" +
          IdentifyServer::RenderVerdictJson(
              identifier.Identify(probes.fingerprints[i], probes.fixed[i]));
      if (run.bodies[i].find(expected) == std::string::npos) ++mismatches;
    }
    std::printf("differential: %zu probes, %zu verdict mismatches\n",
                probes.size(), mismatches);
    SENTINEL_CHECK(mismatches == 0)
        << "served verdicts diverged from the per-call path";
  }

  const std::size_t saturation_requests = quick ? 1024 : 8192;

  // --- Phase 2: per-call baseline (batch target 1, no pipelining) ------
  PhaseNumbers per_call;
  {
    Service service(&identifier,
                    {.queue_depth = 256, .batch = {.batch_target = 1}},
                    /*serve_threads=*/1);
    // Warmup, then the timed run.
    (void)DriveConnection(service.http.port(), requests,
                          std::min<std::size_t>(128, saturation_requests), 1,
                          false);
    per_call = Summarize(
        DriveConnection(service.http.port(), requests, saturation_requests, 1,
                        false),
        1);
  }

  // --- Phase 3: offered-load sweep on the batched server ---------------
  std::printf("%9s %9s %12s %10s %10s\n", "pipeline", "requests", "qps",
              "p50_us", "p99_us");
  std::printf("%9s %9zu %12.0f %10.1f %10.1f   (per-call baseline)\n", "1*",
              per_call.requests, per_call.qps, per_call.p50_us,
              per_call.p99_us);
  std::vector<PhaseNumbers> sweep;
  std::vector<std::pair<std::size_t, std::uint64_t>> batch_histogram;
  for (const std::size_t pipeline : {std::size_t{1}, std::size_t{4},
                                     std::size_t{16}, std::size_t{32}}) {
    Service service(&identifier,
                    {.queue_depth = 256,
                     .batch = {.batch_target = kBatchTarget,
                               .latency_bound_ns = kLatencyBoundNs}},
                    /*serve_threads=*/1);
    (void)DriveConnection(service.http.port(), requests,
                          std::min<std::size_t>(128, saturation_requests),
                          pipeline, false);
    const auto numbers = Summarize(
        DriveConnection(service.http.port(), requests, saturation_requests,
                        pipeline, false),
        pipeline);
    std::printf("%9zu %9zu %12.0f %10.1f %10.1f\n", numbers.pipeline,
                numbers.requests, numbers.qps, numbers.p50_us,
                numbers.p99_us);
    sweep.push_back(numbers);
    if (pipeline == 32) {
      for (const auto& [size, count] : service.ids.stats().batch_size_counts)
        batch_histogram.emplace_back(size, count);
    }
  }
  const PhaseNumbers& saturation = sweep.back();
  const double speedup = saturation.qps / per_call.qps;
  std::printf("batched saturation vs per-call: %.2fx\n", speedup);
  // The tentpole criterion: batching must at least double served QPS at
  // the 31-type bank. The quick smoke run keeps a softer floor — tiny
  // request counts on a loaded CI core are noisy.
  SENTINEL_CHECK(speedup >= (quick ? 1.2 : 2.0))
      << "batched serving only " << speedup << "x the per-call baseline";

  // --- Phase 4: moderate load — p99 bounded by the latency bound -------
  PhaseNumbers moderate;
  {
    Service service(&identifier,
                    {.queue_depth = 256,
                     .batch = {.batch_target = kBatchTarget,
                               .latency_bound_ns = kLatencyBoundNs}},
                    /*serve_threads=*/2);
    const std::size_t per_connection = (quick ? 512 : 2048);
    ClientRun runs[2];
    {
      std::thread second([&] {
        runs[1] = DriveConnection(service.http.port(), requests,
                                  per_connection, 1, false);
      });
      runs[0] = DriveConnection(service.http.port(), requests, per_connection,
                                1, false);
      second.join();
    }
    ClientRun merged = std::move(runs[0]);
    merged.latencies_ns.insert(merged.latencies_ns.end(),
                               runs[1].latencies_ns.begin(),
                               runs[1].latencies_ns.end());
    merged.elapsed_s = std::max(merged.elapsed_s, runs[1].elapsed_s);
    moderate = Summarize(merged, 1);
    std::printf(
        "moderate load (2 conns, no pipelining): %.0f qps, p50 %.1f us, "
        "p99 %.1f us (bound %.0f us)\n",
        moderate.qps, moderate.p50_us, moderate.p99_us,
        static_cast<double>(kLatencyBoundNs) / 1e3);
    // The adaptive batcher may hold a probe toward the deadline but never
    // materially past it; 2x headroom absorbs scheduler noise on CI.
    SENTINEL_CHECK(moderate.p99_us <=
                   2.0 * static_cast<double>(kLatencyBoundNs) / 1e3)
        << "moderate-load p99 " << moderate.p99_us
        << "us blew the configured latency bound";
  }

  // --- Phase 5: overload — explicit 429s and shed-oldest-per-MAC -------
  std::size_t overload_rejected = 0;
  std::size_t overload_served = 0;
  std::uint64_t shed_count = 0;
  {
    Service service(&identifier,
                    {.queue_depth = 4,
                     .batch = {.batch_target = 64,
                               .latency_bound_ns = 100'000'000}},
                    /*serve_threads=*/1);
    // Distinct MACs: queue fills, the tail is rejected with Retry-After.
    auto flood = DriveConnection(service.http.port(), requests, 64, 64, true);
    overload_rejected = flood.too_many;
    overload_served = flood.ok;
    for (const auto& body : flood.bodies) {
      if (body.find("retry_after_ms") != std::string::npos) continue;
      SENTINEL_CHECK(body.find("\"verdict\"") != std::string::npos ||
                     body.find("superseded") != std::string::npos)
          << "overload response neither verdict nor push-back: " << body;
    }
    SENTINEL_CHECK(overload_rejected > 0) << "flood produced no 429s";
    SENTINEL_CHECK(overload_served >= 1) << "flood starved admitted probes";

    // Same MAC over and over: each new probe supersedes the queued one.
    std::vector<std::string> same_mac(
        8, ProbeRequest(0xffffffff, probes.fingerprints[0]));
    const auto shed_run =
        DriveConnection(service.http.port(), same_mac, 8, 8, true);
    shed_count = service.ids.stats().shed;
    SENTINEL_CHECK(shed_count >= 1) << "same-MAC flood shed nothing";
    std::printf(
        "overload (queue 4): %zu rejected with Retry-After, %zu served; "
        "same-MAC flood: %llu superseded, %zu served\n",
        overload_rejected, overload_served,
        static_cast<unsigned long long>(shed_count), shed_run.ok);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    SENTINEL_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"load_serve\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"bank_types\": %zu,\n", bank_types);
    std::fprintf(f, "  \"batch_target\": %zu,\n", kBatchTarget);
    std::fprintf(f, "  \"latency_bound_ms\": %.1f,\n",
                 static_cast<double>(kLatencyBoundNs) / 1e6);
    std::fprintf(f,
                 "  \"differential\": {\"probes\": %zu, \"mismatches\": %zu},"
                 "\n",
                 probes.size(), mismatches);
    const auto phase = [&](const char* name, const PhaseNumbers& n,
                           const char* tail) {
      std::fprintf(f,
                   "  \"%s\": {\"pipeline\": %zu, \"requests\": %zu, "
                   "\"qps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   name, n.pipeline, n.requests, n.qps, n.p50_us, n.p99_us,
                   tail);
    };
    phase("per_call", per_call, ",");
    std::fprintf(f, "  \"batched_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& n = sweep[i];
      std::fprintf(f,
                   "    {\"pipeline\": %zu, \"requests\": %zu, \"qps\": %.1f,"
                   " \"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   n.pipeline, n.requests, n.qps, n.p50_us, n.p99_us,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_batched_vs_per_call\": %.2f,\n", speedup);
    std::fprintf(f, "  \"batch_size_histogram\": {");
    for (std::size_t i = 0; i < batch_histogram.size(); ++i)
      std::fprintf(f, "%s\"%zu\": %llu", i == 0 ? "" : ", ",
                   batch_histogram[i].first,
                   static_cast<unsigned long long>(batch_histogram[i].second));
    std::fprintf(f, "},\n");
    phase("moderate", moderate, ",");
    std::fprintf(f,
                 "  \"overload\": {\"queue_depth\": 4, \"rejected\": %zu, "
                 "\"served\": %zu, \"shed_same_mac\": %llu},\n",
                 overload_rejected, overload_served,
                 static_cast<unsigned long long>(shed_count));
    std::fprintf(f, "  \"observability\": %s\n",
                 session.ObservabilityJson().c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  sentinel::bench::Footer();
  return 0;
}
