// Microbenchmarks (google-benchmark) for the hot paths behind Table IV and
// the enforcement datapath: feature extraction, fingerprint construction,
// edit distance by length, forest prediction, flow-table lookup at cache
// sizes up to 20000 rules, and enforcement-policy evaluation.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "core/device_identifier.h"
#include "core/enforcement.h"
#include "devices/simulator.h"
#include "features/edit_distance.h"
#include "ml/random_forest.h"
#include "net/pcap.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sdn/flow_table.h"
#include "util/thread_pool.h"

namespace {
using namespace sentinel;

const devices::SimulatedEpisode& SampleEpisode() {
  static const devices::SimulatedEpisode episode = [] {
    devices::DeviceSimulator simulator(42);
    return simulator.RunSetupEpisode(devices::FindDeviceType("HueBridge"));
  }();
  return episode;
}

void BM_ParseFrame(benchmark::State& state) {
  const auto& frame = SampleEpisode().trace.frames().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ParseFrame(frame));
  }
}
BENCHMARK(BM_ParseFrame);

void BM_FingerprintExtraction(benchmark::State& state) {
  const auto packets = devices::DeviceSimulator::DevicePackets(SampleEpisode());
  for (auto _ : state) {
    auto fp = features::Fingerprint::FromPackets(packets);
    benchmark::DoNotOptimize(
        features::FixedFingerprint::FromFingerprint(fp));
  }
}
BENCHMARK(BM_FingerprintExtraction);

void BM_EditDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<features::PacketFeatureVector> a(n), b(n);
  std::mt19937_64 rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    a[i][features::kFeatPacketSize] = static_cast<std::uint32_t>(rng() % 64);
    b[i][features::kFeatPacketSize] = static_cast<std::uint32_t>(rng() % 64);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::EditDistance(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EditDistance)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_ForestPredict(benchmark::State& state) {
  static const auto setup = [] {
    const auto dataset = devices::GenerateFingerprintDataset(10, 42);
    ml::Dataset data(features::kFPrimeDim);
    for (std::size_t i = 0; i < dataset.size(); ++i)
      data.Add(dataset.fixed[i].ToVector(), dataset.labels[i] == 0 ? 1 : 0);
    auto forest = std::make_unique<ml::RandomForest>();
    ml::RandomForestConfig config;
    config.tree_count = 30;
    forest->Train(data, config);
    return std::make_pair(std::move(forest), dataset.fixed[0].ToVector());
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.first->PositiveProba(setup.second));
  }
}
BENCHMARK(BM_ForestPredict);

// Forest training scaling curve: 30 trees on a binary one-vs-rest dataset
// (the Security Service's per-type workload), by thread count. arg = pool
// threads; 1 uses the sequential path. Real time, because the work runs on
// pool workers.
void BM_ForestTrain(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static const ml::Dataset& data = [] {
    const auto dataset = devices::GenerateFingerprintDataset(10, 42);
    auto* d = new ml::Dataset(features::kFPrimeDim);
    for (std::size_t i = 0; i < dataset.size(); ++i)
      d->Add(dataset.fixed[i].ToVector(), dataset.labels[i] == 0 ? 1 : 0);
    return *d;
  }();
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  ml::RandomForestConfig config;
  config.tree_count = 30;
  for (auto _ : state) {
    ml::RandomForest forest;
    forest.Train(data, config, pool.get());
    benchmark::DoNotOptimize(forest.oob_accuracy());
  }
}
BENCHMARK(BM_ForestTrain)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Classifier-bank training scaling curve: the full 27-type
// DeviceIdentifier::Train (27 one-vs-rest forests + reference retention),
// by thread count.
void BM_BankTrain(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static const devices::FingerprintDataset& dataset = [] {
    return *new devices::FingerprintDataset(
        devices::GenerateFingerprintDataset(10, 42));
  }();
  static const std::vector<core::LabelledFingerprint>& train = [] {
    auto* examples = new std::vector<core::LabelledFingerprint>();
    examples->reserve(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      examples->push_back(core::LabelledFingerprint{
          &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
    }
    return *examples;
  }();
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  for (auto _ : state) {
    core::DeviceIdentifier identifier;
    identifier.set_thread_pool(pool.get());
    identifier.Train(train);
    benchmark::DoNotOptimize(identifier.type_count());
  }
}
BENCHMARK(BM_BankTrain)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FlowTableLookup(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  sdn::FlowTable table;
  for (std::size_t i = 0; i < rules; ++i) {
    sdn::FlowRule rule;
    rule.priority = 10;
    rule.match.eth_src = net::MacAddress::FromUint64(i);
    rule.match.eth_dst = net::MacAddress::FromUint64(1'000'000 + i);
    rule.actions = {sdn::ActionOutput{1}};
    table.Add(std::move(rule));
  }
  net::UdpDatagram udp;
  udp.src_port = 50000;
  udp.dst_port = 7000;
  const auto frame = net::BuildUdp4Frame(
      1, net::MacAddress::FromUint64(rules / 2),
      net::MacAddress::FromUint64(1'000'000 + rules / 2),
      net::Ipv4Address(192, 168, 1, 5), net::Ipv4Address(192, 168, 1, 6),
      udp);
  const auto packet = net::ParseFrame(frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(packet, 1));
  }
}
BENCHMARK(BM_FlowTableLookup)->RangeMultiplier(10)->Range(10, 20000);

void BM_EnforcementAuthorize(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  core::EnforcementEngine engine(
      *net::MacAddress::Parse("02:00:5e:00:00:01"),
      net::Ipv4Address(192, 168, 1, 1));
  for (std::size_t i = 0; i < rules; ++i) {
    core::EnforcementRule rule;
    rule.device_mac = net::MacAddress::FromUint64(i);
    rule.level = core::IsolationLevel::kRestricted;
    rule.allowed_endpoints = {net::Ipv4Address(52, 1, 2, 3)};
    engine.Install(std::move(rule));
  }
  net::ParsedPacket packet;
  packet.src_mac = net::MacAddress::FromUint64(rules / 2);
  packet.dst_mac = *net::MacAddress::Parse("02:00:5e:00:00:01");
  packet.protocols.Set(net::Protocol::kIp);
  packet.protocols.Set(net::Protocol::kTcp);
  packet.src_ip = net::IpAddress(net::Ipv4Address(192, 168, 1, 77));
  packet.dst_ip = net::IpAddress(net::Ipv4Address(52, 1, 2, 3));
  packet.src_port = 50000;
  packet.dst_port = 443;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Authorize(packet));
  }
}
BENCHMARK(BM_EnforcementAuthorize)->RangeMultiplier(10)->Range(10, 20000);

void BM_PcapEncodeDecode(benchmark::State& state) {
  const auto& frames = SampleEpisode().trace.frames();
  for (auto _ : state) {
    const auto blob = net::EncodePcap(frames);
    benchmark::DoNotOptimize(net::DecodePcap(blob));
  }
}
BENCHMARK(BM_PcapEncodeDecode);

// Cost of a span site per tracing mode (range(0)): 0 = detached (no
// tracer anywhere — the single-branch contract every per-packet call site
// pays), 1 = attached root span, 2 = attached root + nested child with
// two args (the shape of the per-device identify stage).
void BM_TraceOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  obs::Tracer tracer;
  for (auto _ : state) {
    switch (mode) {
      case 0: {
        obs::ScopedSpan span("sentinel_bench_detached");
        benchmark::DoNotOptimize(span.enabled());
        break;
      }
      case 1: {
        obs::ScopedSpan span(&tracer, "sentinel_bench_root");
        benchmark::DoNotOptimize(span.enabled());
        break;
      }
      default: {
        obs::ScopedSpan root(&tracer, "sentinel_bench_root");
        obs::ScopedSpan child("sentinel_bench_child");
        child.AddArg("label", "HueBridge");
        child.AddArg("proba", "0.92");
        benchmark::DoNotOptimize(child.enabled());
        break;
      }
    }
  }
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Arg(2);

// Cost of the quality monitor at a verdict site (same contract as
// BM_TraceOverhead): 0 = detached — the single null-pointer branch every
// Identify() pays with no monitor attached; 1 = attached Record() of one
// verdict against a bound type (a handful of relaxed atomic bumps).
void BM_QualityRecord(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  obs::MetricsRegistry registry;
  obs::QualityMonitor monitor(&registry);
  monitor.BindTypes({0, 1, 2});
  obs::QualityMonitor* attached = mode == 0 ? nullptr : &monitor;
  const obs::QualitySample sample{.top_label = 1,
                                  .top1_probability = 0.9,
                                  .top2_probability = 0.4,
                                  .best_dissimilarity = 1.25};
  for (auto _ : state) {
    if (attached != nullptr) attached->Record(sample);
    benchmark::DoNotOptimize(attached);
  }
}
BENCHMARK(BM_QualityRecord)->Arg(0)->Arg(1);

// Journal append cost: the flight recorder takes a mutex and copies one
// event into a per-device ring (never on the per-packet fast path when
// detached, which is a null check).
void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder recorder;
  const auto mac = *net::MacAddress::Parse("02:00:00:00:00:01");
  for (auto _ : state) {
    recorder.Record(mac, {.kind = obs::DeviceEventKind::kPacketObserved,
                          .timestamp_ns = 1,
                          .flag = true});
  }
}
BENCHMARK(BM_FlightRecorderRecord);

// One sampler tick of the time-series store: snapshotting every registered
// instrument into its ring. range(0) = registered scalar series count
// (half counters, half gauges) plus one 20-bucket histogram — the shape of
// the serve loop's periodic Sample(), whose cost must stay flat so a 1 s
// cadence never competes with the identification path.
void BM_TimeseriesSample(benchmark::State& state) {
  const auto series = static_cast<std::size_t>(state.range(0));
  obs::MetricsRegistry registry;
  for (std::size_t i = 0; i < series / 2; ++i) {
    registry.GetCounter("sentinel_bench_c" + std::to_string(i))
        .Increment(i + 1);
    registry.GetGauge("sentinel_bench_g" + std::to_string(i))
        .Set(static_cast<double>(i));
  }
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.05 * i);
  auto& histogram =
      registry.GetHistogram("sentinel_bench_margin", "", bounds);
  for (int i = 0; i < 1024; ++i) histogram.Observe(0.001 * (i % 1000));
  obs::TimeSeriesStore store(&registry);
  std::int64_t now_ns = 0;
  for (auto _ : state) {
    store.Sample(now_ns += 1'000'000);
    benchmark::DoNotOptimize(store.samples_taken());
  }
}
BENCHMARK(BM_TimeseriesSample)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
