// Scalability — classification cost vs number of known device-types.
//
// Paper Sect. VI-B: "The classification with Random Forest takes very
// little time (<1 ms) and grows linearly with the number of types to
// identify. This shows that IoT Sentinel can easily scale to thousands of
// device-types while keeping classification time below 100 ms and type
// identification likely below 1 second."
//
// This bench trains the real 27-type bank, then scales the bank to N
// classifiers (cycling the trained forests — inference cost per classifier
// is what matters) and measures the full classification pass per
// identification.
//
// Usage: scalability_types [probes_per_point]   (default 50)
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "devices/simulator.h"
#include "features/edit_distance.h"
#include "ml/random_forest.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  using Clock = std::chrono::steady_clock;
  const std::size_t probes = bench::ArgCount(argc, argv, 50);

  bench::Header("Scalability: classification time vs number of device-types",
                "grows linearly; thousands of types stay below 100 ms per "
                "classification pass");

  // Train the real 27 one-vs-rest forests once.
  const auto dataset = devices::GenerateFingerprintDataset(20, 42);
  std::vector<ml::RandomForest> bank(devices::DeviceTypeCount());
  for (std::size_t t = 0; t < bank.size(); ++t) {
    ml::Dataset data(features::kFPrimeDim);
    for (std::size_t i = 0; i < dataset.size(); ++i)
      data.Add(dataset.fixed[i].ToVector(),
               dataset.labels[i] == static_cast<int>(t) ? 1 : 0);
    ml::RandomForestConfig config;
    config.tree_count = 30;
    config.seed = 7 + t;
    bank[t].Train(data, config);
  }

  std::printf("%8s | %18s | %22s\n", "types", "per identification",
              "projected w/ 7 discrim.");
  ml::Rng rng(99);
  std::uniform_int_distribution<std::size_t> pick(0, dataset.size() - 1);

  // Measured single-discrimination cost for the projection column.
  double discrimination_ns = 0;
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < 100; ++i)
      (void)features::NormalizedEditDistance(dataset.fingerprints[pick(rng)],
                                             dataset.fingerprints[pick(rng)]);
    discrimination_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        100.0;
  }

  for (const std::size_t types : {27u, 100u, 500u, 1000u, 2000u, 5000u}) {
    double total_ns = 0;
    for (std::size_t probe = 0; probe < probes; ++probe) {
      const auto row = dataset.fixed[pick(rng)].ToVector();
      const auto t0 = Clock::now();
      std::size_t accepted = 0;
      for (std::size_t c = 0; c < types; ++c) {
        if (bank[c % bank.size()].PositiveProba(row) >= 0.35) ++accepted;
      }
      total_ns +=
          std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
      (void)accepted;
    }
    const double per_id_ms = total_ns / static_cast<double>(probes) / 1e6;
    // The discrimination stage depends on matched candidates (paper: 7 on
    // average), not on the bank size.
    const double projected_ms =
        per_id_ms + 7.0 * 5.0 * discrimination_ns / 1e6;
    std::printf("%8zu | %15.3f ms | %19.3f ms\n", types, per_id_ms,
                projected_ms);
  }
  std::printf(
      "\nshape check: linear in the type count; even 5000 types stay far "
      "below the paper's 100 ms budget, and discrimination cost is "
      "independent of bank size\n");
  bench::Footer();
  return 0;
}
