// Fleet-scale gateway soak: flow-match latency and memory as the tracked
// population grows 10k -> 1M MACs, the sharded open-addressing table vs the
// seed's unordered_map index, eviction-bounded memory, and a device-churn
// scenario with a sharded-vs-unsharded determinism differential.
//
//   soak_gateway [--quick] [--json <path>]
//
// --quick is the CI smoke mode (~30s: 50k-MAC churn, two scale points);
// --json writes the machine-readable baseline (scripts/soak_baseline.sh
// commits it as BENCH_gateway.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "netsim/churn.h"
#include "sdn/flow_table.h"
#include "util/check.h"
#include "util/shard.h"

namespace {

using Clock = std::chrono::steady_clock;
using sentinel::net::MacAddress;
using sentinel::net::ParsedPacket;
using sentinel::sdn::FlowRule;
using sentinel::sdn::FlowTable;
using sentinel::sdn::FlowTableOptions;
using sentinel::util::Mix64;

constexpr std::size_t kShards = 16;
constexpr std::uint32_t kProbePort = 2;

/// Resident set size of this process, from /proc/self/statm (0 when the
/// proc filesystem is unavailable, e.g. non-Linux).
std::size_t ReadRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0;
  unsigned long resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) * 4096u;
}

MacAddress DeviceMac(std::uint64_t i) {
  return MacAddress({0x02, 0xab, static_cast<std::uint8_t>(i >> 24),
                     static_cast<std::uint8_t>(i >> 16),
                     static_cast<std::uint8_t>(i >> 8),
                     static_cast<std::uint8_t>(i)});
}

const MacAddress kGatewayMac({0x02, 0x00, 0x5e, 0x00, 0x00, 0x01});

FlowRule ExactRule(std::uint64_t i) {
  FlowRule rule;
  rule.priority = 10;
  rule.match.eth_src = DeviceMac(i);
  rule.match.eth_dst = kGatewayMac;
  rule.actions = {sentinel::sdn::ActionOutput{1}};
  rule.cookie = i;
  return rule;
}

ParsedPacket ProbeFor(std::uint64_t i) {
  ParsedPacket p;
  p.src_mac = DeviceMac(i);
  p.dst_mac = kGatewayMac;
  p.size_bytes = 128;
  return p;
}

/// Pre-shuffled probe targets, drawn from an active set of `hot` rules
/// spread evenly across the table (hot == rules probes uniformly). A fleet
/// gateway tracks far more MACs than are active at any instant, so the
/// latency question is: does a bounded working set stay fast as the
/// *tracked* population grows underneath it?
std::vector<std::uint64_t> ProbeOrder(std::size_t rules, std::size_t hot,
                                      std::size_t probes,
                                      std::uint64_t seed) {
  hot = std::min(hot, rules);
  const std::size_t stride = rules / hot;
  std::vector<std::uint64_t> order(probes);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < probes; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    order[i] = (Mix64(s) % hot) * stride;
  }
  return order;
}

constexpr std::size_t kHotSet = 4'096;

struct LatencyNumbers {
  double p50_ns = 0;
  double p99_ns = 0;
  double lookups_per_sec = 0;
};

/// Times Match() in batches of kBatch probes (per-probe latency =
/// batch / kBatch, keeping clock overhead off the measurement) across
/// `threads` concurrent probers sharing the table.
LatencyNumbers MeasureMatch(const FlowTable& table, std::size_t rules,
                            std::size_t samples_per_thread,
                            std::size_t threads) {
  constexpr std::size_t kBatch = 32;
  std::vector<std::vector<double>> per_thread(threads);
  std::vector<std::uint64_t> hits(threads, 0);
  auto worker = [&](std::size_t t) {
    const auto order = ProbeOrder(rules, kHotSet, samples_per_thread * kBatch,
                                  0x50a1u + t * 0x9e3779b9ull);
    std::vector<ParsedPacket> probes;
    probes.reserve(order.size());
    for (const std::uint64_t r : order) probes.push_back(ProbeFor(r));
    auto& samples = per_thread[t];
    samples.reserve(samples_per_thread);
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < samples_per_thread; ++s) {
      const auto begin = Clock::now();
      for (std::size_t b = 0; b < kBatch; ++b) {
        const auto match =
            table.Match(probes[cursor++], kProbePort, 1, 128);
        hits[t] += match.matched ? 1 : 0;
      }
      const auto end = Clock::now();
      samples.push_back(
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                  .count()) /
          static_cast<double>(kBatch));
    }
  };

  const auto wall_begin = Clock::now();
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
  const auto wall_end = Clock::now();

  std::vector<double> all;
  std::uint64_t total_hits = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    all.insert(all.end(), per_thread[t].begin(), per_thread[t].end());
    total_hits += hits[t];
  }
  const std::size_t total_probes = threads * samples_per_thread * kBatch;
  SENTINEL_CHECK(total_hits == total_probes)
      << "probe miss: " << total_hits << " hits of " << total_probes;

  LatencyNumbers out;
  const auto nth = [&](double q) {
    const auto k = static_cast<std::size_t>(q * static_cast<double>(all.size() - 1));
    std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                     all.end());
    return all[k];
  };
  out.p50_ns = nth(0.50);
  out.p99_ns = nth(0.99);
  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_begin).count();
  out.lookups_per_sec = static_cast<double>(total_probes) / wall_s;
  return out;
}

// ---- Seed-index replica ---------------------------------------------------
// The pre-sharding exact-match index: unordered_map keyed by the MAC pair,
// value = rules for that pair. Same hash as the SoA cache, so the
// comparison isolates the container layout, not the hash function.

struct MapKey {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  friend bool operator==(const MapKey&, const MapKey&) = default;
};
struct MapKeyHash {
  std::size_t operator()(const MapKey& k) const {
    return static_cast<std::size_t>(
        Mix64(k.src * 0x9e3779b97f4a7c15ull ^ k.dst));
  }
};

struct MapIndex {
  std::vector<std::unique_ptr<FlowRule>> storage;
  std::unordered_map<MapKey, std::vector<const FlowRule*>, MapKeyHash> index;

  void Fill(std::size_t rules) {
    storage.reserve(rules);
    for (std::size_t i = 0; i < rules; ++i) {
      storage.push_back(std::make_unique<FlowRule>(ExactRule(i)));
      const FlowRule& rule = *storage.back();
      index[MapKey{rule.match.eth_src->ToUint64(),
                   rule.match.eth_dst->ToUint64()}]
          .push_back(&rule);
    }
  }

  const FlowRule* Lookup(const ParsedPacket& packet) const {
    const auto it = index.find(
        MapKey{packet.src_mac.ToUint64(), packet.dst_mac.ToUint64()});
    if (it == index.end()) return nullptr;
    const FlowRule* best = nullptr;
    for (const FlowRule* rule : it->second) {
      if ((best == nullptr || rule->priority > best->priority) &&
          rule->match.Matches(packet, kProbePort))
        best = rule;
    }
    return best;
  }
};

/// Uniform-probe lookup throughput over the whole rule set, timed through
/// `lookup` — the structural index comparison (same probes, same Matches()
/// walk; only the container differs).
template <typename LookupFn>
double MeasureLookups(std::size_t rules, std::size_t probes,
                      const LookupFn& lookup) {
  const auto order = ProbeOrder(rules, rules, probes, 0x9a9);
  std::vector<ParsedPacket> packets;
  packets.reserve(order.size());
  for (const std::uint64_t r : order) packets.push_back(ProbeFor(r));
  std::uint64_t hits = 0;
  const auto begin = Clock::now();
  for (const ParsedPacket& packet : packets)
    hits += lookup(packet) != nullptr ? 1 : 0;
  const auto end = Clock::now();
  SENTINEL_CHECK(hits == probes) << "uniform probe miss";
  return static_cast<double>(probes) /
         std::chrono::duration<double>(end - begin).count();
}

/// Best-of-N wrapper: the container's run-to-run variance on memory-bound
/// probes is ±30%+ (same binary, same inputs), so single-pass numbers are
/// lottery tickets. Keeping the rep with the best p50 (and its p99)
/// reports the machine, not the noise — same policy as the identify bench.
constexpr std::size_t kReps = 3;

LatencyNumbers BestMatch(const FlowTable& table, std::size_t rules,
                         std::size_t samples_per_thread, std::size_t threads) {
  LatencyNumbers best;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    const LatencyNumbers run =
        MeasureMatch(table, rules, samples_per_thread, threads);
    if (rep == 0 || run.p50_ns < best.p50_ns) best = run;
  }
  return best;
}

template <typename LookupFn>
double BestLookups(std::size_t rules, std::size_t probes,
                   const LookupFn& lookup) {
  double best = 0;
  for (std::size_t rep = 0; rep < kReps; ++rep)
    best = std::max(best, MeasureLookups(rules, probes, lookup));
  return best;
}

struct ScaleRow {
  std::size_t rules = 0;
  LatencyNumbers one_thread;
  LatencyNumbers eight_threads;
  std::size_t table_memory_bytes = 0;
  std::size_t rss_bytes = 0;
  double map_lookups_per_sec = 0;
  double table_lookups_per_sec = 0;
  double speedup_vs_map = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[i + 1];
  }

  sentinel::bench::MetricsSession session(argc, argv);

  sentinel::bench::Header(
      "Gateway state at fleet scale: sharded flow table + churn soak",
      "Sect. V keeps enforcement rules in a hash table 'to minimize the "
      "lookup time as the enforcement rule cache grows'; this pushes the "
      "claim to 1M tracked MACs under continuous churn");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{10'000, 50'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  const std::size_t samples = quick ? 4'000 : 12'000;  // x32 probes each

  // ---- Scale sweep: latency + memory vs tracked-MAC count ----------------
  std::printf("\n-- flow-match scaling (shards=%zu) --\n", kShards);
  std::printf("%9s %11s %11s %11s %11s %13s %11s %9s\n", "rules",
              "p50 1t ns", "p99 1t ns", "p50 8t ns", "p99 8t ns",
              "table MiB", "RSS MiB", "vs map");
  std::vector<ScaleRow> rows;
  for (const std::size_t rules : sizes) {
    ScaleRow row;
    row.rules = rules;
    FlowTable table(FlowTableOptions{.shard_count = kShards});
    for (std::size_t i = 0; i < rules; ++i) table.Add(ExactRule(i), 1);
    SENTINEL_CHECK(table.size() == rules);

    row.one_thread = BestMatch(table, rules, samples, 1);
    row.eight_threads = BestMatch(table, rules, samples, 8);
    row.table_memory_bytes = table.MemoryBytes();
    row.rss_bytes = ReadRssBytes();

    const std::size_t uniform_probes = samples * 32;
    row.table_lookups_per_sec =
        BestLookups(rules, uniform_probes, [&](const ParsedPacket& p) {
          return table.Lookup(p, kProbePort);
        });
    MapIndex map;
    map.Fill(rules);
    row.map_lookups_per_sec =
        BestLookups(rules, uniform_probes,
                    [&](const ParsedPacket& p) { return map.Lookup(p); });
    row.speedup_vs_map = row.table_lookups_per_sec / row.map_lookups_per_sec;

    std::printf("%9zu %11.1f %11.1f %11.1f %11.1f %13.1f %11.1f %8.2fx\n",
                rules, row.one_thread.p50_ns, row.one_thread.p99_ns,
                row.eight_threads.p50_ns, row.eight_threads.p99_ns,
                static_cast<double>(row.table_memory_bytes) / (1024.0 * 1024.0),
                static_cast<double>(row.rss_bytes) / (1024.0 * 1024.0),
                row.speedup_vs_map);
    rows.push_back(row);
  }

  // ---- Eviction bounds memory --------------------------------------------
  const std::size_t evict_inserts = quick ? 100'000 : 1'000'000;
  const std::size_t cap_per_shard = 4'096;
  std::size_t capped_memory = 0;
  std::size_t capped_rules = 0;
  std::uint64_t evicted = 0;
  {
    FlowTable capped(FlowTableOptions{
        .shard_count = kShards, .max_exact_rules_per_shard = cap_per_shard});
    for (std::size_t i = 0; i < evict_inserts; ++i) capped.Add(ExactRule(i), 1);
    capped_memory = capped.MemoryBytes();
    capped_rules = capped.size();
    evicted = capped.evicted_total();
    SENTINEL_CHECK(capped_rules <= cap_per_shard * kShards);
    SENTINEL_CHECK(evicted > 0);
  }
  std::printf("\n-- bounded-memory tier --\n");
  std::printf(
      "%zu inserts, cap %zu/shard: %zu resident rules, %llu evicted, "
      "%.1f MiB (uncapped at same count: %.1f MiB)\n",
      evict_inserts, cap_per_shard, capped_rules,
      static_cast<unsigned long long>(evicted),
      static_cast<double>(capped_memory) / (1024.0 * 1024.0),
      static_cast<double>(rows.back().table_memory_bytes) /
          (1024.0 * 1024.0));

  // ---- Churn soak ---------------------------------------------------------
  using sentinel::netsim::ChurnConfig;
  using sentinel::netsim::ChurnReport;
  using sentinel::netsim::RunChurnScenario;
  using sentinel::netsim::ScriptedAssessor;

  // Determinism differential first: shard 1 (seed behavior) vs shard 8,
  // eviction off — hashes must be bit-identical.
  ChurnConfig diff;
  diff.session_count = quick ? 1'500 : 4'000;
  diff.device_count = 256;
  ChurnReport diff_base;
  ChurnReport diff_sharded;
  {
    ScriptedAssessor assessor(11);
    diff_base = RunChurnScenario(diff, assessor);
  }
  {
    ChurnConfig sharded = diff;
    sharded.gateway.flow_table.shard_count = 8;
    sharded.gateway.controller.shard_count = 8;
    sharded.gateway.enforcement.shard_count = 8;
    sharded.gateway.module.monitor_shard_count = 8;
    ScriptedAssessor assessor(11);
    diff_sharded = RunChurnScenario(sharded, assessor);
  }
  const bool identical =
      diff_base.verdict_hash == diff_sharded.verdict_hash &&
      diff_base.rule_hash == diff_sharded.rule_hash;
  SENTINEL_CHECK(identical)
      << "sharded churn diverged: verdict " << diff_base.verdict_hash
      << " vs " << diff_sharded.verdict_hash << ", rules "
      << diff_base.rule_hash << " vs " << diff_sharded.rule_hash;

  // Capped soak: sharded everything, small per-shard caps, long churn.
  ChurnConfig soak;
  soak.session_count = quick ? 50'000 : 120'000;
  soak.device_count = quick ? 2'048 : 4'096;
  soak.chatter_packets = 2;
  soak.gateway.flow_table = {.shard_count = kShards,
                             .max_exact_rules_per_shard = 256};
  soak.gateway.controller = {.learning_switch = true,
                             .shard_count = kShards,
                             .max_learned_macs_per_shard = 64};
  soak.gateway.enforcement = {.shard_count = kShards,
                              .max_rules_per_shard = 256};
  soak.gateway.module.monitor_shard_count = kShards;
  soak.gateway.module.max_sessions_per_shard = 256;
  ScriptedAssessor soak_assessor(11);
  const auto soak_begin = Clock::now();
  const ChurnReport report = RunChurnScenario(soak, soak_assessor);
  const double soak_s =
      std::chrono::duration<double>(Clock::now() - soak_begin).count();
  SENTINEL_CHECK(report.total_evictions() > 0) << "caps never engaged";

  std::printf("\n-- churn soak --\n");
  std::printf(
      "%llu sessions, %llu frames in %.1fs wall (%.1f sim-hours); "
      "%llu identifications, %llu incidents\n",
      static_cast<unsigned long long>(report.sessions_started),
      static_cast<unsigned long long>(report.frames_injected), soak_s,
      static_cast<double>(report.sim_duration_ns) / 3.6e12,
      static_cast<unsigned long long>(report.identifications),
      static_cast<unsigned long long>(report.incidents));
  std::printf(
      "final state: %zu sessions, %zu enforcement rules, %zu flow rules, "
      "%zu learned MACs, %.1f MiB gateway state\n",
      report.tracked_devices, report.enforcement_rules, report.flow_rules,
      report.learned_macs,
      static_cast<double>(report.gateway_memory_bytes) / (1024.0 * 1024.0));
  std::printf(
      "evictions: %llu flow, %llu monitor, %llu controller, %llu "
      "enforcement\n",
      static_cast<unsigned long long>(report.flow_evictions),
      static_cast<unsigned long long>(report.monitor_evictions),
      static_cast<unsigned long long>(report.controller_evictions),
      static_cast<unsigned long long>(report.enforcement_evictions));
  std::printf("shard 1 vs 8 differential: %s\n",
              identical ? "identical" : "DIVERGED");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    SENTINEL_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"soak_gateway\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"shards\": %zu,\n", kShards);
    std::fprintf(f, "  \"scale\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScaleRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"rules\": %zu, \"p50_ns_1t\": %.1f, \"p99_ns_1t\": %.1f, "
          "\"p50_ns_8t\": %.1f, \"p99_ns_8t\": %.1f, "
          "\"table_memory_bytes\": %zu, \"rss_bytes\": %zu, "
          "\"table_lookups_per_sec\": %.0f, \"map_lookups_per_sec\": %.0f, "
          "\"speedup_vs_map\": %.2f}%s\n",
          r.rules, r.one_thread.p50_ns, r.one_thread.p99_ns,
          r.eight_threads.p50_ns, r.eight_threads.p99_ns,
          r.table_memory_bytes, r.rss_bytes, r.table_lookups_per_sec,
          r.map_lookups_per_sec, r.speedup_vs_map,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"eviction\": {\"inserts\": %zu, \"cap_per_shard\": %zu, "
        "\"resident_rules\": %zu, \"evicted\": %llu, "
        "\"memory_bytes_capped\": %zu},\n",
        evict_inserts, cap_per_shard, capped_rules,
        static_cast<unsigned long long>(evicted), capped_memory);
    std::fprintf(
        f,
        "  \"churn\": {\"sessions\": %llu, \"frames\": %llu, "
        "\"identifications\": %llu, \"tracked_sessions\": %zu, "
        "\"flow_rules\": %zu, \"learned_macs\": %zu, "
        "\"gateway_memory_bytes\": %zu, \"evictions_total\": %llu, "
        "\"soak_seconds\": %.1f, \"sharded_differential\": \"%s\"}\n",
        static_cast<unsigned long long>(report.sessions_started),
        static_cast<unsigned long long>(report.frames_injected),
        static_cast<unsigned long long>(report.identifications),
        report.tracked_devices, report.flow_rules, report.learned_macs,
        report.gateway_memory_bytes,
        static_cast<unsigned long long>(report.total_evictions()), soak_s,
        identical ? "identical" : "DIVERGED");
    std::fprintf(f, ",\n  \"observability\": %s\n",
                 session.ObservabilityJson().c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  sentinel::bench::Footer();
  return 0;
}
