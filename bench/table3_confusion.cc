// Table III — Confusion matrix for the 10 device-types with low
// identification rate (D-Link home family, TP-Link plugs, Edimax plugs,
// Smarter appliances). The paper's structural claim: misidentification
// occurs only between similar devices from the same vendor.
//
// Usage: table3_confusion [repetitions]   (default 10)
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "util/thread_pool.h"

namespace {
// Paper Table III (rows = actual, columns = predicted, counts out of 200).
constexpr int kPaperConfusion[10][10] = {
    {123, 23, 28, 26, 0, 0, 0, 0, 0, 0},
    {0, 103, 42, 55, 0, 0, 0, 0, 0, 0},
    {4, 55, 87, 54, 0, 0, 0, 0, 0, 0},
    {8, 65, 49, 78, 0, 0, 0, 0, 0, 0},
    {0, 0, 0, 0, 132, 68, 0, 0, 0, 0},
    {0, 0, 0, 0, 88, 112, 0, 0, 0, 0},
    {0, 0, 0, 0, 0, 0, 125, 75, 0, 0},
    {0, 0, 0, 0, 0, 0, 84, 116, 0, 0},
    {0, 0, 0, 0, 0, 0, 0, 0, 90, 110},
    {0, 0, 0, 0, 0, 0, 0, 0, 117, 83}};
}  // namespace

int main(int argc, char** argv) {
  using namespace sentinel;
  const std::size_t reps = bench::ArgCount(argc, argv, 10);

  bench::Header(
      "Table III: confusion matrix of the 10 confusable device-types",
      "confusion confined to same-vendor clusters: D-Link 1-4, TP-Link 5-6, "
      "Edimax 7-8, Smarter 9-10; diagonals 78-132 out of 200");

  const auto dataset = devices::GenerateFingerprintDataset(20, 42);
  eval::CrossValidationConfig config;
  config.repetitions = reps;
  util::ThreadPool pool;
  const auto outcome = eval::RunCrossValidation(dataset, config, &pool);

  const auto& confusable = devices::ConfusableDeviceTypes();
  std::printf("\nPaper (A\\P, counts / 200):\n    ");
  for (int j = 1; j <= 10; ++j) std::printf("%5d", j);
  std::printf("\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("%3d ", i + 1);
    for (int j = 0; j < 10; ++j) std::printf("%5d", kPaperConfusion[i][j]);
    std::printf("\n");
  }

  // Scale measured counts to "out of 200" for direct comparison.
  std::printf("\nMeasured (A\\P, scaled to counts / 200):\n    ");
  for (int j = 1; j <= 10; ++j) std::printf("%5d", j);
  std::printf("  other  unknown\n");
  for (std::size_t i = 0; i < confusable.size(); ++i) {
    const auto actual = static_cast<std::size_t>(confusable[i]);
    const double row_total =
        static_cast<double>(outcome.confusion.RowTotal(actual) +
                            outcome.unknown_per_type[actual]);
    std::printf("%3zu ", i + 1);
    std::size_t in_cluster = 0;
    for (std::size_t j = 0; j < confusable.size(); ++j) {
      const auto predicted = static_cast<std::size_t>(confusable[j]);
      const auto count = outcome.confusion.At(actual, predicted);
      in_cluster += count;
      std::printf("%5.0f", 200.0 * static_cast<double>(count) / row_total);
    }
    const std::size_t elsewhere =
        outcome.confusion.RowTotal(actual) - in_cluster;
    std::printf("  %5.0f  %7.0f\n",
                200.0 * static_cast<double>(elsewhere) / row_total,
                200.0 * static_cast<double>(outcome.unknown_per_type[actual]) /
                    row_total);
  }
  std::printf(
      "\nstructural check: 'other' column should be ~0 — confusion stays "
      "inside the vendor cluster, as in the paper\n");
  bench::Footer();
  return 0;
}
