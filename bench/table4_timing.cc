// Table IV — Time consumption for device-type identification.
//
// Paper (on their lab machine):
//   1 classification (Random Forest)   0.014 ms (+/-0.003)
//   1 discrimination (edit distance)  23.36  ms (+/-24.37)
//   fingerprint extraction             0.850 ms (+/-0.698)
//   27 classifications                 0.385 ms (+/-0.081)
//   7 discriminations                156.5   ms (+/-170.6)
//   type identification              157.7   ms (+/-171.4)
//
// Absolute numbers depend on hardware and implementation language (theirs
// is Python/scikit-learn, ours C++); the *shape* to reproduce is that
// classification is orders of magnitude cheaper than edit-distance
// discrimination, which dominates identification time — the argument for
// the two-stage design.
//
// Usage: table4_timing [probe_count]   (default 300)
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const std::size_t probes = bench::ArgCount(argc, argv, 300);
  bench::MetricsSession session(argc, argv);

  bench::Header("Table IV: time consumption for device-type identification",
                "classification ~0.014 ms each; edit-distance discrimination "
                "~23 ms each dominates the ~158 ms identification");

  const auto dataset = devices::GenerateFingerprintDataset(20, 42);
  eval::CrossValidationConfig config;
  util::ThreadPool pool;  // accelerates model training; probes stay sequential
  const auto timings = eval::MeasureStepTimings(dataset, config, probes, &pool,
                                                session.registry());

  auto row = [](const char* step, double paper_ms, ml::MeanStd measured_ns) {
    std::printf("%-38s %12.3f %12.4f (+/-%.4f)\n", step, paper_ms,
                measured_ns.mean / 1e6, measured_ns.stdev / 1e6);
  };
  std::printf("%-38s %12s %12s\n", "step", "paper (ms)", "measured (ms)");
  row("1 classification (Random Forest)", 0.014,
      timings.single_classification_ns);
  row("1 discrimination (edit distance)", 23.36,
      timings.single_discrimination_ns);
  row("fingerprint extraction", 0.850, timings.fingerprint_extraction_ns);
  row("27 classifications (Random Forest)", 0.385,
      timings.all_classifications_ns);
  row("discriminations per identification", 156.5, timings.discriminations_ns);
  row("type identification (end to end)", 157.7, timings.identification_ns);
  std::printf(
      "\nmean edit-distance computations per discriminated identification: "
      "%.1f (paper: 7)\n",
      timings.mean_discriminations_per_id);

  const double ratio = timings.single_discrimination_ns.mean /
                       timings.single_classification_ns.mean;
  std::printf(
      "shape check: one discrimination costs %.0fx one classification "
      "(paper: ~1700x) -> classification-first design scales to thousands "
      "of types\n",
      ratio);
  bench::Footer();
  return 0;
}
