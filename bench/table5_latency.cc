// Table V — Latency (ms) experienced by users with and without traffic
// filtering, for D1-D3 towards D4, the local server and the remote server
// (15 iterations per pair, as in the paper).
//
// Usage: table5_latency [iterations]   (default 15)
#include <array>
#include <cstdio>

#include "bench_util.h"
#include "fig4_topology.h"

namespace {
struct PaperRow {
  const char* src;
  const char* dst;
  double filtering_ms;
  double no_filtering_ms;
};
constexpr PaperRow kPaper[] = {
    {"D1", "D4", 24.8, 24.5},       {"D1", "S_local", 18.4, 18.2},
    {"D1", "S_remote", 20.6, 20.3}, {"D2", "D4", 28.5, 28.2},
    {"D2", "S_local", 17.2, 17.0},  {"D2", "S_remote", 20.0, 19.8},
    {"D3", "D4", 27.6, 27.5},       {"D3", "S_local", 15.5, 15.4},
    {"D3", "S_remote", 20.6, 19.9}};
}  // namespace

int main(int argc, char** argv) {
  using namespace sentinel;
  const int iterations = static_cast<int>(bench::ArgCount(argc, argv, 15));
  bench::MetricsSession session(argc, argv);

  bench::Header("Table V: user-experienced latency with/without filtering",
                "filtering adds only a fraction of a millisecond per pair; "
                "D-D RTTs 24-29 ms, D-S_local 15-18 ms, D-S_remote ~20 ms");

  std::array<ml::MeanStd, 9> with_filtering{}, without_filtering{};
  for (const bool filtering : {false, true}) {
    auto lab = bench::BuildLabTopology(/*seed=*/7);
    if (filtering) bench::EnableFiltering(lab);
    netsim::SimHost* sources[] = {lab.d1, lab.d2, lab.d3};
    netsim::SimHost* targets[] = {lab.d4, lab.s_local, lab.s_remote};
    std::size_t row = 0;
    for (auto* src : sources) {
      for (auto* dst : targets) {
        auto& slot = filtering ? with_filtering[row] : without_filtering[row];
        slot = bench::PingSeries(lab, *src, *dst, iterations);
        ++row;
      }
    }
  }

  std::printf("%-4s %-9s | %-24s | %-24s\n", "src", "dst",
              "filtering: measured [paper]",
              "no filtering: measured [paper]");
  for (std::size_t row = 0; row < 9; ++row) {
    const auto& paper = kPaper[row];
    std::printf(
        "%-4s %-9s | %6.1f (+/-%4.1f) [%4.1f]   | %6.1f (+/-%4.1f) [%4.1f]\n",
        paper.src, paper.dst, with_filtering[row].mean,
        with_filtering[row].stdev, paper.filtering_ms,
        without_filtering[row].mean, without_filtering[row].stdev,
        paper.no_filtering_ms);
  }
  std::printf(
      "\nshape check: filtering-minus-baseline delta stays well under 1 ms "
      "on every pair (paper deltas: 0.1-0.7 ms)\n");
  bench::Footer();
  return 0;
}
