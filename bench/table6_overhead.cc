// Table VI — Overhead due to the filtering mechanism: relative increase in
// D1-D2 / D1-D3 latency, CPU utilization and memory usage when traffic
// filtering is enabled.
//
// Usage: table6_overhead [iterations]   (default 15)
#include <cstdio>

#include "bench_util.h"
#include "fig4_topology.h"

int main(int argc, char** argv) {
  using namespace sentinel;
  const int iterations = static_cast<int>(bench::ArgCount(argc, argv, 15));

  bench::Header("Table VI: overhead due to the filtering mechanism",
                "D1D2 latency +5.84%, D1D3 latency +0.71%, CPU +0.63%, "
                "memory +7.6%");

  double lat12[2], lat13[2], cpu[2];
  std::size_t mem[2];
  for (const bool filtering : {false, true}) {
    auto lab = bench::BuildLabTopology(/*seed=*/11);
    if (filtering) bench::EnableFiltering(lab);
    const std::size_t idx = filtering ? 1 : 0;

    // Background traffic while measuring: a busy wired path keeps the
    // gateway CPU working (~1000 pkt/s) without adding radio contention
    // that would swamp the latency deltas under test.
    lab.network->StartFlow(*lab.s_local, *lab.s_remote, 500.0, 256,
                           30'000'000'000ull);
    lab.network->StartFlow(*lab.s_remote, *lab.s_local, 500.0, 256,
                           30'000'000'000ull);

    lab.network->cpu().ResetWindow();
    const auto window_start = lab.network->queue().now();
    lat12[idx] = bench::PingSeries(lab, *lab.d1, *lab.d2, iterations).mean;
    lat13[idx] = bench::PingSeries(lab, *lab.d1, *lab.d3, iterations).mean;
    lab.network->Run();
    const auto window_end = lab.network->queue().now();
    cpu[idx] = lab.network->cpu().Utilization(window_start, window_end);
    mem[idx] =
        lab.network->GatewayMemoryBytes(lab.enforcement->MemoryBytes());
  }

  auto pct = [](double with, double without) {
    return 100.0 * (with - without) / without;
  };
  std::printf("%-18s %14s %14s\n", "metric", "paper", "measured");
  std::printf("%-18s %13.2f%% %13.2f%%\n", "D1D2 latency", 5.84,
              pct(lat12[1], lat12[0]));
  std::printf("%-18s %13.2f%% %13.2f%%\n", "D1D3 latency", 0.71,
              pct(lat13[1], lat13[0]));
  std::printf("%-18s %13.2f%% %13.2f%%\n", "CPU utilization", 0.63,
              100.0 * (cpu[1] - cpu[0]));
  std::printf("%-18s %13.2f%% %13.2f%%\n", "memory usage", 7.60,
              pct(static_cast<double>(mem[1]), static_cast<double>(mem[0])));
  std::printf(
      "\n(memory overhead is the live rule-cache + flow-table growth over "
      "the gateway baseline; the paper's Java/Floodlight footprint is "
      "heavier per rule, the direction and order are what carry over)\n");
  bench::Footer();
  return 0;
}
