// Identification fast-path throughput: reference scan vs the
// arena-compiled bank, single- and multi-threaded, per-call and batched,
// across bank sizes from 8 to 128 device-types. Every fast-path verdict is
// asserted equal to the reference verdict before anything is timed, so the
// numbers can only come from an equivalent implementation.
//
//   throughput_identify [--quick] [--json <path>]
//
// --quick shrinks bank sizes and repetitions for the CI smoke job; --json
// writes the machine-readable baseline (scripts/bench_baseline.sh commits
// it as BENCH_identify.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/device_identifier.h"
#include "devices/simulator.h"
#include "features/fingerprint.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;
using sentinel::core::DeviceIdentifier;
using sentinel::core::IdentificationResult;
using sentinel::core::LabelledFingerprint;

/// Widens the 27-type catalog dataset to `type_count` synthetic types:
/// each extra type clones a catalog type's episodes with every packet size
/// shifted by a per-type constant — distinct, equally shaped types, so
/// bank-size scaling is measured on realistic fingerprints.
sentinel::devices::FingerprintDataset Widen(
    const sentinel::devices::FingerprintDataset& base,
    std::size_t type_count) {
  int catalog = 0;
  for (const int label : base.labels) catalog = std::max(catalog, label + 1);
  sentinel::devices::FingerprintDataset out;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (static_cast<std::size_t>(base.labels[i]) >= type_count) continue;
    out.fingerprints.push_back(base.fingerprints[i]);
    out.fixed.push_back(base.fixed[i]);
    out.labels.push_back(base.labels[i]);
  }
  for (std::size_t s = static_cast<std::size_t>(catalog); s < type_count;
       ++s) {
    const int src = static_cast<int>(s) % catalog;
    const auto offset =
        911u * static_cast<std::uint32_t>(s - static_cast<std::size_t>(catalog) + 1);
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base.labels[i] != src) continue;
      auto packets = base.fingerprints[i].packets();
      for (auto& packet : packets)
        packet[sentinel::features::kFeatPacketSize] += offset;
      auto fp = sentinel::features::Fingerprint::FromPacketVectors(packets);
      out.fixed.push_back(
          sentinel::features::FixedFingerprint::FromFingerprint(fp));
      out.fingerprints.push_back(std::move(fp));
      out.labels.push_back(static_cast<int>(s));
    }
  }
  return out;
}

std::vector<LabelledFingerprint> ToExamples(
    const sentinel::devices::FingerprintDataset& dataset) {
  std::vector<LabelledFingerprint> examples;
  examples.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    examples.push_back(LabelledFingerprint{
        &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
  }
  return examples;
}

void CheckEquivalent(const IdentificationResult& got,
                     const IdentificationResult& want, const char* mode) {
  SENTINEL_CHECK(got.type == want.type)
      << mode << ": verdict diverged from reference";
  SENTINEL_CHECK(got.matched_types == want.matched_types)
      << mode << ": candidate set diverged from reference";
}

template <typename Run>
double MeasureIps(std::size_t reps, std::size_t probes, Run&& run) {
  run();  // warmup (also populates caches the way a serving gateway would)
  // Best-of-reps: each repetition is timed alone and the fastest wins, so
  // an unrelated system hiccup during one rep cannot drag a mode's number
  // (and the cross-mode ratios built from it) down.
  double best_secs = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    run();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    best_secs = std::min(best_secs, secs);
  }
  return static_cast<double>(probes) / best_secs;
}

struct BankNumbers {
  std::size_t types = 0;
  std::size_t probes = 0;
  double reference_1t = 0.0;
  double fast_1t = 0.0;
  double fast_early_exit_1t = 0.0;
  double fast_8t = 0.0;
  double batch_1t = 0.0;
  double batch_8t = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[i + 1];
  }

  sentinel::bench::MetricsSession session(argc, argv);

  sentinel::bench::Header(
      "Identification throughput: reference vs compiled fast path",
      "Sect. VII reports identification cost dominated by the classifier "
      "bank scan; the fast path flattens it into cache-linear arenas");

  const std::vector<std::size_t> bank_sizes =
      quick ? std::vector<std::size_t>{8, 31}
            : std::vector<std::size_t>{8, 16, 31, 64, 128};
  const std::size_t train_episodes = quick ? 4 : 6;
  const std::size_t probe_episodes = 2;
  const std::size_t reps = quick ? 2 : 5;

  const auto train_base =
      sentinel::devices::GenerateFingerprintDataset(train_episodes, 42);
  const auto probe_base =
      sentinel::devices::GenerateFingerprintDataset(probe_episodes, 4242);

  sentinel::util::ThreadPool pool(8);
  std::vector<BankNumbers> rows;

  std::printf("%6s %7s %14s %14s %14s %14s %14s %14s %9s\n", "types",
              "probes", "ref 1t id/s", "fast 1t id/s", "early 1t id/s",
              "fast 8t id/s", "batch 1t id/s", "batch 8t id/s", "speedup");
  for (const std::size_t types : bank_sizes) {
    const auto train = Widen(train_base, types);
    const auto probes = Widen(probe_base, types);
    std::vector<DeviceIdentifier::FingerprintRef> refs;
    refs.reserve(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i)
      refs.push_back({&probes.fingerprints[i], &probes.fixed[i]});

    DeviceIdentifier identifier;
    identifier.set_thread_pool(&pool);
    identifier.Train(ToExamples(train));
    identifier.set_thread_pool(nullptr);

    // Reference verdicts once, then assert every mode against them before
    // any timing.
    identifier.set_fast_path(false);
    std::vector<IdentificationResult> expected;
    expected.reserve(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i)
      expected.push_back(
          identifier.Identify(probes.fingerprints[i], probes.fixed[i]));
    identifier.set_fast_path(true);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      CheckEquivalent(
          identifier.Identify(probes.fingerprints[i], probes.fixed[i]),
          expected[i], "fast");
    }
    identifier.set_bank_early_exit(true);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      CheckEquivalent(
          identifier.Identify(probes.fingerprints[i], probes.fixed[i]),
          expected[i], "fast+early-exit");
    }
    identifier.set_bank_early_exit(false);
    {
      const auto batch = identifier.IdentifyBatch(refs);
      for (std::size_t i = 0; i < probes.size(); ++i)
        CheckEquivalent(batch[i], expected[i], "batch");
    }

    BankNumbers row;
    row.types = types;
    row.probes = probes.size();
    const auto run_per_call = [&] {
      for (std::size_t i = 0; i < probes.size(); ++i)
        (void)identifier.Identify(probes.fingerprints[i], probes.fixed[i]);
    };
    const auto run_batch = [&] { (void)identifier.IdentifyBatch(refs); };

    identifier.set_fast_path(false);
    row.reference_1t = MeasureIps(reps, probes.size(), run_per_call);
    identifier.set_fast_path(true);
    row.fast_1t = MeasureIps(reps, probes.size(), run_per_call);
    identifier.set_bank_early_exit(true);
    row.fast_early_exit_1t = MeasureIps(reps, probes.size(), run_per_call);
    identifier.set_bank_early_exit(false);
    row.batch_1t = MeasureIps(reps, probes.size(), run_batch);
    identifier.set_thread_pool(&pool);
    row.fast_8t = MeasureIps(reps, probes.size(), run_per_call);
    row.batch_8t = MeasureIps(reps, probes.size(), run_batch);
    identifier.set_thread_pool(nullptr);

    std::printf("%6zu %7zu %14.0f %14.0f %14.0f %14.0f %14.0f %14.0f %8.2fx\n",
                row.types, row.probes, row.reference_1t, row.fast_1t,
                row.fast_early_exit_1t, row.fast_8t, row.batch_1t,
                row.batch_8t, row.fast_1t / row.reference_1t);
    rows.push_back(row);
  }

  // Quality-monitor overhead guard: attaching the quality monitor must not
  // meaningfully tax the single-probe path — Record() is a handful of
  // relaxed atomic bumps per finished verdict, and detached it is a single
  // null-pointer branch. Measured on the 31-type catalog bank; attached
  // throughput must stay within 2% of detached.
  double quality_off_ips = 0.0;
  double quality_on_ips = 0.0;
  {
    const auto train = Widen(train_base, 31);
    const auto probes = Widen(probe_base, 31);
    DeviceIdentifier identifier;
    identifier.set_thread_pool(&pool);
    identifier.Train(ToExamples(train));
    identifier.set_thread_pool(nullptr);
    const std::size_t loops = 4;
    const auto run_looped = [&] {
      for (std::size_t l = 0; l < loops; ++l)
        for (std::size_t i = 0; i < probes.size(); ++i)
          (void)identifier.Identify(probes.fingerprints[i], probes.fixed[i]);
    };
    sentinel::obs::MetricsRegistry registry;
    sentinel::obs::QualityMonitor monitor(&registry);
    // Paired-slice median: timing a detached block and then an attached
    // block lets CPU frequency drift masquerade as overhead, and even
    // interleaved best-of is thrown by sustained throttling episodes.
    // Instead each pair times the two modes back to back (near-identical
    // conditions), and the *median* of the per-pair on/off ratios discards
    // pairs a preemption spike landed in.
    std::vector<double> ratios;
    std::vector<double> off_secs;
    const auto timed = [&](sentinel::obs::QualityMonitor* attached) {
      identifier.set_quality_monitor(attached);
      const auto t0 = Clock::now();
      run_looped();
      return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    run_looped();  // warmup
    for (std::size_t pair = 0; pair < 65; ++pair) {
      // Alternating order inside the pair cancels any systematic cost of
      // running first vs second (cache state, frequency ramp).
      double off = 0.0;
      double on = 0.0;
      if (pair % 2 == 0) {
        off = timed(nullptr);
        on = timed(&monitor);
      } else {
        on = timed(&monitor);
        off = timed(nullptr);
      }
      ratios.push_back(on / off);
      off_secs.push_back(off);
    }
    identifier.set_quality_monitor(nullptr);
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    const double median_ratio = ratios[ratios.size() / 2];
    const auto looped_probes = static_cast<double>(probes.size() * loops);
    quality_off_ips =
        looped_probes / *std::min_element(off_secs.begin(), off_secs.end());
    quality_on_ips = quality_off_ips / median_ratio;
    const double overhead_pct =
        100.0 * (1.0 - quality_on_ips / quality_off_ips);
    std::printf(
        "quality monitor (31 types, 1t): detached %.0f id/s, attached %.0f "
        "id/s, overhead %.2f%%\n",
        quality_off_ips, quality_on_ips, overhead_pct);
    SENTINEL_CHECK(overhead_pct <= 2.0)
        << "quality monitor costs " << overhead_pct
        << "% single-probe throughput (budget: 2%)";
  }

  // Enabled-profiler overhead guard: the hot identification path crosses
  // SENTINEL_PROFILE_SCOPE on every call, so an installed profiler must
  // cost at most the same 2% budget as the quality monitor. Same
  // paired-slice-median protocol: each pair times attached and detached
  // back to back in alternating order, and the median per-pair ratio
  // discards pairs hit by preemption or frequency drift.
  double profiler_off_ips = 0.0;
  double profiler_on_ips = 0.0;
  {
    const auto train = Widen(train_base, 31);
    const auto probes = Widen(probe_base, 31);
    DeviceIdentifier identifier;
    identifier.set_thread_pool(&pool);
    identifier.Train(ToExamples(train));
    identifier.set_thread_pool(nullptr);
    const std::size_t loops = 4;
    const auto run_looped = [&] {
      for (std::size_t l = 0; l < loops; ++l)
        for (std::size_t i = 0; i < probes.size(); ++i)
          (void)identifier.Identify(probes.fingerprints[i], probes.fixed[i]);
    };
    sentinel::obs::Profiler gate_profiler;
    std::vector<double> ratios;
    std::vector<double> off_secs;
    const auto timed = [&](sentinel::obs::Profiler* attached) {
      sentinel::obs::Profiler::SetCurrent(attached);
      const auto t0 = Clock::now();
      run_looped();
      return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    run_looped();  // warmup
    for (std::size_t pair = 0; pair < 65; ++pair) {
      double off = 0.0;
      double on = 0.0;
      if (pair % 2 == 0) {
        off = timed(nullptr);
        on = timed(&gate_profiler);
      } else {
        on = timed(&gate_profiler);
        off = timed(nullptr);
      }
      ratios.push_back(on / off);
      off_secs.push_back(off);
    }
    // Put the session profiler back so the rest of the run (and the
    // observability summary below) keeps accumulating.
    sentinel::obs::Profiler::SetCurrent(session.profiler());
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    const double median_ratio = ratios[ratios.size() / 2];
    const auto looped_probes = static_cast<double>(probes.size() * loops);
    profiler_off_ips =
        looped_probes / *std::min_element(off_secs.begin(), off_secs.end());
    profiler_on_ips = profiler_off_ips / median_ratio;
    const double overhead_pct =
        100.0 * (1.0 - profiler_on_ips / profiler_off_ips);
    std::printf(
        "profiler (31 types, 1t): detached %.0f id/s, attached %.0f id/s, "
        "overhead %.2f%%\n",
        profiler_off_ips, profiler_on_ips, overhead_pct);
    SENTINEL_CHECK(overhead_pct <= 2.0)
        << "enabled profiler costs " << overhead_pct
        << "% single-probe throughput (budget: 2%)";
  }

  // Multithreaded-dispatch guard: on this container nproc is 1, so the
  // 8-thread per-call mode cannot beat single-threaded — every fan-out
  // buys zero parallelism and pays wake-ups and context switches. That
  // fast_8t <= fast_1t at 16-128 types is therefore *expected* here, not
  // a regression; what must hold is that the dispatch machinery's tax is
  // bounded. Same paired-slice-median protocol as the overhead gates
  // above: each pair times pooled and unpooled back to back in
  // alternating order, and the median per-pair ratio discards pairs hit
  // by preemption or frequency drift.
  double mt_1t_ips = 0.0;
  double mt_8t_ips = 0.0;
  {
    const auto train = Widen(train_base, 31);
    const auto probes = Widen(probe_base, 31);
    DeviceIdentifier identifier;
    identifier.set_thread_pool(&pool);
    identifier.Train(ToExamples(train));
    identifier.set_thread_pool(nullptr);
    const std::size_t loops = 4;
    const auto run_looped = [&] {
      for (std::size_t l = 0; l < loops; ++l)
        for (std::size_t i = 0; i < probes.size(); ++i)
          (void)identifier.Identify(probes.fingerprints[i], probes.fixed[i]);
    };
    std::vector<double> ratios;  // pooled time / unpooled time
    std::vector<double> unpooled_secs;
    const auto timed = [&](sentinel::util::ThreadPool* attached) {
      identifier.set_thread_pool(attached);
      const auto t0 = Clock::now();
      run_looped();
      return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    run_looped();  // warmup
    for (std::size_t pair = 0; pair < 65; ++pair) {
      double unpooled = 0.0;
      double pooled = 0.0;
      if (pair % 2 == 0) {
        unpooled = timed(nullptr);
        pooled = timed(&pool);
      } else {
        pooled = timed(&pool);
        unpooled = timed(nullptr);
      }
      ratios.push_back(pooled / unpooled);
      unpooled_secs.push_back(unpooled);
    }
    identifier.set_thread_pool(nullptr);
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    const double median_ratio = ratios[ratios.size() / 2];
    const auto looped_probes = static_cast<double>(probes.size() * loops);
    mt_1t_ips = looped_probes / *std::min_element(unpooled_secs.begin(),
                                                  unpooled_secs.end());
    mt_8t_ips = mt_1t_ips / median_ratio;
    std::printf(
        "mt dispatch (31 types): 1t %.0f id/s, 8t %.0f id/s, 8t/1t %.2fx "
        "(single-core host: <= 1.0x expected)\n",
        mt_1t_ips, mt_8t_ips, mt_8t_ips / mt_1t_ips);
    // One-sided floor only: 8t may lose to 1t on one core, but if pooled
    // dispatch costs more than ~60% of throughput the fan-out path itself
    // has regressed (oversized tasks, lock churn, lost wakeups).
    SENTINEL_CHECK(mt_8t_ips >= 0.4 * mt_1t_ips)
        << "pooled per-call dispatch at " << mt_8t_ips / mt_1t_ips
        << "x single-threaded (floor: 0.4x)";
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    SENTINEL_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f, "{\n  \"bench\": \"throughput_identify\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"unit\": \"identifications_per_second\",\n");
    std::fprintf(f, "  \"banks\": [\n");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const auto& row = rows[r];
      std::fprintf(
          f,
          "    {\"types\": %zu, \"probes\": %zu, \"reference_1t\": %.1f, "
          "\"fast_1t\": %.1f, \"fast_early_exit_1t\": %.1f, "
          "\"fast_8t\": %.1f, \"batch_1t\": %.1f, \"batch_8t\": %.1f, "
          "\"speedup_fast_1t\": %.2f}%s\n",
          row.types, row.probes, row.reference_1t, row.fast_1t,
          row.fast_early_exit_1t, row.fast_8t, row.batch_1t, row.batch_8t,
          row.fast_1t / row.reference_1t, r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"quality_monitor\": {\"types\": 31, \"detached_1t\": %.1f, "
        "\"attached_1t\": %.1f, \"overhead_pct\": %.2f},\n",
        quality_off_ips, quality_on_ips,
        100.0 * (1.0 - quality_on_ips / quality_off_ips));
    std::fprintf(
        f,
        "  \"profiler\": {\"types\": 31, \"detached_1t\": %.1f, "
        "\"attached_1t\": %.1f, \"overhead_pct\": %.2f},\n",
        profiler_off_ips, profiler_on_ips,
        100.0 * (1.0 - profiler_on_ips / profiler_off_ips));
    std::fprintf(
        f,
        "  \"mt_dispatch\": {\"types\": 31, \"fast_1t\": %.1f, "
        "\"fast_8t\": %.1f, \"ratio_8t_over_1t\": %.2f, \"floor\": 0.4, "
        "\"note\": \"single-core container: pooled fan-out buys no "
        "parallelism, so 8t <= 1t is expected; the floor bounds dispatch "
        "overhead, not speedup\"},\n",
        mt_1t_ips, mt_8t_ips, mt_8t_ips / mt_1t_ips);
    std::fprintf(f, "  \"observability\": %s\n",
                 session.ObservabilityJson().c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  sentinel::bench::Footer();
  return 0;
}
