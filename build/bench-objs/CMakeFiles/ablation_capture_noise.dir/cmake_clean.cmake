file(REMOVE_RECURSE
  "../bench/ablation_capture_noise"
  "../bench/ablation_capture_noise.pdb"
  "CMakeFiles/ablation_capture_noise.dir/ablation_capture_noise.cc.o"
  "CMakeFiles/ablation_capture_noise.dir/ablation_capture_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capture_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
