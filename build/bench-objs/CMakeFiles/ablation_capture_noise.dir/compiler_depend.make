# Empty compiler generated dependencies file for ablation_capture_noise.
# This may be replaced when dependencies are built.
