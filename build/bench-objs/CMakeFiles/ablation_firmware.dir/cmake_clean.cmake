file(REMOVE_RECURSE
  "../bench/ablation_firmware"
  "../bench/ablation_firmware.pdb"
  "CMakeFiles/ablation_firmware.dir/ablation_firmware.cc.o"
  "CMakeFiles/ablation_firmware.dir/ablation_firmware.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
