# Empty compiler generated dependencies file for ablation_firmware.
# This may be replaced when dependencies are built.
