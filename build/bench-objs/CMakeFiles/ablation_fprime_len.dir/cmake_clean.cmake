file(REMOVE_RECURSE
  "../bench/ablation_fprime_len"
  "../bench/ablation_fprime_len.pdb"
  "CMakeFiles/ablation_fprime_len.dir/ablation_fprime_len.cc.o"
  "CMakeFiles/ablation_fprime_len.dir/ablation_fprime_len.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fprime_len.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
