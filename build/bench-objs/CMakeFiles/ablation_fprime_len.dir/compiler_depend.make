# Empty compiler generated dependencies file for ablation_fprime_len.
# This may be replaced when dependencies are built.
