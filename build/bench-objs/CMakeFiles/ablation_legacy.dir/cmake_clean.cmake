file(REMOVE_RECURSE
  "../bench/ablation_legacy"
  "../bench/ablation_legacy.pdb"
  "CMakeFiles/ablation_legacy.dir/ablation_legacy.cc.o"
  "CMakeFiles/ablation_legacy.dir/ablation_legacy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
