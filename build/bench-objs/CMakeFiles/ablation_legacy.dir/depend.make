# Empty dependencies file for ablation_legacy.
# This may be replaced when dependencies are built.
