file(REMOVE_RECURSE
  "../bench/ablation_pipeline"
  "../bench/ablation_pipeline.pdb"
  "CMakeFiles/ablation_pipeline.dir/ablation_pipeline.cc.o"
  "CMakeFiles/ablation_pipeline.dir/ablation_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
