file(REMOVE_RECURSE
  "../bench/ablation_training_size"
  "../bench/ablation_training_size.pdb"
  "CMakeFiles/ablation_training_size.dir/ablation_training_size.cc.o"
  "CMakeFiles/ablation_training_size.dir/ablation_training_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
