# Empty compiler generated dependencies file for ablation_training_size.
# This may be replaced when dependencies are built.
