file(REMOVE_RECURSE
  "../bench/analysis_feature_importance"
  "../bench/analysis_feature_importance.pdb"
  "CMakeFiles/analysis_feature_importance.dir/analysis_feature_importance.cc.o"
  "CMakeFiles/analysis_feature_importance.dir/analysis_feature_importance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
