# Empty dependencies file for analysis_feature_importance.
# This may be replaced when dependencies are built.
