file(REMOVE_RECURSE
  "../bench/fig6a_latency_flows"
  "../bench/fig6a_latency_flows.pdb"
  "CMakeFiles/fig6a_latency_flows.dir/fig6a_latency_flows.cc.o"
  "CMakeFiles/fig6a_latency_flows.dir/fig6a_latency_flows.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_latency_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
