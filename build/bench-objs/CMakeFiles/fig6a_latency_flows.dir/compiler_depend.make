# Empty compiler generated dependencies file for fig6a_latency_flows.
# This may be replaced when dependencies are built.
