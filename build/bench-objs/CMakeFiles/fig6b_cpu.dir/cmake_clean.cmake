file(REMOVE_RECURSE
  "../bench/fig6b_cpu"
  "../bench/fig6b_cpu.pdb"
  "CMakeFiles/fig6b_cpu.dir/fig6b_cpu.cc.o"
  "CMakeFiles/fig6b_cpu.dir/fig6b_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
