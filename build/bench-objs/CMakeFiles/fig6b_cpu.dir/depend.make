# Empty dependencies file for fig6b_cpu.
# This may be replaced when dependencies are built.
