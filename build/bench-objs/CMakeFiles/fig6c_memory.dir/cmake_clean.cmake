file(REMOVE_RECURSE
  "../bench/fig6c_memory"
  "../bench/fig6c_memory.pdb"
  "CMakeFiles/fig6c_memory.dir/fig6c_memory.cc.o"
  "CMakeFiles/fig6c_memory.dir/fig6c_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
