# Empty compiler generated dependencies file for fig6c_memory.
# This may be replaced when dependencies are built.
