file(REMOVE_RECURSE
  "../bench/scalability_types"
  "../bench/scalability_types.pdb"
  "CMakeFiles/scalability_types.dir/scalability_types.cc.o"
  "CMakeFiles/scalability_types.dir/scalability_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
