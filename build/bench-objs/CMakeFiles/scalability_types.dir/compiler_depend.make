# Empty compiler generated dependencies file for scalability_types.
# This may be replaced when dependencies are built.
