file(REMOVE_RECURSE
  "../bench/table3_confusion"
  "../bench/table3_confusion.pdb"
  "CMakeFiles/table3_confusion.dir/table3_confusion.cc.o"
  "CMakeFiles/table3_confusion.dir/table3_confusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
