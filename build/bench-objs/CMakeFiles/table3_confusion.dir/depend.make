# Empty dependencies file for table3_confusion.
# This may be replaced when dependencies are built.
