file(REMOVE_RECURSE
  "../bench/table4_timing"
  "../bench/table4_timing.pdb"
  "CMakeFiles/table4_timing.dir/table4_timing.cc.o"
  "CMakeFiles/table4_timing.dir/table4_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
