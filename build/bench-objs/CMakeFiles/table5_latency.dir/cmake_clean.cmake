file(REMOVE_RECURSE
  "../bench/table5_latency"
  "../bench/table5_latency.pdb"
  "CMakeFiles/table5_latency.dir/table5_latency.cc.o"
  "CMakeFiles/table5_latency.dir/table5_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
