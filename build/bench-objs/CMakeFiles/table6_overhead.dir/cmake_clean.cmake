file(REMOVE_RECURSE
  "../bench/table6_overhead"
  "../bench/table6_overhead.pdb"
  "CMakeFiles/table6_overhead.dir/table6_overhead.cc.o"
  "CMakeFiles/table6_overhead.dir/table6_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
