file(REMOVE_RECURSE
  "CMakeFiles/legacy_retrofit.dir/legacy_retrofit.cpp.o"
  "CMakeFiles/legacy_retrofit.dir/legacy_retrofit.cpp.o.d"
  "legacy_retrofit"
  "legacy_retrofit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_retrofit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
