# Empty dependencies file for legacy_retrofit.
# This may be replaced when dependencies are built.
