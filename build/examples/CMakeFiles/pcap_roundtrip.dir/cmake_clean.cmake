file(REMOVE_RECURSE
  "CMakeFiles/pcap_roundtrip.dir/pcap_roundtrip.cpp.o"
  "CMakeFiles/pcap_roundtrip.dir/pcap_roundtrip.cpp.o.d"
  "pcap_roundtrip"
  "pcap_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
