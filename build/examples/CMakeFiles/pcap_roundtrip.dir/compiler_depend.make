# Empty compiler generated dependencies file for pcap_roundtrip.
# This may be replaced when dependencies are built.
