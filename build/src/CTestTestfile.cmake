# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("util")
subdirs("net")
subdirs("capture")
subdirs("features")
subdirs("ml")
subdirs("devices")
subdirs("sdn")
subdirs("netsim")
subdirs("core")
subdirs("eval")
