
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/setup_phase.cc" "src/capture/CMakeFiles/sentinel_capture.dir/setup_phase.cc.o" "gcc" "src/capture/CMakeFiles/sentinel_capture.dir/setup_phase.cc.o.d"
  "/root/repo/src/capture/trace.cc" "src/capture/CMakeFiles/sentinel_capture.dir/trace.cc.o" "gcc" "src/capture/CMakeFiles/sentinel_capture.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
