file(REMOVE_RECURSE
  "CMakeFiles/sentinel_capture.dir/setup_phase.cc.o"
  "CMakeFiles/sentinel_capture.dir/setup_phase.cc.o.d"
  "CMakeFiles/sentinel_capture.dir/trace.cc.o"
  "CMakeFiles/sentinel_capture.dir/trace.cc.o.d"
  "libsentinel_capture.a"
  "libsentinel_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
