file(REMOVE_RECURSE
  "libsentinel_capture.a"
)
