# Empty compiler generated dependencies file for sentinel_capture.
# This may be replaced when dependencies are built.
