
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymizing_transport.cc" "src/core/CMakeFiles/sentinel_core.dir/anonymizing_transport.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/anonymizing_transport.cc.o.d"
  "/root/repo/src/core/device_identifier.cc" "src/core/CMakeFiles/sentinel_core.dir/device_identifier.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/device_identifier.cc.o.d"
  "/root/repo/src/core/device_monitor.cc" "src/core/CMakeFiles/sentinel_core.dir/device_monitor.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/device_monitor.cc.o.d"
  "/root/repo/src/core/enforcement.cc" "src/core/CMakeFiles/sentinel_core.dir/enforcement.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/enforcement.cc.o.d"
  "/root/repo/src/core/gateway.cc" "src/core/CMakeFiles/sentinel_core.dir/gateway.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/gateway.cc.o.d"
  "/root/repo/src/core/gateway_services.cc" "src/core/CMakeFiles/sentinel_core.dir/gateway_services.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/gateway_services.cc.o.d"
  "/root/repo/src/core/incident_registry.cc" "src/core/CMakeFiles/sentinel_core.dir/incident_registry.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/incident_registry.cc.o.d"
  "/root/repo/src/core/isolation.cc" "src/core/CMakeFiles/sentinel_core.dir/isolation.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/isolation.cc.o.d"
  "/root/repo/src/core/legacy.cc" "src/core/CMakeFiles/sentinel_core.dir/legacy.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/legacy.cc.o.d"
  "/root/repo/src/core/remote_service.cc" "src/core/CMakeFiles/sentinel_core.dir/remote_service.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/remote_service.cc.o.d"
  "/root/repo/src/core/security_service.cc" "src/core/CMakeFiles/sentinel_core.dir/security_service.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/security_service.cc.o.d"
  "/root/repo/src/core/sentinel_module.cc" "src/core/CMakeFiles/sentinel_core.dir/sentinel_module.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/sentinel_module.cc.o.d"
  "/root/repo/src/core/vulnerability_db.cc" "src/core/CMakeFiles/sentinel_core.dir/vulnerability_db.cc.o" "gcc" "src/core/CMakeFiles/sentinel_core.dir/vulnerability_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/sentinel_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sentinel_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/sentinel_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sentinel_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sentinel_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/sentinel_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
