file(REMOVE_RECURSE
  "CMakeFiles/sentinel_core.dir/anonymizing_transport.cc.o"
  "CMakeFiles/sentinel_core.dir/anonymizing_transport.cc.o.d"
  "CMakeFiles/sentinel_core.dir/device_identifier.cc.o"
  "CMakeFiles/sentinel_core.dir/device_identifier.cc.o.d"
  "CMakeFiles/sentinel_core.dir/device_monitor.cc.o"
  "CMakeFiles/sentinel_core.dir/device_monitor.cc.o.d"
  "CMakeFiles/sentinel_core.dir/enforcement.cc.o"
  "CMakeFiles/sentinel_core.dir/enforcement.cc.o.d"
  "CMakeFiles/sentinel_core.dir/gateway.cc.o"
  "CMakeFiles/sentinel_core.dir/gateway.cc.o.d"
  "CMakeFiles/sentinel_core.dir/gateway_services.cc.o"
  "CMakeFiles/sentinel_core.dir/gateway_services.cc.o.d"
  "CMakeFiles/sentinel_core.dir/incident_registry.cc.o"
  "CMakeFiles/sentinel_core.dir/incident_registry.cc.o.d"
  "CMakeFiles/sentinel_core.dir/isolation.cc.o"
  "CMakeFiles/sentinel_core.dir/isolation.cc.o.d"
  "CMakeFiles/sentinel_core.dir/legacy.cc.o"
  "CMakeFiles/sentinel_core.dir/legacy.cc.o.d"
  "CMakeFiles/sentinel_core.dir/remote_service.cc.o"
  "CMakeFiles/sentinel_core.dir/remote_service.cc.o.d"
  "CMakeFiles/sentinel_core.dir/security_service.cc.o"
  "CMakeFiles/sentinel_core.dir/security_service.cc.o.d"
  "CMakeFiles/sentinel_core.dir/sentinel_module.cc.o"
  "CMakeFiles/sentinel_core.dir/sentinel_module.cc.o.d"
  "CMakeFiles/sentinel_core.dir/vulnerability_db.cc.o"
  "CMakeFiles/sentinel_core.dir/vulnerability_db.cc.o.d"
  "libsentinel_core.a"
  "libsentinel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
