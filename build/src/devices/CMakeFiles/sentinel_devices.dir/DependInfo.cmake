
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/catalog.cc" "src/devices/CMakeFiles/sentinel_devices.dir/catalog.cc.o" "gcc" "src/devices/CMakeFiles/sentinel_devices.dir/catalog.cc.o.d"
  "/root/repo/src/devices/environment.cc" "src/devices/CMakeFiles/sentinel_devices.dir/environment.cc.o" "gcc" "src/devices/CMakeFiles/sentinel_devices.dir/environment.cc.o.d"
  "/root/repo/src/devices/profiles.cc" "src/devices/CMakeFiles/sentinel_devices.dir/profiles.cc.o" "gcc" "src/devices/CMakeFiles/sentinel_devices.dir/profiles.cc.o.d"
  "/root/repo/src/devices/script.cc" "src/devices/CMakeFiles/sentinel_devices.dir/script.cc.o" "gcc" "src/devices/CMakeFiles/sentinel_devices.dir/script.cc.o.d"
  "/root/repo/src/devices/simulator.cc" "src/devices/CMakeFiles/sentinel_devices.dir/simulator.cc.o" "gcc" "src/devices/CMakeFiles/sentinel_devices.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/sentinel_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/sentinel_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sentinel_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sentinel_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
