file(REMOVE_RECURSE
  "CMakeFiles/sentinel_devices.dir/catalog.cc.o"
  "CMakeFiles/sentinel_devices.dir/catalog.cc.o.d"
  "CMakeFiles/sentinel_devices.dir/environment.cc.o"
  "CMakeFiles/sentinel_devices.dir/environment.cc.o.d"
  "CMakeFiles/sentinel_devices.dir/profiles.cc.o"
  "CMakeFiles/sentinel_devices.dir/profiles.cc.o.d"
  "CMakeFiles/sentinel_devices.dir/script.cc.o"
  "CMakeFiles/sentinel_devices.dir/script.cc.o.d"
  "CMakeFiles/sentinel_devices.dir/simulator.cc.o"
  "CMakeFiles/sentinel_devices.dir/simulator.cc.o.d"
  "libsentinel_devices.a"
  "libsentinel_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
