file(REMOVE_RECURSE
  "libsentinel_devices.a"
)
