# Empty dependencies file for sentinel_devices.
# This may be replaced when dependencies are built.
