file(REMOVE_RECURSE
  "CMakeFiles/sentinel_eval.dir/experiment.cc.o"
  "CMakeFiles/sentinel_eval.dir/experiment.cc.o.d"
  "libsentinel_eval.a"
  "libsentinel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
