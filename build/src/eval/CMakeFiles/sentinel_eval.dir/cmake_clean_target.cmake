file(REMOVE_RECURSE
  "libsentinel_eval.a"
)
