# Empty dependencies file for sentinel_eval.
# This may be replaced when dependencies are built.
