
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/edit_distance.cc" "src/features/CMakeFiles/sentinel_features.dir/edit_distance.cc.o" "gcc" "src/features/CMakeFiles/sentinel_features.dir/edit_distance.cc.o.d"
  "/root/repo/src/features/fingerprint.cc" "src/features/CMakeFiles/sentinel_features.dir/fingerprint.cc.o" "gcc" "src/features/CMakeFiles/sentinel_features.dir/fingerprint.cc.o.d"
  "/root/repo/src/features/fingerprint_codec.cc" "src/features/CMakeFiles/sentinel_features.dir/fingerprint_codec.cc.o" "gcc" "src/features/CMakeFiles/sentinel_features.dir/fingerprint_codec.cc.o.d"
  "/root/repo/src/features/packet_features.cc" "src/features/CMakeFiles/sentinel_features.dir/packet_features.cc.o" "gcc" "src/features/CMakeFiles/sentinel_features.dir/packet_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
