file(REMOVE_RECURSE
  "CMakeFiles/sentinel_features.dir/edit_distance.cc.o"
  "CMakeFiles/sentinel_features.dir/edit_distance.cc.o.d"
  "CMakeFiles/sentinel_features.dir/fingerprint.cc.o"
  "CMakeFiles/sentinel_features.dir/fingerprint.cc.o.d"
  "CMakeFiles/sentinel_features.dir/fingerprint_codec.cc.o"
  "CMakeFiles/sentinel_features.dir/fingerprint_codec.cc.o.d"
  "CMakeFiles/sentinel_features.dir/packet_features.cc.o"
  "CMakeFiles/sentinel_features.dir/packet_features.cc.o.d"
  "libsentinel_features.a"
  "libsentinel_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
