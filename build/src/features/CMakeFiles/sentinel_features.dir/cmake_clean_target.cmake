file(REMOVE_RECURSE
  "libsentinel_features.a"
)
