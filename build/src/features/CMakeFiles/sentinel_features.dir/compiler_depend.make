# Empty compiler generated dependencies file for sentinel_features.
# This may be replaced when dependencies are built.
