
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/sentinel_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/sentinel_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/sentinel_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/sentinel_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/sentinel_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/sentinel_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/sentinel_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/sentinel_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sentinel_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
