file(REMOVE_RECURSE
  "CMakeFiles/sentinel_ml.dir/cross_validation.cc.o"
  "CMakeFiles/sentinel_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/sentinel_ml.dir/decision_tree.cc.o"
  "CMakeFiles/sentinel_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/sentinel_ml.dir/metrics.cc.o"
  "CMakeFiles/sentinel_ml.dir/metrics.cc.o.d"
  "CMakeFiles/sentinel_ml.dir/random_forest.cc.o"
  "CMakeFiles/sentinel_ml.dir/random_forest.cc.o.d"
  "libsentinel_ml.a"
  "libsentinel_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
