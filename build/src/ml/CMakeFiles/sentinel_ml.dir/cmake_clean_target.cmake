file(REMOVE_RECURSE
  "libsentinel_ml.a"
)
