# Empty compiler generated dependencies file for sentinel_ml.
# This may be replaced when dependencies are built.
