
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/net/CMakeFiles/sentinel_net.dir/address.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/address.cc.o.d"
  "/root/repo/src/net/arp.cc" "src/net/CMakeFiles/sentinel_net.dir/arp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/arp.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/sentinel_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/dhcp.cc" "src/net/CMakeFiles/sentinel_net.dir/dhcp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/dhcp.cc.o.d"
  "/root/repo/src/net/dns.cc" "src/net/CMakeFiles/sentinel_net.dir/dns.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/dns.cc.o.d"
  "/root/repo/src/net/eapol.cc" "src/net/CMakeFiles/sentinel_net.dir/eapol.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/eapol.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/net/CMakeFiles/sentinel_net.dir/ethernet.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/ethernet.cc.o.d"
  "/root/repo/src/net/frame.cc" "src/net/CMakeFiles/sentinel_net.dir/frame.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/frame.cc.o.d"
  "/root/repo/src/net/http.cc" "src/net/CMakeFiles/sentinel_net.dir/http.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/http.cc.o.d"
  "/root/repo/src/net/icmp.cc" "src/net/CMakeFiles/sentinel_net.dir/icmp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/icmp.cc.o.d"
  "/root/repo/src/net/igmp.cc" "src/net/CMakeFiles/sentinel_net.dir/igmp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/igmp.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/sentinel_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/ipv6.cc" "src/net/CMakeFiles/sentinel_net.dir/ipv6.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/ipv6.cc.o.d"
  "/root/repo/src/net/ntp.cc" "src/net/CMakeFiles/sentinel_net.dir/ntp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/ntp.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/sentinel_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/protocols.cc" "src/net/CMakeFiles/sentinel_net.dir/protocols.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/protocols.cc.o.d"
  "/root/repo/src/net/ssdp.cc" "src/net/CMakeFiles/sentinel_net.dir/ssdp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/ssdp.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/sentinel_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/net/CMakeFiles/sentinel_net.dir/udp.cc.o" "gcc" "src/net/CMakeFiles/sentinel_net.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
