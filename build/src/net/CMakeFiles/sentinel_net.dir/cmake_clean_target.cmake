file(REMOVE_RECURSE
  "libsentinel_net.a"
)
