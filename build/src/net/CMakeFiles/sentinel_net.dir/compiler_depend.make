# Empty compiler generated dependencies file for sentinel_net.
# This may be replaced when dependencies are built.
