
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/event_queue.cc" "src/netsim/CMakeFiles/sentinel_netsim.dir/event_queue.cc.o" "gcc" "src/netsim/CMakeFiles/sentinel_netsim.dir/event_queue.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/netsim/CMakeFiles/sentinel_netsim.dir/network.cc.o" "gcc" "src/netsim/CMakeFiles/sentinel_netsim.dir/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/sentinel_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/sentinel_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sentinel_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
