file(REMOVE_RECURSE
  "CMakeFiles/sentinel_netsim.dir/event_queue.cc.o"
  "CMakeFiles/sentinel_netsim.dir/event_queue.cc.o.d"
  "CMakeFiles/sentinel_netsim.dir/network.cc.o"
  "CMakeFiles/sentinel_netsim.dir/network.cc.o.d"
  "libsentinel_netsim.a"
  "libsentinel_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
