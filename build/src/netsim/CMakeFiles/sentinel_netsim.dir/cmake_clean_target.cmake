file(REMOVE_RECURSE
  "libsentinel_netsim.a"
)
