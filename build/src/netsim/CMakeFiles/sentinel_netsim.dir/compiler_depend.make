# Empty compiler generated dependencies file for sentinel_netsim.
# This may be replaced when dependencies are built.
