file(REMOVE_RECURSE
  "CMakeFiles/sentinel_obs.dir/log.cc.o"
  "CMakeFiles/sentinel_obs.dir/log.cc.o.d"
  "CMakeFiles/sentinel_obs.dir/metrics.cc.o"
  "CMakeFiles/sentinel_obs.dir/metrics.cc.o.d"
  "libsentinel_obs.a"
  "libsentinel_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
