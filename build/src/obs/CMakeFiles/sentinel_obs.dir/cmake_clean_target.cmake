file(REMOVE_RECURSE
  "libsentinel_obs.a"
)
