# Empty dependencies file for sentinel_obs.
# This may be replaced when dependencies are built.
