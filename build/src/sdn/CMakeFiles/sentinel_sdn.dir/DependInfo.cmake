
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdn/controller.cc" "src/sdn/CMakeFiles/sentinel_sdn.dir/controller.cc.o" "gcc" "src/sdn/CMakeFiles/sentinel_sdn.dir/controller.cc.o.d"
  "/root/repo/src/sdn/flow.cc" "src/sdn/CMakeFiles/sentinel_sdn.dir/flow.cc.o" "gcc" "src/sdn/CMakeFiles/sentinel_sdn.dir/flow.cc.o.d"
  "/root/repo/src/sdn/flow_table.cc" "src/sdn/CMakeFiles/sentinel_sdn.dir/flow_table.cc.o" "gcc" "src/sdn/CMakeFiles/sentinel_sdn.dir/flow_table.cc.o.d"
  "/root/repo/src/sdn/switch.cc" "src/sdn/CMakeFiles/sentinel_sdn.dir/switch.cc.o" "gcc" "src/sdn/CMakeFiles/sentinel_sdn.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sentinel_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
