file(REMOVE_RECURSE
  "CMakeFiles/sentinel_sdn.dir/controller.cc.o"
  "CMakeFiles/sentinel_sdn.dir/controller.cc.o.d"
  "CMakeFiles/sentinel_sdn.dir/flow.cc.o"
  "CMakeFiles/sentinel_sdn.dir/flow.cc.o.d"
  "CMakeFiles/sentinel_sdn.dir/flow_table.cc.o"
  "CMakeFiles/sentinel_sdn.dir/flow_table.cc.o.d"
  "CMakeFiles/sentinel_sdn.dir/switch.cc.o"
  "CMakeFiles/sentinel_sdn.dir/switch.cc.o.d"
  "libsentinel_sdn.a"
  "libsentinel_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
