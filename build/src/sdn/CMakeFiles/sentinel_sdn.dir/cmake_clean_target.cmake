file(REMOVE_RECURSE
  "libsentinel_sdn.a"
)
