# Empty dependencies file for sentinel_sdn.
# This may be replaced when dependencies are built.
