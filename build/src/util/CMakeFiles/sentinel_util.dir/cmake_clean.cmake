file(REMOVE_RECURSE
  "CMakeFiles/sentinel_util.dir/thread_pool.cc.o"
  "CMakeFiles/sentinel_util.dir/thread_pool.cc.o.d"
  "libsentinel_util.a"
  "libsentinel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
