
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/capture/test_capture.cc" "tests/CMakeFiles/capture_test.dir/capture/test_capture.cc.o" "gcc" "tests/CMakeFiles/capture_test.dir/capture/test_capture.cc.o.d"
  "/root/repo/tests/capture/test_trace_errors.cc" "tests/CMakeFiles/capture_test.dir/capture/test_trace_errors.cc.o" "gcc" "tests/CMakeFiles/capture_test.dir/capture/test_trace_errors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/sentinel_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sentinel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/sentinel_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/sentinel_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sentinel_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sentinel_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/sentinel_features.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/sentinel_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sentinel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sentinel_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
