file(REMOVE_RECURSE
  "CMakeFiles/flow_timeouts_test.dir/sdn/test_flow_timeouts.cc.o"
  "CMakeFiles/flow_timeouts_test.dir/sdn/test_flow_timeouts.cc.o.d"
  "flow_timeouts_test"
  "flow_timeouts_test.pdb"
  "flow_timeouts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_timeouts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
