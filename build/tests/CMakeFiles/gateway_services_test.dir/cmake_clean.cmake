file(REMOVE_RECURSE
  "CMakeFiles/gateway_services_test.dir/core/test_gateway_services.cc.o"
  "CMakeFiles/gateway_services_test.dir/core/test_gateway_services.cc.o.d"
  "gateway_services_test"
  "gateway_services_test.pdb"
  "gateway_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
