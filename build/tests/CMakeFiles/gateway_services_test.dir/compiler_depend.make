# Empty compiler generated dependencies file for gateway_services_test.
# This may be replaced when dependencies are built.
