file(REMOVE_RECURSE
  "CMakeFiles/legacy_test.dir/core/test_legacy.cc.o"
  "CMakeFiles/legacy_test.dir/core/test_legacy.cc.o.d"
  "legacy_test"
  "legacy_test.pdb"
  "legacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
