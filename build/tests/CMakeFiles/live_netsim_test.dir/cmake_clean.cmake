file(REMOVE_RECURSE
  "CMakeFiles/live_netsim_test.dir/core/test_live_netsim.cc.o"
  "CMakeFiles/live_netsim_test.dir/core/test_live_netsim.cc.o.d"
  "live_netsim_test"
  "live_netsim_test.pdb"
  "live_netsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_netsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
