# Empty dependencies file for live_netsim_test.
# This may be replaced when dependencies are built.
