file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/test_address.cc.o"
  "CMakeFiles/net_test.dir/net/test_address.cc.o.d"
  "CMakeFiles/net_test.dir/net/test_byte_io.cc.o"
  "CMakeFiles/net_test.dir/net/test_byte_io.cc.o.d"
  "CMakeFiles/net_test.dir/net/test_checksum.cc.o"
  "CMakeFiles/net_test.dir/net/test_checksum.cc.o.d"
  "CMakeFiles/net_test.dir/net/test_codecs.cc.o"
  "CMakeFiles/net_test.dir/net/test_codecs.cc.o.d"
  "CMakeFiles/net_test.dir/net/test_frame.cc.o"
  "CMakeFiles/net_test.dir/net/test_frame.cc.o.d"
  "CMakeFiles/net_test.dir/net/test_pcap.cc.o"
  "CMakeFiles/net_test.dir/net/test_pcap.cc.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
