file(REMOVE_RECURSE
  "CMakeFiles/pipeline_metrics_test.dir/obs/test_pipeline_metrics.cc.o"
  "CMakeFiles/pipeline_metrics_test.dir/obs/test_pipeline_metrics.cc.o.d"
  "pipeline_metrics_test"
  "pipeline_metrics_test.pdb"
  "pipeline_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
