# Empty dependencies file for pipeline_metrics_test.
# This may be replaced when dependencies are built.
