file(REMOVE_RECURSE
  "CMakeFiles/privacy_incidents_test.dir/core/test_privacy_and_incidents.cc.o"
  "CMakeFiles/privacy_incidents_test.dir/core/test_privacy_and_incidents.cc.o.d"
  "privacy_incidents_test"
  "privacy_incidents_test.pdb"
  "privacy_incidents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_incidents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
