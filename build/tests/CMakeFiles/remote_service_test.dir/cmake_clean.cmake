file(REMOVE_RECURSE
  "CMakeFiles/remote_service_test.dir/core/test_remote_service.cc.o"
  "CMakeFiles/remote_service_test.dir/core/test_remote_service.cc.o.d"
  "remote_service_test"
  "remote_service_test.pdb"
  "remote_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
