# Empty compiler generated dependencies file for remote_service_test.
# This may be replaced when dependencies are built.
