# Empty dependencies file for sdn_test.
# This may be replaced when dependencies are built.
