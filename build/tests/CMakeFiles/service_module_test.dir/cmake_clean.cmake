file(REMOVE_RECURSE
  "CMakeFiles/service_module_test.dir/core/test_service_and_module.cc.o"
  "CMakeFiles/service_module_test.dir/core/test_service_and_module.cc.o.d"
  "service_module_test"
  "service_module_test.pdb"
  "service_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
