# Empty compiler generated dependencies file for service_module_test.
# This may be replaced when dependencies are built.
