# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/capture_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/sdn_test[1]_include.cmake")
include("/root/repo/build/tests/flow_timeouts_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/vulnerability_feed_test[1]_include.cmake")
include("/root/repo/build/tests/remote_service_test[1]_include.cmake")
include("/root/repo/build/tests/legacy_test[1]_include.cmake")
include("/root/repo/build/tests/live_netsim_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_incidents_test[1]_include.cmake")
include("/root/repo/build/tests/service_module_test[1]_include.cmake")
include("/root/repo/build/tests/gateway_services_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
