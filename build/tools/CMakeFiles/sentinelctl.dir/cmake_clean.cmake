file(REMOVE_RECURSE
  "CMakeFiles/sentinelctl.dir/sentinelctl.cpp.o"
  "CMakeFiles/sentinelctl.dir/sentinelctl.cpp.o.d"
  "sentinelctl"
  "sentinelctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinelctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
