# Empty compiler generated dependencies file for sentinelctl.
# This may be replaced when dependencies are built.
