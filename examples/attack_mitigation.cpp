// Attack-mitigation scenario (the paper's adversary model, Sect. II):
// a vulnerable IP camera is compromised after being restricted. The
// attacker tries (a) lateral movement to a trusted device, (b) data
// exfiltration to an attacker-controlled server, and (c) communication
// with another untrusted-overlay device (which isolation permits by
// design). The Security Gateway's enforcement confines the damage.
#include <cstdio>

#include "core/gateway.h"
#include "devices/simulator.h"

namespace {
using namespace sentinel;

void Onboard(core::SecurityGateway& gateway,
             const devices::SimulatedEpisode& episode, sdn::PortId port) {
  gateway.AttachPort(port, [](const net::Frame&) {});
  for (const auto& frame : episode.trace.frames()) {
    const auto packet = net::ParseFrame(frame);
    gateway.Ingress(packet.src_mac == episode.device_mac
                        ? port
                        : gateway.config().wan_port,
                    frame);
  }
  gateway.sentinel().FlushIdle(episode.trace.frames().back().timestamp_ns +
                               60'000'000'000ull);
}

net::Frame TcpProbe(const devices::SimulatedEpisode& src, net::MacAddress dst,
                    net::Ipv4Address dst_ip, std::uint16_t port) {
  return net::BuildTcp4Frame(0, src.device_mac, dst, src.device_ip, dst_ip,
                             net::TcpSegment::Syn(51000, port, 1));
}
}  // namespace

int main() {
  std::printf("== IoT Sentinel attack-mitigation demo ==\n\n");
  const auto service = core::BuildTrainedSecurityService(/*n_per_type=*/20);
  core::SecurityGateway gateway(*service);
  std::uint64_t exfiltrated = 0;
  gateway.AttachWan([&](const net::Frame&) { ++exfiltrated; });
  gateway.sentinel().OnIdentification([](const core::IdentificationEvent& e) {
    std::printf("  %s identified as %s -> %s\n",
                e.device_mac.ToString().c_str(),
                e.assessment.type_identifier.c_str(),
                core::ToString(e.assessment.level).c_str());
  });

  devices::DeviceSimulator home(/*seed=*/99);
  std::printf("onboarding devices...\n");
  const auto camera =
      home.RunSetupEpisode(devices::FindDeviceType("EdnetCam"));  // vulnerable
  Onboard(gateway, camera, 10);
  const auto scale =
      home.RunSetupEpisode(devices::FindDeviceType("Withings"));  // trusted
  Onboard(gateway, scale, 11);
  const auto plug = home.RunSetupEpisode(
      devices::FindDeviceType("EdimaxPlug1101W"));  // also restricted
  Onboard(gateway, plug, 12);

  std::printf("\n-- the camera is compromised; the attacker probes --\n");
  const auto* camera_rule = gateway.enforcement().Find(camera.device_mac);
  std::printf("camera enforcement rule:\n%s\n\n",
              camera_rule ? camera_rule->ToString().c_str() : "(none)");

  // (a) Lateral movement towards the trusted scale (telnet + HTTP).
  bool delivered =
      gateway.Ingress(10, TcpProbe(camera, scale.device_mac,
                                   scale.device_ip, 23)) &&
      gateway.Ingress(10, TcpProbe(camera, scale.device_mac,
                                   scale.device_ip, 80));
  std::printf("(a) lateral movement to trusted scale: %s\n",
              delivered ? "!! FORWARDED" : "blocked (cross-overlay)");

  // (b) Exfiltration to an attacker server on the open Internet.
  exfiltrated = 0;
  gateway.Ingress(10, TcpProbe(camera, gateway.config().gateway_mac,
                               net::Ipv4Address(198, 51, 100, 7), 443));
  std::printf("(b) exfiltration to attacker server: %s\n",
              exfiltrated > 0 ? "!! FORWARDED"
                              : "blocked (endpoint not allowlisted)");

  // (c) The camera can still reach its own cloud (functionality preserved).
  exfiltrated = 0;
  if (camera_rule != nullptr && !camera_rule->allowed_endpoints.empty()) {
    gateway.Ingress(10, TcpProbe(camera, gateway.config().gateway_mac,
                                 camera_rule->allowed_endpoints.front(), 443));
  }
  std::printf("(c) camera to its vendor cloud:      %s\n",
              exfiltrated > 0 ? "forwarded (allowlisted, functionality kept)"
                              : "blocked");

  // (d) Untrusted-overlay neighbours may still talk (Fig. 3 semantics).
  delivered = gateway.Ingress(
      10, TcpProbe(camera, plug.device_mac, plug.device_ip, 80));
  std::printf("(d) camera to restricted plug:       %s\n",
              delivered ? "forwarded (same untrusted overlay)" : "blocked");

  std::printf("\ndrop rules installed by the Sentinel module: %llu\n",
              static_cast<unsigned long long>(
                  gateway.sentinel().drops_installed()));
  return 0;
}
