// Legacy-retrofit scenario (paper Sect. VIII-A): a household's router gets
// a Security Gateway firmware update. The devices are already installed —
// no setup bursts to observe — so identification runs on a standby-traffic
// capture and the network is split into trusted/untrusted overlays:
//   - clean devices supporting WPS re-keying migrate to the trusted overlay,
//   - clean devices without WPS stay untrusted pending manual re-introduction,
//   - vulnerable devices are restricted to their vendor clouds,
//   - anything unidentifiable is strictly isolated.
#include <cstdio>

#include "core/legacy.h"
#include "devices/simulator.h"

int main() {
  using namespace sentinel;

  std::printf("== IoT Sentinel legacy-retrofit demo ==\n\n");
  std::printf(
      "training IoT Security Service on STANDBY traffic profiles "
      "(legacy mode)...\n");
  const auto service = core::BuildTrainedSecurityService(
      /*n_per_type=*/20, /*seed=*/42, core::IdentifierConfig{},
      core::TrainingTrafficMode::kStandby);

  // Overnight standby capture of the existing network: six devices that
  // were installed long before the gateway update.
  const char* installed[] = {"Lightify",        "WeMoSwitch", "Withings",
                             "EdimaxPlug1101W", "EdnetCam",   "HueBridge"};
  std::printf("capturing standby traffic of %zu installed devices...\n",
              std::size(installed));
  devices::DeviceSimulator home(/*seed=*/314);
  capture::Trace overnight;
  std::vector<std::pair<std::string, net::MacAddress>> truth;
  for (const char* name : installed) {
    const auto episode =
        home.RunStandbyEpisode(devices::FindDeviceType(name));
    truth.emplace_back(name, episode.device_mac);
    overnight.Append(episode.trace);
  }
  overnight.SortByTime();
  std::printf("%zu frames captured\n\n", overnight.size());

  core::EnforcementEngine engine(
      *net::MacAddress::Parse("02:00:5e:00:00:01"),
      net::Ipv4Address(192, 168, 1, 1));
  const auto reports = core::MigrateLegacyNetwork(overnight, *service, engine);

  std::printf("== migration plan ==\n");
  for (const auto& report : reports) {
    std::string actual = "?";
    for (const auto& [name, mac] : truth)
      if (mac == report.mac) actual = name;
    std::printf("%s (actually %s)\n", report.mac.ToString().c_str(),
                actual.c_str());
    std::printf("  identified as: %s\n",
                report.type ? report.type_identifier.c_str() : "<unknown>");
    std::printf("  isolation level: %s\n",
                core::ToString(report.level).c_str());
    if (report.migrated_to_trusted)
      std::printf("  -> WPS re-keyed into the trusted overlay\n");
    if (report.needs_manual_reintroduction)
      std::printf("  -> clean but no WPS support: re-introduce manually to "
                  "join the trusted overlay\n");
    if (report.requires_user_notification)
      std::printf("  -> !! uncontrollable side channel on a vulnerable "
                  "device: remove it from the network\n");
  }
  std::printf("\nenforcement rules installed: %zu\n", engine.rule_count());
  return 0;
}
