// pcap interoperability tool: record a simulated setup capture to a
// standard pcap file (openable in Wireshark/tcpdump), read it back, and
// identify the device purely from the file — the offline path a Security
// Gateway uses when shipping captures to the IoT Security Service.
//
// Usage:
//   pcap_roundtrip                     # simulate, write, read, identify
//   pcap_roundtrip <file.pcap>         # identify an existing capture
//   pcap_roundtrip <file.pcap> <type>  # record <type>'s setup to the file
#include <cstdio>
#include <string>

#include "capture/setup_phase.h"
#include "capture/trace.h"
#include "core/security_service.h"
#include "devices/simulator.h"
#include "net/pcap.h"

namespace {
using namespace sentinel;

int IdentifyFromPcap(const std::string& path,
                     core::SecurityService& service) {
  std::printf("reading %s...\n", path.c_str());
  capture::Trace trace(net::ReadPcapFile(path));
  trace.SortByTime();
  const auto packets = trace.Parse();
  std::printf("%zu frames, %zu parsed packets\n", trace.size(),
              packets.size());

  // Split per device and identify each non-infrastructure source.
  const auto by_mac = capture::SplitBySourceMac(packets);
  for (const auto& [mac, device_packets] : by_mac) {
    if (device_packets.size() < 4) continue;  // responders, noise
    const auto end = capture::DetectSetupPhaseEnd(device_packets);
    const std::vector<net::ParsedPacket> setup(device_packets.begin(),
                                               device_packets.begin() +
                                                   static_cast<long>(end));
    const auto fingerprint = features::Fingerprint::FromPackets(setup);
    const auto fixed = features::FixedFingerprint::FromFingerprint(fingerprint);
    const auto assessment = service.Assess(fingerprint, fixed);
    std::printf("  %s: %zu setup packets -> %s (isolation: %s)\n",
                mac.ToString().c_str(), end,
                assessment.type ? assessment.type_identifier.c_str()
                                : "<unknown type>",
                core::ToString(assessment.level).c_str());
  }
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace sentinel;
  std::printf("training IoT Security Service...\n");
  const auto service = core::BuildTrainedSecurityService(/*n_per_type=*/20);

  std::string path = argc > 1 ? argv[1] : "sentinel_demo.pcap";
  if (argc <= 1 || argc > 2) {
    const std::string type_name = argc > 2 ? argv[2] : "Lightify";
    const auto type = devices::FindDeviceType(type_name);
    if (type < 0) {
      std::fprintf(stderr, "unknown device type '%s'\n", type_name.c_str());
      std::fprintf(stderr, "known types:\n");
      for (const auto& info : devices::DeviceCatalog())
        std::fprintf(stderr, "  %s\n", info.identifier.c_str());
      return 1;
    }
    std::printf("simulating a %s setup episode...\n", type_name.c_str());
    devices::DeviceSimulator simulator(/*seed=*/12345);
    const auto episode = simulator.RunSetupEpisode(type);
    net::WritePcapFile(path, episode.trace.frames());
    std::printf("wrote %zu frames to %s (classic pcap, Ethernet)\n",
                episode.trace.size(), path.c_str());
  }
  return IdentifyFromPcap(path, *service);
}
