// Quickstart: the IoT Sentinel pipeline in ~40 lines.
//
//   1. Train the IoT Security Service on the device-type catalog.
//   2. Simulate the setup episode of a new device joining the network.
//   3. Fingerprint its traffic (F and F') and ask the service who it is.
//   4. Print the assessment and the resulting enforcement rule (Fig. 2).
#include <cstdio>

#include "core/isolation.h"
#include "core/security_service.h"
#include "devices/simulator.h"

int main() {
  using namespace sentinel;

  // 1. The IoTSSP: per-type classifiers trained on 20 lab episodes per
  // catalog type, plus the CVE-style vulnerability database.
  std::printf("training IoT Security Service on %zu device types...\n",
              devices::DeviceTypeCount());
  const auto service = core::BuildTrainedSecurityService(/*n_per_type=*/20);

  // 2. A brand-new Edimax smart plug is switched on in the home.
  devices::DeviceSimulator home(/*seed=*/2026);
  const auto episode =
      home.RunSetupEpisode(devices::FindDeviceType("EdimaxPlug1101W"));
  std::printf("\nnew device %s sent %zu frames during setup\n",
              episode.device_mac.ToString().c_str(), episode.trace.size());

  // 3. Fingerprint the device-originated packets.
  const auto fingerprint = devices::DeviceSimulator::ExtractFingerprint(episode);
  const auto fixed = features::FixedFingerprint::FromFingerprint(fingerprint);
  std::printf("fingerprint: %zu unique packets (F), %zu-dimensional F'\n",
              fingerprint.size(), fixed.ToVector().size());

  // 4. Identification + vulnerability assessment.
  const auto assessment = service->Assess(fingerprint, fixed);
  if (assessment.type) {
    std::printf("\nidentified as: %s\n", assessment.type_identifier.c_str());
    for (const auto& advisory : assessment.advisories)
      std::printf("  advisory %s (CVSS %.1f): %s\n", advisory.cve_id.c_str(),
                  advisory.cvss_score, advisory.summary.c_str());
  } else {
    std::printf("\nunknown device-type (no classifier accepted it)\n");
  }

  core::EnforcementRule rule;
  rule.device_mac = episode.device_mac;
  rule.level = assessment.level;
  rule.device_type = assessment.type_identifier;
  rule.allowed_endpoints = assessment.allowed_endpoints;
  rule.allowed_endpoint_names = assessment.allowed_endpoint_names;
  std::printf("\nenforcement rule (cf. paper Fig. 2):\n%s\n",
              rule.ToString().c_str());
  return 0;
}
