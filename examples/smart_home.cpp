// Smart-home onboarding scenario: a Security Gateway watches a family
// install a mixed fleet of IoT devices. Each device is fingerprinted live
// from its setup traffic, identified by the IoT Security Service, assessed
// against the vulnerability database and confined to its isolation level —
// the paper's end-to-end workflow (Fig. 1 + Fig. 3).
#include <cstdio>
#include <map>

#include "core/gateway.h"
#include "devices/simulator.h"

int main() {
  using namespace sentinel;

  std::printf("== IoT Sentinel smart-home demo ==\n\n");
  std::printf("training IoT Security Service (one classifier per type)...\n");
  const auto service = core::BuildTrainedSecurityService(/*n_per_type=*/20);

  core::SecurityGateway gateway(*service);
  std::uint64_t wan_frames = 0;
  gateway.AttachWan([&](const net::Frame&) { ++wan_frames; });

  std::map<std::string, core::IsolationLevel> verdicts;
  gateway.sentinel().OnIdentification([&](const core::IdentificationEvent& e) {
    const std::string name = e.assessment.type
                                 ? e.assessment.type_identifier
                                 : std::string("<unknown>");
    verdicts[e.device_mac.ToString()] = e.assessment.level;
    std::printf("  identified %s as %-18s -> isolation level %s\n",
                e.device_mac.ToString().c_str(), name.c_str(),
                core::ToString(e.assessment.level).c_str());
    for (const auto& advisory : e.assessment.advisories)
      std::printf("      %s: %s\n", advisory.cve_id.c_str(),
                  advisory.summary.c_str());
  });

  // The family installs seven devices over the afternoon.
  const char* shopping_list[] = {
      "HueBridge",        "WeMoSwitch",   "EdimaxCam", "Aria",
      "TP-LinkPlugHS110", "SmarterCoffee", "D-LinkSensor"};
  devices::DeviceSimulator home(/*seed=*/77);
  sdn::PortId next_port = 10;

  for (const char* name : shopping_list) {
    std::printf("\nplugging in %s...\n", name);
    const auto episode = home.RunSetupEpisode(devices::FindDeviceType(name));
    const sdn::PortId port = next_port++;
    gateway.AttachPort(port, [](const net::Frame&) {});
    for (const auto& frame : episode.trace.frames()) {
      const auto packet = net::ParseFrame(frame);
      gateway.Ingress(packet.src_mac == episode.device_mac
                          ? port
                          : gateway.config().wan_port,
                      frame);
    }
    gateway.sentinel().FlushIdle(episode.trace.frames().back().timestamp_ns +
                                 60'000'000'000ull);
  }

  // A guest's smartphone joins too: not an IoT type -> unknown -> strict.
  std::printf("\na guest smartphone joins the WiFi...\n");
  const auto guest = home.RunBackgroundEpisode(
      devices::BackgroundDeviceKind::kSmartphone);
  const sdn::PortId guest_port = next_port++;
  gateway.AttachPort(guest_port, [](const net::Frame&) {});
  for (const auto& frame : guest.trace.frames()) {
    const auto packet = net::ParseFrame(frame);
    gateway.Ingress(packet.src_mac == guest.device_mac
                        ? guest_port
                        : gateway.config().wan_port,
                    frame);
  }
  gateway.sentinel().FlushIdle(guest.trace.frames().back().timestamp_ns +
                               60'000'000'000ull);

  std::printf("\n== fleet summary ==\n");
  std::size_t trusted = 0, restricted = 0, strict = 0;
  for (const auto& [mac, level] : verdicts) {
    switch (level) {
      case core::IsolationLevel::kTrusted:
        ++trusted;
        break;
      case core::IsolationLevel::kRestricted:
        ++restricted;
        break;
      case core::IsolationLevel::kStrict:
        ++strict;
        break;
    }
  }
  std::printf("devices identified: %zu (trusted %zu, restricted %zu, "
              "strict %zu)\n",
              verdicts.size(), trusted, restricted, strict);
  std::printf("enforcement rules cached: %zu\n",
              gateway.enforcement().rule_count());
  std::printf("flow rules in the datapath: %zu\n",
              gateway.datapath().flow_table().size());
  std::printf("frames forwarded to the Internet during setup: %llu\n",
              static_cast<unsigned long long>(wan_frames));
  std::printf("gateway memory attributable to Sentinel: %.1f KiB\n",
              static_cast<double>(gateway.MemoryBytes()) / 1024.0);
  return 0;
}
