// Seed-corpus generator. Emits one directory per harness under the output
// root (default: the current directory):
//
//   corpus_gen [out_root]
//     -> <out_root>/pcap/*            seeds for fuzz_pcap
//     -> <out_root>/packet_features/* seeds for fuzz_packet_features
//     -> <out_root>/fingerprint_codec/* seeds for fuzz_fingerprint_codec
//     -> <out_root>/vulnerability_db/* seeds for fuzz_vulnerability_db
//
// The seeds are checked in under fuzz/corpus/ so fuzz runs start from
// structurally valid inputs (plus a few near-valid negatives); regenerate
// with this tool if the wire formats change.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "capture/trace.h"
#include "core/vulnerability_db.h"
#include "features/fingerprint.h"
#include "features/fingerprint_codec.h"
#include "net/byte_io.h"
#include "net/frame.h"
#include "net/pcap.h"

namespace {

namespace fs = std::filesystem;
using namespace sentinel;  // NOLINT: small generator tool

void WriteSeed(const fs::path& dir, const std::string& name,
               std::span<const std::uint8_t> bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s/%s (%zu bytes)\n", dir.string().c_str(), name.c_str(),
              bytes.size());
}

void WriteSeed(const fs::path& dir, const std::string& name,
               std::string_view text) {
  WriteSeed(dir, name,
            std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
}

/// A short, protocol-diverse setup-phase capture: ARP probe, DHCP-port UDP,
/// HTTP-port TCP, and a duplicate — the shapes the extractor cares about.
std::vector<net::Frame> SetupPhaseFrames() {
  const net::MacAddress dev({0x02, 0x00, 0x00, 0x00, 0x00, 0x01});
  const net::MacAddress gw({0x02, 0x00, 0x00, 0x00, 0x00, 0xfe});
  const net::Ipv4Address dev_ip(10, 0, 0, 2);
  const net::Ipv4Address gw_ip(10, 0, 0, 1);

  std::vector<net::Frame> frames;
  frames.push_back(net::BuildArpFrame(1000, dev, net::MacAddress::Broadcast(),
                                      net::ArpPacket::Probe(dev, dev_ip)));

  net::UdpDatagram dhcp;
  dhcp.src_port = 68;
  dhcp.dst_port = 67;
  dhcp.payload.assign(64, 0x00);
  frames.push_back(net::BuildUdp4Frame(2000, dev, net::MacAddress::Broadcast(),
                                       net::Ipv4Address::Any(),
                                       net::Ipv4Address::Broadcast(), dhcp));

  net::TcpSegment http;
  http.src_port = 50000;
  http.dst_port = 80;
  http.flags = net::TcpFlags::kPsh | net::TcpFlags::kAck;
  http.payload.assign(32, 'x');
  frames.push_back(net::BuildTcp4Frame(3000, dev, gw, dev_ip, gw_ip, http));

  frames.push_back(net::BuildTcp4Frame(4000, dev, gw, dev_ip, gw_ip, http));
  return frames;
}

void EmitPcapSeeds(const fs::path& dir) {
  WriteSeed(dir, "empty_capture.pcap", net::EncodePcap({}));
  const auto capture = net::EncodePcap(SetupPhaseFrames());
  WriteSeed(dir, "setup_phase.pcap", capture);
  WriteSeed(dir, "truncated_record.pcap",
            std::span<const std::uint8_t>(capture).first(30));
  WriteSeed(dir, "bad_magic.bin", std::string_view("not a capture file"));
}

void EmitPacketFeatureSeeds(const fs::path& dir) {
  // The harness's input format: up to 8 frames, each a u16 big-endian
  // length prefix followed by that many frame-image bytes.
  net::ByteWriter w;
  for (const auto& frame : SetupPhaseFrames()) {
    w.WriteU16(static_cast<std::uint16_t>(frame.bytes.size()));
    w.WriteBytes(frame.bytes);
  }
  WriteSeed(dir, "setup_phase.frames", w.bytes());

  net::ByteWriter runt;
  runt.WriteU16(5);
  runt.WriteString("short");
  WriteSeed(dir, "runt_frame.frames", runt.bytes());
}

void EmitFingerprintSeeds(const fs::path& dir) {
  std::vector<net::ParsedPacket> packets;
  for (const auto& frame : SetupPhaseFrames())
    packets.push_back(net::ParseFrame(frame));
  const auto fingerprint = features::Fingerprint::FromPackets(packets);

  WriteSeed(dir, "fingerprint.bin",
            features::SerializeFingerprint(fingerprint));
  WriteSeed(dir, "empty_fingerprint.bin",
            features::SerializeFingerprint(features::Fingerprint()));

  net::ByteWriter w;
  features::EncodeFixedFingerprint(
      w, features::FixedFingerprint::FromFingerprint(fingerprint));
  WriteSeed(dir, "fixed_fingerprint.bin", w.bytes());
}

void EmitFeedSeeds(const fs::path& dir) {
  WriteSeed(dir, "catalog.feed",
            core::VulnerabilityDb::SeedFromCatalog().DumpFeed());
  WriteSeed(dir, "handwritten.feed",
            std::string_view("# operator-maintained advisories\n"
                             "CVE-2016-10401|D-LinkCam|8.1|hard-coded "
                             "credentials in setup | config service\n"
                             "\n"
                             "CVE-2017-0144|EdimaxPlug|9.3|remote code "
                             "execution\n"));
  WriteSeed(dir, "bad_score.feed",
            std::string_view("CVE-2020-1|HueSwitch|eleven|score not "
                             "numeric\n"));
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  std::printf("writing seed corpora under %s\n", root.string().c_str());
  EmitPcapSeeds(root / "pcap");
  EmitPacketFeatureSeeds(root / "packet_features");
  EmitFingerprintSeeds(root / "fingerprint_codec");
  EmitFeedSeeds(root / "vulnerability_db");
  return 0;
}
