// Fuzz target: the fingerprint wire codec (features/fingerprint_codec.cc)
// — fingerprints cross the gateway/security-service boundary, so the
// decoder must survive arbitrary bytes.
//
// Properties enforced:
//   - ParseFingerprint / DecodeFixedFingerprint either throw
//     net::CodecError or produce structurally valid objects.
//   - Decoded F round-trips: serialize(parse(x)) re-parses to an equal
//     fingerprint.
//   - Decoded F' always respects the 12-packet / 276-value bounds.
#include <cstddef>
#include <cstdint>
#include <span>

#include "features/fingerprint.h"
#include "features/fingerprint_codec.h"
#include "net/byte_io.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace feat = sentinel::features;
  const std::span<const std::uint8_t> input(data, size);

  // Variable-length fingerprint F.
  try {
    const feat::Fingerprint fingerprint = feat::ParseFingerprint(input);
    const auto bytes = feat::SerializeFingerprint(fingerprint);
    const feat::Fingerprint again = feat::ParseFingerprint(bytes);
    SENTINEL_CHECK(again == fingerprint)
        << "fingerprint round trip not a fixed point (size "
        << fingerprint.size() << ")";
  } catch (const sentinel::net::CodecError&) {
    // Typed rejection is the expected failure mode for hostile bytes.
  }

  // Fixed-length fingerprint F'.
  try {
    sentinel::net::ByteReader r(input);
    const feat::FixedFingerprint fixed = feat::DecodeFixedFingerprint(r);
    SENTINEL_CHECK(fixed.packet_count() <= feat::kFPrimePackets)
        << "decoded F' claims " << fixed.packet_count() << " packets";
    sentinel::net::ByteWriter w;
    feat::EncodeFixedFingerprint(w, fixed);
    sentinel::net::ByteReader r2(w.bytes());
    const feat::FixedFingerprint again = feat::DecodeFixedFingerprint(r2);
    SENTINEL_CHECK(again == fixed) << "F' round trip not a fixed point";
  } catch (const sentinel::net::CodecError&) {
  }
  return 0;
}
