// Fuzz target: frame parsing + the 23-feature extractor
// (features/packet_features.cc) — the path every hostile setup-phase frame
// takes before classification.
//
// Properties enforced:
//   - ParseFrame either throws net::CodecError or yields a packet the
//     extractor can consume; no other escape.
//   - Every extracted vector is exactly kFeatureCount wide (type-level) and
//     its binary features are in {0, 1}.
//   - Fingerprint construction (duplicate removal) and F' derivation
//     (12-packet cap, zero padding) hold on adversarial packet streams.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "features/fingerprint.h"
#include "features/packet_features.h"
#include "net/byte_io.h"
#include "net/frame.h"
#include "util/check.h"

namespace {

using sentinel::features::FeatureExtractor;
using sentinel::features::Fingerprint;
using sentinel::features::FixedFingerprint;
using sentinel::features::kFeatureCount;
using sentinel::features::kFPrimePackets;

void CheckBinaryFeatures(
    const sentinel::features::PacketFeatureVector& features) {
  // Indices 0..17 and 19 are binary per Table I (18 = packet_size,
  // 20..22 = counters/classes).
  for (std::size_t i = 0; i < 18; ++i) {
    SENTINEL_CHECK(features[i] <= 1)
        << "binary feature " << i << " = " << features[i];
  }
  SENTINEL_CHECK(features[19] <= 1)
      << "raw_data flag = " << features[19];
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Interpret the input as up to 8 frames: 2-byte length prefix, then that
  // many bytes of frame image — lets the fuzzer explore multi-packet
  // streams (the destination-IP counter is stateful across packets).
  sentinel::net::ByteReader r({data, size});
  std::vector<sentinel::net::ParsedPacket> packets;
  FeatureExtractor extractor;
  for (int frame_no = 0; frame_no < 8 && r.remaining() >= 2; ++frame_no) {
    const std::uint16_t len = r.ReadU16();
    const std::size_t take = std::min<std::size_t>(len, r.remaining());
    const auto bytes = r.ReadBytes(take);
    sentinel::net::Frame frame;
    frame.timestamp_ns = static_cast<std::uint64_t>(frame_no) * 1000;
    frame.bytes.assign(bytes.begin(), bytes.end());
    try {
      packets.push_back(sentinel::net::ParseFrame(frame));
    } catch (const sentinel::net::CodecError&) {
      continue;  // malformed frame: the monitor drops it
    }
    CheckBinaryFeatures(extractor.Extract(packets.back()));
  }
  if (packets.empty()) return 0;

  const auto fingerprint = Fingerprint::FromPackets(packets);
  SENTINEL_CHECK(fingerprint.size() <= packets.size())
      << "duplicate removal grew the fingerprint";
  const auto fixed = FixedFingerprint::FromFingerprint(fingerprint);
  SENTINEL_CHECK(fixed.packet_count() <= kFPrimePackets)
      << "F' packet count " << fixed.packet_count();
  // Zero padding beyond the encoded packets.
  const auto& values = fixed.values();
  for (std::size_t i = fixed.packet_count() * kFeatureCount;
       i < values.size(); ++i) {
    SENTINEL_CHECK(values[i] == 0.0) << "F' padding not zero at " << i;
  }
  return 0;
}
