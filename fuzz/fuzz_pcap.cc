// Fuzz target: the pcap/trace reader (capture/trace.cc) — the first byte
// parser hostile setup-phase traffic hits when captures are loaded from
// disk or a remote transport.
//
// Properties enforced (beyond "no crash / no sanitizer finding"):
//   - FromPcap is all-or-nothing: failure implies a filled TraceError.
//   - A successfully parsed capture re-encodes and re-parses to the same
//     frame count (codec round trip is stable).
//   - Trace::Parse never throws: malformed frames inside a well-formed
//     capture are skipped, not fatal.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>

#include "capture/trace.h"
#include "net/pcap.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  sentinel::capture::TraceError error;
  error.detail = "unset";
  const auto trace = sentinel::capture::Trace::FromPcap(input, &error);
  if (!trace.has_value()) {
    SENTINEL_CHECK(error.detail != "unset")
        << "FromPcap failed without filling the typed error";
    return 0;
  }
  // Round trip: re-encode and re-parse; the frame count must be stable.
  const auto encoded = sentinel::net::EncodePcap(trace->frames());
  const auto again = sentinel::capture::Trace::FromPcap(encoded);
  SENTINEL_CHECK(again.has_value()) << "re-encoded capture failed to parse";
  SENTINEL_CHECK(again->size() == trace->size())
      << "round trip changed frame count: " << trace->size() << " -> "
      << again->size();
  // Frame parsing over hostile frame bytes must never throw out of Parse.
  const auto packets = trace->Parse();
  SENTINEL_CHECK(packets.size() <= trace->size())
      << "Parse produced more packets than frames";
  return 0;
}
