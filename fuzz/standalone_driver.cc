// Standalone driver for the fuzz harnesses, used when the toolchain has no
// libFuzzer (-fsanitize=fuzzer is Clang-only). It replays every corpus
// file and then runs a deterministic mutation loop seeded from the corpus,
// so `ctest`-style smoke runs and gcc+ASan/UBSan environments still
// exercise the harnesses:
//
//   fuzz_pcap corpus/pcap                 # replay a corpus directory
//   fuzz_pcap --iters 10000 corpus/pcap   # replay + 10k mutated inputs
//
// With Clang the same harness sources link against libFuzzer instead and
// this file is not compiled in.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// Deterministic xorshift64* — the driver must behave identically across
// runs so CI failures reproduce locally.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
};

std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& seed,
                                 Rng& rng) {
  std::vector<std::uint8_t> out = seed;
  const std::uint64_t ops = 1 + rng.Next() % 8;
  for (std::uint64_t op = 0; op < ops; ++op) {
    switch (rng.Next() % 5) {
      case 0:  // flip a byte
        if (!out.empty()) out[rng.Next() % out.size()] ^=
            static_cast<std::uint8_t>(rng.Next());
        break;
      case 1:  // truncate
        if (!out.empty()) out.resize(rng.Next() % out.size());
        break;
      case 2: {  // insert a random byte
        const std::size_t at = out.empty() ? 0 : rng.Next() % out.size();
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   static_cast<std::uint8_t>(rng.Next()));
        break;
      }
      case 3: {  // overwrite a run with one value
        if (out.empty()) break;
        const std::size_t at = rng.Next() % out.size();
        const std::size_t len =
            std::min<std::size_t>(out.size() - at, 1 + rng.Next() % 16);
        std::memset(out.data() + at, static_cast<int>(rng.Next() & 0xff),
                    len);
        break;
      }
      case 4: {  // duplicate a chunk to the end
        if (out.empty() || out.size() > (1u << 20)) break;
        const std::size_t at = rng.Next() % out.size();
        const std::size_t len =
            std::min<std::size_t>(out.size() - at, 1 + rng.Next() % 64);
        out.insert(out.end(), out.begin() + static_cast<std::ptrdiff_t>(at),
                   out.begin() + static_cast<std::ptrdiff_t>(at + len));
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 0;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    // Ignore libFuzzer-style -flags so invocations stay interchangeable.
    if (argv[i][0] == '-') continue;
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p))
        if (entry.is_regular_file()) inputs.push_back(entry.path());
    } else {
      inputs.push_back(p);
    }
  }
  std::sort(inputs.begin(), inputs.end());  // deterministic replay order

  std::vector<std::vector<std::uint8_t>> seeds;
  for (const auto& path : inputs) {
    seeds.push_back(ReadFile(path));
    LLVMFuzzerTestOneInput(seeds.back().data(), seeds.back().size());
  }
  std::fprintf(stderr, "replayed %zu corpus inputs\n", seeds.size());

  if (iterations > 0) {
    if (seeds.empty()) seeds.push_back({});  // mutate from scratch
    Rng rng(0xdecafbad);
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const auto input = Mutate(seeds[i % seeds.size()], rng);
      LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::fprintf(stderr, "ran %llu mutated iterations\n",
                 static_cast<unsigned long long>(iterations));
  }
  return 0;
}
