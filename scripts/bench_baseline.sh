#!/usr/bin/env bash
# Regenerates the committed identification-throughput baseline: builds the
# throughput_identify bench in Release and writes BENCH_identify.json at
# the repository root.
#   scripts/bench_baseline.sh [--quick]
# --quick (the CI smoke mode) shrinks bank sizes and repetitions.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
for arg in "$@"; do
  if [[ "$arg" == "--quick" ]]; then QUICK="--quick"; fi
done

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target throughput_identify
./build-bench/bench/throughput_identify ${QUICK} --json BENCH_identify.json
