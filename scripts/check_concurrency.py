#!/usr/bin/env python3
"""Lock-discipline and atomic-ordering lint (DESIGN.md "Concurrency contracts").

Enforces, over src/, tools/, bench/ and examples/:

  1. No naked standard locking primitives. std::mutex, std::shared_mutex,
     std::recursive_mutex, std::timed_mutex, std::condition_variable(_any),
     std::lock_guard, std::unique_lock, std::shared_lock and
     std::scoped_lock may appear only inside the capability-annotated
     wrapper layer (src/util/mutex.h). Everything else must use
     sentinel::Mutex / SharedMutex / MutexLock / WriterLock / ReaderLock /
     CondVar so clang's -Wthread-safety can see every acquisition.

  2. Every std::atomic member/variable declaration carries a `// ordering:`
     justification comment on the declaration line or within the preceding
     comment block, so the chosen memory order is an explained decision,
     not a default.

  3. Every atomic operation spells its memory_order explicitly:
     .load() / .store(v) / fetch_add(v) / exchange(v) / compare_exchange(…)
     without a memory_order argument are rejected (seq_cst-by-omission),
     as are the operator shorthands (++ / -- / += / -= / = ) on atomics.

Exit status 0 when clean, 1 with file:line diagnostics otherwise.

Usage:
  check_concurrency.py [--root DIR] [paths...]   # lint (default: the tree)
  check_concurrency.py --self-test               # prove the lint catches
                                                 # the seeded violations in
                                                 # scripts/testdata/
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src", "tools", "bench", "examples")
EXTENSIONS = {".h", ".hpp", ".cc", ".cpp"}

# The wrapper layer itself is the one place the std primitives may live.
PRIMITIVE_ALLOWLIST = {"src/util/mutex.h"}

NAKED_PRIMITIVE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|recursive_timed_mutex|"
    r"timed_mutex|shared_timed_mutex|condition_variable|condition_variable_any|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)

ATOMIC_DECL = re.compile(r"\bstd::atomic\s*<")
# A declaration, not a type mention: ends in an identifier + initializer or
# semicolon, or is the element type of an owned array. Parameter lists and
# local references to atomics (`std::atomic<T>* row = ...`) are use sites,
# not declarations needing their own justification.
ATOMIC_DECL_EXCLUDE = re.compile(
    r"make_unique|static_cast|using\s|typedef\s|template\s*<|[*&]\s*\w+\s*="
    r"|std::atomic\s*<[^<>]*>\s*[&*]"  # reference/pointer params and locals
)
ORDERING_COMMENT = re.compile(r"//.*\bordering:")

ATOMIC_OP = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)

LINE_COMMENT = re.compile(r"//.*$")
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_code_noise(line: str) -> str:
    """Drops string literals and // comments so matches hit real code."""
    return LINE_COMMENT.sub("", STRING_LIT.sub('""', line))


def balanced_call(lines: list[str], start: int, open_pos: int,
                  max_span: int = 8) -> str:
    """Joins lines from the '(' at (start, open_pos) until its match."""
    depth = 0
    collected: list[str] = []
    for offset in range(max_span):
        if start + offset >= len(lines):
            break
        text = strip_code_noise(lines[start + offset])
        begin = open_pos if offset == 0 else 0
        for i in range(begin, len(text)):
            ch = text[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    collected.append(text[begin:i + 1])
                    return "\n".join(collected)
        collected.append(text[begin:])
    return "\n".join(collected)  # unbalanced: caller judges what it has


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    problems: list[str] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [f"{rel}: unreadable: {err}"]

    for idx, raw in enumerate(lines):
        code = strip_code_noise(raw)
        lineno = idx + 1

        if rel not in PRIMITIVE_ALLOWLIST:
            match = NAKED_PRIMITIVE.search(code)
            if match:
                problems.append(
                    f"{rel}:{lineno}: naked std::{match.group(1)} — use the "
                    "sentinel::Mutex wrapper layer (src/util/mutex.h)")

        if ATOMIC_DECL.search(code) and not ATOMIC_DECL_EXCLUDE.search(code):
            # Accept the justification on the declaration line or in the
            # comment block directly above. The walk-up also skips earlier
            # atomic declarations so one `ordering: … (both)/(all N)` block
            # can justify a group of adjacent members.
            justified = ORDERING_COMMENT.search(raw) is not None
            back = idx - 1
            while not justified and back >= 0:
                above = lines[back].strip()
                if ORDERING_COMMENT.search(above):
                    justified = True
                elif above.startswith(("//", "/*", "*", "#if", "#endif")) or \
                        ATOMIC_DECL.search(strip_code_noise(above)):
                    back -= 1
                else:
                    break
            if not justified:
                problems.append(
                    f"{rel}:{lineno}: std::atomic declaration without a "
                    "`// ordering:` justification comment")

        for match in ATOMIC_OP.finditer(code):
            call = balanced_call(lines, idx, match.end() - 1)
            if "memory_order" not in call:
                problems.append(
                    f"{rel}:{lineno}: atomic .{match.group(1)}() without an "
                    "explicit std::memory_order argument")

    return problems


def collect_files(root: pathlib.Path,
                  paths: list[str]) -> list[tuple[pathlib.Path, str]]:
    targets: list[tuple[pathlib.Path, str]] = []
    bases = [root / d for d in SCAN_DIRS] if not paths else \
        [pathlib.Path(p) if pathlib.Path(p).is_absolute() else root / p
         for p in paths]
    for base in bases:
        if base.is_file():
            targets.append((base, base.relative_to(root).as_posix()
                            if base.is_relative_to(root) else str(base)))
            continue
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                rel = path.relative_to(root).as_posix() \
                    if path.is_relative_to(root) else str(path)
                targets.append((path, rel))
    return targets


def run_lint(root: pathlib.Path, paths: list[str]) -> int:
    problems: list[str] = []
    files = collect_files(root, paths)
    for path, rel in files:
        problems.extend(lint_file(path, rel))
    for problem in problems:
        print(problem)
    print(f"check_concurrency: {len(files)} files, {len(problems)} problem(s)")
    return 1 if problems else 0


def self_test(root: pathlib.Path) -> int:
    """The seeded-violation fixtures must each trip their intended rule."""
    fixture_dir = root / "scripts" / "testdata" / "concurrency_violations"
    expectations = {
        "naked_mutex.cc": "naked std::",
        "default_order.cc": "without an explicit std::memory_order",
        "unjustified_atomic.cc": "`// ordering:` justification",
        # The profiler's lock-free shapes (index-link publish/traverse,
        # slot-claim CAS, atomic histogram arrays) with their orders and
        # justifications stripped.
        "profiler_publication.cc": "without an explicit std::memory_order",
    }
    clean = root / "scripts" / "testdata" / "concurrency_clean.cc"
    failures: list[str] = []

    for name, needle in expectations.items():
        path = fixture_dir / name
        found = lint_file(path, name)
        if not any(needle in p for p in found):
            failures.append(
                f"fixture {name}: expected a '{needle}' diagnostic, "
                f"got {found or 'nothing'}")

    found = lint_file(clean, clean.name)
    if found:
        failures.append(f"fixture {clean.name}: expected clean, got {found}")

    for failure in failures:
        print(f"self-test FAILED: {failure}")
    print(f"check_concurrency --self-test: "
          f"{len(expectations) + 1} fixtures, {len(failures)} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint trips on the seeded fixtures")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint instead of the "
                             "default tree (src tools bench examples)")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve() if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(root)
    return run_lint(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
