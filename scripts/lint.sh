#!/usr/bin/env bash
# Static-analysis gate. Runs the exact suite CI runs:
#
#   1. clang-format --dry-run -Werror over every tracked C++ file
#   2. clang-tidy (root .clang-tidy, tests/.clang-tidy overlay) over src/
#      and fuzz/, using a compile_commands.json export
#   3. cppcheck (warning+performance+portability, .cppcheck-suppressions)
#   4. check_concurrency.py — lock discipline (wrapper-only mutexes) and
#      atomic memory-order hygiene, plus its --self-test over the seeded
#      violation fixtures (DESIGN.md "Concurrency contracts")
#
# Usage:
#   scripts/lint.sh                # run everything available
#   scripts/lint.sh --format       # just the format check
#   scripts/lint.sh --tidy         # just clang-tidy
#   scripts/lint.sh --cppcheck     # just cppcheck
#   scripts/lint.sh --concurrency  # just the concurrency lint
#
# Every tool reports one `lint: <tool>: ok|FAILED|skipped` summary line at
# the end so CI logs show the whole suite's outcome at a glance.
#
# Tools that are not installed are skipped with a warning so the script is
# useful on minimal toolchains; set SENTINEL_LINT_STRICT=1 (CI does) to
# turn a missing tool into a failure instead. python3 is required for the
# concurrency lint (present on any dev box; CI installs it).
set -euo pipefail
cd "$(dirname "$0")/.."

STRICT="${SENTINEL_LINT_STRICT:-0}"
BUILD_DIR="${SENTINEL_LINT_BUILD_DIR:-build-lint}"
MODE="${1:-all}"
MODE="${MODE#--}"
FAILED=0
SUMMARY=()

have() { command -v "$1" > /dev/null 2>&1; }

# record <tool> <ok|FAILED|skipped>
record() { SUMMARY+=("lint: $1: $2"); }

skip_or_fail() {
  if [[ "$STRICT" == "1" ]]; then
    echo "lint: $1 not found and SENTINEL_LINT_STRICT=1" >&2
    record "$1" "FAILED (not installed)"
    FAILED=1
  else
    echo "lint: $1 not found; skipping (set SENTINEL_LINT_STRICT=1 to fail)" >&2
    record "$1" "skipped (not installed)"
  fi
}

cxx_sources() {
  git ls-files -- 'src/**/*.cc' 'src/**/*.h' 'tests/**/*.cc' \
    'fuzz/*.cc' 'bench/**/*.cc' 'examples/**/*.cc' 'tools/**/*.cc'
}

run_format() {
  if ! have clang-format; then skip_or_fail clang-format; return; fi
  echo "== clang-format =="
  if cxx_sources | xargs clang-format --dry-run -Werror; then
    record clang-format ok
  else
    echo "lint: formatting violations (fix with: cxx_sources | xargs clang-format -i)" >&2
    record clang-format FAILED
    FAILED=1
  fi
}

run_tidy() {
  if ! have clang-tidy; then skip_or_fail clang-tidy; return; fi
  echo "== clang-tidy =="
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DSENTINEL_FUZZ=ON > /dev/null
  fi
  # Analyze the library and fuzz sources; tests inherit the overlay config
  # but are not gated (gtest macros generate too much noise to block on).
  if git ls-files -- 'src/**/*.cc' 'fuzz/*.cc' |
    xargs clang-tidy -p "$BUILD_DIR" --quiet; then
    record clang-tidy ok
  else
    record clang-tidy FAILED
    FAILED=1
  fi
}

run_cppcheck() {
  if ! have cppcheck; then skip_or_fail cppcheck; return; fi
  echo "== cppcheck =="
  if cppcheck --enable=warning,performance,portability --std=c++20 \
    --language=c++ --error-exitcode=1 --inline-suppr --quiet \
    --suppressions-list=.cppcheck-suppressions -I src src fuzz; then
    record cppcheck ok
  else
    record cppcheck FAILED
    FAILED=1
  fi
}

run_concurrency() {
  if ! have python3; then skip_or_fail python3; return; fi
  echo "== check_concurrency =="
  local ok=1
  # Self-test first: a lint that no longer trips on the seeded violations
  # is silently useless, which is worse than a failing one.
  python3 scripts/check_concurrency.py --self-test || ok=0
  python3 scripts/check_concurrency.py || ok=0
  if [[ "$ok" == "1" ]]; then
    record check_concurrency ok
  else
    record check_concurrency FAILED
    FAILED=1
  fi
}

case "$MODE" in
  format) run_format ;;
  tidy) run_tidy ;;
  cppcheck) run_cppcheck ;;
  concurrency) run_concurrency ;;
  all)
    run_format
    run_tidy
    run_cppcheck
    run_concurrency
    ;;
  *)
    echo "usage: scripts/lint.sh [--format|--tidy|--cppcheck|--concurrency]" >&2
    exit 2
    ;;
esac

echo "== summary =="
for line in "${SUMMARY[@]}"; do echo "$line"; done

if [[ "$FAILED" != "0" ]]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
