#!/usr/bin/env bash
# Builds the project, runs the full test suite and regenerates every table
# and figure of the paper (outputs mirrored to test_output.txt /
# bench_output.txt in the repository root).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
