#!/usr/bin/env bash
# Regenerates the committed serving-path load baseline: builds the
# load_serve bench in Release and writes BENCH_serve.json at the
# repository root. The bench asserts the tentpole criteria itself
# (served verdicts bit-identical to per-call Identify; batched QPS at
# saturation >= 2x the per-call baseline; moderate-load p99 within the
# configured latency bound).
#   scripts/serve_baseline.sh [--quick]
# --quick (the CI smoke mode) shrinks request counts and relaxes the
# speedup floor — tiny runs on a loaded CI core are noisy.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
for arg in "$@"; do
  if [[ "$arg" == "--quick" ]]; then QUICK="--quick"; fi
done

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target load_serve
./build-bench/bench/load_serve ${QUICK} --json BENCH_serve.json
