#!/usr/bin/env bash
# Regenerates the committed gateway-soak baseline: builds the soak_gateway
# bench in Release and writes BENCH_gateway.json at the repository root.
#   scripts/soak_baseline.sh [--quick]
# --quick (the CI smoke mode) shrinks the scale sweep and churn length.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
for arg in "$@"; do
  if [[ "$arg" == "--quick" ]]; then QUICK="--quick"; fi
done

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target soak_gateway
./build-bench/bench/soak_gateway ${QUICK} --json BENCH_gateway.json
