// Self-test control: a file that follows every rule of
// scripts/check_concurrency.py. Keep this lint-clean — the --self-test mode
// asserts zero diagnostics here, guarding against the lint regressing into
// false positives (a lint nobody can satisfy gets disabled, not fixed).
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace good {

struct Stats {
  // ordering: relaxed — an eventually consistent event count; no other
  // memory is published through it. The comment block above a declaration
  // also satisfies the lint:
  std::atomic<std::uint64_t> hits{0};

  void Hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t Read() const {
    // Split calls keep their order on the continuation line.
    return hits.load(
        std::memory_order_relaxed);
  }
};

// The profiler's lock-free publication shapes (obs/profiler.h,
// util/lock_telemetry.h) must pass as written: release-published index
// links traversed with acquire, a slot-claim CAS, and atomic histogram
// arrays.
struct FrameNode {
  // ordering: release on link (the owner publishes a fully initialised
  // node by storing its index) / acquire on traversal from the snapshot
  // thread. Index 0 doubles as "no link".
  std::atomic<std::uint32_t> first_child{0};
  // ordering: relaxed — monotonic per-bucket statistics; exporters take
  // scrape-consistent values, no cross-bucket invariant exists.
  std::atomic<std::uint64_t> buckets[4]{};

  [[nodiscard]] std::uint32_t Child() const {
    return first_child.load(std::memory_order_acquire);
  }
  void Publish(std::uint32_t index) {
    first_child.store(index, std::memory_order_release);
  }
  void Count(std::size_t b) {
    buckets[b].fetch_add(1, std::memory_order_relaxed);
  }
};

// ordering: acq_rel CAS — release publishes the claimed slot on success,
// acquire reads the winner's value on failure (both via the same edge).
inline std::atomic<const char*> g_slot{nullptr};

inline bool Claim(const char* name) {
  const char* expected = nullptr;
  return g_slot.compare_exchange_strong(expected, name,
                                        std::memory_order_acq_rel);
}

}  // namespace good
