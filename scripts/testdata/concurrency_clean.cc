// Self-test control: a file that follows every rule of
// scripts/check_concurrency.py. Keep this lint-clean — the --self-test mode
// asserts zero diagnostics here, guarding against the lint regressing into
// false positives (a lint nobody can satisfy gets disabled, not fixed).
#include <atomic>
#include <cstdint>

namespace good {

struct Stats {
  // ordering: relaxed — an eventually consistent event count; no other
  // memory is published through it. The comment block above a declaration
  // also satisfies the lint:
  std::atomic<std::uint64_t> hits{0};

  void Hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t Read() const {
    // Split calls keep their order on the continuation line.
    return hits.load(
        std::memory_order_relaxed);
  }
};

}  // namespace good
