// Seeded violation: atomic operations relying on the seq_cst default.
// check_concurrency.py must flag each call below.
#include <atomic>
#include <cstdint>

namespace bad {

// ordering: relaxed — fixture counter (the declaration itself is fine).
std::atomic<std::uint64_t> g_counter{0};

std::uint64_t ReadDefault() {
  return g_counter.load();  // violation: implicit memory_order
}

void WriteDefault(std::uint64_t v) {
  g_counter.store(v);       // violation: implicit memory_order
  g_counter.fetch_add(1);   // violation: implicit memory_order
}

}  // namespace bad
