// Seeded violation: naked standard locking primitives outside the wrapper
// layer. check_concurrency.py must reject every line below.
#include <mutex>
#include <shared_mutex>

namespace bad {

struct Table {
  mutable std::mutex mutex;             // violation: naked std::mutex
  mutable std::shared_mutex rw_mutex;   // violation: naked std::shared_mutex
  int value = 0;

  int Read() const {
    std::lock_guard<std::mutex> lock(mutex);  // violation: naked lock_guard
    return value;
  }

  void Write(int v) {
    std::unique_lock lock(mutex);  // violation: naked unique_lock
    value = v;
  }
};

}  // namespace bad
