// Seeded violation: the profiler's publication patterns done wrong — a
// lock-free registration CAS and an index-link publish/traverse pair all
// relying on the seq_cst default, plus an atomic array declared without a
// `// ordering:` justification. check_concurrency.py must flag each.
#include <atomic>
#include <cstdint>

namespace bad {

struct Node {
  // ordering: release on link / acquire on traversal (decl itself is fine).
  std::atomic<std::uint32_t> first_child{0};
  std::atomic<std::uint64_t> buckets[4]{};  // violation: no ordering rationale
};

inline std::uint32_t Traverse(const Node& node) {
  return node.first_child.load();  // violation: implicit memory_order
}

inline void Publish(Node& node, std::uint32_t index) {
  node.first_child.store(index);  // violation: implicit memory_order
}

// ordering: acq_rel CAS claims the slot (decl itself is fine).
inline std::atomic<const char*> g_slot{nullptr};

inline bool Claim(const char* name) {
  const char* expected = nullptr;
  // violation: compare_exchange without an explicit memory_order
  return g_slot.compare_exchange_strong(expected, name);
}

}  // namespace bad
