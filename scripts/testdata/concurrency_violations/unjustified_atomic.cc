// Seeded violation: a std::atomic member declared without a `// ordering:`
// justification comment. check_concurrency.py must flag the declaration.
#include <atomic>
#include <cstdint>

namespace bad {

struct Stats {
  std::atomic<std::uint64_t> hits{0};  // violation: no ordering rationale

  void Hit() { hits.fetch_add(1, std::memory_order_relaxed); }
};

}  // namespace bad
