#include "capture/setup_phase.h"

namespace sentinel::capture {

std::size_t DetectSetupPhaseEnd(const std::vector<net::ParsedPacket>& packets,
                                const SetupPhaseConfig& config) {
  if (packets.size() <= config.min_packets)
    return packets.size() > config.max_packets ? config.max_packets
                                               : packets.size();

  const std::size_t w = config.rate_window_packets;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    if (i >= config.max_packets) return config.max_packets;
    if (i < config.min_packets) continue;

    // Idle-gap criterion.
    const std::uint64_t gap =
        packets[i].timestamp_ns - packets[i - 1].timestamp_ns;
    if (gap >= config.idle_gap_ns) return i;

    // Rate-drop criterion: compare the rate over the last w packets with
    // the rate over the first w packets.
    if (i + 1 >= 2 * w) {
      const auto span_ns = [&](std::size_t a, std::size_t b) {
        return static_cast<double>(packets[b].timestamp_ns -
                                   packets[a].timestamp_ns) +
               1.0;
      };
      const double head_rate = static_cast<double>(w) / span_ns(0, w - 1);
      const double tail_rate =
          static_cast<double>(w) / span_ns(i - w + 1, i);
      if (tail_rate < config.rate_drop_factor * head_rate) return i;
    }
  }
  return packets.size() > config.max_packets ? config.max_packets
                                             : packets.size();
}

bool SetupPhaseTracker::Offer(const net::ParsedPacket& packet) {
  if (done_) return false;
  if (count_ > 0 && count_ >= config_.min_packets &&
      packet.timestamp_ns >= last_timestamp_ns_ &&
      packet.timestamp_ns - last_timestamp_ns_ >= config_.idle_gap_ns) {
    done_ = true;
    return false;
  }
  ++count_;
  last_timestamp_ns_ = packet.timestamp_ns;
  if (count_ >= config_.max_packets) done_ = true;
  return true;
}

bool SetupPhaseTracker::CheckIdle(std::uint64_t now_ns) {
  if (done_) return true;
  if (count_ >= config_.min_packets && now_ns >= last_timestamp_ns_ &&
      now_ns - last_timestamp_ns_ >= config_.idle_gap_ns) {
    done_ = true;
  }
  return done_;
}

}  // namespace sentinel::capture
