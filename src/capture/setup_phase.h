// Setup-phase boundary detection (paper Sect. IV-A): "The end of the setup
// phase can be automatically identified by a decrease in the rate of packets
// sent." A new device emits a dense burst of traffic while associating and
// registering; once it settles into standby its packet rate collapses.
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame.h"

namespace sentinel::capture {

struct SetupPhaseConfig {
  /// A silence of at least this long after min_packets ends the setup phase.
  std::uint64_t idle_gap_ns = 5'000'000'000;  // 5 s
  /// Never cut the phase before this many packets (very chatty devices
  /// pause briefly mid-setup while rebooting onto the user's network).
  std::size_t min_packets = 8;
  /// Hard cap: fingerprinting needs only the first packets; stop collecting
  /// after this many regardless of rate.
  std::size_t max_packets = 256;
  /// Alternative rate criterion: the phase also ends when the packet rate
  /// over the trailing window falls below `rate_drop_factor` times the rate
  /// over the leading window of the same span.
  double rate_drop_factor = 0.1;
  std::size_t rate_window_packets = 10;
};

/// Returns the number of leading packets that belong to the setup phase of
/// a device whose per-device packet stream is `packets` (time-ordered).
std::size_t DetectSetupPhaseEnd(const std::vector<net::ParsedPacket>& packets,
                                const SetupPhaseConfig& config = {});

/// Incremental variant used by the live DeviceMonitor: feed packets one at
/// a time; Done() flips once the phase boundary is reached.
class SetupPhaseTracker {
 public:
  explicit SetupPhaseTracker(SetupPhaseConfig config = {})
      : config_(config) {}

  /// Offers the next packet (by timestamp). Returns true if the packet is
  /// still part of the setup phase; false if the phase had already ended.
  bool Offer(const net::ParsedPacket& packet);

  /// True once the setup phase has been declared over. A packet arriving
  /// after the idle gap triggers this; so does reaching max_packets.
  [[nodiscard]] bool Done() const { return done_; }
  [[nodiscard]] std::size_t packet_count() const { return count_; }

  /// Declares the phase over based on the current wall clock (no packet
  /// needed): true if `now_ns` is an idle gap past the last packet.
  bool CheckIdle(std::uint64_t now_ns);

 private:
  SetupPhaseConfig config_;
  std::size_t count_ = 0;
  std::uint64_t last_timestamp_ns_ = 0;
  bool done_ = false;
};

}  // namespace sentinel::capture
