#include "capture/trace.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "net/byte_io.h"
#include "util/check.h"

namespace sentinel::capture {

std::string ToString(TraceErrorKind kind) {
  switch (kind) {
    case TraceErrorKind::kTruncatedHeader:
      return "truncated_header";
    case TraceErrorKind::kBadMagic:
      return "bad_magic";
    case TraceErrorKind::kUnsupportedLinkType:
      return "unsupported_link_type";
    case TraceErrorKind::kTruncatedRecord:
      return "truncated_record";
    case TraceErrorKind::kOversizedRecord:
      return "oversized_record";
  }
  return "unknown";
}

std::string TraceError::ToString() const {
  return capture::ToString(kind) + " at record " +
         std::to_string(record_index) + (detail.empty() ? "" : ": " + detail);
}

namespace {

// Classic pcap framing (mirrors net/pcap.cc, which owns the throwing
// codec; this reader classifies failures instead of throwing).
constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;
constexpr std::size_t kGlobalHeaderBytes = 24;
constexpr std::size_t kRecordHeaderBytes = 16;

std::optional<Trace> Fail(TraceError* error, TraceErrorKind kind,
                          std::size_t record_index, std::string detail) {
  if (error != nullptr)
    *error = TraceError{kind, record_index, std::move(detail)};
  return std::nullopt;
}

}  // namespace

std::optional<Trace> Trace::FromPcap(std::span<const std::uint8_t> data,
                                     TraceError* error) {
  if (data.size() < kGlobalHeaderBytes)
    return Fail(error, TraceErrorKind::kTruncatedHeader, 0,
                "global header needs " + std::to_string(kGlobalHeaderBytes) +
                    " bytes, have " + std::to_string(data.size()));
  net::ByteReader r(data);
  const std::uint32_t magic = r.ReadU32Le();
  bool swapped = false;
  if (magic == kPcapMagicSwapped) {
    swapped = true;
  } else if (magic != kPcapMagic) {
    return Fail(error, TraceErrorKind::kBadMagic, 0,
                "magic 0x" + [magic] {
                  char buf[9];
                  std::snprintf(buf, sizeof(buf), "%08x", magic);
                  return std::string(buf);
                }());
  }
  auto u32 = [&] { return swapped ? r.ReadU32() : r.ReadU32Le(); };

  r.Skip(2 + 2 + 4 + 4);  // version major/minor, thiszone, sigfigs
  u32();                  // snaplen (writers disagree; records re-checked)
  const std::uint32_t link_type = u32();
  if (link_type != kLinkTypeEthernet)
    return Fail(error, TraceErrorKind::kUnsupportedLinkType, 0,
                "link type " + std::to_string(link_type));

  std::vector<net::Frame> frames;
  std::size_t record = 0;
  while (r.remaining() > 0) {
    if (r.remaining() < kRecordHeaderBytes)
      return Fail(error, TraceErrorKind::kTruncatedRecord, record,
                  "record header needs " +
                      std::to_string(kRecordHeaderBytes) + " bytes, have " +
                      std::to_string(r.remaining()));
    const std::uint32_t ts_sec = u32();
    const std::uint32_t ts_usec = u32();
    const std::uint32_t incl_len = u32();
    u32();  // orig_len
    if (incl_len > kSnapLen)
      return Fail(error, TraceErrorKind::kOversizedRecord, record,
                  "incl_len " + std::to_string(incl_len) + " exceeds snap " +
                      std::to_string(kSnapLen));
    if (r.remaining() < incl_len)
      return Fail(error, TraceErrorKind::kTruncatedRecord, record,
                  "payload needs " + std::to_string(incl_len) +
                      " bytes, have " + std::to_string(r.remaining()));
    const auto bytes = r.ReadBytes(incl_len);
    net::Frame f;
    f.timestamp_ns = (std::uint64_t{ts_sec} * 1000000 + ts_usec) * 1000;
    f.bytes.assign(bytes.begin(), bytes.end());
    frames.push_back(std::move(f));
    ++record;
  }
  SENTINEL_DCHECK(r.AtEnd()) << "pcap walk left " << r.remaining()
                             << " unconsumed bytes";
  return Trace(std::move(frames));
}

std::optional<Trace> Trace::FromPcapFile(const std::string& path,
                                         TraceError* error) {
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for reading");
  std::vector<std::uint8_t> data;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
    data.insert(data.end(), buf, buf + n);
  if (std::ferror(f.get()) != 0)
    throw std::runtime_error("read error on " + path);
  return FromPcap(data, error);
}

void Trace::SortByTime() {
  std::stable_sort(frames_.begin(), frames_.end(),
                   [](const net::Frame& a, const net::Frame& b) {
                     return a.timestamp_ns < b.timestamp_ns;
                   });
}

std::vector<net::ParsedPacket> Trace::Parse() const {
  std::vector<net::ParsedPacket> out;
  out.reserve(frames_.size());
  for (const net::Frame& f : frames_) {
    try {
      out.push_back(net::ParseFrame(f));
    } catch (const net::CodecError&) {
      // Malformed frame: skip, as a live monitor would.
    }
  }
  return out;
}

RingTrace::RingTrace(std::size_t capacity) : buffer_(std::max<std::size_t>(1, capacity)) {}

void RingTrace::Append(net::Frame frame) {
  buffer_[head_] = std::move(frame);
  head_ = (head_ + 1) % buffer_.size();
  if (head_ == 0) full_ = true;
  ++total_appended_;
}

std::vector<net::Frame> RingTrace::Snapshot() const {
  std::vector<net::Frame> out;
  out.reserve(size());
  if (full_) {
    for (std::size_t i = head_; i < buffer_.size(); ++i)
      out.push_back(buffer_[i]);
  }
  for (std::size_t i = 0; i < head_; ++i) out.push_back(buffer_[i]);
  return out;
}

std::vector<net::Frame> RingTrace::SnapshotFor(const net::MacAddress& mac,
                                               std::size_t limit) const {
  std::vector<net::Frame> matched;
  for (const auto& frame : Snapshot()) {
    try {
      if (net::ParseFrame(frame).src_mac == mac) matched.push_back(frame);
    } catch (const net::CodecError&) {
    }
  }
  if (matched.size() > limit)
    matched.erase(matched.begin(),
                  matched.end() - static_cast<std::ptrdiff_t>(limit));
  return matched;
}

std::map<net::MacAddress, std::vector<net::ParsedPacket>> SplitBySourceMac(
    const std::vector<net::ParsedPacket>& packets) {
  std::map<net::MacAddress, std::vector<net::ParsedPacket>> out;
  for (const auto& p : packets) out[p.src_mac].push_back(p);
  return out;
}

}  // namespace sentinel::capture
