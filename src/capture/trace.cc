#include "capture/trace.h"

#include <algorithm>

namespace sentinel::capture {

void Trace::SortByTime() {
  std::stable_sort(frames_.begin(), frames_.end(),
                   [](const net::Frame& a, const net::Frame& b) {
                     return a.timestamp_ns < b.timestamp_ns;
                   });
}

std::vector<net::ParsedPacket> Trace::Parse() const {
  std::vector<net::ParsedPacket> out;
  out.reserve(frames_.size());
  for (const net::Frame& f : frames_) {
    try {
      out.push_back(net::ParseFrame(f));
    } catch (const net::CodecError&) {
      // Malformed frame: skip, as a live monitor would.
    }
  }
  return out;
}

RingTrace::RingTrace(std::size_t capacity) : buffer_(std::max<std::size_t>(1, capacity)) {}

void RingTrace::Append(net::Frame frame) {
  buffer_[head_] = std::move(frame);
  head_ = (head_ + 1) % buffer_.size();
  if (head_ == 0) full_ = true;
  ++total_appended_;
}

std::vector<net::Frame> RingTrace::Snapshot() const {
  std::vector<net::Frame> out;
  out.reserve(size());
  if (full_) {
    for (std::size_t i = head_; i < buffer_.size(); ++i)
      out.push_back(buffer_[i]);
  }
  for (std::size_t i = 0; i < head_; ++i) out.push_back(buffer_[i]);
  return out;
}

std::vector<net::Frame> RingTrace::SnapshotFor(const net::MacAddress& mac,
                                               std::size_t limit) const {
  std::vector<net::Frame> matched;
  for (const auto& frame : Snapshot()) {
    try {
      if (net::ParseFrame(frame).src_mac == mac) matched.push_back(frame);
    } catch (const net::CodecError&) {
    }
  }
  if (matched.size() > limit)
    matched.erase(matched.begin(),
                  matched.end() - static_cast<std::ptrdiff_t>(limit));
  return matched;
}

std::map<net::MacAddress, std::vector<net::ParsedPacket>> SplitBySourceMac(
    const std::vector<net::ParsedPacket>& packets) {
  std::map<net::MacAddress, std::vector<net::ParsedPacket>> out;
  for (const auto& p : packets) out[p.src_mac].push_back(p);
  return out;
}

}  // namespace sentinel::capture
