// Capture traces and per-device traffic splitting.
//
// A Trace is an ordered sequence of captured frames as seen on the gateway's
// monitored interfaces. The gateway fingerprints *per device*, so the
// splitter groups frames by source MAC while preserving arrival order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/frame.h"

namespace sentinel::capture {

/// Why an untrusted capture failed to parse. One enumerator per malformed-
/// input class seen during fuzz bring-up, so callers (and tests) can react
/// to the specific failure instead of matching exception strings.
enum class TraceErrorKind {
  kTruncatedHeader,      ///< global pcap header shorter than 24 bytes
  kBadMagic,             ///< magic is neither 0xa1b2c3d4 nor its swap
  kUnsupportedLinkType,  ///< link type other than LINKTYPE_ETHERNET
  kTruncatedRecord,      ///< record header or payload cut short
  kOversizedRecord,      ///< incl_len above the 65535 snap length
};

/// Human-readable name of a TraceErrorKind ("truncated_record", ...).
std::string ToString(TraceErrorKind kind);

/// Typed parse error for a capture. `record_index` is the index of the
/// record being parsed when the failure hit (0 while still inside the
/// global header).
struct TraceError {
  TraceErrorKind kind = TraceErrorKind::kBadMagic;
  std::size_t record_index = 0;
  std::string detail;

  [[nodiscard]] std::string ToString() const;
};

/// Ordered capture of raw frames (what tcpdump on the gateway records).
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<net::Frame> frames) : frames_(std::move(frames)) {}

  void Append(net::Frame frame) { frames_.push_back(std::move(frame)); }
  void Append(const Trace& other) {
    frames_.insert(frames_.end(), other.frames_.begin(), other.frames_.end());
  }

  [[nodiscard]] const std::vector<net::Frame>& frames() const {
    return frames_;
  }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] bool empty() const { return frames_.empty(); }

  /// Stable-sorts frames by capture timestamp (captures merged from two
  /// interfaces may interleave out of order).
  void SortByTime();

  /// Parses every frame; frames that fail to parse are skipped (a real
  /// monitor drops malformed frames rather than aborting the capture).
  /// Returns packets in trace order.
  [[nodiscard]] std::vector<net::ParsedPacket> Parse() const;

  /// Parses a classic pcap byte image into a Trace. All-or-nothing: on
  /// malformed input `error` is filled and nullopt is returned — never a
  /// partially-filled Trace (truncated hostile captures must not
  /// masquerade as short legitimate ones). `error` may be nullptr when the
  /// caller only needs the success/failure bit.
  [[nodiscard]] static std::optional<Trace> FromPcap(
      std::span<const std::uint8_t> data, TraceError* error = nullptr);

  /// Reads and parses a pcap capture file. I/O failures (missing file,
  /// unreadable) throw std::runtime_error; malformed content reports a
  /// typed TraceError like FromPcap.
  [[nodiscard]] static std::optional<Trace> FromPcapFile(
      const std::string& path, TraceError* error = nullptr);

 private:
  std::vector<net::Frame> frames_;
};

/// Splits a parsed capture by source MAC, preserving per-device order.
std::map<net::MacAddress, std::vector<net::ParsedPacket>> SplitBySourceMac(
    const std::vector<net::ParsedPacket>& packets);

/// Callback-based sink used by live components (switch ports, monitors).
using PacketSink = std::function<void(const net::Frame&)>;

/// Bounded capture buffer: keeps the most recent `capacity` frames,
/// overwriting the oldest. Gateways run with finite memory; the ring is
/// what backs "show me the last N frames of this device" style forensics
/// after an incident.
class RingTrace {
 public:
  explicit RingTrace(std::size_t capacity);

  void Append(net::Frame frame);
  /// Frames in arrival order (oldest first). Size <= capacity.
  [[nodiscard]] std::vector<net::Frame> Snapshot() const;
  /// Most recent frames from `mac` (up to `limit`), oldest first.
  [[nodiscard]] std::vector<net::Frame> SnapshotFor(
      const net::MacAddress& mac, std::size_t limit) const;

  [[nodiscard]] std::size_t size() const {
    return full_ ? buffer_.size() : head_;
  }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t total_appended() const {
    return total_appended_;
  }

 private:
  std::vector<net::Frame> buffer_;
  std::size_t head_ = 0;  // next write slot
  bool full_ = false;
  std::uint64_t total_appended_ = 0;
};

}  // namespace sentinel::capture
