#include "core/anonymizing_transport.h"

namespace sentinel::core {

std::vector<std::uint8_t> AnonymizingTransport::Pad(
    std::span<const std::uint8_t> payload) const {
  net::ByteWriter w(payload.size() + config_.cell_bytes);
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteBytes(payload);
  const std::size_t cell = config_.cell_bytes == 0 ? 1 : config_.cell_bytes;
  const std::size_t remainder = w.size() % cell;
  if (remainder != 0) w.WriteZeros(cell - remainder);
  return std::move(w).Take();
}

std::vector<std::uint8_t> AnonymizingTransport::Unpad(
    std::span<const std::uint8_t> cells) {
  net::ByteReader r(cells);
  const std::uint32_t length = r.ReadU32();
  if (length > r.remaining())
    throw net::CodecError("anonymizer cell: payload length exceeds data");
  const auto payload = r.ReadBytes(length);
  return {payload.begin(), payload.end()};
}

std::vector<std::uint8_t> AnonymizingTransport::RoundTrip(
    std::span<const std::uint8_t> request) {
  ++circuits_used_;
  if (on_latency_) on_latency_(config_.circuit_latency_ns);

  const auto padded = Pad(request);
  padded_bytes_sent_ += padded.size();

  // The inner transport sees only padded cells; the server side of the
  // pair unpads, handles, and re-pads symmetrically. For transports that
  // talk to a raw SecurityServiceServer (the common test setup), the
  // unpad/pad happens here around the inner round trip.
  const auto inner_request = Unpad(padded);
  const auto response = inner_.RoundTrip(inner_request);
  const auto padded_response = Pad(response);
  padded_bytes_sent_ += padded_response.size();
  return Unpad(padded_response);
}

}  // namespace sentinel::core
