// Privacy-preserving IoTSSP queries (paper Sect. III-B): "Security Gateway
// can anonymously request the IoT Security Service through anonymization
// networks such as Tor to ensure privacy preservation."
//
// This decorator models the two properties that matter to the system:
//  - traffic-analysis resistance: requests are padded to fixed-size cells
//    so the IoTSSP (or an observer) cannot infer fingerprint sizes, which
//    themselves leak the device-type;
//  - cost: each round trip pays a circuit latency, which the gateway's
//    asynchronous identification pipeline tolerates (identification is not
//    on the data path).
#pragma once

#include <functional>

#include "core/remote_service.h"

namespace sentinel::core {

struct AnonymizerConfig {
  /// Requests/responses are padded up to a multiple of this cell size
  /// (Tor uses 512-byte cells).
  std::size_t cell_bytes = 512;
  /// Simulated circuit round-trip latency; surfaced through the
  /// `on_latency` callback so simulations can account for it.
  std::uint64_t circuit_latency_ns = 350'000'000;  // 350 ms, typical Tor
};

/// Wraps any ServiceTransport with padding + latency accounting.
class AnonymizingTransport : public ServiceTransport {
 public:
  AnonymizingTransport(ServiceTransport& inner, AnonymizerConfig config = {})
      : inner_(inner), config_(config) {}

  /// Called with the simulated circuit latency of each round trip.
  void OnLatency(std::function<void(std::uint64_t)> callback) {
    on_latency_ = std::move(callback);
  }

  std::vector<std::uint8_t> RoundTrip(
      std::span<const std::uint8_t> request) override;

  /// Bytes actually sent over the (padded) circuit so far.
  [[nodiscard]] std::uint64_t padded_bytes_sent() const {
    return padded_bytes_sent_;
  }
  [[nodiscard]] std::uint64_t circuits_used() const { return circuits_used_; }

  /// Pads a message to the next cell boundary: u32 payload length followed
  /// by the payload and zero fill. Exposed for tests.
  [[nodiscard]] std::vector<std::uint8_t> Pad(
      std::span<const std::uint8_t> payload) const;
  /// Inverse of Pad. Throws net::CodecError on malformed cells.
  static std::vector<std::uint8_t> Unpad(std::span<const std::uint8_t> cells);

 private:
  ServiceTransport& inner_;
  AnonymizerConfig config_;
  std::function<void(std::uint64_t)> on_latency_;
  std::uint64_t padded_bytes_sent_ = 0;
  std::uint64_t circuits_used_ = 0;
};

}  // namespace sentinel::core
