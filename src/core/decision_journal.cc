#include "core/decision_journal.h"

#include <algorithm>

#include "devices/catalog.h"

namespace sentinel::core {

std::string DeviceLabelName(int label) {
  const auto& catalog = devices::DeviceCatalog();
  if (label >= 0 && static_cast<std::size_t>(label) < catalog.size())
    return catalog[static_cast<std::size_t>(label)].identifier;
  return "type-" + std::to_string(label);
}

void JournalAssessment(obs::FlightRecorder* recorder,
                       const net::MacAddress& mac,
                       const AssessmentResult& assessment) {
  if (recorder == nullptr) return;
  const IdentificationResult& id = assessment.identification;

  const std::size_t votes =
      std::min(id.bank_labels.size(), id.bank_probabilities.size());
  for (std::size_t k = 0; k < votes; ++k) {
    recorder->Record(
        mac, {.kind = obs::DeviceEventKind::kClassifierVote,
              .label = DeviceLabelName(id.bank_labels[k]),
              .value = id.bank_probabilities[k],
              .extra = id.acceptance_threshold,
              .flag = id.bank_probabilities[k] >= id.acceptance_threshold});
  }

  const std::size_t scores =
      std::min(id.matched_types.size(), id.dissimilarity_scores.size());
  for (std::size_t k = 0; k < scores; ++k) {
    recorder->Record(mac, {.kind = obs::DeviceEventKind::kTieBreakScore,
                           .label = DeviceLabelName(id.matched_types[k]),
                           .value = id.dissimilarity_scores[k]});
  }

  recorder->Record(mac, {.kind = obs::DeviceEventKind::kVerdict,
                         .label = assessment.type.has_value()
                                      ? assessment.type_identifier
                                      : std::string("unknown"),
                         .flag = assessment.type.has_value()});

  for (const auto& advisory : assessment.advisories) {
    recorder->Record(mac, {.kind = obs::DeviceEventKind::kVulnerabilityHit,
                           .label = advisory.cve_id,
                           .value = advisory.cvss_score});
  }

  recorder->Record(
      mac, {.kind = obs::DeviceEventKind::kEnforcementLevel,
            .label = ToString(assessment.level),
            .value = static_cast<double>(assessment.allowed_endpoints.size()),
            .flag = assessment.requires_user_notification});
}

}  // namespace sentinel::core
