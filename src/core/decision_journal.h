// Bridges an IoTSSP assessment into the per-device flight recorder: one
// call journals every classifier's accept/reject vote with its probability,
// all tie-break dissimilarity scores, the verdict, vulnerability-DB hits
// and the enforcement level. Shared by the SentinelModule (online gateway
// path) and sentinelctl (offline identify/explain) so both tell the same
// identification story.
#pragma once

#include "core/security_service.h"
#include "net/address.h"
#include "obs/flight_recorder.h"

namespace sentinel::core {

/// No-op when `recorder` is nullptr.
void JournalAssessment(obs::FlightRecorder* recorder,
                       const net::MacAddress& mac,
                       const AssessmentResult& assessment);

/// Human-readable device-type name for a classifier label: the catalog
/// identifier when the label is a catalog id, else "type-<label>".
std::string DeviceLabelName(int label);

}  // namespace sentinel::core
