#include "core/device_identifier.h"

#include <algorithm>

#include "features/fingerprint_codec.h"
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace sentinel::core {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

void DeviceIdentifier::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    handles_ = IdentifierMetrics{};
    return;
  }
  handles_.bank_train_ns = &registry->GetHistogram(
      "sentinel_identifier_bank_train_ns",
      "wall time to train the full per-type classifier bank");
  handles_.classification_ns = &registry->GetHistogram(
      "sentinel_identifier_classification_ns",
      "stage-1 classifier-bank scan time per fingerprint");
  handles_.discrimination_ns = &registry->GetHistogram(
      "sentinel_identifier_discrimination_ns",
      "stage-2 edit-distance discrimination time per fingerprint");
  handles_.identify_total = &registry->GetCounter(
      "sentinel_identifier_identify_total", "fingerprints identified");
  handles_.unknown_total = &registry->GetCounter(
      "sentinel_identifier_unknown_total",
      "fingerprints reported as new/unknown device-types");
  handles_.multi_match_total = &registry->GetCounter(
      "sentinel_identifier_multi_match_total",
      "fingerprints accepted by more than one per-type classifier");
  handles_.accepts_total = &registry->GetCounter(
      "sentinel_identifier_accepts_total",
      "per-type classifier acceptances across all bank scans");
  handles_.edit_distance_total = &registry->GetCounter(
      "sentinel_identifier_edit_distance_total",
      "Damerau-Levenshtein computations in discrimination");
  handles_.tiebreak_total = &registry->GetCounter(
      "sentinel_identifier_tiebreak_total",
      "equal-dissimilarity tie-break coin flips");
  handles_.editdist_pruned = &registry->GetCounter(
      "sentinel_identifier_editdist_pruned_total",
      "edit-distance computations skipped because the candidate provably "
      "could not beat the best tie-break score");
  handles_.bank_early_exit = &registry->GetCounter(
      "sentinel_bank_early_exit_total",
      "bank-scan classifier evaluations that stopped early because the "
      "remaining trees' probability bounds had decided the verdict");
  handles_.types = &registry->GetGauge(
      "sentinel_identifier_types", "device-types in the trained bank");
  handles_.types->Set(static_cast<double>(types_.size()));
}

void DeviceIdentifier::set_quality_monitor(obs::QualityMonitor* monitor) {
  quality_ = monitor;
  if (quality_ != nullptr && !labels_.empty()) quality_->BindTypes(labels_);
}

void DeviceIdentifier::RecordQuality(const IdentificationResult& result) const {
  if (quality_ == nullptr) return;
  obs::QualitySample sample;
  // First-max scan keeps the top-1/top-2 pick deterministic under equal
  // probabilities.
  double top1 = 0.0;
  double top2 = 0.0;
  int top_label = -1;
  for (std::size_t k = 0; k < result.bank_probabilities.size(); ++k) {
    const double p = result.bank_probabilities[k];
    if (top_label < 0 || p > top1) {
      top2 = top1;
      top1 = p;
      top_label = result.bank_labels[k];
    } else if (p > top2) {
      top2 = p;
    }
  }
  sample.top_label = result.type.has_value() ? *result.type : top_label;
  sample.top1_probability = top1;
  sample.top2_probability = top2;
  sample.unknown = !result.IsKnown();
  sample.multi_match = result.matched_types.size() > 1;
  sample.tie_break_count = result.tie_break_count;
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const double score : result.dissimilarity_scores) {
    if (std::isnan(best) || score < best) best = score;
  }
  sample.best_dissimilarity = best;
  quality_->Record(sample);
}

void DeviceIdentifier::TrainOne(
    PerType& entry, const std::vector<LabelledFingerprint>& positives,
    const std::vector<const std::vector<double>*>& positive_rows,
    const std::vector<const std::vector<double>*>& negative_rows,
    std::uint64_t salt) {
  if (positives.empty())
    throw std::invalid_argument("TrainOne: no positive examples");

  ml::Rng rng(ml::DeriveSeed(config_.seed, salt));
  const std::size_t want_negatives =
      std::min(negative_rows.size(), config_.negative_ratio * positives.size());

  // Sample negatives without replacement (partial Fisher-Yates).
  std::vector<const std::vector<double>*> sampled = negative_rows;
  for (std::size_t i = 0; i < want_negatives; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, sampled.size() - 1);
    std::swap(sampled[i], sampled[pick(rng)]);
  }

  ml::Dataset data(features::kFPrimeDim);
  for (const auto* row : positive_rows) data.Add(*row, 1);
  for (std::size_t i = 0; i < want_negatives; ++i) data.Add(*sampled[i], 0);

  ml::RandomForestConfig forest_config = config_.forest;
  forest_config.seed = ml::DeriveSeed(config_.seed, salt ^ 0xf0f0f0f0ull);
  entry.classifier.Train(data, forest_config, pool_, metrics_);

  entry.references.clear();
  entry.references.reserve(positives.size());
  for (const auto& example : positives) entry.references.push_back(*example.full);
  CompileEntry(entry);
}

void DeviceIdentifier::CompileEntry(PerType& entry) {
  entry.flat = ml::FlatForest::Compile(entry.classifier);
  // Pre-intern the discrimination references against a per-type table so
  // identification only interns the probe (a read-only lookup) per
  // candidate; id equality against these sequences is still equivalent to
  // packet equality, so every edit distance is unchanged.
  entry.reference_table.Clear();
  entry.reference_ids.assign(entry.references.size(), {});
  for (std::size_t i = 0; i < entry.references.size(); ++i) {
    entry.reference_table.Intern(entry.references[i].packets(),
                                 entry.reference_ids[i]);
  }
  // Index the frozen table so probe interning is one expected-O(1) probe
  // per packet instead of a linear scan.
  entry.reference_table.Freeze();
}

void DeviceIdentifier::CompileServeIndex() {
  serve_.table.Clear();
  serve_.reference_ids.assign(types_.size(), {});
  serve_.reference_bags.assign(types_.size(), {});
  for (std::size_t k = 0; k < types_.size(); ++k) {
    auto& ids = serve_.reference_ids[k];
    ids.assign(types_[k].references.size(), {});
    for (std::size_t i = 0; i < types_[k].references.size(); ++i) {
      serve_.table.Intern(types_[k].references[i].packets(), ids[i]);
    }
  }
  serve_.table.Freeze();
  for (std::size_t k = 0; k < types_.size(); ++k) {
    auto& bags = serve_.reference_bags[k];
    bags.assign(serve_.reference_ids[k].size(), {});
    for (std::size_t i = 0; i < serve_.reference_ids[k].size(); ++i) {
      auto sorted = serve_.reference_ids[k][i];
      std::sort(sorted.begin(), sorted.end());
      auto& bag = bags[i];
      for (std::size_t j = 0; j < sorted.size();) {
        std::size_t run = j + 1;
        while (run < sorted.size() && sorted[run] == sorted[j]) ++run;
        bag.emplace_back(sorted[j], static_cast<std::uint32_t>(run - j));
        j = run;
      }
    }
  }
}

void DeviceIdentifier::Train(const std::vector<LabelledFingerprint>& examples) {
  obs::ScopedTimer bank_timer(handles_.bank_train_ns);
  types_.clear();
  labels_.clear();

  // Flatten each example's F' exactly once. Every per-type classifier sees
  // the same flattening (as a positive for its own type, as a candidate
  // negative for all others), so doing it inside the per-type loop would
  // redo identical work ~(1 + negative_ratio) times per example.
  std::vector<std::vector<double>> rows(examples.size());
  util::ParallelFor(pool_, examples.size(), [&](std::size_t i) {
    rows[i] = examples[i].fixed->ToVector();
  });

  std::map<int, std::vector<std::size_t>> by_label;
  for (std::size_t i = 0; i < examples.size(); ++i)
    by_label[examples[i].label].push_back(i);

  std::vector<int> ordered_labels;
  ordered_labels.reserve(by_label.size());
  for (const auto& group : by_label) ordered_labels.push_back(group.first);

  // One-vs-rest training is a map over independent label entries: each
  // entry derives all its randomness from (seed, label), writes only its
  // own slot, and the slots are laid out in ascending label order up
  // front — so the parallel bank is identical to the sequential one.
  types_.resize(ordered_labels.size());
  const obs::TraceContext trace_parent = obs::CurrentTraceContext();
  util::ParallelFor(pool_, ordered_labels.size(), [&](std::size_t j) {
    obs::ScopedTraceContext trace_carry(trace_parent);
    obs::ScopedSpan type_span("sentinel_identifier_train_type");
    const int label = ordered_labels[j];
    if (type_span.enabled())
      type_span.AddArg("label", std::to_string(label));
    const auto& positive_indices = by_label.at(label);
    std::vector<LabelledFingerprint> positives;
    std::vector<const std::vector<double>*> positive_rows;
    positives.reserve(positive_indices.size());
    positive_rows.reserve(positive_indices.size());
    for (const std::size_t i : positive_indices) {
      positives.push_back(examples[i]);
      positive_rows.push_back(&rows[i]);
    }
    std::vector<const std::vector<double>*> negative_rows;
    negative_rows.reserve(examples.size() - positives.size());
    for (std::size_t i = 0; i < examples.size(); ++i) {
      if (examples[i].label != label) negative_rows.push_back(&rows[i]);
    }
    PerType entry;
    entry.label = label;
    TrainOne(entry, positives, positive_rows, negative_rows,
             static_cast<std::uint64_t>(label) + 1);
    types_[j] = std::move(entry);
  });
  labels_ = std::move(ordered_labels);
  RebuildLabelIndex();
  CompileServeIndex();
  if (handles_.types != nullptr)
    handles_.types->Set(static_cast<double>(types_.size()));
  if (quality_ != nullptr) quality_->BindTypes(labels_);
  SENTINEL_LOG_INFO("identifier", "bank_trained", {"types", types_.size()},
                    {"examples", examples.size()});
}

void DeviceIdentifier::RebuildLabelIndex() {
  label_index_.clear();
  label_index_.reserve(types_.size());
  for (std::size_t k = 0; k < types_.size(); ++k)
    label_index_.emplace(types_[k].label, k);
}

void DeviceIdentifier::AddType(
    int label, const std::vector<LabelledFingerprint>& examples,
    const std::vector<LabelledFingerprint>& negatives) {
  if (std::find(labels_.begin(), labels_.end(), label) != labels_.end())
    throw std::invalid_argument("AddType: label already trained");
  std::vector<std::vector<double>> positive_storage(examples.size());
  std::vector<std::vector<double>> negative_storage(negatives.size());
  std::vector<const std::vector<double>*> positive_rows(examples.size());
  std::vector<const std::vector<double>*> negative_rows(negatives.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    positive_storage[i] = examples[i].fixed->ToVector();
    positive_rows[i] = &positive_storage[i];
  }
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    negative_storage[i] = negatives[i].fixed->ToVector();
    negative_rows[i] = &negative_storage[i];
  }
  PerType entry;
  entry.label = label;
  TrainOne(entry, examples, positive_rows, negative_rows,
           static_cast<std::uint64_t>(label) + 1);
  types_.push_back(std::move(entry));
  labels_.push_back(label);
  RebuildLabelIndex();
  CompileServeIndex();
  if (handles_.types != nullptr)
    handles_.types->Set(static_cast<double>(types_.size()));
  if (quality_ != nullptr) quality_->BindTypes(labels_);
  SENTINEL_LOG_INFO("identifier", "type_added", {"label", label},
                    {"types", types_.size()});
}

IdentificationResult DeviceIdentifier::Identify(
    const features::Fingerprint& full,
    const features::FixedFingerprint& fixed) const {
  IdentificationResult result = fast_path_ ? IdentifyFast(full, fixed)
                                           : IdentifyReference(full, fixed);
  RecordQuality(result);
  return result;
}

IdentificationResult DeviceIdentifier::IdentifyReference(
    const features::Fingerprint& full,
    const features::FixedFingerprint& fixed) const {
  SENTINEL_PROFILE_SCOPE("identify.reference");
  IdentificationResult result;
  result.acceptance_threshold = config_.acceptance_threshold;
  const auto row = fixed.ToVector();

  // Stage 1: every per-type classifier votes. The scan parallelizes over
  // the bank (votes land in per-type slots); candidates are then collected
  // in bank order, so the match list is scan-order independent. The raw
  // probabilities are kept as provenance: the verdict only consumes the
  // threshold comparison, but the flight recorder journals every vote.
  obs::ScopedSpan bank_span("sentinel_identifier_bank_scan");
  const auto t0 = Clock::now();
  result.bank_probabilities.assign(types_.size(), 0.0);
  util::ParallelFor(pool_, types_.size(), [&](std::size_t k) {
    result.bank_probabilities[k] = types_[k].classifier.PositiveProba(row);
  });
  result.bank_labels.reserve(types_.size());
  for (std::size_t k = 0; k < types_.size(); ++k) {
    result.bank_labels.push_back(types_[k].label);
    if (result.bank_probabilities[k] >= config_.acceptance_threshold)
      result.matched_types.push_back(types_[k].label);
  }
  result.classification_time = Clock::now() - t0;
  if (bank_span.enabled()) {
    bank_span.AddArg("types", std::to_string(types_.size()));
    bank_span.AddArg("matches", std::to_string(result.matched_types.size()));
  }
  bank_span.End();
  if (handles_.identify_total != nullptr) {
    handles_.identify_total->Increment();
    handles_.accepts_total->Increment(result.matched_types.size());
    handles_.classification_ns->Observe(
        static_cast<double>(result.classification_time.count()));
    if (result.matched_types.size() > 1)
      handles_.multi_match_total->Increment();
  }

  if (result.matched_types.empty()) {
    if (handles_.unknown_total != nullptr) handles_.unknown_total->Increment();
    SENTINEL_LOG_DEBUG("identifier", "identified", {"outcome", "unknown"},
                       {"matches", std::size_t{0}});
    return result;  // unknown device-type
  }

  // Stage 2: edit-distance discrimination over the candidates. For a
  // single match the paper assigns directly; here the same reference
  // distances are still computed as an open-set check (see
  // rejection_distance), so a fingerprint that one loosely-fitting
  // classifier accepts but that resembles none of that type's actual
  // reference fingerprints is reported as a new device-type. The paper
  // compares against 5 randomly selected reference fingerprints per
  // candidate type; here the selection is seeded from the probe itself, so
  // a given fingerprint is always identified the same way while different
  // probes draw different reference subsets (matching the paper's
  // randomized behaviour in aggregate).
  obs::ScopedSpan tiebreak_span("sentinel_stage_tie_break");
  const auto t1 = Clock::now();
  std::uint64_t probe_hash = 0xcbf29ce484222325ull;
  for (const auto& packet : full.packets()) {
    for (const auto value : packet) {
      probe_hash = (probe_hash ^ value) * 0x100000001b3ull;
    }
  }
  ml::SmallRng reference_rng(probe_hash);
  double best_score = std::numeric_limits<double>::infinity();
  int best_label = result.matched_types.front();
  std::size_t best_take = 1;
  for (const int label : result.matched_types) {
    const auto entry_it =
        std::find_if(types_.begin(), types_.end(),
                     [label](const PerType& e) { return e.label == label; });
    const auto& references = entry_it->references;
    const std::size_t take =
        std::min(config_.discrimination_references, references.size());
    // Partial Fisher-Yates over reference indices: `take` distinct picks.
    std::vector<std::size_t> indices(references.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    for (std::size_t i = 0; i < take; ++i) {
      std::uniform_int_distribution<std::size_t> pick(i, indices.size() - 1);
      std::swap(indices[i], indices[pick(reference_rng)]);
    }
    // The edit distances themselves consume no randomness, so they can run
    // in parallel; summing the per-reference results in index order keeps
    // the floating-point score identical to the sequential loop. (The
    // candidate loop around this stays sequential: the reference picks and
    // tie-break coins interleave on one RNG stream, which is part of the
    // per-probe determinism contract.)
    std::vector<double> distances(take);
    util::ParallelFor(pool_, take, [&](std::size_t i) {
      distances[i] =
          features::NormalizedEditDistance(full, references[indices[i]]);
    });
    double score = 0.0;
    for (std::size_t i = 0; i < take; ++i) {
      score += distances[i];
      ++result.edit_distance_count;
    }
    result.dissimilarity_scores.push_back(score);
    // Equal scores are common between types that share hardware/firmware
    // (their fingerprints can be identical); the paper's random reference
    // draw makes such ties land on either type, which the coin flip below
    // reproduces without sacrificing per-probe determinism.
    if (score < best_score) {
      best_score = score;
      best_label = label;
      best_take = std::max<std::size_t>(1, take);
    } else if (score == best_score) {
      ++result.tie_break_count;
      if (handles_.tiebreak_total != nullptr)
        handles_.tiebreak_total->Increment();
      std::uniform_int_distribution<int> coin(0, 1);
      if (coin(reference_rng) == 1) best_label = label;
    }
  }
  result.discrimination_time = Clock::now() - t1;
  if (tiebreak_span.enabled()) {
    tiebreak_span.AddArg("candidates",
                         std::to_string(result.matched_types.size()));
    tiebreak_span.AddArg("edit_distances",
                         std::to_string(result.edit_distance_count));
    tiebreak_span.AddArg("best_label", std::to_string(best_label));
  }
  tiebreak_span.End();
  if (handles_.discrimination_ns != nullptr) {
    handles_.discrimination_ns->Observe(
        static_cast<double>(result.discrimination_time.count()));
    handles_.edit_distance_total->Increment(result.edit_distance_count);
  }
  // Open-set gate: if even the winner is (on average) nearly maximally
  // distant from its own references, the device is like none of them.
  if (best_score / static_cast<double>(best_take) >
      config_.rejection_distance) {
    if (handles_.unknown_total != nullptr) handles_.unknown_total->Increment();
    SENTINEL_LOG_DEBUG("identifier", "identified", {"outcome", "rejected"},
                       {"matches", result.matched_types.size()},
                       {"best_score", best_score});
    return result;  // new device-type
  }
  result.type = best_label;
  SENTINEL_LOG_DEBUG("identifier", "identified", {"outcome", "known"},
                     {"label", best_label},
                     {"matches", result.matched_types.size()});
  return result;
}

void DeviceIdentifier::ScanBankFast(std::span<const double> row,
                                    IdentificationResult& result) const {
  result.bank_probabilities.assign(types_.size(), 0.0);
  result.bank_labels.reserve(types_.size());
  // A single-probe scan is a few microseconds of work per type; waking
  // pool workers for per-index claims costs more than it saves at every
  // bank size the throughput bench measures (8-128 types), so the
  // per-call scan stays on the calling thread. Parallel identification
  // throughput comes from IdentifyBatch (one pooled sweep over many
  // probes) or from callers running concurrent Identify() calls — the
  // method is const and thread-safe.
  util::ThreadPool* const scan_pool = nullptr;
  if (bank_early_exit_) {
    std::vector<std::uint8_t> accepted(types_.size(), 0);
    std::vector<std::uint8_t> exited(types_.size(), 0);
    util::ParallelFor(scan_pool, types_.size(), [&](std::size_t k) {
      const auto verdict = types_[k].flat.PositiveProbaThreshold(
          row, config_.acceptance_threshold);
      result.bank_probabilities[k] = verdict.probability;
      accepted[k] = verdict.accepted ? 1 : 0;
      exited[k] = verdict.early_exit ? 1 : 0;
    });
    std::uint64_t early_exits = 0;
    for (std::size_t k = 0; k < types_.size(); ++k) {
      result.bank_labels.push_back(types_[k].label);
      if (accepted[k] != 0) result.matched_types.push_back(types_[k].label);
      early_exits += exited[k];
    }
    if (handles_.bank_early_exit != nullptr && early_exits > 0)
      handles_.bank_early_exit->Increment(early_exits);
    return;
  }
  util::ParallelFor(scan_pool, types_.size(), [&](std::size_t k) {
    result.bank_probabilities[k] = types_[k].flat.PositiveProba(row);
  });
  for (std::size_t k = 0; k < types_.size(); ++k) {
    result.bank_labels.push_back(types_[k].label);
    if (result.bank_probabilities[k] >= config_.acceptance_threshold)
      result.matched_types.push_back(types_[k].label);
  }
}

void DeviceIdentifier::DiscriminateFast(
    const features::Fingerprint& full, IdentificationResult& result,
    features::EditDistanceScratch& scratch) const {
  obs::ScopedSpan tiebreak_span("sentinel_stage_tie_break");
  const auto t1 = Clock::now();
  std::uint64_t probe_hash = 0xcbf29ce484222325ull;
  for (const auto& packet : full.packets()) {
    for (const auto value : packet) {
      probe_hash = (probe_hash ^ value) * 0x100000001b3ull;
    }
  }
  ml::SmallRng reference_rng(probe_hash);
  double best_score = std::numeric_limits<double>::infinity();
  int best_label = result.matched_types.front();
  std::size_t best_take = 1;
  std::size_t pruned_references = 0;
  for (const int label : result.matched_types) {
    const auto entry_it =
        std::find_if(types_.begin(), types_.end(),
                     [label](const PerType& e) { return e.label == label; });
    const auto& references = entry_it->references;
    const std::size_t take =
        std::min(config_.discrimination_references, references.size());
    // The reference picks consume the RNG exactly as the reference
    // implementation does, pruned or not — the per-probe determinism
    // contract hinges on this stream never diverging.
    std::vector<std::size_t> indices(references.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    for (std::size_t i = 0; i < take; ++i) {
      std::uniform_int_distribution<std::size_t> pick(i, indices.size() - 1);
      std::swap(indices[i], indices[pick(reference_rng)]);
    }
    // References accumulate sequentially so each one sees the candidate's
    // running score: a reference whose certified distance lower bound
    // already pushes the candidate strictly above the best score ends the
    // candidate (it can neither win nor tie), skipping the remaining
    // distance computations. Non-pruned distances are bit-identical to
    // NormalizedEditDistance and summed in the same order, so a candidate
    // that completes has exactly the reference implementation's score —
    // ties (and their coin flips) are preserved, and the eventual winner
    // is never pruned (pruning certifies a score above the then-current
    // best, which only ever decreases).
    // Intern the probe against this type's frozen reference table (see
    // CompileEntry): the references' id forms are precomputed, so the DP
    // compares one id per cell with no per-reference interning work.
    entry_it->reference_table.InternReadOnly(full.packets(), scratch.overflow,
                                             scratch.ids_a);
    const std::span<const std::uint32_t> probe_ids(scratch.ids_a);
    double score = 0.0;
    bool pruned = false;
    for (std::size_t i = 0; i < take; ++i) {
      const auto& reference_ids = entry_it->reference_ids[indices[i]];
      const auto outcome = features::PrunedNormalizedEditDistance(
          probe_ids, std::span<const std::uint32_t>(reference_ids), score,
          best_score, scratch);
      score += outcome.value;
      if (outcome.pruned) {
        pruned = true;
        pruned_references += take - i;
        break;
      }
      ++result.edit_distance_count;
    }
    // For pruned candidates this records the certified lower bound the
    // candidate was eliminated at, not the exact score.
    result.dissimilarity_scores.push_back(score);
    if (pruned) continue;
    if (score < best_score) {
      best_score = score;
      best_label = label;
      best_take = std::max<std::size_t>(1, take);
    } else if (score == best_score) {
      ++result.tie_break_count;
      if (handles_.tiebreak_total != nullptr)
        handles_.tiebreak_total->Increment();
      std::uniform_int_distribution<int> coin(0, 1);
      if (coin(reference_rng) == 1) best_label = label;
    }
  }
  result.discrimination_time = Clock::now() - t1;
  if (tiebreak_span.enabled()) {
    tiebreak_span.AddArg("candidates",
                         std::to_string(result.matched_types.size()));
    tiebreak_span.AddArg("edit_distances",
                         std::to_string(result.edit_distance_count));
    tiebreak_span.AddArg("pruned", std::to_string(pruned_references));
    tiebreak_span.AddArg("best_label", std::to_string(best_label));
  }
  tiebreak_span.End();
  if (handles_.discrimination_ns != nullptr) {
    handles_.discrimination_ns->Observe(
        static_cast<double>(result.discrimination_time.count()));
    handles_.edit_distance_total->Increment(result.edit_distance_count);
    if (pruned_references > 0)
      handles_.editdist_pruned->Increment(pruned_references);
  }
  if (best_score / static_cast<double>(best_take) >
      config_.rejection_distance) {
    if (handles_.unknown_total != nullptr) handles_.unknown_total->Increment();
    SENTINEL_LOG_DEBUG("identifier", "identified", {"outcome", "rejected"},
                       {"matches", result.matched_types.size()},
                       {"best_score", best_score});
    return;  // new device-type
  }
  result.type = best_label;
  SENTINEL_LOG_DEBUG("identifier", "identified", {"outcome", "known"},
                     {"label", best_label},
                     {"matches", result.matched_types.size()});
}

IdentificationResult DeviceIdentifier::IdentifyFast(
    const features::Fingerprint& full,
    const features::FixedFingerprint& fixed) const {
  SENTINEL_PROFILE_SCOPE("identify.fast");
  IdentificationResult result;
  result.acceptance_threshold = config_.acceptance_threshold;
  // F' is already a contiguous double array — the compiled bank consumes
  // it in place, with no per-probe ToVector() allocation.
  const std::span<const double> row(fixed.values());

  obs::ScopedSpan bank_span("sentinel_identifier_bank_scan");
  const auto t0 = Clock::now();
  ScanBankFast(row, result);
  result.classification_time = Clock::now() - t0;
  if (bank_span.enabled()) {
    bank_span.AddArg("types", std::to_string(types_.size()));
    bank_span.AddArg("matches", std::to_string(result.matched_types.size()));
  }
  bank_span.End();
  if (handles_.identify_total != nullptr) {
    handles_.identify_total->Increment();
    handles_.accepts_total->Increment(result.matched_types.size());
    handles_.classification_ns->Observe(
        static_cast<double>(result.classification_time.count()));
    if (result.matched_types.size() > 1)
      handles_.multi_match_total->Increment();
  }

  if (result.matched_types.empty()) {
    if (handles_.unknown_total != nullptr) handles_.unknown_total->Increment();
    SENTINEL_LOG_DEBUG("identifier", "identified", {"outcome", "unknown"},
                       {"matches", std::size_t{0}});
    return result;  // unknown device-type
  }

  thread_local features::EditDistanceScratch scratch;
  DiscriminateFast(full, result, scratch);
  return result;
}

std::vector<IdentificationResult> DeviceIdentifier::IdentifyBatch(
    std::span<const FingerprintRef> probes) const {
  SENTINEL_PROFILE_SCOPE("identify.batch");
  std::vector<IdentificationResult> results(probes.size());
  if (probes.empty()) return results;
  if (!fast_path_) {
    for (std::size_t r = 0; r < probes.size(); ++r) {
      results[r] = IdentifyReference(*probes[r].full, *probes[r].fixed);
      RecordQuality(results[r]);
    }
    return results;
  }

  // One bank sweep over all probes: per type, a single batched pass whose
  // tree arena stays cache-hot across the whole probe matrix.
  const std::size_t rows = probes.size();
  std::vector<double> matrix(rows * features::kFPrimeDim);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto& values = probes[r].fixed->values();
    std::copy(values.begin(), values.end(),
              matrix.begin() +
                  static_cast<std::ptrdiff_t>(r * features::kFPrimeDim));
  }
  obs::ScopedSpan bank_span("sentinel_identifier_bank_scan");
  const auto t0 = Clock::now();
  std::vector<double> proba(types_.size() * rows, 0.0);
  // Work grain: a dispatched task should scan at least ~2k probe rows —
  // below that, pool dispatch costs more than the scan itself (small banks
  // with few probes used to lose throughput going 1t -> 8t). Each index
  // scans `rows` probes, so the grain is expressed in types-per-task.
  constexpr std::size_t kMinScanEvalsPerTask = 2048;
  const std::size_t scan_grain =
      std::max<std::size_t>(1, kMinScanEvalsPerTask / std::max<std::size_t>(rows, 1));
  util::ParallelFor(
      pool_, types_.size(),
      [&](std::size_t k) {
        types_[k].flat.PositiveProbaBatch(
            matrix, features::kFPrimeDim,
            std::span<double>(proba).subspan(k * rows, rows));
      },
      scan_grain);
  const auto scan_time = Clock::now() - t0;
  if (bank_span.enabled()) {
    bank_span.AddArg("types", std::to_string(types_.size()));
    bank_span.AddArg("probes", std::to_string(rows));
  }
  bank_span.End();
  const auto scan_share =
      std::chrono::nanoseconds(scan_time.count() / static_cast<long>(rows));

  // Stage 2 is independent per probe (each draws its picks and coins from
  // its own probe-hash-seeded RNG), so probes discriminate in parallel;
  // metrics handles are atomic. Chunks of 16 probes amortize dispatch —
  // small batches run sequentially on the caller.
  constexpr std::size_t kMinRowsPerTask = 16;
  util::ParallelFor(pool_, rows, [&](std::size_t r) {
    IdentificationResult& result = results[r];
    result.acceptance_threshold = config_.acceptance_threshold;
    result.bank_probabilities.resize(types_.size());
    result.bank_labels.reserve(types_.size());
    for (std::size_t k = 0; k < types_.size(); ++k) {
      const double p = proba[k * rows + r];
      result.bank_probabilities[k] = p;
      result.bank_labels.push_back(types_[k].label);
      if (p >= config_.acceptance_threshold)
        result.matched_types.push_back(types_[k].label);
    }
    result.classification_time = scan_share;
    if (handles_.identify_total != nullptr) {
      handles_.identify_total->Increment();
      handles_.accepts_total->Increment(result.matched_types.size());
      handles_.classification_ns->Observe(
          static_cast<double>(result.classification_time.count()));
      if (result.matched_types.size() > 1)
        handles_.multi_match_total->Increment();
    }
    if (result.matched_types.empty()) {
      if (handles_.unknown_total != nullptr)
        handles_.unknown_total->Increment();
      RecordQuality(result);
      return;
    }
    thread_local features::EditDistanceScratch scratch;
    DiscriminateFast(*probes[r].full, result, scratch);
    RecordQuality(result);
  }, kMinRowsPerTask);
  return results;
}

void DeviceIdentifier::DiscriminateServe(const features::Fingerprint& full,
                                         IdentificationResult& result,
                                         ServeScratch& scratch) const {
  std::uint64_t probe_hash = 0xcbf29ce484222325ull;
  for (const auto& packet : full.packets()) {
    for (const auto value : packet) {
      probe_hash = (probe_hash ^ value) * 0x100000001b3ull;
    }
  }
  ml::SmallRng reference_rng(probe_hash);
  // One probe intern against the cross-type serve table covers every
  // candidate (id equality over the shared table is equivalent to packet
  // equality, so every distance below is unchanged), and one Myers
  // pattern over the probe serves every reference comparison. Both use
  // persistently-zeroed scratch restored before returning.
  serve_.table.InternReadOnly(full.packets(), scratch.ed.overflow,
                              scratch.ed.ids_a);
  const std::span<const std::uint32_t> probe_ids(scratch.ed.ids_a);
  const std::size_t table = serve_.table.size();
  // Myers bit-parallel Levenshtein over the probe as pattern: an exact
  // upper bound on each OSA distance (OSA only adds transposition to
  // Levenshtein's operation set), capping the banded program at the true
  // distance's width. Fingerprints are capped well under 64 packets, so
  // the build only declines on adversarial input.
  const bool myers_ok = features::BuildMyersPatternSparse(
      probe_ids, table + scratch.ed.overflow.size(), scratch.ed);
  // Probe id histogram for the bag bounds. Overflow ids (absent from
  // every reference) cannot contribute to any bag intersection, so only
  // table ids are counted.
  if (scratch.counts.size() < table) scratch.counts.resize(table, 0);
  for (const std::uint32_t id : probe_ids) {
    if (id < table) ++scratch.counts[id];
  }
  double best_score = std::numeric_limits<double>::infinity();
  int best_label = result.matched_types.front();
  std::size_t best_take = 1;
  std::size_t pruned_references = 0;
  for (const int label : result.matched_types) {
    const std::size_t slot = label_index_.at(label);
    const PerType& entry = types_[slot];
    const auto& references = entry.references;
    const std::size_t take =
        std::min(config_.discrimination_references, references.size());
    // The picks consume the RNG exactly as DiscriminateFast does — the
    // shared per-probe determinism contract hinges on this stream never
    // diverging.
    auto& indices = scratch.indices;
    indices.resize(references.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    for (std::size_t i = 0; i < take; ++i) {
      std::uniform_int_distribution<std::size_t> pick(i, indices.size() - 1);
      std::swap(indices[i], indices[pick(reference_rng)]);
    }
    const auto& serve_ids = serve_.reference_ids[slot];
    // Per-reference bag lower bounds (every alignment keeps at most
    // |multiset intersection| elements; each unkept element of the
    // longer side costs at least one operation) and whole-candidate
    // pre-prune: the normalized bounds summed with the exact division
    // and left-to-right addition order of the score accumulation below
    // (both monotone under rounding) certify a lower bound on the
    // candidate's final score. Strictly above best means no win and no
    // tie — the candidate is eliminated without running a single DP,
    // with the RNG picks already consumed and no coin owed, so the
    // tie-break stream matches DiscriminateFast exactly.
    auto& bag_lb = scratch.bag_lb;
    bag_lb.assign(take, 0);
    double bound_sum = 0.0;
    for (std::size_t i = 0; i < take; ++i) {
      std::size_t overlap = 0;
      for (const auto& [id, count] : serve_.reference_bags[slot][indices[i]]) {
        overlap += std::min<std::size_t>(count, scratch.counts[id]);
      }
      const std::size_t longest =
          std::max(probe_ids.size(), serve_ids[indices[i]].size());
      bag_lb[i] = longest - overlap;
      if (longest > 0) {
        bound_sum += static_cast<double>(bag_lb[i]) /
                     static_cast<double>(longest);
      }
    }
    if (bound_sum > best_score) {
      pruned_references += take;
      // Bound-grade provenance: the certified lower bound the
      // candidate was eliminated at, like the pruned path below.
      result.dissimilarity_scores.push_back(bound_sum);
      continue;
    }
    double score = 0.0;
    bool pruned = false;
    for (std::size_t i = 0; i < take; ++i) {
      const std::span<const std::uint32_t> reference_span(
          serve_ids[indices[i]]);
      const std::size_t upper =
          myers_ok ? features::MyersDistance(probe_ids.size(), reference_span,
                                             scratch.ed)
                   : std::numeric_limits<std::size_t>::max();
      const auto outcome = features::PrunedNormalizedEditDistance(
          probe_ids, reference_span, bag_lb[i], upper, score, best_score,
          scratch.ed);
      score += outcome.value;
      if (outcome.pruned) {
        pruned = true;
        pruned_references += take - i;
        break;
      }
      ++result.edit_distance_count;
    }
    // For pruned candidates this records the certified lower bound the
    // candidate was eliminated at, not the exact score.
    result.dissimilarity_scores.push_back(score);
    if (pruned) continue;
    if (score < best_score) {
      best_score = score;
      best_label = label;
      best_take = std::max<std::size_t>(1, take);
    } else if (score == best_score) {
      ++result.tie_break_count;
      if (handles_.tiebreak_total != nullptr)
        handles_.tiebreak_total->Increment();
      std::uniform_int_distribution<int> coin(0, 1);
      if (coin(reference_rng) == 1) best_label = label;
    }
  }
  // Restore the all-zero invariants for the next probe on this scratch.
  for (const std::uint32_t id : probe_ids) {
    if (id < table) scratch.counts[id] = 0;
  }
  if (myers_ok) features::ClearMyersPattern(probe_ids, scratch.ed);
  if (handles_.edit_distance_total != nullptr) {
    handles_.edit_distance_total->Increment(result.edit_distance_count);
    if (pruned_references > 0)
      handles_.editdist_pruned->Increment(pruned_references);
  }
  if (best_score / static_cast<double>(best_take) >
      config_.rejection_distance) {
    if (handles_.unknown_total != nullptr) handles_.unknown_total->Increment();
    return;  // new device-type
  }
  result.type = best_label;
}

std::vector<IdentificationResult> DeviceIdentifier::IdentifyBatchServe(
    std::span<const FingerprintRef> probes) const {
  SENTINEL_PROFILE_SCOPE("identify.batch_serve");
  const std::size_t rows = probes.size();
  std::vector<IdentificationResult> results(rows);
  if (rows == 0) return results;
  if (!fast_path_) {
    for (std::size_t r = 0; r < rows; ++r) {
      results[r] = IdentifyReference(*probes[r].full, *probes[r].fixed);
      RecordQuality(results[r]);
    }
    return results;
  }

  // Row-major F' matrix, same layout as IdentifyBatch.
  std::vector<double> matrix(rows * features::kFPrimeDim);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto& values = probes[r].fixed->values();
    std::copy(values.begin(), values.end(),
              matrix.begin() +
                  static_cast<std::ptrdiff_t>(r * features::kFPrimeDim));
  }

  // Stage 1: type-outer threshold sweep — one arena stays cache-hot
  // across the whole probe matrix while each row's scan still stops as
  // soon as the certified tree-suffix bounds decide its verdict. The
  // accept set is exact; recorded probabilities are bounds on early exit.
  for (std::size_t r = 0; r < rows; ++r) {
    results[r].acceptance_threshold = config_.acceptance_threshold;
    results[r].bank_probabilities.resize(types_.size());
    results[r].bank_labels.reserve(types_.size());
  }
  const std::span<const double> flat_matrix(matrix);
  std::uint64_t early_exits = 0;
  for (std::size_t k = 0; k < types_.size(); ++k) {
    const PerType& entry = types_[k];
    for (std::size_t r = 0; r < rows; ++r) {
      const auto verdict = entry.flat.PositiveProbaThreshold(
          flat_matrix.subspan(r * features::kFPrimeDim,
                              features::kFPrimeDim),
          config_.acceptance_threshold);
      results[r].bank_probabilities[k] = verdict.probability;
      results[r].bank_labels.push_back(entry.label);
      if (verdict.accepted) results[r].matched_types.push_back(entry.label);
      if (verdict.early_exit) ++early_exits;
    }
  }
  if (handles_.bank_early_exit != nullptr && early_exits > 0)
    handles_.bank_early_exit->Increment(early_exits);

  // Stage 2: sequential per probe (the serving drain owns one core) with
  // one shared scratch across the whole batch.
  ServeScratch scratch;
  std::uint64_t accepts = 0;
  std::uint64_t multi = 0;
  std::uint64_t unknown = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    IdentificationResult& result = results[r];
    accepts += result.matched_types.size();
    if (result.matched_types.size() > 1) ++multi;
    if (result.matched_types.empty()) {
      ++unknown;
      RecordQuality(result);
      continue;
    }
    DiscriminateServe(*probes[r].full, result, scratch);
    RecordQuality(result);
  }
  if (handles_.identify_total != nullptr) {
    handles_.identify_total->Increment(rows);
    handles_.accepts_total->Increment(accepts);
    if (multi > 0) handles_.multi_match_total->Increment(multi);
    if (unknown > 0) handles_.unknown_total->Increment(unknown);
  }
  return results;
}

// Model bundle format: 'S''I''D' ver(1) | config | u32 type_count |
// per type: i32 label, RandomForest, u32 reference_count, references.
void DeviceIdentifier::Save(net::ByteWriter& w) const {
  w.WriteU8('S');
  w.WriteU8('I');
  w.WriteU8('D');
  w.WriteU8(1);  // version
  w.WriteU32(static_cast<std::uint32_t>(config_.negative_ratio));
  w.WriteU32(static_cast<std::uint32_t>(config_.discrimination_references));
  w.WriteU64(static_cast<std::uint64_t>(config_.acceptance_threshold * 1e9));
  w.WriteU64(static_cast<std::uint64_t>(config_.rejection_distance * 1e9));
  w.WriteU64(config_.seed);
  w.WriteU32(static_cast<std::uint32_t>(types_.size()));
  for (const auto& entry : types_) {
    w.WriteU32(static_cast<std::uint32_t>(entry.label));
    entry.classifier.Save(w);
    w.WriteU32(static_cast<std::uint32_t>(entry.references.size()));
    for (const auto& reference : entry.references)
      features::EncodeFingerprint(w, reference);
  }
}

DeviceIdentifier DeviceIdentifier::Load(net::ByteReader& r) {
  if (r.ReadU8() != 'S' || r.ReadU8() != 'I' || r.ReadU8() != 'D')
    throw net::CodecError("not a serialized device identifier");
  if (r.ReadU8() != 1)
    throw net::CodecError("unsupported device-identifier version");
  IdentifierConfig config;
  config.negative_ratio = r.ReadU32();
  config.discrimination_references = r.ReadU32();
  config.acceptance_threshold = static_cast<double>(r.ReadU64()) / 1e9;
  config.rejection_distance = static_cast<double>(r.ReadU64()) / 1e9;
  config.seed = r.ReadU64();
  DeviceIdentifier identifier(config);
  const std::uint32_t type_count = r.ReadU32();
  identifier.types_.reserve(type_count);
  for (std::uint32_t t = 0; t < type_count; ++t) {
    PerType entry;
    entry.label = static_cast<int>(r.ReadU32());
    entry.classifier = ml::RandomForest::Load(r);
    const std::uint32_t reference_count = r.ReadU32();
    entry.references.reserve(reference_count);
    for (std::uint32_t i = 0; i < reference_count; ++i)
      entry.references.push_back(features::DecodeFingerprint(r));
    CompileEntry(entry);
    identifier.labels_.push_back(entry.label);
    identifier.types_.push_back(std::move(entry));
  }
  identifier.RebuildLabelIndex();
  identifier.CompileServeIndex();
  return identifier;
}

void DeviceIdentifier::SaveToFile(const std::string& path) const {
  net::ByteWriter w;
  Save(w);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("cannot open " + path + " for writing");
  const auto bytes = w.bytes();
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size())
    throw std::runtime_error("short write to " + path);
}

DeviceIdentifier DeviceIdentifier::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("cannot open " + path + " for reading");
  std::vector<std::uint8_t> data;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    data.insert(data.end(), buf, buf + n);
  std::fclose(f);
  net::ByteReader r(data);
  return Load(r);
}

double DeviceIdentifier::MeanOobAccuracy() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& entry : types_) {
    const double oob = entry.classifier.oob_accuracy();
    if (std::isnan(oob)) continue;
    sum += oob;
    ++counted;
  }
  return counted == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : sum / static_cast<double>(counted);
}

std::size_t DeviceIdentifier::MemoryBytes() const {
  std::size_t total = sizeof(*this) + labels_.capacity() * sizeof(int);
  for (const auto& entry : types_) {
    total += entry.classifier.MemoryBytes();
    total += entry.flat.MemoryBytes();
    total += entry.reference_table.MemoryBytes();
    for (const auto& ids : entry.reference_ids)
      total += ids.capacity() * sizeof(std::uint32_t);
    for (const auto& reference : entry.references) {
      total += reference.size() * sizeof(features::PacketFeatureVector);
    }
  }
  total += serve_.table.MemoryBytes();
  for (const auto& per_type : serve_.reference_ids)
    for (const auto& ids : per_type)
      total += ids.capacity() * sizeof(std::uint32_t);
  for (const auto& per_type : serve_.reference_bags)
    for (const auto& bag : per_type)
      total += bag.capacity() * sizeof(std::pair<std::uint32_t, std::uint32_t>);
  return total;
}

}  // namespace sentinel::core
