// The paper's two-stage device-type identification (Sect. IV-B):
//   1. one binary Random Forest per known device-type, trained one-vs-rest
//      with a 10:1 negative subsample (Sect. VI-B);
//   2. when several classifiers accept a fingerprint, Damerau-Levenshtein
//      edit-distance discrimination against 5 reference fingerprints per
//      candidate type; the lowest dissimilarity score in [0,5] wins.
// A fingerprint rejected by every classifier is reported as an unknown
// device-type (which the enforcement layer maps to strict isolation).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "features/edit_distance.h"
#include "features/fingerprint.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "util/thread_pool.h"

namespace sentinel::core {

struct IdentifierConfig {
  /// Negative samples per positive sample when training each per-type
  /// classifier (paper: 10*n).
  std::size_t negative_ratio = 10;
  /// Reference fingerprints per candidate type for edit-distance
  /// discrimination (paper: 5).
  std::size_t discrimination_references = 5;
  /// Acceptance threshold on the forest's positive-class probability.
  /// Deliberately below 0.5: with the paper's 10:1 negative sampling, a
  /// device-type whose siblings share its hardware/firmware sees nearly as
  /// many indistinguishable negatives as positives, leaving the posterior
  /// for the shared behaviour region near n/(n + siblings). A majority
  /// vote would reject such fingerprints entirely ("new device"), whereas
  /// the paper reports them as multi-matches resolved by edit distance.
  double acceptance_threshold = 0.35;
  /// Open-set rejection gate on the discrimination stage: if even the best
  /// candidate's mean normalized edit distance exceeds this value, the
  /// fingerprint is "like" none of its accepting classifiers' references
  /// and is reported as a new device-type. (The paper relies on all
  /// classifiers rejecting; this gate additionally catches fingerprints
  /// that slip past loosely-fitting one-vs-rest forests.)
  double rejection_distance = 0.78;
  ml::RandomForestConfig forest;
  std::uint64_t seed = 17;
};

/// Identification outcome with the per-stage timing the paper reports in
/// Table IV.
struct IdentificationResult {
  /// Index into the trained type list, or nullopt for "new device-type".
  std::optional<int> type;
  /// Types whose classifier accepted the fingerprint (pre-discrimination).
  std::vector<int> matched_types;
  /// Full bank-scan provenance: every trained type's label and its
  /// classifier's positive-class probability, in bank order, plus the
  /// acceptance threshold in force — what `sentinelctl explain` and the
  /// flight recorder show as per-classifier votes.
  std::vector<int> bank_labels;
  std::vector<double> bank_probabilities;
  double acceptance_threshold = 0.0;
  /// Dissimilarity scores per matched type (empty if <= 1 match).
  std::vector<double> dissimilarity_scores;
  /// Number of edit-distance computations performed.
  std::size_t edit_distance_count = 0;
  /// Equal-dissimilarity tie-break coin flips taken while discriminating
  /// (identical on the fast and reference paths — pruning never eliminates
  /// a tie or the winner).
  std::size_t tie_break_count = 0;
  std::chrono::nanoseconds classification_time{0};
  std::chrono::nanoseconds discrimination_time{0};

  [[nodiscard]] bool IsKnown() const { return type.has_value(); }
};

/// One labelled training example: both fingerprint forms of one episode.
struct LabelledFingerprint {
  const features::Fingerprint* full = nullptr;     // F
  const features::FixedFingerprint* fixed = nullptr;  // F'
  int label = 0;
};

class DeviceIdentifier {
 public:
  explicit DeviceIdentifier(IdentifierConfig config = {})
      : config_(config) {}

  /// Opts this identifier into parallel execution: Train() spreads the
  /// per-type classifiers (and each classifier's trees) over the pool, and
  /// Identify() parallelizes the classifier-bank scan plus the per-candidate
  /// edit-distance computations. nullptr (the default) is fully sequential.
  /// Results are identical either way — parallel sections only fill
  /// per-index slots that are merged in deterministic order — so callers can
  /// flip this on without changing any output. The pool is runtime wiring,
  /// not model state: it is never serialized and a Load()ed identifier
  /// starts sequential.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] util::ThreadPool* thread_pool() const { return pool_; }

  /// Attaches identification telemetry to `registry`: bank-scan accept and
  /// tie-break counters, edit-distance totals, classification /
  /// discrimination latency histograms, bank-training time and the
  /// type-count gauge. Like the thread pool, the registry is runtime
  /// wiring, not model state — it is never serialized, a Load()ed
  /// identifier starts uninstrumented, and with nullptr (the default)
  /// Identify() takes no clock reads beyond the per-stage timings it
  /// already reports in IdentificationResult. Timing never feeds back into
  /// classification, so results are identical with metrics on or off.
  void set_metrics(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches the model-quality monitor: every Identify()/IdentifyBatch()
  /// verdict is reduced to a QualitySample (top-1 vs top-2 margin,
  /// tie-break count, unknown flag, winning dissimilarity) and recorded.
  /// Runtime wiring like the registry — never serialized, purely
  /// read-side, so verdicts and Save() bytes are bit-identical with a
  /// monitor attached or not. Binds the monitor to the trained label list
  /// now and again after every Train()/AddType().
  void set_quality_monitor(obs::QualityMonitor* monitor);
  [[nodiscard]] obs::QualityMonitor* quality_monitor() const {
    return quality_;
  }

  /// Trains one classifier per distinct label in `examples` and stores
  /// reference fingerprints for discrimination. Labels may be sparse; the
  /// identifier reports them back verbatim.
  void Train(const std::vector<LabelledFingerprint>& examples);

  /// Adds a single new device-type without retraining the others — the
  /// paper's "new classifier is trained without making any modification to
  /// the existing classifiers". Existing labels' negative pools are not
  /// revisited.
  void AddType(int label, const std::vector<LabelledFingerprint>& examples,
               const std::vector<LabelledFingerprint>& negatives);

  /// Routes Identify() through the compiled fast path (arena-flattened
  /// classifier bank + pruned edit-distance tie-break, the default) or the
  /// reference implementation. Verdicts, bank probabilities, matched-type
  /// lists and the winning dissimilarity score are bit-identical either
  /// way (differentially tested); only dissimilarity scores of candidates
  /// that provably lost may differ (the fast path records a certified
  /// lower bound instead of finishing the computation), along with
  /// edit_distance_count.
  void set_fast_path(bool on) { fast_path_ = on; }
  [[nodiscard]] bool fast_path() const { return fast_path_; }

  /// Opt-in stage-1 early exit: stop scanning a classifier's trees once
  /// the accept/reject verdict is certain from the remaining trees'
  /// probability bounds. Verdicts (and therefore identifications) stay
  /// exact, but the recorded bank_probabilities become certified bounds
  /// rather than exact probabilities whenever a scan exits early — hence
  /// off by default, where recorded probabilities are bit-identical to
  /// the reference. Only affects the fast path.
  void set_bank_early_exit(bool on) { bank_early_exit_ = on; }
  [[nodiscard]] bool bank_early_exit() const { return bank_early_exit_; }

  /// Identifies one fingerprint (through the fast path unless
  /// set_fast_path(false)).
  [[nodiscard]] IdentificationResult Identify(
      const features::Fingerprint& full,
      const features::FixedFingerprint& fixed) const;

  /// The pre-fast-path implementation, kept verbatim for A/B comparison,
  /// differential testing and honest benchmarking. Identify() with
  /// set_fast_path(false) routes here.
  [[nodiscard]] IdentificationResult IdentifyReference(
      const features::Fingerprint& full,
      const features::FixedFingerprint& fixed) const;

  /// One probe of a batched identification: both fingerprint forms, owned
  /// by the caller for the duration of the call.
  struct FingerprintRef {
    const features::Fingerprint* full = nullptr;
    const features::FixedFingerprint* fixed = nullptr;
  };

  /// Batched identification: scans the whole bank over a row-major matrix
  /// of all probes' F' vectors (one PositiveProbaBatch sweep per type, the
  /// arena staying cache-hot across probes), then discriminates the probes
  /// in parallel on the thread pool. Each result is bit-identical to the
  /// corresponding per-call Identify() on the default fast path — every
  /// probe derives its reference picks and tie-break coins from its own
  /// probe-hash-seeded RNG stream, so batching cannot reorder them. The
  /// batch always uses the exact batched scan (bank_early_exit does not
  /// apply). classification_time is reported as the probe's even share of
  /// the one batched scan.
  [[nodiscard]] std::vector<IdentificationResult> IdentifyBatch(
      std::span<const FingerprintRef> probes) const;

  /// Serving-grade batch identification: the kernel behind the always-on
  /// server's micro-batched drain. Verdict-grade fields — type,
  /// matched_types, tie_break_count and every dissimilarity score of a
  /// candidate that completed discrimination (the winner always does) —
  /// are bit-identical to Identify()/IdentifyBatch() on the default fast
  /// path: the stage-1 accept test is exact (threshold early exit decides
  /// the same verdict from certified tree-suffix bounds) and stage-2
  /// pruning only ever eliminates candidates provably unable to win or
  /// tie, leaving the probe-hash-seeded RNG stream untouched. Provenance
  /// differs in grade, not meaning: bank_probabilities are certified
  /// bounds when a scan exits early (as with set_bank_early_exit),
  /// pruned losers may record lower bounds reached before the DP was
  /// entered (a cheap bag-of-packets bound prunes most of them), and the
  /// per-stage timings are zero — the serving loop takes no per-probe
  /// clock reads. Runs sequentially on the calling thread (the drain
  /// thread of a one-core gateway), never touching the thread pool.
  [[nodiscard]] std::vector<IdentificationResult> IdentifyBatchServe(
      std::span<const FingerprintRef> probes) const;

  [[nodiscard]] std::size_t type_count() const { return types_.size(); }
  /// Mean out-of-bag accuracy across the per-type classifiers — a model
  /// quality estimate available right after training, without a held-out
  /// set. NaN before training or after Load().
  [[nodiscard]] double MeanOobAccuracy() const;
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }
  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Persists the trained model bundle (config, per-type forests and
  /// discrimination references); Load() restores a ready-to-serve
  /// identifier. This is how the IoTSSP stores its classifier bank.
  void Save(net::ByteWriter& w) const;
  static DeviceIdentifier Load(net::ByteReader& r);
  void SaveToFile(const std::string& path) const;
  static DeviceIdentifier LoadFromFile(const std::string& path);

 private:
  struct PerType {
    int label = 0;
    ml::RandomForest classifier;
    /// Arena-compiled form of `classifier`, rebuilt after every Train /
    /// AddType / Load (never serialized — Save() bytes are untouched by
    /// compilation).
    ml::FlatForest flat;
    /// Training fingerprints retained as discrimination references.
    std::vector<features::Fingerprint> references;
    /// Interned forms of `references`, built alongside `flat`: each
    /// reference's packets as dense ids over a per-type frozen table.
    /// DiscriminateFast interns only the probe (lookup-only) against this
    /// table per candidate, so the per-reference interning work that would
    /// otherwise repeat on every identification happens once here.
    features::PacketInterner reference_table;
    std::vector<std::vector<std::uint32_t>> reference_ids;
  };

  /// Cross-type serve index: one interner spanning every type's
  /// references, so DiscriminateServe interns a probe once per probe
  /// (instead of once per candidate type) and builds one Myers pattern
  /// reused across all candidates. Id equality over the shared table is
  /// still equivalent to packet equality, so every edit distance is
  /// unchanged. Rebuilt by CompileServeIndex(); never serialized.
  struct ServeIndex {
    features::PacketInterner table;
    /// Per types_ slot, per reference: its packets as ids in `table`'s
    /// space (same sequences as PerType::reference_ids, different ids).
    std::vector<std::vector<std::vector<std::uint32_t>>> reference_ids;
    /// Per types_ slot, per reference: its interned ids as a sorted
    /// (id, count) multiset. The serve path intersects a probe's id
    /// histogram with these bags to certify the OSA lower bound
    /// max(n, m) - |bag intersection| before committing to a DP (every
    /// kept element of an alignment consumes one occurrence from each
    /// side).
    std::vector<std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>>
        reference_bags;
  };

  /// Compiles `entry`'s runtime acceleration structures (arena forest +
  /// interned references) from its trained state. Called after TrainOne /
  /// AddType / Load; never affects serialized bytes.
  static void CompileEntry(PerType& entry);

  /// Rebuilds serve_ from types_. Called (sequentially) after Train /
  /// AddType / Load, alongside RebuildLabelIndex.
  void CompileServeIndex();

  /// Trains one per-type binary classifier. Rows are the pre-flattened F'
  /// vectors of the positives / candidate negatives (flattening is hoisted
  /// to Train()/AddType() so each example is converted once, not once per
  /// classifier that samples it).
  void TrainOne(PerType& entry,
                const std::vector<LabelledFingerprint>& positives,
                const std::vector<const std::vector<double>*>& positive_rows,
                const std::vector<const std::vector<double>*>& negative_rows,
                std::uint64_t salt);

  /// Metric handles resolved once in set_metrics(); all-null when no
  /// registry is attached, so each hot-path record is a single branch.
  struct IdentifierMetrics {
    obs::Histogram* bank_train_ns = nullptr;
    obs::Histogram* classification_ns = nullptr;
    obs::Histogram* discrimination_ns = nullptr;
    obs::Counter* identify_total = nullptr;
    obs::Counter* unknown_total = nullptr;
    obs::Counter* multi_match_total = nullptr;
    obs::Counter* accepts_total = nullptr;
    obs::Counter* edit_distance_total = nullptr;
    obs::Counter* tiebreak_total = nullptr;
    obs::Counter* editdist_pruned = nullptr;
    obs::Counter* bank_early_exit = nullptr;
    obs::Gauge* types = nullptr;
  };

  /// Fast-path stage 1 for one probe: fills bank_labels /
  /// bank_probabilities / matched_types via the compiled bank.
  void ScanBankFast(std::span<const double> row,
                    IdentificationResult& result) const;
  /// Fast-path stage 2 (pruned tie-break) for one probe whose
  /// matched_types is non-empty. Sequential over candidates and
  /// references (the pruning budget accumulates left to right), so it is
  /// thread-pool independent and safe to run per-probe in IdentifyBatch.
  void DiscriminateFast(const features::Fingerprint& full,
                        IdentificationResult& result,
                        features::EditDistanceScratch& scratch) const;
  [[nodiscard]] IdentificationResult IdentifyFast(
      const features::Fingerprint& full,
      const features::FixedFingerprint& fixed) const;

  /// Reusable buffers for the serving-grade batch kernel: one instance
  /// serves a whole batch with no per-probe or per-candidate allocation.
  struct ServeScratch {
    features::EditDistanceScratch ed;
    /// Fisher-Yates index buffer for reference picks.
    std::vector<std::size_t> indices;
    /// Probe packet-id histogram over the serve table, kept all-zero
    /// between probes (each probe zeroes exactly the ids it touched).
    std::vector<std::uint32_t> counts;
    /// Per-chosen-reference bag lower bounds for the current candidate.
    std::vector<std::size_t> bag_lb;
  };

  /// Serving-grade stage 2: DiscriminateFast's exact control flow (same
  /// RNG stream, same pruning certificates, same ties and coins) with the
  /// per-candidate type lookup through label_index_, scratch-buffer reuse
  /// instead of per-candidate allocation, bag-bound pre-DP pruning, and
  /// no clock reads or spans.
  void DiscriminateServe(const features::Fingerprint& full,
                         IdentificationResult& result,
                         ServeScratch& scratch) const;

  /// Reduces a finished result to a QualitySample and records it on the
  /// attached monitor (single branch when detached). Read-only: never
  /// mutates the result or feeds back into identification.
  void RecordQuality(const IdentificationResult& result) const;

  /// Rebuilds label_index_ from types_; called after Train / AddType /
  /// Load (runtime acceleration only, never serialized).
  void RebuildLabelIndex();

  IdentifierConfig config_;
  std::vector<PerType> types_;
  ServeIndex serve_;
  std::vector<int> labels_;
  /// label -> index into types_, so discrimination resolves a candidate
  /// without a linear scan over the bank.
  std::unordered_map<int, std::size_t> label_index_;
  util::ThreadPool* pool_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::QualityMonitor* quality_ = nullptr;
  IdentifierMetrics handles_;
  bool fast_path_ = true;
  bool bank_early_exit_ = false;
};

}  // namespace sentinel::core
