#include "core/device_monitor.h"

#include "obs/log.h"
#include "obs/scoped_timer.h"

namespace sentinel::core {

void DeviceMonitor::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    handles_ = MonitorMetrics{};
    return;
  }
  handles_.capture_ns = &registry->GetHistogram(
      "sentinel_stage_capture_ns",
      "per-packet setup-phase capture time (tracking + feature extraction)");
  handles_.fingerprint_ns = &registry->GetHistogram(
      "sentinel_stage_fingerprint_ns",
      "fingerprint assembly time when a setup phase completes");
  handles_.packets_total = &registry->GetCounter(
      "sentinel_monitor_packets_total", "packets observed by the monitor");
  handles_.captures_total = &registry->GetCounter(
      "sentinel_monitor_captures_total", "setup-phase captures completed");
  handles_.tracked = &registry->GetGauge(
      "sentinel_monitor_tracked_devices", "distinct MACs currently tracked");
  handles_.tracked->Set(static_cast<double>(states_.size()));
}

std::optional<CompletedCapture> DeviceMonitor::Observe(
    const net::ParsedPacket& packet) {
  obs::ScopedTimer capture_timer(handles_.capture_ns);
  if (handles_.packets_total != nullptr) handles_.packets_total->Increment();
  auto [it, inserted] = states_.try_emplace(packet.src_mac, config_);
  DeviceState& state = it->second;
  if (inserted) {
    if (handles_.tracked != nullptr)
      handles_.tracked->Set(static_cast<double>(states_.size()));
    if (tracer_ != nullptr) {
      state.trace_id = tracer_->NewTraceId();
      tracer_->LabelTrace(state.trace_id,
                          "device " + packet.src_mac.ToString());
    }
    if (recorder_ != nullptr) {
      recorder_->SetTraceId(packet.src_mac, state.trace_id);
      recorder_->Record(packet.src_mac,
                        {.kind = obs::DeviceEventKind::kFirstSeen,
                         .timestamp_ns = packet.timestamp_ns});
    }
  }
  if (state.fingerprinted) return std::nullopt;

  obs::ScopedSpan capture_span(tracer_, "sentinel_stage_capture",
                               state.trace_id);
  const bool accepted = state.tracker.Offer(packet);
  if (recorder_ != nullptr) {
    recorder_->Record(packet.src_mac,
                      {.kind = obs::DeviceEventKind::kPacketObserved,
                       .timestamp_ns = packet.timestamp_ns,
                       .flag = accepted});
  }
  if (accepted) {
    state.vectors.push_back(state.extractor.Extract(packet));
    if (!state.tracker.Done()) return std::nullopt;
    // max_packets reached: the phase ends with this packet included.
    capture_timer.Stop();  // fingerprint assembly is its own stage
    capture_span.End();
    return Finish(packet.src_mac, state);
  }
  // The packet arrived after the idle gap: the setup phase ended before it.
  capture_timer.Stop();
  capture_span.End();
  return Finish(packet.src_mac, state);
}

std::vector<CompletedCapture> DeviceMonitor::FlushIdle(std::uint64_t now_ns) {
  std::vector<CompletedCapture> out;
  for (auto& [mac, state] : states_) {
    if (state.fingerprinted || state.vectors.empty()) continue;
    if (state.tracker.CheckIdle(now_ns)) out.push_back(Finish(mac, state));
  }
  return out;
}

void DeviceMonitor::Forget(const net::MacAddress& mac) {
  states_.erase(mac);
  if (handles_.tracked != nullptr)
    handles_.tracked->Set(static_cast<double>(states_.size()));
}

CompletedCapture DeviceMonitor::Finish(const net::MacAddress& mac,
                                       DeviceState& state) {
  obs::ScopedSpan fingerprint_span(tracer_, "sentinel_stage_fingerprint",
                                   state.trace_id);
  obs::ScopedTimer fingerprint_timer(handles_.fingerprint_ns);
  state.fingerprinted = true;
  CompletedCapture capture;
  capture.device_mac = mac;
  capture.packet_count = state.vectors.size();
  capture.trace_id = state.trace_id;
  capture.full = features::Fingerprint::FromPacketVectors(state.vectors);
  capture.fixed = features::FixedFingerprint::FromFingerprint(capture.full);
  state.vectors.clear();
  state.vectors.shrink_to_fit();
  if (handles_.captures_total != nullptr) handles_.captures_total->Increment();
  if (fingerprint_span.enabled()) {
    fingerprint_span.AddArg("packets", std::to_string(capture.packet_count));
    fingerprint_span.AddArg("f_rows", std::to_string(capture.full.size()));
    fingerprint_span.AddArg(
        "f_prime_packets", std::to_string(capture.fixed.packet_count()));
  }
  if (recorder_ != nullptr) {
    recorder_->Record(mac,
                      {.kind = obs::DeviceEventKind::kCaptureComplete,
                       .value = static_cast<double>(capture.packet_count),
                       .extra = static_cast<double>(capture.full.size())});
    recorder_->Record(
        mac, {.kind = obs::DeviceEventKind::kFingerprintReady,
              .value = static_cast<double>(capture.full.size()),
              .extra = static_cast<double>(capture.fixed.packet_count())});
  }
  SENTINEL_LOG_DEBUG("monitor", "capture_complete",
                     {"mac", mac.ToString()},
                     {"packets", capture.packet_count});
  return capture;
}

}  // namespace sentinel::core
