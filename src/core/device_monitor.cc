#include "core/device_monitor.h"

namespace sentinel::core {

std::optional<CompletedCapture> DeviceMonitor::Observe(
    const net::ParsedPacket& packet) {
  auto [it, inserted] = states_.try_emplace(packet.src_mac, config_);
  DeviceState& state = it->second;
  if (state.fingerprinted) return std::nullopt;

  if (state.tracker.Offer(packet)) {
    state.vectors.push_back(state.extractor.Extract(packet));
    if (!state.tracker.Done()) return std::nullopt;
    // max_packets reached: the phase ends with this packet included.
    return Finish(packet.src_mac, state);
  }
  // The packet arrived after the idle gap: the setup phase ended before it.
  return Finish(packet.src_mac, state);
}

std::vector<CompletedCapture> DeviceMonitor::FlushIdle(std::uint64_t now_ns) {
  std::vector<CompletedCapture> out;
  for (auto& [mac, state] : states_) {
    if (state.fingerprinted || state.vectors.empty()) continue;
    if (state.tracker.CheckIdle(now_ns)) out.push_back(Finish(mac, state));
  }
  return out;
}

void DeviceMonitor::Forget(const net::MacAddress& mac) { states_.erase(mac); }

CompletedCapture DeviceMonitor::Finish(const net::MacAddress& mac,
                                       DeviceState& state) {
  state.fingerprinted = true;
  CompletedCapture capture;
  capture.device_mac = mac;
  capture.packet_count = state.vectors.size();
  capture.full = features::Fingerprint::FromPacketVectors(state.vectors);
  capture.fixed = features::FixedFingerprint::FromFingerprint(capture.full);
  state.vectors.clear();
  state.vectors.shrink_to_fit();
  return capture;
}

}  // namespace sentinel::core
