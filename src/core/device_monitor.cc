#include "core/device_monitor.h"

#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/scoped_timer.h"
#include "util/shard.h"

namespace sentinel::core {

namespace {
/// How far from the cold end of the recency list the eviction walk looks
/// for a fingerprinted (cheap-to-drop) session before falling back to the
/// strict LRU victim.
constexpr std::size_t kEvictionScanDepth = 8;
}  // namespace

DeviceMonitor::DeviceMonitor(DeviceMonitorOptions options)
    : config_(options.setup),
      max_sessions_per_shard_(options.max_sessions_per_shard) {
  const std::size_t shard_count =
      util::NormalizeShardCount(options.shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

DeviceMonitor::Shard& DeviceMonitor::ShardFor(
    const net::MacAddress& mac) const {
  return *shards_[util::ShardIndexFor(mac.ToUint64(), shards_.size())];
}

void DeviceMonitor::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    handles_ = MonitorMetrics{};
    return;
  }
  handles_.capture_ns = &registry->GetHistogram(
      "sentinel_stage_capture_ns",
      "per-packet setup-phase capture time (tracking + feature extraction)");
  handles_.fingerprint_ns = &registry->GetHistogram(
      "sentinel_stage_fingerprint_ns",
      "fingerprint assembly time when a setup phase completes");
  handles_.packets_total = &registry->GetCounter(
      "sentinel_monitor_packets_total", "packets observed by the monitor");
  handles_.captures_total = &registry->GetCounter(
      "sentinel_monitor_captures_total", "setup-phase captures completed");
  handles_.evicted_total = &registry->GetCounter(
      "sentinel_monitor_session_evicted_total",
      "device sessions evicted by the bounded-memory LRU tier");
  handles_.tracked = &registry->GetGauge(
      "sentinel_monitor_tracked_devices", "distinct MACs currently tracked");
  handles_.tracked->Set(static_cast<double>(tracked_count()));
}

void DeviceMonitor::SetTrackedGauge() const {
  if (handles_.tracked != nullptr)
    handles_.tracked->Set(static_cast<double>(tracked_count()));
}

bool DeviceMonitor::EvictOneSession(Shard& shard) {
  if (shard.lru.empty()) return false;
  // Prefer a fingerprinted session near the cold end: its capture buffers
  // are already freed and re-observing it just restarts a capture, whereas
  // evicting a mid-capture device loses setup packets outright.
  auto victim = std::prev(shard.lru.end());
  std::size_t scanned = 0;
  for (auto it = std::prev(shard.lru.end());
       scanned < kEvictionScanDepth; ++scanned) {
    const auto state_it = shard.states.find(*it);
    if (state_it != shard.states.end() && state_it->second.fingerprinted) {
      victim = it;
      break;
    }
    if (it == shard.lru.begin()) break;
    --it;
  }
  const net::MacAddress mac = *victim;
  shard.states.erase(mac);
  shard.lru.erase(victim);
  tracked_count_.fetch_sub(1, std::memory_order_relaxed);
  evicted_.fetch_add(1, std::memory_order_relaxed);
  if (handles_.evicted_total != nullptr) handles_.evicted_total->Increment();
  return true;
}

std::optional<CompletedCapture> DeviceMonitor::Observe(
    const net::ParsedPacket& packet) {
  obs::ScopedTimer capture_timer(handles_.capture_ns);
  SENTINEL_PROFILE_SCOPE("capture.observe");
  if (handles_.packets_total != nullptr) handles_.packets_total->Increment();
  Shard& shard = ShardFor(packet.src_mac);
  MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.states.try_emplace(packet.src_mac, config_);
  DeviceState& state = it->second;
  if (inserted) {
    shard.lru.push_front(packet.src_mac);
    state.lru_pos = shard.lru.begin();
    tracked_count_.fetch_add(1, std::memory_order_relaxed);
    if (max_sessions_per_shard_ > 0) {
      while (shard.states.size() > max_sessions_per_shard_ &&
             EvictOneSession(shard)) {
      }
    }
    SetTrackedGauge();
    if (tracer_ != nullptr) {
      state.trace_id = tracer_->NewTraceId();
      tracer_->LabelTrace(state.trace_id,
                          "device " + packet.src_mac.ToString());
    }
    if (recorder_ != nullptr) {
      recorder_->SetTraceId(packet.src_mac, state.trace_id);
      recorder_->Record(packet.src_mac,
                        {.kind = obs::DeviceEventKind::kFirstSeen,
                         .timestamp_ns = packet.timestamp_ns});
    }
  } else {
    shard.lru.splice(shard.lru.begin(), shard.lru, state.lru_pos);
  }
  if (state.fingerprinted) return std::nullopt;

  obs::ScopedSpan capture_span(tracer_, "sentinel_stage_capture",
                               state.trace_id);
  const bool accepted = state.tracker.Offer(packet);
  if (recorder_ != nullptr) {
    recorder_->Record(packet.src_mac,
                      {.kind = obs::DeviceEventKind::kPacketObserved,
                       .timestamp_ns = packet.timestamp_ns,
                       .flag = accepted});
  }
  if (accepted) {
    state.vectors.push_back(state.extractor.Extract(packet));
    if (!state.tracker.Done()) return std::nullopt;
    // max_packets reached: the phase ends with this packet included.
    capture_timer.Stop();  // fingerprint assembly is its own stage
    capture_span.End();
    return Finish(packet.src_mac, state);
  }
  // The packet arrived after the idle gap: the setup phase ended before it.
  capture_timer.Stop();
  capture_span.End();
  return Finish(packet.src_mac, state);
}

std::vector<CompletedCapture> DeviceMonitor::FlushIdle(std::uint64_t now_ns) {
  std::vector<CompletedCapture> out;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mutex);
    for (auto& [mac, state] : shard.states) {
      if (state.fingerprinted || state.vectors.empty()) continue;
      if (state.tracker.CheckIdle(now_ns)) out.push_back(Finish(mac, state));
    }
  }
  return out;
}

void DeviceMonitor::Forget(const net::MacAddress& mac) {
  Shard& shard = ShardFor(mac);
  {
    MutexLock lock(shard.mutex);
    const auto it = shard.states.find(mac);
    if (it == shard.states.end()) return;
    shard.lru.erase(it->second.lru_pos);
    shard.states.erase(it);
    tracked_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  SetTrackedGauge();
}

std::size_t DeviceMonitor::MemoryBytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += sizeof(Shard);
    total += shard->states.bucket_count() * sizeof(void*);
    for (const auto& [mac, state] : shard->states) {
      total += sizeof(mac) + sizeof(state) + 2 * sizeof(void*);
      total += state.vectors.capacity() *
               sizeof(features::PacketFeatureVector);
      // lru list node: mac + prev/next pointers.
      total += sizeof(net::MacAddress) + 2 * sizeof(void*);
    }
  }
  return total;
}

bool DeviceMonitor::IsKnown(const net::MacAddress& mac) const {
  const Shard& shard = ShardFor(mac);
  MutexLock lock(shard.mutex);
  return shard.states.contains(mac);
}

bool DeviceMonitor::IsCollecting(const net::MacAddress& mac) const {
  const Shard& shard = ShardFor(mac);
  MutexLock lock(shard.mutex);
  const auto it = shard.states.find(mac);
  return it != shard.states.end() && !it->second.fingerprinted;
}

obs::TraceId DeviceMonitor::trace_id(const net::MacAddress& mac) const {
  const Shard& shard = ShardFor(mac);
  MutexLock lock(shard.mutex);
  const auto it = shard.states.find(mac);
  return it == shard.states.end() ? 0 : it->second.trace_id;
}

CompletedCapture DeviceMonitor::Finish(const net::MacAddress& mac,
                                       DeviceState& state) {
  obs::ScopedSpan fingerprint_span(tracer_, "sentinel_stage_fingerprint",
                                   state.trace_id);
  obs::ScopedTimer fingerprint_timer(handles_.fingerprint_ns);
  SENTINEL_PROFILE_SCOPE("fingerprint.assemble");
  state.fingerprinted = true;
  CompletedCapture capture;
  capture.device_mac = mac;
  capture.packet_count = state.vectors.size();
  capture.trace_id = state.trace_id;
  capture.full = features::Fingerprint::FromPacketVectors(state.vectors);
  capture.fixed = features::FixedFingerprint::FromFingerprint(capture.full);
  state.vectors.clear();
  state.vectors.shrink_to_fit();
  if (handles_.captures_total != nullptr) handles_.captures_total->Increment();
  if (fingerprint_span.enabled()) {
    fingerprint_span.AddArg("packets", std::to_string(capture.packet_count));
    fingerprint_span.AddArg("f_rows", std::to_string(capture.full.size()));
    fingerprint_span.AddArg(
        "f_prime_packets", std::to_string(capture.fixed.packet_count()));
  }
  if (recorder_ != nullptr) {
    recorder_->Record(mac,
                      {.kind = obs::DeviceEventKind::kCaptureComplete,
                       .value = static_cast<double>(capture.packet_count),
                       .extra = static_cast<double>(capture.full.size())});
    recorder_->Record(
        mac, {.kind = obs::DeviceEventKind::kFingerprintReady,
              .value = static_cast<double>(capture.full.size()),
              .extra = static_cast<double>(capture.fixed.packet_count())});
  }
  SENTINEL_LOG_DEBUG("monitor", "capture_complete",
                     {"mac", mac.ToString()},
                     {"packets", capture.packet_count});
  return capture;
}

}  // namespace sentinel::core
