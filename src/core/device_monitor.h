// Device monitoring on the Security Gateway (paper Fig. 1 "Device
// monitoring" + "Fingerprinting" blocks): tracks every MAC seen on the
// network, collects the setup-phase packets of new devices, and emits a
// fingerprint once the setup phase ends.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "capture/setup_phase.h"
#include "features/fingerprint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sentinel::core {

/// A completed setup capture ready for identification.
struct CompletedCapture {
  net::MacAddress device_mac;
  features::Fingerprint full;
  features::FixedFingerprint fixed;
  std::size_t packet_count = 0;
  /// The device's provenance trace (0 when the monitor has no tracer);
  /// downstream stages open their spans on it so one trace id follows the
  /// device from first packet to installed rule.
  obs::TraceId trace_id = 0;
};

class DeviceMonitor {
 public:
  explicit DeviceMonitor(capture::SetupPhaseConfig config = {})
      : config_(config) {}

  /// Feeds one packet (already attributed to its source device by MAC).
  /// Returns a capture when this packet completes a device's setup phase.
  std::optional<CompletedCapture> Observe(const net::ParsedPacket& packet);

  /// Clock-driven flush: returns captures of devices whose setup phase
  /// ended by idle timeout (no further packets arrived to trigger it).
  std::vector<CompletedCapture> FlushIdle(std::uint64_t now_ns);

  /// Forgets a device (e.g. after it leaves the network), so a future
  /// appearance is fingerprinted anew.
  void Forget(const net::MacAddress& mac);

  [[nodiscard]] bool IsKnown(const net::MacAddress& mac) const {
    return states_.contains(mac);
  }
  /// True while the device's setup phase is still being captured (known
  /// but not yet fingerprinted).
  [[nodiscard]] bool IsCollecting(const net::MacAddress& mac) const {
    const auto it = states_.find(mac);
    return it != states_.end() && !it->second.fingerprinted;
  }
  [[nodiscard]] std::size_t tracked_count() const { return states_.size(); }

  /// Attaches capture/fingerprint telemetry: the `sentinel_stage_capture_ns`
  /// histogram (per-packet setup-phase bookkeeping + feature extraction),
  /// the `sentinel_stage_fingerprint_ns` histogram (fingerprint assembly
  /// when a setup phase completes), packet/capture counters and the
  /// tracked-devices gauge. nullptr detaches; the uninstrumented path takes
  /// no clock reads.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches decision-provenance tracing: each newly seen MAC is assigned
  /// its own trace id (labelled "device <mac>") and per-packet capture /
  /// fingerprint-assembly spans join it. nullptr detaches — untraced runs
  /// take one branch per site and stay bit-identical.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Attaches the per-device flight recorder journaling first-seen,
  /// setup-phase packet accept/reject and capture/fingerprint completion.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  /// Trace id assigned to `mac` (0 when unknown or untraced).
  [[nodiscard]] obs::TraceId trace_id(const net::MacAddress& mac) const {
    const auto it = states_.find(mac);
    return it == states_.end() ? 0 : it->second.trace_id;
  }

 private:
  struct DeviceState {
    capture::SetupPhaseTracker tracker;
    features::FeatureExtractor extractor;
    std::vector<features::PacketFeatureVector> vectors;
    bool fingerprinted = false;
    obs::TraceId trace_id = 0;

    explicit DeviceState(const capture::SetupPhaseConfig& config)
        : tracker(config) {}
  };

  struct MonitorMetrics {
    obs::Histogram* capture_ns = nullptr;
    obs::Histogram* fingerprint_ns = nullptr;
    obs::Counter* packets_total = nullptr;
    obs::Counter* captures_total = nullptr;
    obs::Gauge* tracked = nullptr;
  };

  CompletedCapture Finish(const net::MacAddress& mac, DeviceState& state);

  capture::SetupPhaseConfig config_;
  std::unordered_map<net::MacAddress, DeviceState> states_;
  MonitorMetrics handles_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace sentinel::core
