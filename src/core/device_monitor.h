// Device monitoring on the Security Gateway (paper Fig. 1 "Device
// monitoring" + "Fingerprinting" blocks): tracks every MAC seen on the
// network, collects the setup-phase packets of new devices, and emits a
// fingerprint once the setup phase ends.
//
// Fleet scale: session state is sharded by device MAC (util/shard.h) with a
// per-shard lock, and optionally bounded — a per-shard LRU cap evicts the
// least-recently-active session, preferring already-fingerprinted devices
// (whose capture buffers are long freed) over ones mid-capture. Defaults
// (one shard, no cap) reproduce the seed behavior exactly.
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "capture/setup_phase.h"
#include "features/fingerprint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::core {

/// A completed setup capture ready for identification.
struct CompletedCapture {
  net::MacAddress device_mac;
  features::Fingerprint full;
  features::FixedFingerprint fixed;
  std::size_t packet_count = 0;
  /// The device's provenance trace (0 when the monitor has no tracer);
  /// downstream stages open their spans on it so one trace id follows the
  /// device from first packet to installed rule.
  obs::TraceId trace_id = 0;
};

struct DeviceMonitorOptions {
  capture::SetupPhaseConfig setup{};
  /// Session-table shards; rounded up to a power of two.
  std::size_t shard_count = 1;
  /// Bounded-memory tier: maximum device sessions per shard; 0 (default)
  /// disables eviction. Evicts the least-recently-active session,
  /// preferring fingerprinted ones.
  std::size_t max_sessions_per_shard = 0;
};

class DeviceMonitor {
 public:
  explicit DeviceMonitor(capture::SetupPhaseConfig config = {})
      : DeviceMonitor(DeviceMonitorOptions{.setup = config}) {}
  explicit DeviceMonitor(DeviceMonitorOptions options);

  /// Feeds one packet (already attributed to its source device by MAC).
  /// Returns a capture when this packet completes a device's setup phase.
  /// Thread-safe per shard; attach tracer/recorder only in single-threaded
  /// runs (they are driven under the shard lock).
  std::optional<CompletedCapture> Observe(const net::ParsedPacket& packet);

  /// Clock-driven flush: returns captures of devices whose setup phase
  /// ended by idle timeout (no further packets arrived to trigger it).
  std::vector<CompletedCapture> FlushIdle(std::uint64_t now_ns);

  /// Forgets a device (e.g. after it leaves the network), so a future
  /// appearance is fingerprinted anew.
  void Forget(const net::MacAddress& mac);

  [[nodiscard]] bool IsKnown(const net::MacAddress& mac) const;
  /// True while the device's setup phase is still being captured (known
  /// but not yet fingerprinted).
  [[nodiscard]] bool IsCollecting(const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t tracked_count() const {
    return tracked_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Sessions evicted by the bounded-memory tier so far.
  [[nodiscard]] std::uint64_t evicted_total() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Estimated bytes held by the session tables (shards, tracked-device
  /// state, capture buffers). Takes each shard lock in turn; scrape
  /// path, not packet path.
  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Attaches capture/fingerprint telemetry: the `sentinel_stage_capture_ns`
  /// histogram (per-packet setup-phase bookkeeping + feature extraction),
  /// the `sentinel_stage_fingerprint_ns` histogram (fingerprint assembly
  /// when a setup phase completes), packet/capture/eviction counters and
  /// the tracked-devices gauge. nullptr detaches; the uninstrumented path
  /// takes no clock reads.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches decision-provenance tracing: each newly seen MAC is assigned
  /// its own trace id (labelled "device <mac>") and per-packet capture /
  /// fingerprint-assembly spans join it. nullptr detaches — untraced runs
  /// take one branch per site and stay bit-identical.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Attaches the per-device flight recorder journaling first-seen,
  /// setup-phase packet accept/reject and capture/fingerprint completion.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  /// Trace id assigned to `mac` (0 when unknown or untraced).
  [[nodiscard]] obs::TraceId trace_id(const net::MacAddress& mac) const;

 private:
  struct DeviceState {
    capture::SetupPhaseTracker tracker;
    features::FeatureExtractor extractor;
    std::vector<features::PacketFeatureVector> vectors;
    bool fingerprinted = false;
    obs::TraceId trace_id = 0;
    /// Position in the shard's recency list (front = most recent packet).
    std::list<net::MacAddress>::iterator lru_pos;

    explicit DeviceState(const capture::SetupPhaseConfig& config)
        : tracker(config) {}
  };

  struct Shard {
    mutable Mutex mutex{"monitor.session_shard"};
    std::unordered_map<net::MacAddress, DeviceState> states
        SENTINEL_GUARDED_BY(mutex);
    /// Recency order, front = most recent packet.
    std::list<net::MacAddress> lru SENTINEL_GUARDED_BY(mutex);
  };

  struct MonitorMetrics {
    obs::Histogram* capture_ns = nullptr;
    obs::Histogram* fingerprint_ns = nullptr;
    obs::Counter* packets_total = nullptr;
    obs::Counter* captures_total = nullptr;
    obs::Counter* evicted_total = nullptr;
    obs::Gauge* tracked = nullptr;
  };

  [[nodiscard]] Shard& ShardFor(const net::MacAddress& mac) const;
  /// Evicts one session (LRU, preferring fingerprinted). Returns true if a
  /// session was evicted.
  bool EvictOneSession(Shard& shard) SENTINEL_REQUIRES(shard.mutex);
  CompletedCapture Finish(const net::MacAddress& mac, DeviceState& state);
  void SetTrackedGauge() const;

  capture::SetupPhaseConfig config_;
  std::size_t max_sessions_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // ordering: relaxed (both) — cross-shard counters read for telemetry and
  // capacity accounting only; each mutation happens under some shard lock,
  // and readers only want an eventually consistent total.
  std::atomic<std::size_t> tracked_count_{0};
  std::atomic<std::uint64_t> evicted_{0};
  MonitorMetrics handles_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace sentinel::core
