#include "core/enforcement.h"

#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "util/shard.h"

namespace sentinel::core {

EnforcementEngine::EnforcementEngine(net::MacAddress gateway_mac,
                                     net::Ipv4Address gateway_ip,
                                     EnforcementOptions options)
    : gateway_mac_(gateway_mac),
      gateway_ip_(gateway_ip),
      max_rules_per_shard_(options.max_rules_per_shard) {
  const std::size_t shard_count =
      util::NormalizeShardCount(options.shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

EnforcementEngine::Shard& EnforcementEngine::ShardFor(
    const net::MacAddress& mac) const {
  return *shards_[util::ShardIndexFor(mac.ToUint64(), shards_.size())];
}

void EnforcementEngine::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    handles_ = EnforcementMetrics{};
    return;
  }
  handles_.enforce_ns = &registry->GetHistogram(
      "sentinel_stage_enforce_ns",
      "enforcement-rule installation time per identified device");
  handles_.rules_strict_total = &registry->GetCounter(
      "sentinel_enforce_rules_strict_total",
      "enforcement rules installed at strict isolation");
  handles_.rules_restricted_total = &registry->GetCounter(
      "sentinel_enforce_rules_restricted_total",
      "enforcement rules installed at restricted isolation");
  handles_.rules_trusted_total = &registry->GetCounter(
      "sentinel_enforce_rules_trusted_total",
      "enforcement rules installed at trusted isolation");
  handles_.denied_total = &registry->GetCounter(
      "sentinel_enforce_denied_total", "flows denied by policy evaluation");
  handles_.evicted_total = &registry->GetCounter(
      "sentinel_enforce_rules_evicted_total",
      "enforcement rules evicted by the bounded-memory LRU tier");
  handles_.rules = &registry->GetGauge(
      "sentinel_enforce_rules", "devices in the enforcement-rule cache");
  handles_.rules->Set(static_cast<double>(rule_count()));
}

void EnforcementEngine::Install(EnforcementRule rule) {
  // Context-only span: nests under the module's per-device root span when
  // one is active (the engine itself needs no tracer wiring).
  obs::ScopedSpan enforce_span("sentinel_stage_enforce");
  if (enforce_span.enabled()) {
    enforce_span.AddArg("mac", rule.device_mac.ToString());
    enforce_span.AddArg("level", ToString(rule.level));
  }
  obs::ScopedTimer enforce_timer(handles_.enforce_ns);
  SENTINEL_PROFILE_SCOPE("enforce.install");
  if (handles_.rules_strict_total != nullptr) {
    switch (rule.level) {
      case IsolationLevel::kStrict:
        handles_.rules_strict_total->Increment();
        break;
      case IsolationLevel::kRestricted:
        handles_.rules_restricted_total->Increment();
        break;
      case IsolationLevel::kTrusted:
        handles_.rules_trusted_total->Increment();
        break;
    }
  }
  SENTINEL_LOG_INFO("enforcement", "rule_installed",
                    {"mac", rule.device_mac.ToString()},
                    {"type", rule.device_type},
                    {"level", ToString(rule.level)});

  const net::MacAddress mac = rule.device_mac;
  Shard& shard = ShardFor(mac);
  std::size_t evicted_here = 0;
  {
    WriterLock lock(shard.mutex);
    const auto it = shard.rules.find(mac);
    if (it != shard.rules.end()) {
      it->second.rule = std::move(rule);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    } else {
      shard.lru.push_front(mac);
      shard.rules.emplace(mac, Entry{std::move(rule), shard.lru.begin()});
      rule_count_.fetch_add(1, std::memory_order_relaxed);
      if (max_rules_per_shard_ > 0) {
        while (shard.rules.size() > max_rules_per_shard_) {
          shard.rules.erase(shard.lru.back());
          shard.lru.pop_back();
          rule_count_.fetch_sub(1, std::memory_order_relaxed);
          ++evicted_here;
        }
      }
    }
  }
  if (evicted_here > 0) {
    evicted_.fetch_add(evicted_here, std::memory_order_relaxed);
    if (handles_.evicted_total != nullptr)
      handles_.evicted_total->Increment(evicted_here);
  }
  if (handles_.rules != nullptr)
    handles_.rules->Set(static_cast<double>(rule_count()));
}

bool EnforcementEngine::Remove(const net::MacAddress& mac) {
  Shard& shard = ShardFor(mac);
  bool removed = false;
  {
    WriterLock lock(shard.mutex);
    const auto it = shard.rules.find(mac);
    if (it != shard.rules.end()) {
      shard.lru.erase(it->second.lru_pos);
      shard.rules.erase(it);
      rule_count_.fetch_sub(1, std::memory_order_relaxed);
      removed = true;
    }
  }
  if (removed && handles_.rules != nullptr)
    handles_.rules->Set(static_cast<double>(rule_count()));
  return removed;
}

const EnforcementRule* EnforcementEngine::Find(
    const net::MacAddress& mac) const {
  const Shard& shard = ShardFor(mac);
  ReaderLock lock(shard.mutex);
  const auto it = shard.rules.find(mac);
  return it == shard.rules.end() ? nullptr : &it->second.rule;
}

EnforcementEngine::RuleProbe EnforcementEngine::Probe(
    const net::MacAddress& mac,
    const std::optional<net::Ipv4Address>& endpoint) const {
  const Shard& shard = ShardFor(mac);
  ReaderLock lock(shard.mutex);
  const auto it = shard.rules.find(mac);
  if (it == shard.rules.end()) return RuleProbe{};
  RuleProbe probe;
  probe.has_rule = true;
  probe.level = it->second.rule.level;
  if (endpoint.has_value())
    probe.endpoint_allowed = it->second.rule.AllowsEndpoint(*endpoint);
  return probe;
}

IsolationLevel EnforcementEngine::EffectiveLevel(
    const net::MacAddress& mac) const {
  return Probe(mac, std::nullopt).level;
}

bool EnforcementEngine::IsInfrastructure(
    const net::ParsedPacket& packet) const {
  using net::Protocol;
  if (packet.protocols.Has(Protocol::kArp) ||
      packet.protocols.Has(Protocol::kEapol) ||
      packet.protocols.Has(Protocol::kIcmpv6) ||
      packet.protocols.Has(Protocol::kBootp) ||
      packet.protocols.Has(Protocol::kDhcp)) {
    return true;
  }
  // DNS/NTP served by the gateway itself.
  if ((packet.protocols.Has(Protocol::kDns) ||
       packet.protocols.Has(Protocol::kNtp)) &&
      packet.dst_ip && packet.dst_ip->IsV4() &&
      packet.dst_ip->v4() == gateway_ip_) {
    return true;
  }
  return false;
}

Decision EnforcementEngine::Authorize(const net::ParsedPacket& packet) const {
  if (IsInfrastructure(packet)) {
    return {.allow = true, .reason = "infrastructure traffic"};
  }

  // Remote (Internet) destination?
  const bool is_public = packet.dst_ip && packet.dst_ip->IsV4() &&
                         !packet.dst_ip->v4().IsPrivate() &&
                         !packet.dst_ip->v4().IsMulticast() &&
                         packet.dst_ip->v4() != net::Ipv4Address::Broadcast();

  const RuleProbe src = Probe(
      packet.src_mac, is_public ? std::optional<net::Ipv4Address>(
                                      packet.dst_ip->v4())
                                : std::nullopt);
  const auto decided_by =
      src.has_rule ? std::optional<net::MacAddress>(packet.src_mac)
                   : std::nullopt;

  if (is_public) {
    switch (src.level) {
      case IsolationLevel::kTrusted:
        return {.allow = true,
                .reason = "trusted device, full Internet access",
                .decided_by = decided_by};
      case IsolationLevel::kRestricted:
        if (src.endpoint_allowed) {
          return {.allow = true,
                  .reason = "restricted device, allowlisted endpoint",
                  .decided_by = decided_by};
        }
        if (handles_.denied_total != nullptr) handles_.denied_total->Increment();
        return {.allow = false,
                .reason = "restricted device, endpoint not allowlisted",
                .decided_by = decided_by};
      case IsolationLevel::kStrict:
        if (handles_.denied_total != nullptr) handles_.denied_total->Increment();
        return {.allow = false,
                .reason = "strict isolation, no Internet access",
                .decided_by = decided_by};
    }
  }

  // Local multicast/broadcast discovery stays within the device's overlay;
  // the gateway mirrors it only to same-overlay ports, so permitting it
  // here is safe.
  if (packet.dst_mac.IsMulticast() || packet.dst_mac.IsBroadcast()) {
    return {.allow = true,
            .reason = "local discovery within overlay",
            .decided_by = decided_by};
  }

  // Traffic addressed to the gateway itself.
  if (packet.dst_mac == gateway_mac_) {
    return {.allow = true,
            .reason = "gateway services",
            .decided_by = decided_by};
  }

  // Device-to-device: both ends must share an overlay (Fig. 3).
  const IsolationLevel dst_level = EffectiveLevel(packet.dst_mac);
  if (OverlayOf(src.level) == OverlayOf(dst_level)) {
    return {.allow = true,
            .reason = OverlayOf(src.level) == Overlay::kTrusted
                          ? "both devices in trusted network"
                          : "both devices in untrusted network",
            .decided_by = decided_by};
  }
  if (handles_.denied_total != nullptr) handles_.denied_total->Increment();
  return {.allow = false,
          .reason = "cross-overlay communication blocked",
          .decided_by = decided_by};
}

std::size_t EnforcementEngine::MemoryBytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    ReaderLock lock(shard.mutex);
    total += sizeof(Shard);
    // unordered_map buckets + nodes, plus the recency list's nodes.
    total += shard.rules.bucket_count() * sizeof(void*);
    for (const auto& [mac, entry] : shard.rules) {
      total += sizeof(mac) + entry.rule.MemoryBytes() + 2 * sizeof(void*);
      total += sizeof(net::MacAddress) + 2 * sizeof(void*);
    }
  }
  return total;
}

}  // namespace sentinel::core
