#include "core/enforcement.h"

#include "obs/log.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace sentinel::core {

void EnforcementEngine::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    handles_ = EnforcementMetrics{};
    return;
  }
  handles_.enforce_ns = &registry->GetHistogram(
      "sentinel_stage_enforce_ns",
      "enforcement-rule installation time per identified device");
  handles_.rules_strict_total = &registry->GetCounter(
      "sentinel_enforce_rules_strict_total",
      "enforcement rules installed at strict isolation");
  handles_.rules_restricted_total = &registry->GetCounter(
      "sentinel_enforce_rules_restricted_total",
      "enforcement rules installed at restricted isolation");
  handles_.rules_trusted_total = &registry->GetCounter(
      "sentinel_enforce_rules_trusted_total",
      "enforcement rules installed at trusted isolation");
  handles_.denied_total = &registry->GetCounter(
      "sentinel_enforce_denied_total", "flows denied by policy evaluation");
  handles_.rules = &registry->GetGauge(
      "sentinel_enforce_rules", "devices in the enforcement-rule cache");
  handles_.rules->Set(static_cast<double>(rules_.size()));
}

void EnforcementEngine::Install(EnforcementRule rule) {
  // Context-only span: nests under the module's per-device root span when
  // one is active (the engine itself needs no tracer wiring).
  obs::ScopedSpan enforce_span("sentinel_stage_enforce");
  if (enforce_span.enabled()) {
    enforce_span.AddArg("mac", rule.device_mac.ToString());
    enforce_span.AddArg("level", ToString(rule.level));
  }
  obs::ScopedTimer enforce_timer(handles_.enforce_ns);
  if (handles_.rules_strict_total != nullptr) {
    switch (rule.level) {
      case IsolationLevel::kStrict:
        handles_.rules_strict_total->Increment();
        break;
      case IsolationLevel::kRestricted:
        handles_.rules_restricted_total->Increment();
        break;
      case IsolationLevel::kTrusted:
        handles_.rules_trusted_total->Increment();
        break;
    }
  }
  SENTINEL_LOG_INFO("enforcement", "rule_installed",
                    {"mac", rule.device_mac.ToString()},
                    {"type", rule.device_type},
                    {"level", ToString(rule.level)});
  rules_[rule.device_mac] = std::move(rule);
  if (handles_.rules != nullptr)
    handles_.rules->Set(static_cast<double>(rules_.size()));
}

bool EnforcementEngine::Remove(const net::MacAddress& mac) {
  const bool removed = rules_.erase(mac) > 0;
  if (removed && handles_.rules != nullptr)
    handles_.rules->Set(static_cast<double>(rules_.size()));
  return removed;
}

const EnforcementRule* EnforcementEngine::Find(
    const net::MacAddress& mac) const {
  const auto it = rules_.find(mac);
  return it == rules_.end() ? nullptr : &it->second;
}

IsolationLevel EnforcementEngine::EffectiveLevel(
    const net::MacAddress& mac) const {
  const EnforcementRule* rule = Find(mac);
  return rule == nullptr ? IsolationLevel::kStrict : rule->level;
}

bool EnforcementEngine::IsInfrastructure(
    const net::ParsedPacket& packet) const {
  using net::Protocol;
  if (packet.protocols.Has(Protocol::kArp) ||
      packet.protocols.Has(Protocol::kEapol) ||
      packet.protocols.Has(Protocol::kIcmpv6) ||
      packet.protocols.Has(Protocol::kBootp) ||
      packet.protocols.Has(Protocol::kDhcp)) {
    return true;
  }
  // DNS/NTP served by the gateway itself.
  if ((packet.protocols.Has(Protocol::kDns) ||
       packet.protocols.Has(Protocol::kNtp)) &&
      packet.dst_ip && packet.dst_ip->IsV4() &&
      packet.dst_ip->v4() == gateway_ip_) {
    return true;
  }
  return false;
}

Decision EnforcementEngine::Authorize(const net::ParsedPacket& packet) const {
  if (IsInfrastructure(packet)) {
    return {.allow = true, .reason = "infrastructure traffic"};
  }

  const IsolationLevel src_level = EffectiveLevel(packet.src_mac);
  const EnforcementRule* src_rule = Find(packet.src_mac);
  const auto decided_by =
      src_rule ? std::optional<net::MacAddress>(packet.src_mac) : std::nullopt;

  // Remote (Internet) destination?
  const bool is_public = packet.dst_ip && packet.dst_ip->IsV4() &&
                         !packet.dst_ip->v4().IsPrivate() &&
                         !packet.dst_ip->v4().IsMulticast() &&
                         packet.dst_ip->v4() != net::Ipv4Address::Broadcast();
  if (is_public) {
    switch (src_level) {
      case IsolationLevel::kTrusted:
        return {.allow = true,
                .reason = "trusted device, full Internet access",
                .decided_by = decided_by};
      case IsolationLevel::kRestricted:
        if (src_rule != nullptr &&
            src_rule->AllowsEndpoint(packet.dst_ip->v4())) {
          return {.allow = true,
                  .reason = "restricted device, allowlisted endpoint",
                  .decided_by = decided_by};
        }
        if (handles_.denied_total != nullptr) handles_.denied_total->Increment();
        return {.allow = false,
                .reason = "restricted device, endpoint not allowlisted",
                .decided_by = decided_by};
      case IsolationLevel::kStrict:
        if (handles_.denied_total != nullptr) handles_.denied_total->Increment();
        return {.allow = false,
                .reason = "strict isolation, no Internet access",
                .decided_by = decided_by};
    }
  }

  // Local multicast/broadcast discovery stays within the device's overlay;
  // the gateway mirrors it only to same-overlay ports, so permitting it
  // here is safe.
  if (packet.dst_mac.IsMulticast() || packet.dst_mac.IsBroadcast()) {
    return {.allow = true,
            .reason = "local discovery within overlay",
            .decided_by = decided_by};
  }

  // Traffic addressed to the gateway itself.
  if (packet.dst_mac == gateway_mac_) {
    return {.allow = true,
            .reason = "gateway services",
            .decided_by = decided_by};
  }

  // Device-to-device: both ends must share an overlay (Fig. 3).
  const IsolationLevel dst_level = EffectiveLevel(packet.dst_mac);
  if (OverlayOf(src_level) == OverlayOf(dst_level)) {
    return {.allow = true,
            .reason = OverlayOf(src_level) == Overlay::kTrusted
                          ? "both devices in trusted network"
                          : "both devices in untrusted network",
            .decided_by = decided_by};
  }
  if (handles_.denied_total != nullptr) handles_.denied_total->Increment();
  return {.allow = false,
          .reason = "cross-overlay communication blocked",
          .decided_by = decided_by};
}

std::size_t EnforcementEngine::MemoryBytes() const {
  std::size_t total = sizeof(*this);
  // unordered_map buckets + nodes.
  total += rules_.bucket_count() * sizeof(void*);
  for (const auto& [mac, rule] : rules_) {
    total += sizeof(mac) + rule.MemoryBytes() + 2 * sizeof(void*);
  }
  return total;
}

}  // namespace sentinel::core
