// Enforcement-rule cache and policy evaluation (paper Sect. V).
//
// The Security Gateway keeps one enforcement rule per device in a hash
// table ("to minimize the lookup time as the enforcement rule cache
// grows"); for any given flow exactly one rule decides. Policy semantics
// follow Fig. 3:
//   strict      — untrusted overlay only, no Internet;
//   restricted  — untrusted overlay + allowlisted remote endpoints;
//   trusted     — trusted overlay + full Internet.
// Devices without a rule (still being fingerprinted) are treated as
// strict-by-default so a compromised device cannot attack before
// identification completes.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "core/isolation.h"
#include "net/frame.h"
#include "obs/metrics.h"

namespace sentinel::core {

/// Outcome of a policy check for one packet/flow.
struct Decision {
  bool allow = false;
  std::string reason;
  /// The enforcement rule that decided (device MAC), if any.
  std::optional<net::MacAddress> decided_by;
};

class EnforcementEngine {
 public:
  explicit EnforcementEngine(net::MacAddress gateway_mac,
                             net::Ipv4Address gateway_ip)
      : gateway_mac_(gateway_mac), gateway_ip_(gateway_ip) {}

  /// Installs (or replaces) the enforcement rule for a device.
  void Install(EnforcementRule rule);
  /// Removes a device's rule; returns true if one existed.
  bool Remove(const net::MacAddress& mac);
  [[nodiscard]] const EnforcementRule* Find(const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// Policy check for one packet. Infrastructure traffic (ARP, EAPoL,
  /// ICMPv6 ND, DHCP, and DNS/NTP to the gateway) is always permitted so
  /// devices can associate and be fingerprinted.
  [[nodiscard]] Decision Authorize(const net::ParsedPacket& packet) const;

  /// Isolation level effective for a device (strict when no rule exists).
  [[nodiscard]] IsolationLevel EffectiveLevel(
      const net::MacAddress& mac) const;

  /// Real memory footprint of the rule cache (Fig. 6c).
  [[nodiscard]] std::size_t MemoryBytes() const;

  [[nodiscard]] net::MacAddress gateway_mac() const { return gateway_mac_; }
  [[nodiscard]] net::Ipv4Address gateway_ip() const { return gateway_ip_; }

  /// Attaches enforcement telemetry: the `sentinel_stage_enforce_ns`
  /// histogram (rule installation time), per-isolation-level install
  /// counters, the denied-flows counter, and the rule-cache size gauge.
  /// nullptr detaches; the uninstrumented path takes no clock reads.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct EnforcementMetrics {
    obs::Histogram* enforce_ns = nullptr;
    obs::Counter* rules_strict_total = nullptr;
    obs::Counter* rules_restricted_total = nullptr;
    obs::Counter* rules_trusted_total = nullptr;
    obs::Counter* denied_total = nullptr;
    obs::Gauge* rules = nullptr;
  };

  [[nodiscard]] bool IsInfrastructure(const net::ParsedPacket& packet) const;

  net::MacAddress gateway_mac_;
  net::Ipv4Address gateway_ip_;
  std::unordered_map<net::MacAddress, EnforcementRule> rules_;
  EnforcementMetrics handles_;
};

}  // namespace sentinel::core
