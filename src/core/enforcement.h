// Enforcement-rule cache and policy evaluation (paper Sect. V).
//
// The Security Gateway keeps one enforcement rule per device in a hash
// table ("to minimize the lookup time as the enforcement rule cache
// grows"); for any given flow exactly one rule decides. Policy semantics
// follow Fig. 3:
//   strict      — untrusted overlay only, no Internet;
//   restricted  — untrusted overlay + allowlisted remote endpoints;
//   trusted     — trusted overlay + full Internet.
// Devices without a rule (still being fingerprinted) are treated as
// strict-by-default so a compromised device cannot attack before
// identification completes.
//
// Fleet scale: the rule cache is sharded by device MAC (util/shard.h) with
// per-shard reader/writer locks — Authorize() takes shared locks only — and
// optionally bounded by a per-shard LRU cap over installation recency.
// Defaults (one shard, no cap) reproduce the seed behavior exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/isolation.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::core {

/// Outcome of a policy check for one packet/flow.
struct Decision {
  bool allow = false;
  std::string reason;
  /// The enforcement rule that decided (device MAC), if any.
  std::optional<net::MacAddress> decided_by;
};

struct EnforcementOptions {
  /// Rule-cache shards; rounded up to a power of two. 1 (default) keeps
  /// the seed's single-shard behavior.
  std::size_t shard_count = 1;
  /// Bounded-memory tier: maximum device rules per shard; installs past
  /// the cap evict the least-recently-installed rule. 0 disables eviction.
  std::size_t max_rules_per_shard = 0;
};

class EnforcementEngine {
 public:
  EnforcementEngine(net::MacAddress gateway_mac, net::Ipv4Address gateway_ip,
                    EnforcementOptions options = {});

  /// Installs (or replaces) the enforcement rule for a device.
  void Install(EnforcementRule rule);
  /// Removes a device's rule; returns true if one existed.
  bool Remove(const net::MacAddress& mac);
  /// Single-writer API: the returned pointer is valid only until the next
  /// Install/Remove. Concurrent policy checks should go through
  /// Authorize()/EffectiveLevel(), which copy state out under the lock.
  [[nodiscard]] const EnforcementRule* Find(const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t rule_count() const {
    return rule_count_.load(std::memory_order_relaxed);
  }

  /// Policy check for one packet. Infrastructure traffic (ARP, EAPoL,
  /// ICMPv6 ND, DHCP, and DNS/NTP to the gateway) is always permitted so
  /// devices can associate and be fingerprinted. Safe to call concurrently
  /// with Install/Remove (reader locks; no rule pointers escape).
  [[nodiscard]] Decision Authorize(const net::ParsedPacket& packet) const;

  /// Isolation level effective for a device (strict when no rule exists).
  [[nodiscard]] IsolationLevel EffectiveLevel(
      const net::MacAddress& mac) const;

  /// Real memory footprint of the rule cache (Fig. 6c).
  [[nodiscard]] std::size_t MemoryBytes() const;

  [[nodiscard]] net::MacAddress gateway_mac() const { return gateway_mac_; }
  [[nodiscard]] net::Ipv4Address gateway_ip() const { return gateway_ip_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Rules evicted by the bounded-memory tier so far.
  [[nodiscard]] std::uint64_t evicted_total() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Attaches enforcement telemetry: the `sentinel_stage_enforce_ns`
  /// histogram (rule installation time), per-isolation-level install
  /// counters, the denied-flows counter, the eviction counter, and the
  /// rule-cache size gauge. nullptr detaches; the uninstrumented path
  /// takes no clock reads.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct EnforcementMetrics {
    obs::Histogram* enforce_ns = nullptr;
    obs::Counter* rules_strict_total = nullptr;
    obs::Counter* rules_restricted_total = nullptr;
    obs::Counter* rules_trusted_total = nullptr;
    obs::Counter* denied_total = nullptr;
    obs::Counter* evicted_total = nullptr;
    obs::Gauge* rules = nullptr;
  };

  /// One rule plus its position in the shard's recency list (front = most
  /// recently installed).
  struct Entry {
    EnforcementRule rule;
    std::list<net::MacAddress>::iterator lru_pos;
  };
  struct Shard {
    mutable SharedMutex mutex{"enforcement.rule_shard"};
    std::unordered_map<net::MacAddress, Entry> rules
        SENTINEL_GUARDED_BY(mutex);
    /// Installation recency, front = most recently installed.
    std::list<net::MacAddress> lru SENTINEL_GUARDED_BY(mutex);
  };

  /// Copy-out snapshot of a device's rule taken under the shard's reader
  /// lock — everything Authorize() needs without letting a pointer escape.
  struct RuleProbe {
    bool has_rule = false;
    IsolationLevel level = IsolationLevel::kStrict;
    bool endpoint_allowed = false;
  };
  [[nodiscard]] RuleProbe Probe(
      const net::MacAddress& mac,
      const std::optional<net::Ipv4Address>& endpoint) const;

  [[nodiscard]] Shard& ShardFor(const net::MacAddress& mac) const;
  [[nodiscard]] bool IsInfrastructure(const net::ParsedPacket& packet) const;

  net::MacAddress gateway_mac_;
  net::Ipv4Address gateway_ip_;
  std::size_t max_rules_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // ordering: relaxed (both) — cross-shard telemetry counters; mutations
  // happen under a shard's writer lock and readers only want an eventually
  // consistent total, never an ordering edge.
  std::atomic<std::size_t> rule_count_{0};
  std::atomic<std::uint64_t> evicted_{0};
  EnforcementMetrics handles_;
};

}  // namespace sentinel::core
