#include "core/gateway.h"

namespace sentinel::core {

SecurityGateway::SecurityGateway(SecurityServiceClient& service,
                                 SecurityGatewayConfig config)
    : config_(config),
      switch_("security-gateway", config.flow_table),
      controller_(config.controller),
      engine_(config.gateway_mac, config.gateway_ip, config.enforcement) {
  if (config.enable_services) {
    GatewayServicesConfig services_config;
    services_config.mac = config.gateway_mac;
    services_config.ip = config.gateway_ip;
    DnsResolverFn resolver = config.dns_resolver;
    if (!resolver) {
      resolver = [](const std::string& name)
          -> std::optional<net::Ipv4Address> {
        return devices::NetworkEnvironment().ResolveEndpoint(name);
      };
    }
    services_module_ = std::make_shared<GatewayServicesModule>(
        services_config, std::move(resolver));
    // Services answer first; the Sentinel module still sees every packet
    // because the services module never consumes.
    controller_.AddModule(services_module_);
  }
  SentinelModuleConfig module_config = config.module;
  module_config.wan_port = config.wan_port;
  module_ = std::make_shared<SentinelModule>(service, engine_, module_config);
  controller_.AddModule(module_);
  switch_.SetController(&controller_);
}

}  // namespace sentinel::core
