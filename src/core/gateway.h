// Security Gateway facade (paper Fig. 1): the SDN switch + controller +
// Sentinel module + enforcement engine assembled into the component that
// sits as the home router. This is the top-level object applications embed.
#pragma once

#include <memory>

#include "core/gateway_services.h"
#include "core/sentinel_module.h"
#include "devices/environment.h"
#include "sdn/controller.h"
#include "sdn/switch.h"

namespace sentinel::core {

struct SecurityGatewayConfig {
  net::MacAddress gateway_mac =
      net::MacAddress({0x02, 0x00, 0x5e, 0x00, 0x00, 0x01});
  net::Ipv4Address gateway_ip = net::Ipv4Address(192, 168, 1, 1);
  sdn::PortId wan_port = 1;
  SentinelModuleConfig module;
  /// Fleet-scale knobs: shard counts and bounded-memory caps for the
  /// MAC-keyed datapath state. Defaults (one shard, no caps) keep the
  /// single-tenant behavior bit-identical.
  sdn::FlowTableOptions flow_table;
  sdn::ControllerOptions controller;
  EnforcementOptions enforcement;
  /// When true the gateway also runs its network services (DHCP, DNS, NTP,
  /// ARP/ICMP responder) on the datapath, answering devices directly. Off
  /// by default for deployments where an existing router keeps those roles.
  bool enable_services = false;
  /// Upstream DNS resolution for the services module (defaults to the
  /// deterministic simulator resolver when unset).
  DnsResolverFn dns_resolver;
};

class SecurityGateway {
 public:
  /// `service` must outlive the gateway.
  SecurityGateway(SecurityServiceClient& service,
                  SecurityGatewayConfig config = {});

  /// Attaches a device-facing port (WiFi or Ethernet).
  void AttachPort(sdn::PortId port, sdn::PortOutput output) {
    switch_.AttachPort(port, std::move(output));
  }
  /// Attaches the Internet uplink.
  void AttachWan(sdn::PortOutput output) {
    switch_.AttachPort(config_.wan_port, std::move(output));
  }

  /// Feeds a frame arriving on `port` through monitoring + enforcement +
  /// forwarding. Returns true when the frame was forwarded.
  bool Ingress(sdn::PortId port, const net::Frame& frame) {
    return switch_.Inject(port, frame);
  }

  sdn::SoftwareSwitch& datapath() { return switch_; }
  sdn::Controller& controller() { return controller_; }
  SentinelModule& sentinel() { return *module_; }
  EnforcementEngine& enforcement() { return engine_; }
  /// Gateway network services; only valid when config.enable_services.
  GatewayServices& services() { return services_module_->services(); }
  [[nodiscard]] bool has_services() const {
    return services_module_ != nullptr;
  }
  [[nodiscard]] const SecurityGatewayConfig& config() const { return config_; }

  /// Total gateway state attributable to Sentinel (enforcement-rule cache +
  /// datapath flow table) — the growing component of Fig. 6c.
  [[nodiscard]] std::size_t MemoryBytes() const {
    return switch_.MemoryBytes() + engine_.MemoryBytes();
  }

  /// Attaches one metrics registry across the whole gateway: datapath
  /// (switch + flow table), Sentinel module (monitor + identify stage) and
  /// enforcement engine. The pipeline-stage histograms
  /// `sentinel_stage_{capture,fingerprint,identify,enforce}_ns` all come
  /// live through this one call. nullptr detaches everything. Runtime
  /// wiring only — nothing here alters forwarding or identification
  /// results.
  void set_metrics(obs::MetricsRegistry* registry) {
    switch_.set_metrics(registry);
    controller_.set_metrics(registry);
    module_->set_metrics(registry);
    engine_.set_metrics(registry);
  }

  /// Attaches decision-provenance tracing across the gateway: the Sentinel
  /// module (and its monitor) assign one trace id per device and the
  /// capture → fingerprint → identify → tie-break → enforce spans all nest
  /// under it. nullptr detaches; untraced runs stay bit-identical.
  void set_tracer(obs::Tracer* tracer) { module_->set_tracer(tracer); }
  /// Attaches the per-device flight recorder journaling every device's
  /// identification story (served by `sentinelctl serve` under
  /// /devices/<mac> and rendered by `sentinelctl explain`).
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    module_->set_flight_recorder(recorder);
  }
  /// Attaches the model-quality monitor to the Sentinel module (assessment
  /// outcomes). The identifier-level wiring lives on the SecurityService
  /// the gateway talks to, which the caller owns.
  void set_quality_monitor(obs::QualityMonitor* monitor) {
    module_->set_quality_monitor(monitor);
  }

 private:
  SecurityGatewayConfig config_;
  sdn::SoftwareSwitch switch_;
  sdn::Controller controller_;
  EnforcementEngine engine_;
  std::shared_ptr<GatewayServicesModule> services_module_;
  std::shared_ptr<SentinelModule> module_;
};

}  // namespace sentinel::core
