#include "core/gateway_services.h"

namespace sentinel::core {

GatewayServices::GatewayServices(GatewayServicesConfig config,
                                 DnsResolverFn resolver)
    : config_(config), resolver_(std::move(resolver)) {}

bool GatewayServices::InPool(net::Ipv4Address ip) const {
  const std::uint32_t start = config_.pool_start.value();
  return ip.value() >= start && ip.value() < start + config_.pool_size;
}

bool GatewayServices::IsFree(net::Ipv4Address ip) const {
  for (const auto& [mac, lease] : leases_) {
    if (lease.ip == ip) return false;
  }
  return true;
}

std::optional<net::Ipv4Address> GatewayServices::Allocate(
    const net::MacAddress& mac, std::optional<net::Ipv4Address> requested,
    std::uint64_t now_ns) {
  // Sticky leases: the same device gets its previous address back.
  const auto existing = leases_.find(mac);
  if (existing != leases_.end()) {
    existing->second.expires_at_ns = now_ns + config_.lease_duration_ns;
    return existing->second.ip;
  }
  if (requested && InPool(*requested) && IsFree(*requested)) {
    leases_[mac] = Lease{*requested, now_ns + config_.lease_duration_ns};
    return *requested;
  }
  for (std::uint8_t offset = 0; offset < config_.pool_size; ++offset) {
    const net::Ipv4Address candidate(config_.pool_start.value() + offset);
    if (IsFree(candidate)) {
      leases_[mac] = Lease{candidate, now_ns + config_.lease_duration_ns};
      return candidate;
    }
  }
  return std::nullopt;  // pool exhausted
}

std::optional<net::Ipv4Address> GatewayServices::LeaseOf(
    const net::MacAddress& mac) const {
  const auto it = leases_.find(mac);
  if (it == leases_.end()) return std::nullopt;
  return it->second.ip;
}

std::size_t GatewayServices::ExpireLeases(std::uint64_t now_ns) {
  std::size_t removed = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires_at_ns <= now_ns) {
      it = leases_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<net::Frame> GatewayServices::HandleFrame(const net::Frame& frame) {
  net::ParsedPacket packet;
  try {
    packet = net::ParseFrame(frame);
  } catch (const net::CodecError&) {
    return {};
  }
  if (packet.src_mac == config_.mac) return {};  // our own traffic

  if (packet.protocols.Has(net::Protocol::kArp))
    return HandleArp(frame, packet);
  if (packet.protocols.Has(net::Protocol::kBootp))
    return HandleDhcp(frame, packet);

  // The remaining services require the packet to target the gateway IP.
  const bool to_gateway = packet.dst_ip && packet.dst_ip->IsV4() &&
                          packet.dst_ip->v4() == config_.ip;
  if (!to_gateway) return {};
  if (packet.protocols.Has(net::Protocol::kDns))
    return HandleDns(frame, packet);
  if (packet.protocols.Has(net::Protocol::kNtp))
    return HandleNtp(frame, packet);
  if (packet.protocols.Has(net::Protocol::kIcmp))
    return HandleIcmp(frame, packet);
  return {};
}

std::vector<net::Frame> GatewayServices::HandleArp(
    const net::Frame& frame, const net::ParsedPacket& packet) {
  net::ByteReader r(frame.bytes);
  net::EthernetHeader::Decode(r);
  const auto arp = net::ArpPacket::Decode(r);
  if (arp.operation != net::ArpOperation::kRequest ||
      arp.target_ip != config_.ip) {
    return {};
  }
  net::ArpPacket reply;
  reply.operation = net::ArpOperation::kReply;
  reply.sender_mac = config_.mac;
  reply.sender_ip = config_.ip;
  reply.target_mac = arp.sender_mac;
  reply.target_ip = arp.sender_ip;
  ++counters_.arp_replies;
  return {net::BuildArpFrame(frame.timestamp_ns, config_.mac, packet.src_mac,
                             reply)};
}

std::vector<net::Frame> GatewayServices::HandleDhcp(
    const net::Frame& frame, const net::ParsedPacket& packet) {
  net::ByteReader r(frame.bytes);
  net::EthernetHeader::Decode(r);
  std::size_t payload_len = 0;
  net::Ipv4Header::Decode(r, payload_len);
  const auto udp = net::UdpDatagram::Decode(r);
  if (udp.dst_port != net::kPortDhcpServer) return {};  // not for the server
  net::ByteReader dhcp_reader(udp.payload);
  net::DhcpMessage message;
  try {
    message = net::DhcpMessage::Decode(dhcp_reader);
  } catch (const net::CodecError&) {
    return {};
  }
  if (message.op != 1) return {};  // only client requests

  const auto type = message.MessageType();
  net::DhcpMessage reply;
  if (!type.has_value() || *type == net::DhcpMessageType::kDiscover) {
    // Plain BOOTP and DHCPDISCOVER both get an offer.
    const auto offered =
        Allocate(message.client_mac, std::nullopt, frame.timestamp_ns);
    if (!offered) return {};
    reply = net::DhcpMessage::Offer(message, *offered, config_.ip);
    ++counters_.dhcp_offers;
  } else if (*type == net::DhcpMessageType::kRequest) {
    std::optional<net::Ipv4Address> requested;
    for (const auto& option : message.options) {
      if (option.code == 50 && option.data.size() == 4) {
        requested = net::Ipv4Address(
            (std::uint32_t{option.data[0]} << 24) |
            (std::uint32_t{option.data[1]} << 16) |
            (std::uint32_t{option.data[2]} << 8) | option.data[3]);
      }
    }
    const auto assigned =
        Allocate(message.client_mac, requested, frame.timestamp_ns);
    if (!assigned || (requested && *assigned != *requested)) {
      ++counters_.dhcp_naks;
      reply = net::DhcpMessage::Ack(message, net::Ipv4Address::Any(),
                                    config_.ip);
      reply.options.front().data = {
          static_cast<std::uint8_t>(net::DhcpMessageType::kNak)};
    } else {
      reply = net::DhcpMessage::Ack(message, *assigned, config_.ip);
      ++counters_.dhcp_acks;
    }
  } else {
    return {};
  }

  net::UdpDatagram response;
  response.src_port = net::kPortDhcpServer;
  response.dst_port = net::kPortDhcpClient;
  net::ByteWriter w;
  reply.Encode(w);
  response.payload = std::move(w).Take();
  return {net::BuildUdp4Frame(frame.timestamp_ns, config_.mac,
                              packet.src_mac, config_.ip,
                              net::Ipv4Address::Broadcast(), response)};
}

std::vector<net::Frame> GatewayServices::HandleDns(
    const net::Frame& frame, const net::ParsedPacket& packet) {
  net::ByteReader r(frame.bytes);
  net::EthernetHeader::Decode(r);
  std::size_t payload_len = 0;
  net::Ipv4Header::Decode(r, payload_len);
  const auto udp = net::UdpDatagram::Decode(r);
  net::ByteReader dns_reader(udp.payload);
  net::DnsMessage query;
  try {
    query = net::DnsMessage::Decode(dns_reader);
  } catch (const net::CodecError&) {
    return {};
  }
  if (query.IsResponse() || query.questions.empty()) return {};

  const auto answer = resolver_(query.questions.front().name);
  net::DnsMessage response;
  if (answer) {
    response = net::DnsMessage::Response(query, *answer);
    ++counters_.dns_answers;
  } else {
    response.id = query.id;
    response.flags = 0x8183;  // response, NXDOMAIN
    response.questions = query.questions;
    ++counters_.dns_failures;
  }
  net::UdpDatagram reply;
  reply.src_port = net::kPortDns;
  reply.dst_port = udp.src_port;
  net::ByteWriter w;
  response.Encode(w);
  reply.payload = std::move(w).Take();
  return {net::BuildUdp4Frame(frame.timestamp_ns, config_.mac, packet.src_mac,
                              config_.ip, packet.src_ip->v4(), reply)};
}

std::vector<net::Frame> GatewayServices::HandleNtp(
    const net::Frame& frame, const net::ParsedPacket& packet) {
  net::ByteReader r(frame.bytes);
  net::EthernetHeader::Decode(r);
  std::size_t payload_len = 0;
  net::Ipv4Header::Decode(r, payload_len);
  const auto udp = net::UdpDatagram::Decode(r);
  net::ByteReader ntp_reader(udp.payload);
  net::NtpPacket request;
  try {
    request = net::NtpPacket::Decode(ntp_reader);
  } catch (const net::CodecError&) {
    return {};
  }
  if (request.mode != 3) return {};  // only client requests

  net::UdpDatagram reply;
  reply.src_port = net::kPortNtp;
  reply.dst_port = udp.src_port;
  net::ByteWriter w;
  net::NtpPacket::ServerReply(request, frame.timestamp_ns).Encode(w);
  reply.payload = std::move(w).Take();
  ++counters_.ntp_replies;
  return {net::BuildUdp4Frame(frame.timestamp_ns, config_.mac, packet.src_mac,
                              config_.ip, packet.src_ip->v4(), reply)};
}

std::vector<net::Frame> GatewayServices::HandleIcmp(
    const net::Frame& frame, const net::ParsedPacket& packet) {
  net::ByteReader r(frame.bytes);
  net::EthernetHeader::Decode(r);
  std::size_t payload_len = 0;
  net::Ipv4Header::Decode(r, payload_len);
  const auto icmp = net::IcmpMessage::Decode(r, payload_len);
  if (!icmp.IsEchoRequest()) return {};
  ++counters_.icmp_replies;
  return {net::BuildIcmp4Frame(frame.timestamp_ns, config_.mac,
                               packet.src_mac, config_.ip,
                               packet.src_ip->v4(),
                               net::IcmpMessage::EchoReply(icmp))};
}

GatewayServicesModule::Verdict GatewayServicesModule::OnPacketIn(
    sdn::SoftwareSwitch& sw, sdn::PortId in_port, const net::Frame& frame,
    const net::ParsedPacket& packet) {
  (void)packet;
  for (const auto& response : services_.HandleFrame(frame)) {
    // Answers go back out the port the query arrived on.
    sw.PacketOut(in_port, sdn::kPortController, response);
  }
  // Never consume: monitoring/enforcement modules still see the packet.
  return Verdict::kContinue;
}

}  // namespace sentinel::core
