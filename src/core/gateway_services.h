// Network services of the Security Gateway. A consumer gateway router is
// not just a switch: it runs the DHCP server devices lease addresses from,
// the DNS resolver they query, and an NTP server; it answers ARP for its
// own address and responds to pings. The paper's Security Gateway inherits
// all of these (Sect. III-A), and the setup traffic the fingerprinter sees
// is largely conversations with these very services.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/frame.h"
#include "sdn/controller.h"

namespace sentinel::core {

struct GatewayServicesConfig {
  net::MacAddress mac = net::MacAddress({0x02, 0x00, 0x5e, 0x00, 0x00, 0x01});
  net::Ipv4Address ip = net::Ipv4Address(192, 168, 1, 1);
  net::Ipv4Address netmask = net::Ipv4Address(255, 255, 255, 0);
  /// DHCP pool [pool_start, pool_start + pool_size).
  net::Ipv4Address pool_start = net::Ipv4Address(192, 168, 1, 100);
  std::uint8_t pool_size = 150;
  std::uint64_t lease_duration_ns = 86'400ull * 1'000'000'000;  // 24 h
};

/// Resolves public DNS names to addresses (deployments forward upstream;
/// tests plug in the deterministic simulator resolver).
using DnsResolverFn = std::function<std::optional<net::Ipv4Address>(
    const std::string& name)>;

class GatewayServices {
 public:
  GatewayServices(GatewayServicesConfig config, DnsResolverFn resolver);

  /// Handles one frame if it is addressed to a gateway service (DHCP
  /// broadcast, ARP for the gateway IP, DNS/NTP to the gateway, ICMP echo
  /// to the gateway). Returns the response frames to emit (empty when the
  /// frame is not for the gateway or needs no answer).
  std::vector<net::Frame> HandleFrame(const net::Frame& frame);

  // ---- DHCP lease table -----------------------------------------------------
  [[nodiscard]] std::optional<net::Ipv4Address> LeaseOf(
      const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t active_leases() const { return leases_.size(); }
  /// Expires leases whose end time has passed; returns how many.
  std::size_t ExpireLeases(std::uint64_t now_ns);

  struct Counters {
    std::uint64_t dhcp_offers = 0;
    std::uint64_t dhcp_acks = 0;
    std::uint64_t dhcp_naks = 0;
    std::uint64_t dns_answers = 0;
    std::uint64_t dns_failures = 0;
    std::uint64_t ntp_replies = 0;
    std::uint64_t arp_replies = 0;
    std::uint64_t icmp_replies = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const GatewayServicesConfig& config() const { return config_; }

 private:
  struct Lease {
    net::Ipv4Address ip;
    std::uint64_t expires_at_ns = 0;
  };

  std::optional<net::Ipv4Address> Allocate(const net::MacAddress& mac,
                                           std::optional<net::Ipv4Address>
                                               requested,
                                           std::uint64_t now_ns);
  [[nodiscard]] bool InPool(net::Ipv4Address ip) const;
  [[nodiscard]] bool IsFree(net::Ipv4Address ip) const;

  std::vector<net::Frame> HandleArp(const net::Frame& frame,
                                    const net::ParsedPacket& packet);
  std::vector<net::Frame> HandleDhcp(const net::Frame& frame,
                                     const net::ParsedPacket& packet);
  std::vector<net::Frame> HandleDns(const net::Frame& frame,
                                    const net::ParsedPacket& packet);
  std::vector<net::Frame> HandleNtp(const net::Frame& frame,
                                    const net::ParsedPacket& packet);
  std::vector<net::Frame> HandleIcmp(const net::Frame& frame,
                                     const net::ParsedPacket& packet);

  GatewayServicesConfig config_;
  DnsResolverFn resolver_;
  std::unordered_map<net::MacAddress, Lease> leases_;
  Counters counters_;
};

/// Controller module exposing the services on the datapath: answers are
/// sent back out the ingress port; the packet then continues down the
/// module chain (so the Sentinel monitor still sees it).
class GatewayServicesModule : public sdn::ControllerModule {
 public:
  GatewayServicesModule(GatewayServicesConfig config, DnsResolverFn resolver)
      : services_(config, std::move(resolver)) {}

  [[nodiscard]] std::string name() const override {
    return "gateway-services";
  }

  Verdict OnPacketIn(sdn::SoftwareSwitch& sw, sdn::PortId in_port,
                     const net::Frame& frame,
                     const net::ParsedPacket& packet) override;

  GatewayServices& services() { return services_; }

 private:
  GatewayServices services_;
};

}  // namespace sentinel::core
