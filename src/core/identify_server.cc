#include "core/identify_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "capture/trace.h"
#include "features/fingerprint_codec.h"
#include "net/byte_io.h"
#include "obs/json.h"
#include "util/json.h"

namespace sentinel::core {

namespace {

constexpr std::size_t kMacBytes = 6;
/// /ingest devices with fewer setup-phase packets than this are skipped:
/// a fingerprint that short carries no identification signal and would
/// only burn a queue slot.
constexpr std::size_t kMinIngestPackets = 4;

/// Shortest-round-trip decimal form, deterministic for a given double —
/// the serve and per-call renderers must produce identical bytes for
/// identical verdicts.
std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    if (std::sscanf(candidate, "%lf", &parsed) == 1 && parsed == value)
      return candidate;
  }
  return buf;
}

/// Validates one JSON number as an exact uint32 feature value.
bool ToFeature(const util::JsonValue& value, std::uint32_t& out) {
  if (!value.IsNumber()) return false;
  const double number = value.number;
  if (number < 0.0 || number > 4294967295.0 || number != std::floor(number))
    return false;
  out = static_cast<std::uint32_t>(number);
  return true;
}

}  // namespace

IdentifyServer::IdentifyServer(const DeviceIdentifier* identifier,
                               IdentifyServerConfig config)
    : identifier_(identifier),
      config_(std::move(config)),
      queue_(config_.queue_depth),
      policy_(config_.batch) {}

IdentifyServer::~IdentifyServer() { Stop(); }

std::uint64_t IdentifyServer::NowNs() const {
  if (config_.clock) return config_.clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void IdentifyServer::Start() {
  if (started_ || config_.manual_drain) return;
  started_ = true;
  drain_ = std::thread([this] { DrainLoop(); });
}

void IdentifyServer::Stop() {
  {
    sentinel::MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    work_cv_.NotifyAll();
  }
  if (drain_.joinable()) drain_.join();
  {
    sentinel::MutexLock lock(mu_);
    // Resolve every still-queued probe as shed so no waiter blocks on a
    // drain that will never run again.
    auto leftovers =
        queue_.PopBatch(std::numeric_limits<std::size_t>::max());
    for (auto& probe : leftovers) {
      auto it = slots_.find(probe.ticket);
      if (it == slots_.end()) continue;
      it->second.done = true;
      it->second.shed = true;
    }
    if (metrics_.queue_depth) metrics_.queue_depth->Set(0.0);
    done_cv_.NotifyAll();
  }
}

void IdentifyServer::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.queue_depth = &registry->GetGauge(
      "sentinel_serve_queue_depth", "Probes waiting in the admission queue");
  metrics_.admitted = &registry->GetCounter(
      "sentinel_serve_admitted_total", "Probes admitted into the queue");
  metrics_.rejected = &registry->GetCounter(
      "sentinel_serve_rejected_total",
      "Probes rejected with 429 (queue full, no same-device victim)");
  metrics_.shed = &registry->GetCounter(
      "sentinel_serve_shed_total",
      "Queued probes shed in favour of a newer same-device probe");
  metrics_.batches = &registry->GetCounter(
      "sentinel_serve_batches_total", "Batches flushed by the drain thread");
  metrics_.probes = &registry->GetCounter(
      "sentinel_serve_probes_total", "Probes served to a verdict");
  metrics_.parse_errors = &registry->GetCounter(
      "sentinel_serve_parse_errors_total",
      "POST bodies rejected as malformed (400/415)");
  metrics_.unknown_routes = &registry->GetCounter(
      "sentinel_serve_unknown_route_total",
      "POSTs to a path no route claims (404)");
  metrics_.batch_size = &registry->GetHistogram(
      "sentinel_serve_batch_size", "Probes per flushed batch",
      {1, 2, 4, 8, 16, 32, 64});
  metrics_.queue_wait_ns = &registry->GetHistogram(
      "sentinel_serve_queue_wait_ns",
      "Admission-to-drain queueing delay per served probe",
      {1e4, 1e5, 5e5, 1e6, 2e6, 5e6, 1e7, 1e8});
}

std::uint64_t IdentifyServer::RetryAfterMsLocked() const {
  const double per_probe_ns = ewma_service_ns_ > 0.0
                                  ? ewma_service_ns_
                                  : static_cast<double>(
                                        config_.batch.latency_bound_ns);
  const double backlog_ms =
      static_cast<double>(queue_.depth()) * per_probe_ns / 1e6;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(backlog_ms));
}

IdentifyServer::Submission IdentifyServer::SubmitProbe(
    const net::MacAddress& mac, features::Fingerprint full,
    features::FixedFingerprint fixed) {
  const std::uint64_t now = NowNs();
  sentinel::MutexLock lock(mu_);
  if (stopping_) return {.admitted = false, .retry_after_ms = 0};
  policy_.OnArrival(now);
  const std::uint64_t ticket = ++next_ticket_;
  auto admission = queue_.Push(QueuedProbe{.mac = mac,
                                           .full = std::move(full),
                                           .fixed = std::move(fixed),
                                           .enqueue_ns = now,
                                           .ticket = ticket});
  if (admission.action == AdmissionQueue::AdmitAction::kRejected) {
    ++stats_.rejected;
    if (metrics_.rejected) metrics_.rejected->Increment();
    return {.admitted = false, .retry_after_ms = RetryAfterMsLocked()};
  }
  if (admission.action == AdmissionQueue::AdmitAction::kAdmittedAfterShed) {
    ++stats_.shed;
    if (metrics_.shed) metrics_.shed->Increment();
    auto victim = slots_.find(admission.shed_ticket);
    if (victim != slots_.end()) {
      victim->second.done = true;
      victim->second.shed = true;
    }
    done_cv_.NotifyAll();
  }
  ++stats_.admitted;
  if (metrics_.admitted) metrics_.admitted->Increment();
  if (metrics_.queue_depth)
    metrics_.queue_depth->Set(static_cast<double>(queue_.depth()));
  slots_.emplace(ticket, Slot{});
  work_cv_.NotifyOne();
  return {.admitted = true, .ticket = ticket};
}

IdentifyServer::ProbeOutcome IdentifyServer::WaitProbe(std::uint64_t ticket) {
  sentinel::MutexLock lock(mu_);
  done_cv_.Wait(mu_, [this, ticket]() SENTINEL_REQUIRES(mu_) {
    const auto it = slots_.find(ticket);
    return it == slots_.end() || it->second.done;
  });
  const auto it = slots_.find(ticket);
  if (it == slots_.end()) return {};  // unknown ticket: report as shed
  ProbeOutcome outcome{
      .status = it->second.shed ? ProbeStatus::kShed : ProbeStatus::kServed,
      .result = std::move(it->second.result),
      .batch_size = it->second.batch_size,
      .queue_wait_ns = it->second.queue_wait_ns};
  slots_.erase(it);
  return outcome;
}

void IdentifyServer::DrainLoop() {
  for (;;) {
    std::vector<QueuedProbe> batch;
    AdaptiveBatchPolicy::FlushReason reason =
        AdaptiveBatchPolicy::FlushReason::kNone;
    {
      sentinel::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (stopping_) return;
      const auto decision = policy_.Evaluate(
          queue_.depth(), queue_.oldest_enqueue_ns().value(), NowNs());
      if (!decision.flush) {
        // Sleep toward the deadline (or the predicted fill time); new
        // admissions notify work_cv_, so a size flush is re-evaluated
        // immediately rather than after the timeout.
        work_cv_.WaitFor(
            mu_, std::chrono::nanoseconds(decision.wait_ns),
            [this]() SENTINEL_REQUIRES(mu_) {
              return stopping_ ||
                     queue_.depth() >= policy_.config().batch_target;
            });
        continue;
      }
      batch = queue_.PopBatch(policy_.config().batch_target);
      reason = decision.reason;
      if (metrics_.queue_depth)
        metrics_.queue_depth->Set(static_cast<double>(queue_.depth()));
    }
    ServeBatch(std::move(batch), reason);
  }
}

std::size_t IdentifyServer::DrainNow(std::uint64_t now_ns) {
  std::vector<QueuedProbe> batch;
  AdaptiveBatchPolicy::FlushReason reason =
      AdaptiveBatchPolicy::FlushReason::kNone;
  {
    sentinel::MutexLock lock(mu_);
    if (queue_.empty()) return 0;
    const auto decision = policy_.Evaluate(
        queue_.depth(), queue_.oldest_enqueue_ns().value(), now_ns);
    if (!decision.flush) return 0;
    batch = queue_.PopBatch(policy_.config().batch_target);
    reason = decision.reason;
    if (metrics_.queue_depth)
      metrics_.queue_depth->Set(static_cast<double>(queue_.depth()));
  }
  const std::size_t served = batch.size();
  ServeBatch(std::move(batch), reason);
  return served;
}

void IdentifyServer::ServeBatch(std::vector<QueuedProbe> batch,
                                AdaptiveBatchPolicy::FlushReason reason) {
  if (batch.empty()) return;
  const std::uint64_t serve_start = NowNs();
  std::vector<IdentificationResult> results;
  results.reserve(batch.size());
  if (config_.batch.batch_target <= 1) {
    // Per-call baseline mode: the exact code path `sentinelctl identify`
    // takes, so the benchmark's comparison is honest.
    for (const auto& probe : batch)
      results.push_back(identifier_->Identify(probe.full, probe.fixed));
  } else {
    std::vector<DeviceIdentifier::FingerprintRef> refs;
    refs.reserve(batch.size());
    for (const auto& probe : batch)
      refs.push_back({.full = &probe.full, .fixed = &probe.fixed});
    results = identifier_->IdentifyBatchServe(refs);
  }
  const std::uint64_t serve_end = NowNs();

  sentinel::MutexLock lock(mu_);
  const double per_probe_ns = static_cast<double>(serve_end - serve_start) /
                              static_cast<double>(batch.size());
  ewma_service_ns_ = ewma_service_ns_ == 0.0
                         ? per_probe_ns
                         : 0.3 * per_probe_ns + 0.7 * ewma_service_ns_;
  ++stats_.batches;
  stats_.probes_served += batch.size();
  ++stats_.batch_size_counts[batch.size()];
  switch (reason) {
    case AdaptiveBatchPolicy::FlushReason::kSize: ++stats_.flush_size; break;
    case AdaptiveBatchPolicy::FlushReason::kDeadline:
      ++stats_.flush_deadline;
      break;
    case AdaptiveBatchPolicy::FlushReason::kSparse:
      ++stats_.flush_sparse;
      break;
    case AdaptiveBatchPolicy::FlushReason::kNone: break;
  }
  if (metrics_.batches) metrics_.batches->Increment();
  if (metrics_.probes) metrics_.probes->Increment(batch.size());
  if (metrics_.batch_size)
    metrics_.batch_size->Observe(static_cast<double>(batch.size()));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto it = slots_.find(batch[i].ticket);
    if (it == slots_.end()) continue;  // waiter gave up (server stopping)
    it->second.done = true;
    it->second.result = std::move(results[i]);
    it->second.batch_size = batch.size();
    it->second.queue_wait_ns = serve_start >= batch[i].enqueue_ns
                                   ? serve_start - batch[i].enqueue_ns
                                   : 0;
    if (metrics_.queue_wait_ns)
      metrics_.queue_wait_ns->Observe(
          static_cast<double>(it->second.queue_wait_ns));
  }
  done_cv_.NotifyAll();
}

// --- HTTP facade ---

std::uint64_t IdentifyServer::Submit(const std::string& path,
                                     const std::string& content_type,
                                     std::string body) {
  PendingHttp pending;
  // Submit never throws: a hostile body whose parse escapes the typed
  // error paths still becomes a 400 collected later, never an exception
  // unwinding into the connection-handler thread.
  try {
    if (path == "/identify") {
      pending = BuildIdentify(content_type, body);
    } else if (path == "/ingest") {
      pending = BuildIngest(content_type, body);
    } else {
      {
        sentinel::MutexLock lock(mu_);
        ++stats_.unknown_routes;
      }
      if (metrics_.unknown_routes) metrics_.unknown_routes->Increment();
      pending = ImmediateResponse(404, "no such POST route");
    }
  } catch (const std::exception& error) {
    pending =
        ImmediateError(400, std::string("malformed body: ") + error.what());
  } catch (...) {
    pending = ImmediateError(400, "malformed body");
  }
  sentinel::MutexLock lock(mu_);
  const std::uint64_t id = ++next_request_;
  pending_.emplace(id, std::move(pending));
  return id;
}

obs::PostResponse IdentifyServer::Collect(std::uint64_t request_id) {
  PendingHttp pending;
  {
    sentinel::MutexLock lock(mu_);
    auto it = pending_.find(request_id);
    if (it == pending_.end())
      return {.status = 500, .body = "{\"error\":\"unknown request id\"}\n"};
    pending = std::move(it->second);
    pending_.erase(it);
  }
  switch (pending.kind) {
    case PendingHttp::Kind::kImmediate:
      return std::move(pending.response);
    case PendingHttp::Kind::kIdentify:
      return RenderIdentify(pending);
    case PendingHttp::Kind::kIngest:
      return RenderIngest(pending);
  }
  return {.status = 500, .body = "{\"error\":\"unreachable\"}\n"};
}

IdentifyServer::PendingHttp IdentifyServer::ImmediateResponse(
    int status, const std::string& message) {
  PendingHttp pending;
  pending.kind = PendingHttp::Kind::kImmediate;
  pending.response.status = status;
  pending.response.body = "{\"error\":";
  obs::AppendJsonEscaped(pending.response.body, message);
  pending.response.body += "}\n";
  return pending;
}

IdentifyServer::PendingHttp IdentifyServer::ImmediateError(
    int status, const std::string& message) {
  {
    sentinel::MutexLock lock(mu_);
    ++stats_.parse_errors;
  }
  if (metrics_.parse_errors) metrics_.parse_errors->Increment();
  return ImmediateResponse(status, message);
}

void IdentifyServer::AdmitHttpProbe(const net::MacAddress& mac,
                                    features::Fingerprint full,
                                    PendingHttp& pending) {
  auto fixed = features::FixedFingerprint::FromFingerprint(full);
  auto submission = SubmitProbe(mac, std::move(full), std::move(fixed));
  pending.probes.push_back(HttpProbe{.mac = mac.ToString(),
                                     .admitted = submission.admitted,
                                     .ticket = submission.ticket,
                                     .retry_after_ms =
                                         submission.retry_after_ms});
}

IdentifyServer::PendingHttp IdentifyServer::BuildIdentify(
    const std::string& content_type, const std::string& body) {
  net::MacAddress mac;
  features::Fingerprint full;
  if (content_type == "application/octet-stream") {
    if (body.size() <= kMacBytes)
      return ImmediateError(400, "binary probe shorter than MAC + header");
    std::array<std::uint8_t, kMacBytes> octets{};
    for (std::size_t i = 0; i < kMacBytes; ++i)
      octets[i] = static_cast<std::uint8_t>(body[i]);
    mac = net::MacAddress(octets);
    const auto* bytes =
        reinterpret_cast<const std::uint8_t*>(body.data()) + kMacBytes;
    try {
      full = features::ParseFingerprint(
          std::span<const std::uint8_t>(bytes, body.size() - kMacBytes));
    } catch (const std::exception& error) {
      // Wider than CodecError on purpose: whatever a hostile byte string
      // provokes, Submit's never-throws contract turns it into a 400.
      return ImmediateError(400, std::string("bad fingerprint bytes: ") +
                                     error.what());
    }
  } else if (content_type == "application/json") {
    const auto document = util::ParseJson(body);
    if (!document || !document->IsObject())
      return ImmediateError(400, "body is not a JSON object");
    const auto* mac_value = document->Find("mac");
    if (mac_value == nullptr || !mac_value->IsString())
      return ImmediateError(400, "missing string field \"mac\"");
    const auto parsed_mac = net::MacAddress::Parse(mac_value->string);
    if (!parsed_mac) return ImmediateError(400, "malformed MAC address");
    mac = *parsed_mac;
    const auto* packets = document->Find("packets");
    if (packets == nullptr || !packets->IsArray())
      return ImmediateError(400, "missing array field \"packets\"");
    std::vector<features::PacketFeatureVector> vectors;
    vectors.reserve(packets->items.size());
    for (const auto& packet : packets->items) {
      if (!packet.IsArray() ||
          packet.items.size() != features::kFeatureCount)
        return ImmediateError(
            400, "each packet must be an array of 23 feature values");
      features::PacketFeatureVector vector{};
      for (std::size_t i = 0; i < features::kFeatureCount; ++i)
        if (!ToFeature(packet.items[i], vector[i]))
          return ImmediateError(
              400, "feature values must be integers in [0, 2^32)");
      vectors.push_back(vector);
    }
    full = features::Fingerprint::FromPacketVectors(vectors);
  } else {
    return ImmediateError(415, "unsupported media type for /identify");
  }
  if (full.empty()) return ImmediateError(400, "empty fingerprint");

  PendingHttp pending;
  pending.kind = PendingHttp::Kind::kIdentify;
  AdmitHttpProbe(mac, std::move(full), pending);
  return pending;
}

IdentifyServer::PendingHttp IdentifyServer::BuildIngest(
    const std::string& content_type, const std::string& body) {
  if (content_type != "application/octet-stream" &&
      content_type != "application/vnd.tcpdump.pcap")
    return ImmediateError(415, "unsupported media type for /ingest");
  capture::TraceError error;
  const auto trace = capture::Trace::FromPcap(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(body.data()), body.size()),
      &error);
  if (!trace)
    return ImmediateError(400, "malformed pcap: " + error.ToString());

  PendingHttp pending;
  pending.kind = PendingHttp::Kind::kIngest;
  pending.frames = trace->size();
  const auto by_device = capture::SplitBySourceMac(trace->Parse());
  for (const auto& [mac, packets] : by_device) {
    if (packets.size() < kMinIngestPackets) {
      ++pending.devices_skipped;
      continue;
    }
    auto full = features::Fingerprint::FromPackets(packets);
    if (full.empty()) {
      ++pending.devices_skipped;
      continue;
    }
    AdmitHttpProbe(mac, std::move(full), pending);
  }
  return pending;
}

std::string IdentifyServer::RenderVerdictJson(
    const IdentificationResult& result) {
  std::string out = "{\"known\":";
  out += result.IsKnown() ? "true" : "false";
  out += ",\"type\":";
  out += result.type ? std::to_string(*result.type) : "null";
  out += ",\"matched_types\":[";
  for (std::size_t i = 0; i < result.matched_types.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(result.matched_types[i]);
  }
  out += "],\"tie_break_count\":";
  out += std::to_string(result.tie_break_count);
  out += ",\"dissimilarity\":";
  // The winner's score, when discrimination ran (>1 matched type): the
  // one dissimilarity the fast/serve/reference contract guarantees
  // bit-identical.
  std::string winner_score = "null";
  if (result.type &&
      result.dissimilarity_scores.size() == result.matched_types.size()) {
    for (std::size_t i = 0; i < result.matched_types.size(); ++i) {
      if (result.matched_types[i] == *result.type) {
        winner_score = FormatDouble(result.dissimilarity_scores[i]);
        break;
      }
    }
  }
  out += winner_score;
  out += '}';
  return out;
}

void IdentifyServer::AppendProbeJson(std::string& out, const HttpProbe& probe,
                                     const ProbeOutcome& outcome) {
  out += "{\"mac\":";
  obs::AppendJsonEscaped(out, probe.mac);
  if (!probe.admitted) {
    out += ",\"status\":\"rejected\",\"retry_after_ms\":";
    out += std::to_string(probe.retry_after_ms);
    out += '}';
    return;
  }
  if (outcome.status == ProbeStatus::kShed) {
    out += ",\"status\":\"superseded\"}";
    return;
  }
  out += ",\"status\":\"served\",\"verdict\":";
  out += RenderVerdictJson(outcome.result);
  out += ",\"batch_size\":";
  out += std::to_string(outcome.batch_size);
  out += ",\"queue_wait_ns\":";
  out += std::to_string(outcome.queue_wait_ns);
  out += '}';
}

obs::PostResponse IdentifyServer::RenderIdentify(PendingHttp& pending) {
  const HttpProbe& probe = pending.probes.front();
  obs::PostResponse response;
  if (!probe.admitted) {
    response.status = 429;
    response.retry_after_ms = probe.retry_after_ms;
    response.body = "{\"error\":\"overloaded\",\"retry_after_ms\":" +
                    std::to_string(probe.retry_after_ms) + "}\n";
    return response;
  }
  const ProbeOutcome outcome = WaitProbe(probe.ticket);
  if (outcome.status == ProbeStatus::kShed) {
    response.status = 429;
    response.body =
        "{\"error\":\"superseded\",\"detail\":"
        "\"a newer probe for this device replaced this one\"}\n";
    return response;
  }
  AppendProbeJson(response.body, probe, outcome);
  response.body += '\n';
  return response;
}

obs::PostResponse IdentifyServer::RenderIngest(PendingHttp& pending) {
  obs::PostResponse response;
  response.body = "{\"frames\":" + std::to_string(pending.frames) +
                  ",\"devices_skipped\":" +
                  std::to_string(pending.devices_skipped) + ",\"devices\":[";
  bool first = true;
  for (const HttpProbe& probe : pending.probes) {
    ProbeOutcome outcome;
    if (probe.admitted) outcome = WaitProbe(probe.ticket);
    if (!first) response.body += ',';
    first = false;
    AppendProbeJson(response.body, probe, outcome);
  }
  response.body += "]}\n";
  return response;
}

ServeStats IdentifyServer::stats() const {
  sentinel::MutexLock lock(mu_);
  return stats_;
}

std::size_t IdentifyServer::queue_depth() const {
  sentinel::MutexLock lock(mu_);
  return queue_.depth();
}

}  // namespace sentinel::core
