// The always-on identification service behind `sentinelctl serve`'s POST
// routes (DESIGN.md "Serving path"). Probes arrive over HTTP — a parsed
// fingerprint on POST /identify, raw setup-phase frames on POST /ingest —
// and are admitted into a bounded MAC-keyed queue; a single drain thread
// flushes the queue through DeviceIdentifier::IdentifyBatchServe under the
// adaptive micro-batching policy (core/serve_batching.h) and wakes the
// waiting connection handlers with their verdicts.
//
// Overload is explicit, never silent: past the queue's capacity an older
// probe of the same device is shed (the newest fingerprint per device
// wins) and its waiter told 429, or — when no same-device probe is queued
// — the new probe is rejected with 429 + Retry-After derived from the
// observed service rate. Verdict-grade fields of every served response
// are bit-identical to a per-call `sentinelctl identify` of the same
// fingerprint (differentially tested; see IdentifyBatchServe's contract).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/device_identifier.h"
#include "core/serve_batching.h"
#include "features/fingerprint.h"
#include "net/address.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::core {

struct IdentifyServerConfig {
  /// Admission queue capacity; probes past it shed or get 429.
  std::size_t queue_depth = 256;
  AdaptiveBatchConfig batch;
  /// Tests: no drain thread is started; DrainNow() services the queue on
  /// the caller's thread with an injected "now".
  bool manual_drain = false;
  /// Monotonic nanosecond clock; null uses std::chrono::steady_clock.
  /// Injectable so batching/overload behaviour is testable without
  /// sleeping.
  std::function<std::uint64_t()> clock;
};

/// Lifetime counters of one server, readable at any time (stats()) and —
/// with set_metrics() — mirrored into the telemetry registry.
struct ServeStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t probes_served = 0;
  /// Bodies rejected as malformed or mistyped (400/415) — routing 404s
  /// are counted separately below, not here.
  std::uint64_t parse_errors = 0;
  /// POSTs to a path no route claims (404).
  std::uint64_t unknown_routes = 0;
  /// Batches by flush reason (the policy's size / deadline / sparse).
  std::uint64_t flush_size = 0;
  std::uint64_t flush_deadline = 0;
  std::uint64_t flush_sparse = 0;
  /// Batch-size histogram: served batch size -> occurrences.
  std::map<std::size_t, std::uint64_t> batch_size_counts;
};

class IdentifyServer : public obs::PostRoutes {
 public:
  /// `identifier` must be trained and must outlive the server.
  explicit IdentifyServer(const DeviceIdentifier* identifier,
                          IdentifyServerConfig config = {});
  ~IdentifyServer() override;
  IdentifyServer(const IdentifyServer&) = delete;
  IdentifyServer& operator=(const IdentifyServer&) = delete;

  /// Starts the drain thread (no-op under manual_drain).
  void Start();
  /// Stops the drain thread and resolves every still-queued probe as
  /// shed so no waiter blocks forever. Idempotent; the destructor calls
  /// it.
  void Stop();

  /// Mirrors the serve counters into `registry` (attach before Start,
  /// like the identifier's own metrics): queue-depth gauge, admission /
  /// shed / rejection / batch / probe counters, batch-size and
  /// queue-wait histograms.
  void set_metrics(obs::MetricsRegistry* registry);

  // --- probe API (what the HTTP facade and the tests drive) ---

  struct Submission {
    bool admitted = false;
    /// Valid when admitted; pass to WaitProbe.
    std::uint64_t ticket = 0;
    /// When rejected: suggested client back-off.
    std::uint64_t retry_after_ms = 0;
  };
  /// Admits one probe (never blocks). Both fingerprint forms are moved
  /// in — the drain consumes them after the caller's buffers are gone.
  Submission SubmitProbe(const net::MacAddress& mac,
                         features::Fingerprint full,
                         features::FixedFingerprint fixed);

  enum class ProbeStatus {
    kServed,
    /// Shed before service: superseded by a newer same-device probe
    /// under overload, or the server stopped.
    kShed,
  };
  struct ProbeOutcome {
    ProbeStatus status = ProbeStatus::kShed;
    IdentificationResult result;
    /// Size of the batch this probe was served in (0 when shed).
    std::size_t batch_size = 0;
    /// Admission-to-drain queueing delay (0 when shed).
    std::uint64_t queue_wait_ns = 0;
  };
  /// Blocks until the ticket's probe is served or shed; consumes the
  /// ticket.
  [[nodiscard]] ProbeOutcome WaitProbe(std::uint64_t ticket);

  // --- obs::PostRoutes (the HTTP facade) ---

  /// Parses and admits one POST body. Routes: /identify with
  /// application/json `{"mac": "...", "packets": [[23 uints]...]}` or
  /// application/octet-stream (6 raw MAC octets + SFP fingerprint
  /// bytes); /ingest with a classic pcap image whose frames are split
  /// per source MAC and fingerprinted. Malformed input becomes a 400
  /// collected later — never an exception.
  [[nodiscard]] std::uint64_t Submit(const std::string& path,
                                     const std::string& content_type,
                                     std::string body) override;
  /// Blocks until every probe of the request is served/shed and renders
  /// the response; consumes the id.
  [[nodiscard]] obs::PostResponse Collect(std::uint64_t request_id) override;

  // --- introspection / test hooks ---

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const IdentifyServerConfig& config() const { return config_; }

  /// Manual-drain mode: evaluates the flush policy at `now_ns` and, when
  /// it fires, services one batch on the calling thread. Returns the
  /// number of probes served (0: no flush due yet or queue empty).
  std::size_t DrainNow(std::uint64_t now_ns);

  /// Renders the verdict-grade JSON object shared by every serving mode
  /// — `{"known":...,"type":...,"matched_types":[...],
  /// "tie_break_count":...,"dissimilarity":...}` — exposed so the
  /// differential tests and the load generator can render a per-call
  /// Identify() result through the exact same bytes.
  [[nodiscard]] static std::string RenderVerdictJson(
      const IdentificationResult& result);

 private:
  /// Verdict slot a waiter parks on; keyed by ticket in slots_.
  struct Slot {
    bool done = false;
    bool shed = false;
    IdentificationResult result;
    std::size_t batch_size = 0;
    std::uint64_t queue_wait_ns = 0;
  };

  /// One submitted probe of an HTTP request (per device for /ingest).
  struct HttpProbe {
    std::string mac;
    bool admitted = false;
    std::uint64_t ticket = 0;
    std::uint64_t retry_after_ms = 0;
  };
  /// Parsed-and-admitted state of one HTTP request between Submit and
  /// Collect.
  struct PendingHttp {
    enum class Kind { kImmediate, kIdentify, kIngest };
    Kind kind = Kind::kImmediate;
    /// Ready response (kImmediate: parse errors, 415s, immediate 429s).
    obs::PostResponse response;
    std::vector<HttpProbe> probes;
    /// /ingest provenance for the response body.
    std::size_t frames = 0;
    std::size_t devices_skipped = 0;
  };

  [[nodiscard]] std::uint64_t NowNs() const;
  /// Suggested Retry-After from current depth x observed per-probe
  /// service time (falls back to the latency bound before any batch has
  /// been measured).
  [[nodiscard]] std::uint64_t RetryAfterMsLocked() const
      SENTINEL_REQUIRES(mu_);

  void DrainLoop();
  /// Services one popped batch end to end: identify (batched kernel, or
  /// the per-call path when batch_target == 1 — the honest baseline the
  /// benchmark compares against), fill slots, wake waiters.
  void ServeBatch(std::vector<QueuedProbe> batch,
                  AdaptiveBatchPolicy::FlushReason reason);

  PendingHttp BuildIdentify(const std::string& content_type,
                            const std::string& body);
  PendingHttp BuildIngest(const std::string& content_type,
                          const std::string& body);
  /// Ready error response; counts nothing — the callers below attribute.
  static PendingHttp ImmediateResponse(int status,
                                       const std::string& message);
  /// ImmediateResponse counted as a malformed body (400/415).
  PendingHttp ImmediateError(int status, const std::string& message);
  /// Admits one parsed fingerprint and appends its HttpProbe record.
  void AdmitHttpProbe(const net::MacAddress& mac, features::Fingerprint full,
                      PendingHttp& pending);
  [[nodiscard]] obs::PostResponse RenderIdentify(PendingHttp& pending);
  [[nodiscard]] obs::PostResponse RenderIngest(PendingHttp& pending);
  /// Renders one probe's outcome into `out` (shared by both renderers).
  void AppendProbeJson(std::string& out, const HttpProbe& probe,
                       const ProbeOutcome& outcome);

  /// Metric handles resolved once in set_metrics(); all-null when
  /// detached.
  struct ServeMetrics {
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* probes = nullptr;
    obs::Counter* parse_errors = nullptr;
    obs::Counter* unknown_routes = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* queue_wait_ns = nullptr;
  };

  const DeviceIdentifier* identifier_;
  IdentifyServerConfig config_;
  ServeMetrics metrics_;

  mutable sentinel::Mutex mu_{"identify_server.queue"};
  /// Drain wake-ups: new admission or stop.
  sentinel::CondVar work_cv_;
  /// Waiter wake-ups: batch served or probe shed.
  sentinel::CondVar done_cv_;
  AdmissionQueue queue_ SENTINEL_GUARDED_BY(mu_);
  AdaptiveBatchPolicy policy_ SENTINEL_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, Slot> slots_ SENTINEL_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, PendingHttp> pending_
      SENTINEL_GUARDED_BY(mu_);
  std::uint64_t next_ticket_ SENTINEL_GUARDED_BY(mu_) = 0;
  std::uint64_t next_request_ SENTINEL_GUARDED_BY(mu_) = 0;
  ServeStats stats_ SENTINEL_GUARDED_BY(mu_);
  /// EWMA of observed per-probe service time, feeding Retry-After.
  double ewma_service_ns_ SENTINEL_GUARDED_BY(mu_) = 0.0;
  bool stopping_ SENTINEL_GUARDED_BY(mu_) = false;
  bool started_ = false;
  std::thread drain_;
};

}  // namespace sentinel::core
