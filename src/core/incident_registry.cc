#include "core/incident_registry.h"

namespace sentinel::core {

bool IncidentRegistry::Report(const IncidentReport& report) {
  TypeState& state = by_type_[report.device_type];
  ++state.report_count;
  const bool was_flagged = state.reporters.size() >= threshold_;
  state.reporters.insert(report.reporter_token);
  const bool now_flagged = state.reporters.size() >= threshold_;
  return now_flagged && !was_flagged;
}

std::size_t IncidentRegistry::ReportCount(
    const std::string& device_type) const {
  const auto it = by_type_.find(device_type);
  return it == by_type_.end() ? 0 : it->second.report_count;
}

std::size_t IncidentRegistry::DistinctReporters(
    const std::string& device_type) const {
  const auto it = by_type_.find(device_type);
  return it == by_type_.end() ? 0 : it->second.reporters.size();
}

bool IncidentRegistry::IsFlagged(const std::string& device_type) const {
  return DistinctReporters(device_type) >= threshold_;
}

std::vector<std::string> IncidentRegistry::FlaggedTypes() const {
  std::vector<std::string> out;
  for (const auto& [type, state] : by_type_) {
    if (state.reporters.size() >= threshold_) out.push_back(type);
  }
  return out;
}

}  // namespace sentinel::core
