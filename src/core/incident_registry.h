// Crowdsourced incident correlation (paper Sect. III-B): "Crowdsourced
// information can also be used by cross-correlating security incidents and
// related device-types as reported by Security Gateways of affected
// networks."
//
// Gateways report incidents (anomalous flows, blocked exfiltration
// attempts, device compromise indicators) tagged with the affected
// device-type. Once independent reports for a type cross a threshold, the
// IoTSSP treats the type as vulnerable even without a published CVE and
// starts assigning restricted isolation — the crowd acting as an early-
// warning vulnerability feed.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sentinel::core {

struct IncidentReport {
  std::string device_type;   // catalog identifier
  std::string description;   // e.g. "outbound scan blocked"
  /// Anonymous but stable reporter token (one per gateway); repeated
  /// reports from the same gateway count once towards the threshold.
  std::uint64_t reporter_token = 0;
};

class IncidentRegistry {
 public:
  /// `distinct_reporters_threshold`: number of *different* gateways that
  /// must report a type before it is considered compromised-in-the-wild.
  explicit IncidentRegistry(std::size_t distinct_reporters_threshold = 3)
      : threshold_(distinct_reporters_threshold) {}

  /// Records a report. Returns true if this report pushed the type over
  /// the threshold (i.e. the type's status just changed).
  bool Report(const IncidentReport& report);

  [[nodiscard]] std::size_t ReportCount(const std::string& device_type) const;
  [[nodiscard]] std::size_t DistinctReporters(
      const std::string& device_type) const;
  /// True once >= threshold distinct gateways reported the type.
  [[nodiscard]] bool IsFlagged(const std::string& device_type) const;
  /// All flagged types, unordered.
  [[nodiscard]] std::vector<std::string> FlaggedTypes() const;

  [[nodiscard]] std::size_t threshold() const { return threshold_; }

 private:
  struct TypeState {
    std::size_t report_count = 0;
    std::unordered_set<std::uint64_t> reporters;
  };
  std::size_t threshold_;
  std::unordered_map<std::string, TypeState> by_type_;
};

}  // namespace sentinel::core
