#include "core/isolation.h"

#include <algorithm>
#include <sstream>

namespace sentinel::core {

std::string ToString(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kStrict:
      return "strict";
    case IsolationLevel::kRestricted:
      return "restricted";
    case IsolationLevel::kTrusted:
      return "trusted";
  }
  return "?";
}

std::uint64_t EnforcementRule::Hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(device_mac.ToUint64());
  mix(static_cast<std::uint64_t>(level));
  for (const auto& ip : allowed_endpoints) mix(ip.value());
  for (const auto& name : allowed_endpoint_names)
    for (char c : name) mix(static_cast<std::uint8_t>(c));
  return h;
}

bool EnforcementRule::AllowsEndpoint(net::Ipv4Address ip) const {
  if (level == IsolationLevel::kTrusted) return true;
  if (level == IsolationLevel::kStrict) return false;
  return std::find(allowed_endpoints.begin(), allowed_endpoints.end(), ip) !=
         allowed_endpoints.end();
}

std::string EnforcementRule::ToString() const {
  std::ostringstream out;
  out << "Device: " << device_mac.ToString();
  if (!device_type.empty()) out << " (" << device_type << ")";
  out << "\nIsolation level: " << core::ToString(level);
  if (level == IsolationLevel::kRestricted) {
    out << "\nPermitted addresses:";
    for (std::size_t i = 0; i < allowed_endpoints.size(); ++i) {
      out << "\n  " << allowed_endpoints[i].ToString();
      if (i < allowed_endpoint_names.size())
        out << " (" << allowed_endpoint_names[i] << ")";
    }
  }
  out << "\nHash: " << Hash();
  return out.str();
}

std::size_t EnforcementRule::MemoryBytes() const {
  std::size_t total = sizeof(*this);
  total += device_type.capacity();
  total += allowed_endpoints.capacity() * sizeof(net::Ipv4Address);
  total += allowed_endpoint_names.capacity() * sizeof(std::string);
  for (const auto& name : allowed_endpoint_names) total += name.capacity();
  return total;
}

}  // namespace sentinel::core
