// Isolation levels and enforcement rules (paper Sect. V, Fig. 2/3).
//
// Every device is assigned one of three isolation levels after
// identification; the Security Gateway stores one enforcement rule per
// device (keyed by MAC) in a hash-table cache and compiles it into flow
// rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"

namespace sentinel::core {

/// Paper Fig. 3: strict / restricted / trusted.
enum class IsolationLevel : std::uint8_t {
  /// Untrusted overlay only; no Internet access. Assigned to unknown
  /// device-types.
  kStrict = 0,
  /// Untrusted overlay plus an allowlist of remote endpoints (the vendor
  /// cloud). Assigned to types with known vulnerabilities.
  kRestricted = 1,
  /// Trusted overlay and unrestricted Internet access. Assigned to types
  /// with no known vulnerabilities.
  kTrusted = 2,
};

std::string ToString(IsolationLevel level);

/// The network overlay a level places a device in (Fig. 3: strict and
/// restricted devices share the untrusted overlay).
enum class Overlay : std::uint8_t { kUntrusted = 0, kTrusted = 1 };

constexpr Overlay OverlayOf(IsolationLevel level) {
  return level == IsolationLevel::kTrusted ? Overlay::kTrusted
                                           : Overlay::kUntrusted;
}

/// One per-device enforcement rule (paper Fig. 2): MAC, isolation level,
/// permitted remote endpoints, and a hash used as the cache key / flow
/// cookie.
struct EnforcementRule {
  net::MacAddress device_mac;
  IsolationLevel level = IsolationLevel::kStrict;
  /// Identified device-type (catalog identifier), empty if unknown.
  std::string device_type;
  /// Remote endpoints the device may reach under kRestricted.
  std::vector<net::Ipv4Address> allowed_endpoints;
  /// DNS names behind allowed_endpoints (informational, Fig. 2 shows both).
  std::vector<std::string> allowed_endpoint_names;

  /// Stable 64-bit hash over MAC + level + endpoints — the value the paper
  /// stores for "enforcement rule storage in cache".
  [[nodiscard]] std::uint64_t Hash() const;

  /// True when this rule permits reaching the given remote endpoint.
  [[nodiscard]] bool AllowsEndpoint(net::Ipv4Address ip) const;

  [[nodiscard]] std::string ToString() const;
  /// Approximate heap footprint (Fig. 6c memory accounting).
  [[nodiscard]] std::size_t MemoryBytes() const;
};

}  // namespace sentinel::core
