#include "core/legacy.h"

#include "capture/setup_phase.h"

namespace sentinel::core {

std::vector<LegacyDeviceReport> MigrateLegacyNetwork(
    const capture::Trace& standby_capture, SecurityServiceClient& service,
    EnforcementEngine& engine, const LegacyMigrationConfig& config) {
  std::vector<LegacyDeviceReport> reports;
  const auto packets = standby_capture.Parse();
  const auto by_mac = capture::SplitBySourceMac(packets);

  for (const auto& [mac, device_packets] : by_mac) {
    if (mac == engine.gateway_mac()) continue;
    if (device_packets.size() < config.min_packets) continue;

    LegacyDeviceReport report;
    report.mac = mac;
    report.packets_observed = device_packets.size();

    // Fingerprint the whole observation window (capped at max_packets).
    // Standby traffic has idle gaps *by nature* (heartbeats are tens of
    // seconds apart), so the setup-phase idle-gap rule does not apply —
    // the standby-trained classifiers were built from full observation
    // windows and the probe must match that framing.
    const std::size_t end =
        std::min(device_packets.size(), config.phase.max_packets);
    const std::vector<net::ParsedPacket> window(
        device_packets.begin(),
        device_packets.begin() + static_cast<std::ptrdiff_t>(end));
    const auto full = features::Fingerprint::FromPackets(window);
    const auto fixed = features::FixedFingerprint::FromFingerprint(full);

    const AssessmentResult assessment = service.Assess(full, fixed);
    report.type = assessment.type;
    report.type_identifier = assessment.type_identifier;
    report.requires_user_notification = assessment.requires_user_notification;

    EnforcementRule rule;
    rule.device_mac = mac;
    rule.device_type = assessment.type_identifier;

    if (!assessment.type.has_value()) {
      // Unidentifiable: strict isolation in the untrusted overlay.
      rule.level = IsolationLevel::kStrict;
    } else if (assessment.level == IsolationLevel::kTrusted) {
      const auto& info = devices::GetDeviceType(*assessment.type);
      if (info.supports_wps_rekeying) {
        // WPS re-keying moves the device into the trusted overlay with a
        // fresh device-specific PSK.
        rule.level = IsolationLevel::kTrusted;
        report.migrated_to_trusted = true;
      } else {
        // Clean but cannot re-key: stays in the untrusted overlay with
        // vendor-cloud access until the user re-introduces it manually.
        rule.level = IsolationLevel::kRestricted;
        devices::NetworkEnvironment resolver;
        for (const auto& endpoint : info.cloud_endpoints) {
          rule.allowed_endpoints.push_back(resolver.ResolveEndpoint(endpoint));
          rule.allowed_endpoint_names.push_back(endpoint);
        }
        report.needs_manual_reintroduction = true;
      }
    } else {
      // Vulnerable (or service says strict): keep the service's verdict.
      rule.level = assessment.level;
      rule.allowed_endpoints = assessment.allowed_endpoints;
      rule.allowed_endpoint_names = assessment.allowed_endpoint_names;
    }
    report.level = rule.level;
    engine.Install(std::move(rule));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace sentinel::core
