// Legacy-installation support (paper Sect. VIII-A).
//
// When a Security Gateway is retrofitted into an existing network (e.g. as
// a firmware update to the old router), its devices are already connected:
// there is no setup burst to fingerprint. Identification instead runs on
// standby/operational traffic, and the network is split into the untrusted
// (legacy) and trusted overlays. Clean devices that support WPS re-keying
// are migrated to the trusted overlay automatically; clean devices without
// WPS support stay in the untrusted overlay until the user re-introduces
// them manually; vulnerable devices stay restricted; unidentifiable
// devices stay strict.
#pragma once

#include <optional>
#include <vector>

#include "capture/setup_phase.h"
#include "capture/trace.h"
#include "core/enforcement.h"
#include "core/security_service.h"

namespace sentinel::core {

/// Outcome of the migration planning for one legacy device.
struct LegacyDeviceReport {
  net::MacAddress mac;
  std::optional<devices::DeviceTypeId> type;
  std::string type_identifier;  // empty if unidentified
  IsolationLevel level = IsolationLevel::kStrict;
  /// Device was re-keyed into the trusted overlay via WPS.
  bool migrated_to_trusted = false;
  /// Clean device without WPS re-keying: the gateway should prompt the
  /// user to re-introduce it manually (paper's option 2).
  bool needs_manual_reintroduction = false;
  /// Vulnerable device with an uncontrollable side channel: user must be
  /// notified to remove it.
  bool requires_user_notification = false;
  std::size_t packets_observed = 0;
};

struct LegacyMigrationConfig {
  /// Sources with fewer parsed packets than this are treated as background
  /// noise (responders, transient guests) and skipped.
  std::size_t min_packets = 4;
  capture::SetupPhaseConfig phase;
};

/// Plans (and applies, via `engine`) the migration of every device visible
/// in `standby_capture`. Returns one report per considered device, in MAC
/// order. Devices already present in `engine` are re-assessed and their
/// rules replaced.
std::vector<LegacyDeviceReport> MigrateLegacyNetwork(
    const capture::Trace& standby_capture, SecurityServiceClient& service,
    EnforcementEngine& engine, const LegacyMigrationConfig& config = {});

}  // namespace sentinel::core
