#include "core/remote_service.h"

#include "features/fingerprint_codec.h"

namespace sentinel::core {

namespace {

void WriteString(net::ByteWriter& w, const std::string& s) {
  w.WriteU16(static_cast<std::uint16_t>(s.size()));
  w.WriteString(s);
}

std::string ReadString(net::ByteReader& r) {
  const std::uint16_t length = r.ReadU16();
  const auto bytes = r.ReadBytes(length);
  return std::string(bytes.begin(), bytes.end());
}

void ExpectHeader(net::ByteReader& r, char a, char b, char c,
                  const char* what) {
  if (r.ReadU8() != static_cast<std::uint8_t>(a) ||
      r.ReadU8() != static_cast<std::uint8_t>(b) ||
      r.ReadU8() != static_cast<std::uint8_t>(c)) {
    throw net::CodecError(std::string("bad magic for ") + what);
  }
  if (r.ReadU8() != 1)
    throw net::CodecError(std::string("unsupported version for ") + what);
}

}  // namespace

std::vector<std::uint8_t> EncodeAssessRequest(const AssessRequest& request) {
  net::ByteWriter w;
  w.WriteU8('S');
  w.WriteU8('R');
  w.WriteU8('Q');
  w.WriteU8(1);
  features::EncodeFingerprint(w, request.full);
  features::EncodeFixedFingerprint(w, request.fixed);
  return std::move(w).Take();
}

AssessRequest DecodeAssessRequest(std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  ExpectHeader(r, 'S', 'R', 'Q', "assess request");
  AssessRequest request;
  request.full = features::DecodeFingerprint(r);
  request.fixed = features::DecodeFixedFingerprint(r);
  return request;
}

std::vector<std::uint8_t> EncodeAssessResponse(const AssessmentResult& result) {
  net::ByteWriter w;
  w.WriteU8('S');
  w.WriteU8('R');
  w.WriteU8('S');
  w.WriteU8(1);
  w.WriteU8(result.type.has_value() ? 1 : 0);
  w.WriteU32(static_cast<std::uint32_t>(result.type.value_or(-1)));
  WriteString(w, result.type_identifier);
  w.WriteU8(static_cast<std::uint8_t>(result.level));
  w.WriteU8(result.requires_user_notification ? 1 : 0);
  w.WriteU16(static_cast<std::uint16_t>(result.allowed_endpoints.size()));
  for (std::size_t i = 0; i < result.allowed_endpoints.size(); ++i) {
    w.WriteU32(result.allowed_endpoints[i].value());
    WriteString(w, i < result.allowed_endpoint_names.size()
                       ? result.allowed_endpoint_names[i]
                       : std::string());
  }
  w.WriteU16(static_cast<std::uint16_t>(result.advisories.size()));
  for (const auto& advisory : result.advisories) {
    WriteString(w, advisory.cve_id);
    WriteString(w, advisory.device_type);
    WriteString(w, advisory.summary);
    w.WriteU32(static_cast<std::uint32_t>(advisory.cvss_score * 1000.0));
  }
  return std::move(w).Take();
}

AssessmentResult DecodeAssessResponse(std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  ExpectHeader(r, 'S', 'R', 'S', "assess response");
  AssessmentResult result;
  const bool known = r.ReadU8() != 0;
  const auto type = static_cast<std::int32_t>(r.ReadU32());
  if (known) {
    result.type = static_cast<devices::DeviceTypeId>(type);
    result.identification.type = type;
  }
  result.type_identifier = ReadString(r);
  const std::uint8_t level = r.ReadU8();
  if (level > static_cast<std::uint8_t>(IsolationLevel::kTrusted))
    throw net::CodecError("invalid isolation level");
  result.level = static_cast<IsolationLevel>(level);
  result.requires_user_notification = r.ReadU8() != 0;
  const std::uint16_t endpoint_count = r.ReadU16();
  for (std::uint16_t i = 0; i < endpoint_count; ++i) {
    result.allowed_endpoints.emplace_back(r.ReadU32());
    result.allowed_endpoint_names.push_back(ReadString(r));
  }
  const std::uint16_t advisory_count = r.ReadU16();
  for (std::uint16_t i = 0; i < advisory_count; ++i) {
    VulnerabilityRecord advisory;
    advisory.cve_id = ReadString(r);
    advisory.device_type = ReadString(r);
    advisory.summary = ReadString(r);
    advisory.cvss_score = static_cast<double>(r.ReadU32()) / 1000.0;
    result.advisories.push_back(std::move(advisory));
  }
  return result;
}

std::vector<std::uint8_t> SecurityServiceServer::Handle(
    std::span<const std::uint8_t> request_bytes) {
  ++requests_served_;
  const AssessRequest request = DecodeAssessRequest(request_bytes);
  const AssessmentResult result =
      service_.Assess(request.full, request.fixed);
  return EncodeAssessResponse(result);
}

AssessmentResult RemoteSecurityServiceClient::Assess(
    const features::Fingerprint& full,
    const features::FixedFingerprint& fixed) {
  const auto request = EncodeAssessRequest(AssessRequest{full, fixed});
  const auto response = transport_.RoundTrip(request);
  return DecodeAssessResponse(response);
}

}  // namespace sentinel::core
