// Gateway <-> IoT Security Service wire protocol (paper Sect. III).
//
// The Security Gateway ships fingerprints to the IoTSSP and receives back
// the identification verdict, the isolation level and (for restricted
// devices) the endpoint allowlist. The protocol is deliberately stateless
// and content-addressed — the IoTSSP "does not store any information about
// its Security Gateway clients, it just receives fingerprints and returns
// an isolation level accordingly", which is also what lets a gateway query
// anonymously (e.g. through Tor).
//
// Messages (big-endian, length-prefixed strings):
//   AssessRequest:  'S''R''Q' ver(1) | Fingerprint F | FixedFingerprint F'
//   AssessResponse: 'S''R''S' ver(1) | u8 known | i32 type |
//                   str identifier | u8 level | u8 notify_user |
//                   u16 n_endpoints  { u32 ip, str name } |
//                   u16 n_advisories { str cve, str type, str summary,
//                                      u32 cvss_milli }
#pragma once

#include <memory>

#include "core/security_service.h"

namespace sentinel::core {

// ---- Message codecs --------------------------------------------------------

struct AssessRequest {
  features::Fingerprint full;
  features::FixedFingerprint fixed;
};

std::vector<std::uint8_t> EncodeAssessRequest(const AssessRequest& request);
AssessRequest DecodeAssessRequest(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> EncodeAssessResponse(const AssessmentResult& result);
/// Decodes into an AssessmentResult. Per-stage timings and matched-type
/// lists are gateway-local diagnostics and do not cross the wire; the
/// decoded result carries the verdict fields only.
AssessmentResult DecodeAssessResponse(std::span<const std::uint8_t> bytes);

// ---- Transport & endpoints -------------------------------------------------

/// Request/response transport between a gateway and the IoTSSP. Real
/// deployments put TLS (or Tor) underneath; tests use the loopback below.
class ServiceTransport {
 public:
  virtual ~ServiceTransport() = default;
  virtual std::vector<std::uint8_t> RoundTrip(
      std::span<const std::uint8_t> request) = 0;
};

/// Server side: owns (a reference to) the SecurityService and answers raw
/// request bytes — the piece that runs at the IoT Security Service
/// Provider.
class SecurityServiceServer {
 public:
  explicit SecurityServiceServer(SecurityService& service)
      : service_(service) {}

  /// Handles one request message; returns the encoded response. Throws
  /// net::CodecError on malformed requests.
  std::vector<std::uint8_t> Handle(std::span<const std::uint8_t> request);

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_;
  }

 private:
  SecurityService& service_;
  std::uint64_t requests_served_ = 0;
};

/// In-process transport wiring a client directly to a server (the unit- and
/// integration-test stand-in for the network path). Tracks traffic volume
/// so tests can assert on protocol overhead.
class LoopbackTransport : public ServiceTransport {
 public:
  explicit LoopbackTransport(SecurityServiceServer& server)
      : server_(server) {}

  std::vector<std::uint8_t> RoundTrip(
      std::span<const std::uint8_t> request) override {
    ++round_trips_;
    bytes_sent_ += request.size();
    auto response = server_.Handle(request);
    bytes_received_ += response.size();
    return response;
  }

  [[nodiscard]] std::uint64_t round_trips() const { return round_trips_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

 private:
  SecurityServiceServer& server_;
  std::uint64_t round_trips_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// Client side: a SecurityServiceClient the gateway can use exactly like
/// the in-process service, but which serializes every assessment through a
/// transport.
class RemoteSecurityServiceClient : public SecurityServiceClient {
 public:
  explicit RemoteSecurityServiceClient(ServiceTransport& transport)
      : transport_(transport) {}

  AssessmentResult Assess(const features::Fingerprint& full,
                          const features::FixedFingerprint& fixed) override;

 private:
  ServiceTransport& transport_;
};

}  // namespace sentinel::core
