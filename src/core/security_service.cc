#include "core/security_service.h"

#include "devices/simulator.h"
#include "obs/profiler.h"

namespace sentinel::core {

SecurityService::SecurityService(DeviceIdentifier identifier,
                                 VulnerabilityDb db)
    : identifier_(std::move(identifier)), db_(std::move(db)) {}

IsolationLevel SecurityService::AssessType(devices::DeviceTypeId type) const {
  const auto& info = devices::GetDeviceType(type);
  return db_.HasVulnerabilities(info.identifier) ? IsolationLevel::kRestricted
                                                 : IsolationLevel::kTrusted;
}

AssessmentResult SecurityService::Assess(
    const features::Fingerprint& full,
    const features::FixedFingerprint& fixed) {
  SENTINEL_PROFILE_SCOPE("identify.assess");
  AssessmentResult result;
  result.identification = identifier_.Identify(full, fixed);

  if (!result.identification.IsKnown()) {
    // Unknown device-type: strict isolation (paper Sect. III-B).
    result.level = IsolationLevel::kStrict;
    return result;
  }

  const auto type =
      static_cast<devices::DeviceTypeId>(*result.identification.type);
  const auto& info = devices::GetDeviceType(type);
  result.type = type;
  result.type_identifier = info.identifier;
  result.advisories = db_.Query(info.identifier);
  // Crowdsourced early warning: enough independent gateways reporting
  // incidents involving this type marks it vulnerable ahead of any CVE.
  if (result.advisories.empty() && incidents_.IsFlagged(info.identifier)) {
    result.advisories.push_back(VulnerabilityRecord{
        .cve_id = "CROWD-" + info.identifier,
        .device_type = info.identifier,
        .summary = "security incidents reported by " +
                   std::to_string(incidents_.DistinctReporters(
                       info.identifier)) +
                   " independent gateways",
        .cvss_score = 6.5});
  }
  result.level = result.advisories.empty() ? IsolationLevel::kTrusted
                                           : IsolationLevel::kRestricted;
  result.requires_user_notification =
      !result.advisories.empty() && info.HasUncontrollableChannel();
  if (result.level == IsolationLevel::kRestricted) {
    for (const auto& endpoint : info.cloud_endpoints) {
      result.allowed_endpoints.push_back(resolver_.ResolveEndpoint(endpoint));
      result.allowed_endpoint_names.push_back(endpoint);
    }
  }
  return result;
}

std::unique_ptr<SecurityService> BuildTrainedSecurityService(
    std::size_t n_per_type, std::uint64_t seed, IdentifierConfig config,
    TrainingTrafficMode mode) {
  const auto dataset =
      mode == TrainingTrafficMode::kStandby
          ? devices::GenerateStandbyFingerprintDataset(n_per_type, seed)
          : devices::GenerateFingerprintDataset(n_per_type, seed);
  std::vector<LabelledFingerprint> examples;
  examples.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    examples.push_back(LabelledFingerprint{&dataset.fingerprints[i],
                                           &dataset.fixed[i],
                                           dataset.labels[i]});
  }
  DeviceIdentifier identifier(config);
  identifier.Train(examples);
  return std::make_unique<SecurityService>(std::move(identifier),
                                           VulnerabilityDb::SeedFromCatalog());
}

}  // namespace sentinel::core
