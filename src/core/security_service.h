// The IoT Security Service (IoTSSP, paper Sect. III-B): receives device
// fingerprints from Security Gateways, classifies them, assesses the
// identified type against the vulnerability database and returns the
// isolation level (plus the endpoint allowlist for restricted devices).
// Stateless towards its clients: it stores no per-gateway information.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/device_identifier.h"
#include "core/incident_registry.h"
#include "core/isolation.h"
#include "core/vulnerability_db.h"
#include "devices/catalog.h"
#include "devices/environment.h"

namespace sentinel::core {

/// The IoTSSP's verdict for one fingerprint.
struct AssessmentResult {
  /// Identified catalog type, or nullopt for an unknown device-type.
  std::optional<devices::DeviceTypeId> type;
  std::string type_identifier;  // empty if unknown
  IsolationLevel level = IsolationLevel::kStrict;
  std::vector<net::Ipv4Address> allowed_endpoints;
  std::vector<std::string> allowed_endpoint_names;
  /// Advisories that triggered the restriction (empty if none).
  std::vector<VulnerabilityRecord> advisories;
  /// Paper Sect. III-C3: the device is vulnerable AND has a communication
  /// channel the gateway cannot control (Bluetooth/LTE/proprietary RF), so
  /// isolation alone is insufficient — the user must be told to remove it.
  bool requires_user_notification = false;
  IdentificationResult identification;
};

/// Client-side interface: what a Security Gateway needs from the IoTSSP.
/// Production deployments talk to a remote service (possibly over Tor, per
/// the paper); tests and examples use the in-process implementation below.
class SecurityServiceClient {
 public:
  virtual ~SecurityServiceClient() = default;
  virtual AssessmentResult Assess(const features::Fingerprint& full,
                                  const features::FixedFingerprint& fixed) = 0;
};

/// In-process IoT Security Service.
class SecurityService : public SecurityServiceClient {
 public:
  /// `identifier` must already be trained with catalog labels
  /// (DeviceTypeId values). `db` supplies vulnerability assessments.
  SecurityService(DeviceIdentifier identifier, VulnerabilityDb db);

  AssessmentResult Assess(const features::Fingerprint& full,
                          const features::FixedFingerprint& fixed) override;

  /// Vulnerability assessment only (by catalog type), as used when a
  /// gateway re-queries for updates.
  [[nodiscard]] IsolationLevel AssessType(devices::DeviceTypeId type) const;

  /// Crowdsourced incident intake (Sect. III-B): gateways report security
  /// incidents tagged with the device-type they involve; once enough
  /// distinct gateways report a type it is treated as vulnerable even
  /// without a published CVE. Returns true when this report flips the
  /// type's status.
  bool ReportIncident(const IncidentReport& report) {
    return incidents_.Report(report);
  }

  [[nodiscard]] const DeviceIdentifier& identifier() const {
    return identifier_;
  }
  /// Mutable access for runtime wiring (thread pool, metrics registry).
  DeviceIdentifier& identifier() { return identifier_; }
  /// Forwards a metrics registry to the embedded identifier so Assess()
  /// records bank-scan and discrimination telemetry.
  void set_metrics(obs::MetricsRegistry* registry) {
    identifier_.set_metrics(registry);
  }
  /// Forwards the model-quality monitor to the embedded identifier so
  /// every Assess() verdict feeds the quality/drift plane.
  void set_quality_monitor(obs::QualityMonitor* monitor) {
    identifier_.set_quality_monitor(monitor);
  }
  [[nodiscard]] const VulnerabilityDb& vulnerability_db() const { return db_; }
  [[nodiscard]] const IncidentRegistry& incidents() const {
    return incidents_;
  }

 private:
  DeviceIdentifier identifier_;
  VulnerabilityDb db_;
  IncidentRegistry incidents_;
  devices::NetworkEnvironment resolver_;
};

/// Traffic the classifiers are trained on: the setup burst of new devices
/// (the paper's primary mode) or standby/operational traffic (legacy
/// installations, Sect. VIII-A — required by MigrateLegacyNetwork).
enum class TrainingTrafficMode : std::uint8_t {
  kSetupPhase = 0,
  kStandby = 1,
};

/// Builds a ready-to-use SecurityService: simulates `n_per_type` episodes
/// per catalog type in the requested traffic mode, trains the per-type
/// classifiers, and seeds the vulnerability database from the catalog.
std::unique_ptr<SecurityService> BuildTrainedSecurityService(
    std::size_t n_per_type = 20, std::uint64_t seed = 42,
    IdentifierConfig config = {},
    TrainingTrafficMode mode = TrainingTrafficMode::kSetupPhase);

}  // namespace sentinel::core
