#include "core/sentinel_module.h"

#include "core/decision_journal.h"
#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace sentinel::core {

SentinelModule::SentinelModule(SecurityServiceClient& service,
                               EnforcementEngine& engine,
                               SentinelModuleConfig config)
    : service_(service),
      engine_(engine),
      config_(config),
      monitor_(DeviceMonitorOptions{
          .setup = config.setup,
          .shard_count = config.monitor_shard_count,
          .max_sessions_per_shard = config.max_sessions_per_shard}) {
  infrastructure_.insert(engine_.gateway_mac());
}

void SentinelModule::set_metrics(obs::MetricsRegistry* registry) {
  monitor_.set_metrics(registry);
  if (registry == nullptr) {
    handles_ = ModuleMetrics{};
    return;
  }
  handles_.identify_ns = &registry->GetHistogram(
      "sentinel_stage_identify_ns",
      "device-type identification time (Security Service assessment)");
  handles_.identifications_total = &registry->GetCounter(
      "sentinel_module_identifications_total",
      "completed captures submitted for assessment");
  handles_.drops_total = &registry->GetCounter(
      "sentinel_module_drop_rules_total",
      "drop rules installed for denied flows");
  handles_.wan_allows_total = &registry->GetCounter(
      "sentinel_module_wan_allow_rules_total",
      "specific WAN allow rules installed for permitted public flows");
  handles_.incidents_total = &registry->GetCounter(
      "sentinel_module_incidents_total",
      "policy denials from already-identified devices");
}

SentinelModule::Verdict SentinelModule::OnPacketIn(
    sdn::SoftwareSwitch& sw, sdn::PortId in_port, const net::Frame& frame,
    const net::ParsedPacket& packet) {
  SENTINEL_PROFILE_SCOPE("pipeline.packet");
  // Frames sourced by the gateway/upstream infrastructure are neither
  // fingerprinted nor policed; default forwarding applies.
  if (infrastructure_.contains(packet.src_mac)) {
    return Verdict::kContinue;
  }

  // 1. Monitoring & fingerprinting of device traffic.
  if (auto capture = monitor_.Observe(packet)) {
    HandleCompletedCapture(*capture);
  }

  // Devices still in their setup phase are not policed yet (the paper
  // identifies first, then enforces): forward their traffic so the setup
  // procedure — including cloud registration — can complete, but do not
  // let the learning switch install fast-path rules that would bypass the
  // monitor while fingerprinting is in progress.
  if (monitor_.IsCollecting(packet.src_mac)) {
    const bool public_dst = packet.dst_ip && packet.dst_ip->IsV4() &&
                            !packet.dst_ip->v4().IsPrivate() &&
                            !packet.dst_ip->v4().IsMulticast() &&
                            packet.dst_ip->v4() != net::Ipv4Address::Broadcast();
    if (public_dst && config_.wan_port != 0) {
      sw.PacketOut(config_.wan_port, in_port, frame);
    } else {
      sw.PacketOut(sdn::kPortFlood, in_port, frame);
    }
    return Verdict::kHandled;
  }

  // 2. Policy.
  const Decision decision = engine_.Authorize(packet);
  if (!decision.allow) {
    InstallDropRule(sw, packet);
    ++drops_installed_;
    if (handles_.drops_total != nullptr) {
      handles_.drops_total->Increment();
      handles_.incidents_total->Increment();
    }
    if (recorder_ != nullptr) {
      recorder_->Record(packet.src_mac,
                        {.kind = obs::DeviceEventKind::kIncident,
                         .timestamp_ns = packet.timestamp_ns,
                         .label = decision.reason});
    }
    SENTINEL_LOG_INFO("module", "flow_denied",
                      {"mac", packet.src_mac.ToString()},
                      {"reason", decision.reason});
    if (on_incident_) {
      const EnforcementRule* rule = engine_.Find(packet.src_mac);
      on_incident_(IncidentEvent{
          packet.src_mac, rule != nullptr ? rule->device_type : std::string(),
          decision.reason});
    }
    return Verdict::kHandled;  // drop: do not forward
  }

  // 3. Permitted Internet-bound traffic: forward on the WAN port with a
  // specific allow rule (so the learning switch never installs a broader
  // device->gateway rule that would bypass the endpoint allowlist).
  const bool is_public = packet.dst_ip && packet.dst_ip->IsV4() &&
                         !packet.dst_ip->v4().IsPrivate() &&
                         !packet.dst_ip->v4().IsMulticast() &&
                         packet.dst_ip->v4() != net::Ipv4Address::Broadcast();
  if (is_public && config_.wan_port != 0) {
    InstallWanAllowRule(sw, packet);
    if (handles_.wan_allows_total != nullptr)
      handles_.wan_allows_total->Increment();
    sw.PacketOut(config_.wan_port, in_port, frame);
    return Verdict::kHandled;
  }

  // 4. Local traffic: let the learning switch forward it.
  return Verdict::kContinue;
}

void SentinelModule::FlushIdle(std::uint64_t now_ns) {
  for (const auto& capture : monitor_.FlushIdle(now_ns)) {
    HandleCompletedCapture(capture);
  }
}

void SentinelModule::HandleCompletedCapture(const CompletedCapture& capture) {
  SENTINEL_PROFILE_SCOPE("pipeline.identify_enforce");
  // Root span of the device's identification story: the identify span, the
  // identifier's tie-break span and the engine's enforce span all nest
  // under it on the trace id the monitor assigned at first sight.
  obs::ScopedSpan device_span(tracer_, "sentinel_identification",
                              capture.trace_id);
  if (device_span.enabled())
    device_span.AddArg("mac", capture.device_mac.ToString());
  obs::ScopedTimer identify_timer(handles_.identify_ns);
  obs::ScopedSpan identify_span("sentinel_stage_identify");
  const AssessmentResult assessment =
      service_.Assess(capture.full, capture.fixed);
  identify_span.End();
  identify_timer.Stop();  // rule installation is the enforce stage
  if (handles_.identifications_total != nullptr)
    handles_.identifications_total->Increment();
  if (quality_ != nullptr)
    quality_->RecordAssessmentOutcome(assessment.type.has_value());
  JournalAssessment(recorder_, capture.device_mac, assessment);
  SENTINEL_LOG_INFO("module", "device_identified",
                    {"mac", capture.device_mac.ToString()},
                    {"type", assessment.type_identifier},
                    {"level", static_cast<int>(assessment.level)});

  EnforcementRule rule;
  rule.device_mac = capture.device_mac;
  rule.level = assessment.level;
  rule.device_type = assessment.type_identifier;
  rule.allowed_endpoints = assessment.allowed_endpoints;
  rule.allowed_endpoint_names = assessment.allowed_endpoint_names;
  engine_.Install(std::move(rule));

  if (on_identification_) {
    on_identification_(IdentificationEvent{capture.device_mac, assessment});
  }
}

void SentinelModule::InstallDropRule(sdn::SoftwareSwitch& sw,
                                     const net::ParsedPacket& packet) {
  obs::ScopedSpan span(tracer_, "sentinel_flow_install",
                       monitor_.trace_id(packet.src_mac));
  sdn::FlowRule rule;
  rule.priority = config_.drop_priority;
  rule.match.eth_src = packet.src_mac;
  rule.match.eth_dst = packet.dst_mac;
  if (packet.dst_ip && packet.dst_ip->IsV4() &&
      !packet.dst_ip->v4().IsPrivate()) {
    rule.match.ip_dst = packet.dst_ip->v4();
  }
  const EnforcementRule* enforcement = engine_.Find(packet.src_mac);
  rule.cookie = enforcement ? enforcement->Hash() : 0;
  rule.actions = {};  // drop
  if (recorder_ != nullptr) {
    recorder_->Record(packet.src_mac,
                      {.kind = obs::DeviceEventKind::kFlowRuleInstalled,
                       .timestamp_ns = packet.timestamp_ns,
                       .label = "drop -> " + packet.dst_mac.ToString()});
  }
  if (span.enabled()) span.AddArg("action", "drop");
  sdn::Controller::InstallRule(sw, std::move(rule));
}

void SentinelModule::InstallWanAllowRule(sdn::SoftwareSwitch& sw,
                                         const net::ParsedPacket& packet) {
  obs::ScopedSpan span(tracer_, "sentinel_flow_install",
                       monitor_.trace_id(packet.src_mac));
  sdn::FlowRule rule;
  rule.priority = config_.allow_priority;
  rule.match.eth_src = packet.src_mac;
  rule.match.ip_dst = packet.dst_ip->v4();
  const EnforcementRule* enforcement = engine_.Find(packet.src_mac);
  rule.cookie = enforcement ? enforcement->Hash() : 0;
  rule.actions = {sdn::ActionOutput{config_.wan_port}};
  if (recorder_ != nullptr) {
    recorder_->Record(packet.src_mac,
                      {.kind = obs::DeviceEventKind::kFlowRuleInstalled,
                       .timestamp_ns = packet.timestamp_ns,
                       .label = "allow wan -> " + packet.dst_ip->v4().ToString()});
  }
  if (span.enabled()) span.AddArg("action", "allow_wan");
  sdn::Controller::InstallRule(sw, std::move(rule));
}

}  // namespace sentinel::core
