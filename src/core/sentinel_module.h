// The custom SDN-controller module (paper Sect. V): performs network
// monitoring, fingerprint generation, talks to the IoT Security Service,
// and generates/enforces the per-device isolation rules in the datapath.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>

#include "core/device_monitor.h"
#include "core/enforcement.h"
#include "core/security_service.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "sdn/controller.h"

namespace sentinel::core {

struct SentinelModuleConfig {
  /// Switch port leading to the Internet (public destinations are output
  /// here when permitted).
  sdn::PortId wan_port = 0;
  /// Priorities used for installed flow rules. Drop rules outrank the
  /// learning switch's forwarding rules.
  std::uint16_t drop_priority = 100;
  std::uint16_t allow_priority = 50;
  capture::SetupPhaseConfig setup;
  /// Device-session table shards (rounded up to a power of two).
  std::size_t monitor_shard_count = 1;
  /// Bounded-memory tier for device sessions (per shard; 0 = unbounded).
  std::size_t max_sessions_per_shard = 0;
};

/// Notification issued when a device has been identified and its
/// enforcement rule installed (drives UIs / the paper's user notification
/// mitigation for devices that cannot be safely isolated).
struct IdentificationEvent {
  net::MacAddress device_mac;
  AssessmentResult assessment;
};

/// Security incident observed by the gateway: an *identified* device
/// attempted something its policy forbids. These are the crowdsourced
/// reports the IoTSSP correlates across gateways (Sect. III-B).
struct IncidentEvent {
  net::MacAddress device_mac;
  std::string device_type;  // empty if the device was never identified
  std::string description;  // the denial reason
};

class SentinelModule : public sdn::ControllerModule {
 public:
  SentinelModule(SecurityServiceClient& service, EnforcementEngine& engine,
                 SentinelModuleConfig config);

  [[nodiscard]] std::string name() const override { return "iot-sentinel"; }

  Verdict OnPacketIn(sdn::SoftwareSwitch& sw, sdn::PortId in_port,
                     const net::Frame& frame,
                     const net::ParsedPacket& packet) override;

  /// MACs whose traffic is never fingerprinted or policed (the gateway
  /// itself, upstream routers).
  void AddInfrastructureMac(const net::MacAddress& mac) {
    infrastructure_.insert(mac);
  }

  /// Registers a callback fired on every completed identification.
  void OnIdentification(std::function<void(const IdentificationEvent&)> cb) {
    on_identification_ = std::move(cb);
  }

  /// Registers a callback fired whenever policy blocks a flow from an
  /// identified device — the gateway-side source of crowdsourced incident
  /// reports.
  void OnIncident(std::function<void(const IncidentEvent&)> cb) {
    on_incident_ = std::move(cb);
  }

  /// Clock-driven flush: identifies devices whose setup phase ended by
  /// going quiet (no packet arrived to trigger the boundary). Call this
  /// periodically (or after injecting a capture) with the current time.
  void FlushIdle(std::uint64_t now_ns);

  DeviceMonitor& monitor() { return monitor_; }
  [[nodiscard]] std::uint64_t drops_installed() const {
    return drops_installed_;
  }

  /// Attaches controller-module telemetry and propagates the registry to
  /// the embedded DeviceMonitor. The module records the
  /// `sentinel_stage_identify_ns` histogram around the Security Service
  /// assessment (the monitor owns the capture/fingerprint stages, the
  /// enforcement engine the enforce stage) plus drop-rule / WAN-allow /
  /// incident / identification counters. nullptr detaches everything.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches decision-provenance tracing and propagates it to the
  /// embedded DeviceMonitor: each identified device gets one trace id
  /// under which the capture → fingerprint → identify → tie-break →
  /// enforce spans nest. nullptr detaches.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    monitor_.set_tracer(tracer);
  }
  /// Attaches the per-device flight recorder (propagated to the monitor);
  /// the module journals classifier votes, tie-break scores, verdicts,
  /// flow-rule installs and incidents into it. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
    monitor_.set_flight_recorder(recorder);
  }

  /// Attaches the model-quality monitor: the module records each
  /// gateway-level assessment outcome (known vs unknown/isolated) on it.
  /// Identification-level samples are recorded by the identifier itself —
  /// wire the monitor there too (SecurityService::set_quality_monitor).
  /// nullptr detaches; pure read-side, verdicts unchanged.
  void set_quality_monitor(obs::QualityMonitor* monitor) {
    quality_ = monitor;
  }

 private:
  void HandleCompletedCapture(const CompletedCapture& capture);
  void InstallDropRule(sdn::SoftwareSwitch& sw,
                       const net::ParsedPacket& packet);
  void InstallWanAllowRule(sdn::SoftwareSwitch& sw,
                           const net::ParsedPacket& packet);

  struct ModuleMetrics {
    obs::Histogram* identify_ns = nullptr;
    obs::Counter* identifications_total = nullptr;
    obs::Counter* drops_total = nullptr;
    obs::Counter* wan_allows_total = nullptr;
    obs::Counter* incidents_total = nullptr;
  };

  SecurityServiceClient& service_;
  EnforcementEngine& engine_;
  SentinelModuleConfig config_;
  DeviceMonitor monitor_;
  std::unordered_set<net::MacAddress> infrastructure_;
  std::function<void(const IdentificationEvent&)> on_identification_;
  std::function<void(const IncidentEvent&)> on_incident_;
  std::uint64_t drops_installed_ = 0;
  ModuleMetrics handles_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::QualityMonitor* quality_ = nullptr;
};

}  // namespace sentinel::core
