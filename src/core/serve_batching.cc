#include "core/serve_batching.h"

#include <algorithm>

namespace sentinel::core {

void AdaptiveBatchPolicy::OnArrival(std::uint64_t now_ns) {
  if (last_arrival_ns_ != 0 && now_ns >= last_arrival_ns_) {
    const auto gap = static_cast<double>(now_ns - last_arrival_ns_);
    ewma_interarrival_ns_ =
        ewma_interarrival_ns_ == 0.0
            ? gap
            : config_.ewma_alpha * gap +
                  (1.0 - config_.ewma_alpha) * ewma_interarrival_ns_;
  }
  last_arrival_ns_ = now_ns;
}

AdaptiveBatchPolicy::Decision AdaptiveBatchPolicy::Evaluate(
    std::size_t depth, std::uint64_t oldest_enqueue_ns,
    std::uint64_t now_ns) const {
  if (depth >= config_.batch_target)
    return {.flush = true, .reason = FlushReason::kSize};
  const std::uint64_t age =
      now_ns >= oldest_enqueue_ns ? now_ns - oldest_enqueue_ns : 0;
  if (age >= config_.latency_bound_ns)
    return {.flush = true, .reason = FlushReason::kDeadline};
  const std::uint64_t remaining = config_.latency_bound_ns - age;
  // Sparse-arrival adaptation: with the observed gap, filling the
  // remaining slots takes ewma * (target - depth); when that exceeds the
  // oldest probe's remaining deadline the batch provably cannot fill in
  // time, so waiting buys size 0 and costs latency — flush now. Until two
  // arrivals have been observed the EWMA is unknown (0) and the policy
  // falls back to deadline-only flushing.
  const double predicted_fill_ns =
      ewma_interarrival_ns_ *
      static_cast<double>(config_.batch_target - depth);
  if (ewma_interarrival_ns_ > 0.0 &&
      predicted_fill_ns > static_cast<double>(remaining))
    return {.flush = true, .reason = FlushReason::kSparse};
  // Sleep until the deadline would fire, or until the predicted fill
  // time elapses (whichever is sooner) — wake-ups in between are driven
  // by arrival notifications, not this bound.
  std::uint64_t wait_ns = remaining;
  if (ewma_interarrival_ns_ > 0.0)
    wait_ns = std::min(
        wait_ns, static_cast<std::uint64_t>(predicted_fill_ns) + 1);
  return {.flush = false, .reason = FlushReason::kNone, .wait_ns = wait_ns};
}

AdmissionQueue::Admission AdmissionQueue::Push(QueuedProbe&& probe) {
  if (queue_.size() < capacity_) {
    queue_.push_back(std::move(probe));
    return {.action = AdmitAction::kAdmitted};
  }
  // Full: shed the OLDEST queued probe of the same device, if any — the
  // newer observation supersedes it (same MAC, fresher traffic).
  const auto victim = std::find_if(
      queue_.begin(), queue_.end(),
      [&probe](const QueuedProbe& queued) { return queued.mac == probe.mac; });
  if (victim == queue_.end()) return {.action = AdmitAction::kRejected};
  const std::uint64_t shed_ticket = victim->ticket;
  queue_.erase(victim);
  queue_.push_back(std::move(probe));
  return {.action = AdmitAction::kAdmittedAfterShed,
          .shed_ticket = shed_ticket};
}

std::vector<QueuedProbe> AdmissionQueue::PopBatch(std::size_t max_probes) {
  const std::size_t take = std::min(max_probes, queue_.size());
  std::vector<QueuedProbe> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

std::optional<std::uint64_t> AdmissionQueue::oldest_enqueue_ns() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().enqueue_ns;
}

}  // namespace sentinel::core
