// Micro-batching building blocks of the always-on identification service
// (DESIGN.md "Serving path"): a pure, clock-injected flush policy and a
// bounded MAC-keyed admission queue. Neither owns a lock or reads a clock
// — the drain loop in core/identify_server.cc injects time and holds the
// one mutex — so every decision rule is unit-testable deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "features/fingerprint.h"
#include "net/address.h"

namespace sentinel::core {

struct AdaptiveBatchConfig {
  /// Flush as soon as this many probes are queued (the serve kernel's
  /// amortization saturates quickly; see BENCH_serve.json's batch
  /// histogram). 1 degenerates to per-call serving.
  std::size_t batch_target = 16;
  /// No admitted probe waits in the queue longer than this before its
  /// batch is flushed.
  std::uint64_t latency_bound_ns = 2'000'000;  // 2 ms
  /// EWMA smoothing factor for the observed interarrival gap in (0, 1];
  /// higher adapts faster to rate changes.
  double ewma_alpha = 0.2;
};

/// Decides when the drain thread flushes the queue into one
/// IdentifyBatchServe call. Three rules, in order:
///   size     — the batch target is reached: flush now.
///   deadline — the oldest queued probe has waited latency_bound_ns:
///              flush now, full or not.
///   sparse   — the EWMA of observed interarrival gaps predicts the
///              remaining slots cannot fill before the oldest probe's
///              deadline: flush now instead of idling toward the bound
///              (this is what adapts the effective batch size to load —
///              bursty traffic fills big batches, a trickle is served at
///              per-call latency).
/// Otherwise: wait, and Evaluate says for how long before rechecking.
class AdaptiveBatchPolicy {
 public:
  explicit AdaptiveBatchPolicy(AdaptiveBatchConfig config = {})
      : config_(config) {}

  [[nodiscard]] const AdaptiveBatchConfig& config() const { return config_; }

  /// Folds one admission's arrival time into the interarrival EWMA.
  void OnArrival(std::uint64_t now_ns);

  enum class FlushReason { kNone, kSize, kDeadline, kSparse };
  struct Decision {
    bool flush = false;
    FlushReason reason = FlushReason::kNone;
    /// When !flush: how long the drain may sleep before re-evaluating
    /// (the oldest probe's remaining deadline, shortened when the EWMA
    /// predicts the batch fills sooner).
    std::uint64_t wait_ns = 0;
  };

  /// Flush decision for a queue of `depth` probes whose oldest was
  /// admitted at `oldest_enqueue_ns`. Pure: depends only on the
  /// arguments, the config and the EWMA state. `depth` must be > 0.
  [[nodiscard]] Decision Evaluate(std::size_t depth,
                                  std::uint64_t oldest_enqueue_ns,
                                  std::uint64_t now_ns) const;

  /// Smoothed interarrival gap; 0 until two arrivals have been observed.
  [[nodiscard]] std::uint64_t ewma_interarrival_ns() const {
    return static_cast<std::uint64_t>(ewma_interarrival_ns_);
  }

 private:
  AdaptiveBatchConfig config_;
  double ewma_interarrival_ns_ = 0.0;
  std::uint64_t last_arrival_ns_ = 0;
};

/// One admitted probe: both fingerprint forms (owned — the HTTP buffer
/// they were parsed from is gone by drain time), the device MAC it keys
/// under, and the ticket its waiting client holds.
struct QueuedProbe {
  net::MacAddress mac;
  features::Fingerprint full;
  features::FixedFingerprint fixed;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t ticket = 0;
};

/// Bounded FIFO admission queue keyed by device MAC. Admission past the
/// capacity has explicit overload semantics:
///   - if an older probe for the SAME device is still queued, that probe
///     is shed (removed, its ticket reported so the waiter gets told) and
///     the newer one admitted — under sustained overload the newest
///     fingerprint per device wins, and one chatty device cannot occupy
///     more than its latest observation;
///   - otherwise the new probe is rejected (the HTTP layer turns this
///     into 429 + Retry-After).
/// Single-threaded by design; IdentifyServer serializes access.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  enum class AdmitAction { kAdmitted, kAdmittedAfterShed, kRejected };
  struct Admission {
    AdmitAction action = AdmitAction::kRejected;
    /// Ticket of the same-MAC probe that was shed to make room
    /// (action == kAdmittedAfterShed only).
    std::uint64_t shed_ticket = 0;
  };

  /// Admits, sheds-and-admits, or rejects `probe` (moved from only when
  /// admitted).
  Admission Push(QueuedProbe&& probe);

  /// Removes and returns up to `max_probes` probes, oldest first.
  [[nodiscard]] std::vector<QueuedProbe> PopBatch(std::size_t max_probes);

  [[nodiscard]] std::size_t depth() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Enqueue time of the oldest queued probe; nullopt when empty.
  [[nodiscard]] std::optional<std::uint64_t> oldest_enqueue_ns() const;

 private:
  std::size_t capacity_;
  std::deque<QueuedProbe> queue_;
};

}  // namespace sentinel::core
