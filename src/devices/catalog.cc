#include "devices/catalog.h"

#include <stdexcept>

namespace sentinel::devices {

namespace {

Connectivity Wifi() { return {.wifi = true}; }
Connectivity WifiEth() { return {.wifi = true, .ethernet = true}; }

std::vector<DeviceTypeInfo> BuildCatalog() {
  std::vector<DeviceTypeInfo> catalog;
  auto add = [&](std::string identifier, std::string vendor, std::string model,
                 Connectivity conn, SimilarityCluster cluster,
                 std::array<std::uint8_t, 3> oui,
                 std::vector<std::string> endpoints, bool vulnerable) {
    DeviceTypeInfo info;
    info.id = static_cast<DeviceTypeId>(catalog.size());
    info.identifier = std::move(identifier);
    info.vendor = std::move(vendor);
    info.model = std::move(model);
    info.connectivity = conn;
    info.cluster = cluster;
    info.oui = oui;
    info.cloud_endpoints = std::move(endpoints);
    info.has_known_vulnerabilities = vulnerable;
    catalog.push_back(std::move(info));
  };

  // Table II, Fig. 5 order. OUIs are real vendor prefixes where well known.
  add("Aria", "Fitbit", "Fitbit Aria WiFi-enabled scale", Wifi(),
      SimilarityCluster::kNone, {0x20, 0xf8, 0x5e},
      {"api.fitbit.com", "fwupdate.fitbit.com"}, false);
  add("HomeMaticPlug", "eQ-3", "Homematic pluggable switch HMIP-PS",
      {.other = true}, SimilarityCluster::kNone, {0x00, 0x1a, 0x22},
      {"hmip.homematic.com"}, false);
  add("Withings", "Withings", "Withings Wireless Scale WS-30", Wifi(),
      SimilarityCluster::kNone, {0x00, 0x24, 0xe4},
      {"scalews.withings.net"}, false);
  add("MAXGateway", "eQ-3", "MAX! Cube LAN Gateway",
      {.ethernet = true, .other = true}, SimilarityCluster::kNone,
      {0x00, 0x1a, 0x22}, {"max.eq-3.de"}, true);
  add("HueBridge", "Philips", "Philips Hue Bridge model 3241312018",
      {.zigbee = true, .ethernet = true}, SimilarityCluster::kNone,
      {0x00, 0x17, 0x88}, {"www.meethue.com", "time.meethue.com"}, false);
  add("HueSwitch", "Philips", "Philips Hue Light Switch PTM 215Z",
      {.zigbee = true}, SimilarityCluster::kNone, {0x00, 0x17, 0x88},
      {"www.meethue.com"}, false);
  add("EdnetGateway", "Ednet", "Ednet.living Starter kit power Gateway",
      {.wifi = true, .other = true}, SimilarityCluster::kNone,
      {0x84, 0xc2, 0xe4}, {"cloud.ednet-living.com"}, true);
  add("EdnetCam", "Ednet", "Ednet Wireless indoor IP camera Cube", WifiEth(),
      SimilarityCluster::kNone, {0x84, 0xc2, 0xe4},
      {"cam.ednet.de", "ddns.ednet.de"}, true);
  add("EdimaxCam", "Edimax", "Edimax IC-3115W Smart HD WiFi Network Camera",
      WifiEth(), SimilarityCluster::kNone, {0x74, 0xda, 0x38},
      {"www.myedimax.com", "ic.myedimax.com"}, true);
  add("Lightify", "Osram", "Osram Lightify Gateway",
      {.wifi = true, .zigbee = true}, SimilarityCluster::kNone,
      {0x84, 0x18, 0x26}, {"lightify.osram.com", "ssl.lightify.com"}, false);
  add("WeMoInsightSwitch", "Belkin", "WeMo Insight Switch model F7C029de",
      Wifi(), SimilarityCluster::kNone, {0x94, 0x10, 0x3e},
      {"prod1.wemo2.com", "nat.wemo2.com"}, false);
  add("WeMoLink", "Belkin", "WeMo Link Lighting Bridge model F7C031vf",
      {.wifi = true, .zigbee = true}, SimilarityCluster::kNone,
      {0x94, 0x10, 0x3e}, {"prod1.wemo2.com", "tunnel.wemo2.com"}, false);
  add("WeMoSwitch", "Belkin", "WeMo Switch model F7C027de", Wifi(),
      SimilarityCluster::kNone, {0xec, 0x1a, 0x59},
      {"prod1.wemo2.com", "nat.wemo2.com"}, false);
  add("D-LinkHomeHub", "D-Link", "D-Link Connected Home Hub DCH-G020",
      {.wifi = true, .ethernet = true, .zwave = true},
      SimilarityCluster::kNone, {0xc4, 0x12, 0xf5},
      {"mydlink.com", "signal.mydlink.com"}, true);
  add("D-LinkDoorSensor", "D-Link", "D-Link Door & Window sensor",
      {.zwave = true}, SimilarityCluster::kNone, {0xc4, 0x12, 0xf5},
      {"mydlink.com"}, false);
  add("D-LinkDayCam", "D-Link", "D-Link WiFi Day Camera DCS-930L", WifiEth(),
      SimilarityCluster::kNone, {0xb0, 0xc5, 0x54},
      {"mydlink.com", "dcs.mydlink.com"}, true);
  add("D-LinkCam", "D-Link", "D-Link HD IP Camera DCH-935L", Wifi(),
      SimilarityCluster::kNone, {0xb0, 0xc5, 0x54},
      {"mydlink.com", "dch.mydlink.com"}, true);
  // --- Table III cluster: identical hardware & firmware D-Link home devices.
  add("D-LinkSwitch", "D-Link", "D-Link Smart plug DSP-W215", Wifi(),
      SimilarityCluster::kDlinkHomeSensors, {0xc4, 0x12, 0xf5},
      {"mydlink.com", "dsp.mydlink.com"}, true);
  add("D-LinkWaterSensor", "D-Link", "D-Link Water sensor DCH-S160", Wifi(),
      SimilarityCluster::kDlinkHomeSensors, {0xc4, 0x12, 0xf5},
      {"mydlink.com", "dsp.mydlink.com"}, true);
  add("D-LinkSiren", "D-Link", "D-Link Siren DCH-S220", Wifi(),
      SimilarityCluster::kDlinkHomeSensors, {0xc4, 0x12, 0xf5},
      {"mydlink.com", "dsp.mydlink.com"}, true);
  add("D-LinkSensor", "D-Link", "D-Link WiFi Motion sensor DCH-S150", Wifi(),
      SimilarityCluster::kDlinkHomeSensors, {0xc4, 0x12, 0xf5},
      {"mydlink.com", "dsp.mydlink.com"}, true);
  add("TP-LinkPlugHS110", "TP-Link", "TP-Link WiFi Smart plug HS110", Wifi(),
      SimilarityCluster::kTplinkPlugs, {0x50, 0xc7, 0xbf},
      {"devs.tplinkcloud.com"}, false);
  add("TP-LinkPlugHS100", "TP-Link", "TP-Link WiFi Smart plug HS100", Wifi(),
      SimilarityCluster::kTplinkPlugs, {0x50, 0xc7, 0xbf},
      {"devs.tplinkcloud.com"}, false);
  add("EdimaxPlug1101W", "Edimax", "Edimax SP-1101W Smart Plug Switch", Wifi(),
      SimilarityCluster::kEdimaxPlugs, {0x74, 0xda, 0x38},
      {"sp.myedimax.com"}, true);
  add("EdimaxPlug2101W", "Edimax", "Edimax SP-2101W Smart Plug Switch", Wifi(),
      SimilarityCluster::kEdimaxPlugs, {0x74, 0xda, 0x38},
      {"sp.myedimax.com"}, true);
  add("SmarterCoffee", "Smarter", "SmarterCoffee coffee machine SMC10-EU",
      Wifi(), SimilarityCluster::kSmarterAppliances, {0x5c, 0xcf, 0x7f},
      {"api.smarter.am"}, true);
  add("iKettle2", "Smarter", "Smarter iKettle 2.0 water kettle SMK20-EU",
      Wifi(), SimilarityCluster::kSmarterAppliances, {0x5c, 0xcf, 0x7f},
      {"api.smarter.am"}, true);

  // WPS re-keying support (Sect. VIII-A): recent WiFi stacks support it;
  // the older scales (Aria, Withings), the Ednet camera and the ESP8266-
  // based Smarter appliances do not, and non-WiFi devices cannot.
  for (auto& info : catalog) {
    if (!info.connectivity.wifi) continue;
    if (info.identifier == "Aria" || info.identifier == "Withings" ||
        info.identifier == "EdnetCam" || info.identifier == "SmarterCoffee" ||
        info.identifier == "iKettle2") {
      continue;
    }
    info.supports_wps_rekeying = true;
  }
  return catalog;
}

}  // namespace

const std::vector<DeviceTypeInfo>& DeviceCatalog() {
  static const std::vector<DeviceTypeInfo> kCatalog = BuildCatalog();
  return kCatalog;
}

std::size_t DeviceTypeCount() { return DeviceCatalog().size(); }

const DeviceTypeInfo& GetDeviceType(DeviceTypeId id) {
  const auto& catalog = DeviceCatalog();
  if (id < 0 || static_cast<std::size_t>(id) >= catalog.size())
    throw std::out_of_range("unknown device type id");
  return catalog[static_cast<std::size_t>(id)];
}

DeviceTypeId FindDeviceType(const std::string& identifier) {
  for (const auto& info : DeviceCatalog())
    if (info.identifier == identifier) return info.id;
  return -1;
}

const std::vector<DeviceTypeId>& ConfusableDeviceTypes() {
  static const std::vector<DeviceTypeId> kIds = [] {
    // Table III numbering 1..10.
    const char* names[] = {
        "D-LinkSwitch",     "D-LinkWaterSensor", "D-LinkSiren",
        "D-LinkSensor",     "TP-LinkPlugHS110",  "TP-LinkPlugHS100",
        "EdimaxPlug1101W",  "EdimaxPlug2101W",   "SmarterCoffee",
        "iKettle2"};
    std::vector<DeviceTypeId> ids;
    for (const char* n : names) ids.push_back(FindDeviceType(n));
    return ids;
  }();
  return kIds;
}

}  // namespace sentinel::devices
