// The 27 consumer IoT device-types of the paper's Table II, with the
// metadata the simulator and the evaluation harness need: vendor OUI,
// connectivity, vendor cloud endpoints, and the same-vendor similarity
// cluster the paper's confusion analysis identifies (Table III).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sentinel::devices {

/// Index into the device-type catalog; doubles as the class label used by
/// the ML layer. Ordering matches the paper's Fig. 5 left-to-right.
using DeviceTypeId = int;

/// Connectivity technologies from Table II.
struct Connectivity {
  bool wifi = false;
  bool zigbee = false;
  bool ethernet = false;
  bool zwave = false;
  bool other = false;
};

/// Hardware/firmware similarity clusters behind Table III's confusions.
/// Devices in the same non-zero cluster share near-identical setup traffic
/// (same hardware and firmware per the paper: "D-Link water sensor (2),
/// siren (3) and sensor (4) have identical hardware and firmware version,
/// as TP-Link plugs (5-6) do").
enum class SimilarityCluster : std::uint8_t {
  kNone = 0,
  kDlinkHomeSensors,  // D-LinkSwitch, D-LinkWaterSensor, D-LinkSiren, D-LinkSensor
  kTplinkPlugs,       // HS110, HS100
  kEdimaxPlugs,       // SP-1101W, SP-2101W
  kSmarterAppliances, // SmarterCoffee, iKettle2
};

struct DeviceTypeInfo {
  DeviceTypeId id = 0;
  std::string identifier;   // e.g. "D-LinkCam"
  std::string vendor;       // e.g. "D-Link"
  std::string model;        // e.g. "D-Link HD IP Camera DCH-935L"
  Connectivity connectivity;
  SimilarityCluster cluster = SimilarityCluster::kNone;
  /// First three MAC octets used for instances of this type.
  std::array<std::uint8_t, 3> oui{};
  /// Vendor cloud endpoints contacted during setup; these double as the
  /// Restricted-isolation allowlist the IoT Security Service hands out.
  std::vector<std::string> cloud_endpoints;
  /// True when the device supports WiFi Protected Setup re-keying, which
  /// the paper's legacy-migration path uses to move clean devices into the
  /// trusted overlay without manual re-introduction (Sect. VIII-A).
  bool supports_wps_rekeying = false;
  /// True if the catalog's synthetic CVE database lists vulnerabilities
  /// for this type (drives the isolation-level assignment in examples and
  /// integration tests).
  bool has_known_vulnerabilities = false;

  /// True when the device has a communication channel the Security
  /// Gateway cannot control (Bluetooth, LTE, proprietary sub-GHz RF).
  /// For vulnerable devices with such a channel, network isolation is not
  /// sufficient and the user must be notified to remove the device
  /// (paper Sect. III-C3).
  [[nodiscard]] bool HasUncontrollableChannel() const {
    return connectivity.other;
  }
};

/// Full catalog, Table II order. Index == DeviceTypeId.
const std::vector<DeviceTypeInfo>& DeviceCatalog();

/// Number of device types (27).
std::size_t DeviceTypeCount();

/// Lookup helpers. FindDeviceType returns -1 when the identifier is
/// unknown.
const DeviceTypeInfo& GetDeviceType(DeviceTypeId id);
DeviceTypeId FindDeviceType(const std::string& identifier);

/// The ten device-types of Table III (paper's low-accuracy set), in the
/// paper's 1..10 numbering.
const std::vector<DeviceTypeId>& ConfusableDeviceTypes();

}  // namespace sentinel::devices
