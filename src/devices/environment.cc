#include "devices/environment.h"

namespace sentinel::devices {

NetworkEnvironment::NetworkEnvironment()
    : gateway_mac_(net::MacAddress({0x02, 0x00, 0x5e, 0x00, 0x00, 0x01})),
      gateway_ip_(net::Ipv4Address(192, 168, 1, 1)) {}

net::Ipv4Address NetworkEnvironment::AllocateAddress() {
  if (next_host_ == 254) next_host_ = 100;  // wrap the pool
  return net::Ipv4Address(192, 168, 1, next_host_++);
}

net::Ipv4Address NetworkEnvironment::ResolveEndpoint(
    const std::string& name) const {
  // FNV-1a over the name, folded into the 52.0.0.0/8 block (AWS-style
  // public space), avoiding .0 and .255 host bytes.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  const auto b2 = static_cast<std::uint8_t>((h >> 16) & 0xff);
  const auto b3 = static_cast<std::uint8_t>((h >> 8) & 0xff);
  auto b4 = static_cast<std::uint8_t>(h & 0xff);
  if (b4 == 0 || b4 == 255) b4 = 1;
  return net::Ipv4Address(52, b2, b3, b4);
}

}  // namespace sentinel::devices
