// The simulated home network environment a device is set up in: gateway
// addresses, the DHCP pool, and deterministic DNS resolution of vendor
// cloud endpoints to stable public IPs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/address.h"

namespace sentinel::devices {

class NetworkEnvironment {
 public:
  NetworkEnvironment();

  [[nodiscard]] net::MacAddress gateway_mac() const { return gateway_mac_; }
  [[nodiscard]] net::Ipv4Address gateway_ip() const { return gateway_ip_; }
  [[nodiscard]] net::Ipv4Address subnet_broadcast() const {
    return net::Ipv4Address(192, 168, 1, 255);
  }
  /// DNS and NTP are served by the gateway, as consumer routers do.
  [[nodiscard]] net::Ipv4Address dns_server() const { return gateway_ip_; }

  /// Allocates the next DHCP-pool address (192.168.1.100 upward).
  net::Ipv4Address AllocateAddress();

  /// Deterministically resolves a public endpoint name to a stable public
  /// IPv4 address (52.0.0.0/8 style). The same name always maps to the
  /// same address, across processes and runs.
  [[nodiscard]] net::Ipv4Address ResolveEndpoint(
      const std::string& name) const;

  /// MAC the gateway uses when answering as an upstream router for public
  /// destinations (all Internet traffic goes through it).
  [[nodiscard]] net::MacAddress PublicEndpointMac(
      net::Ipv4Address /*ip*/) const {
    return gateway_mac_;
  }

 private:
  net::MacAddress gateway_mac_;
  net::Ipv4Address gateway_ip_;
  std::uint8_t next_host_ = 100;
};

}  // namespace sentinel::devices
