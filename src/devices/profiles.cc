#include "devices/profiles.h"

#include <stdexcept>

namespace sentinel::devices {

namespace {

// ---- Small step builders ---------------------------------------------------

SetupStep Wifi() { return {.kind = StepKind::kWifiAssociate}; }
SetupStep Dhcp() { return {.kind = StepKind::kDhcpExchange}; }
SetupStep Bootp() { return {.kind = StepKind::kBootpRequest}; }
SetupStep ArpProbe() { return {.kind = StepKind::kArpProbeAnnounce}; }
SetupStep ArpResolve() { return {.kind = StepKind::kArpResolve}; }
SetupStep Icmpv6() { return {.kind = StepKind::kIcmpv6Setup}; }
SetupStep Ping(int size = 32) {
  return {.kind = StepKind::kIcmpPingGateway, .size = size};
}
SetupStep MdnsQuery(std::string service) {
  return {.kind = StepKind::kMdnsQuery, .name = std::move(service)};
}
SetupStep MdnsAnnounce(std::string service, std::string instance,
                       int count = 2) {
  return {.kind = StepKind::kMdnsAnnounce,
          .name = std::move(service),
          .extra = std::move(instance),
          .count = count};
}
SetupStep SsdpSearch(std::string target, int count = 2) {
  return {.kind = StepKind::kSsdpMSearch,
          .name = std::move(target),
          .count = count};
}
SetupStep SsdpNotify(std::string nt, int count = 3,
                     std::uint16_t port = 49153) {
  return {.kind = StepKind::kSsdpNotify,
          .name = std::move(nt),
          .count = count,
          .port = port};
}
SetupStep Dns(std::string name) {
  return {.kind = StepKind::kDnsQuery, .name = std::move(name)};
}
SetupStep Ntp(std::string server = "") {
  return {.kind = StepKind::kNtpSync, .name = std::move(server)};
}
SetupStep HttpGet(std::string host, std::string path, int resp_size = 512,
                  std::uint16_t port = 0) {
  return {.kind = StepKind::kHttpGet,
          .name = std::move(host),
          .extra = std::move(path),
          .size = resp_size,
          .port = port};
}
SetupStep HttpPost(std::string host, std::string path, int size,
                   int jitter = 0, std::uint16_t port = 0) {
  return {.kind = StepKind::kHttpPost,
          .name = std::move(host),
          .extra = std::move(path),
          .size = size,
          .size_jitter = jitter,
          .port = port};
}
SetupStep Https(std::string sni, int records, int size, int jitter = 0,
                double probability = 1.0) {
  return {.kind = StepKind::kHttpsSession,
          .name = std::move(sni),
          .count = records,
          .size = size,
          .size_jitter = jitter,
          .probability = probability};
}
SetupStep UdpVendor(std::string host, std::uint16_t port, int size,
                    int count = 1, double probability = 1.0) {
  return {.kind = StepKind::kUdpVendor,
          .name = std::move(host),
          .count = count,
          .size = size,
          .size_jitter = size / 8,
          .port = port,
          .probability = probability};
}
SetupStep UdpBroadcast(std::uint16_t port, int size, int count = 1,
                       double probability = 1.0) {
  return {.kind = StepKind::kUdpBroadcast,
          .count = count,
          .size = size,
          .size_jitter = size / 8,
          .port = port,
          .probability = probability};
}
SetupStep TcpVendor(std::string host, std::uint16_t port, int size,
                    int count = 1, double probability = 1.0) {
  return {.kind = StepKind::kTcpVendor,
          .name = std::move(host),
          .count = count,
          .size = size,
          .size_jitter = size / 10,
          .port = port,
          .probability = probability};
}
SetupStep Llc(int size = 38) {
  return {.kind = StepKind::kLlcFrame, .size = size};
}

TrafficPersona Persona(std::string hostname, std::string user_agent,
                       std::vector<std::uint8_t> params,
                       std::uint16_t port_base = 49152,
                       std::uint16_t mss = 1460, std::uint8_t ttl = 64) {
  TrafficPersona p;
  p.dhcp_hostname = std::move(hostname);
  p.user_agent = std::move(user_agent);
  p.dhcp_param_request = std::move(params);
  p.ephemeral_port_base = port_base;
  p.tcp_mss = mss;
  p.ip_ttl = ttl;
  return p;
}

// ---- Factory-firmware profiles --------------------------------------------

DeviceProfile BuildFactoryProfile(DeviceTypeId id) {
  const DeviceTypeInfo& info = GetDeviceType(id);
  const std::string& ident = info.identifier;
  DeviceProfile p;

  if (ident == "Aria") {
    p.persona = Persona("Aria", "Aria/3.0 (Fitbit)", {1, 3, 6, 15, 28});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                ArpResolve(),
                Dns("api.fitbit.com"),
                Https("api.fitbit.com", 2, 310, 30),
                HttpGet("fwupdate.fitbit.com", "/aria/firmware", 700),
                Ntp("time.nist.gov")};
  } else if (ident == "HomeMaticPlug") {
    p.persona = Persona("HM-CCU2", "HomeMatic/2.17", {1, 3, 6}, 32768, 1460);
    p.script = {Dhcp(),
                ArpResolve(),
                Llc(42),
                UdpBroadcast(43439, 84, 2),  // HomeMatic discovery
                TcpVendor("hmip.homematic.com", 2001, 120, 2),
                Llc(42)};
  } else if (ident == "Withings") {
    p.persona = Persona("WS-30", "Withings WS30/1.4", {1, 3, 6, 15, 119});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                Dns("scalews.withings.net"),
                HttpPost("scalews.withings.net", "/cgi-bin/session", 420, 40),
                Ntp(),
                HttpPost("scalews.withings.net", "/cgi-bin/measure", 640, 60)};
  } else if (ident == "MAXGateway") {
    p.persona = Persona("MAX-Cube", "MAXCube/1.4.6", {1, 3, 6, 15}, 32768);
    p.script = {Dhcp(),
                ArpResolve(),
                UdpBroadcast(23272, 19, 3),  // MAX! cube discovery beacon
                TcpVendor("max.eq-3.de", 62910, 210, 2),
                Ntp("ntp.homematic.com")};
  } else if (ident == "HueBridge") {
    p.persona = Persona("Philips-hue", "Hue/01036659", {1, 3, 6, 42}, 49152);
    p.script = {Dhcp(),
                ArpProbe(),
                ArpResolve(),
                MdnsAnnounce("_hue._tcp.local", "Philips Hue", 3),
                SsdpNotify("urn:schemas-upnp-org:device:Basic:1", 3, 80),
                Dns("www.meethue.com"),
                Https("www.meethue.com", 3, 360, 40),
                Ntp("time.meethue.com")};
  } else if (ident == "HueSwitch") {
    // ZigBee switch: traffic is the bridge's incremental announcement of
    // the new accessory plus a config sync with the Hue cloud.
    p.persona = Persona("hue-dimmer", "Hue/01036659", {1, 3, 6}, 49152);
    p.script = {MdnsQuery("_hue._tcp.local"),
                MdnsAnnounce("_hue._tcp.local", "Hue dimmer switch", 2),
                Dhcp(),
                Https("www.meethue.com", 1, 180, 20)};
  } else if (ident == "EdnetGateway") {
    p.persona = Persona("ednet-living", "EdnetLiving/1.2", {1, 3, 6, 15});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                UdpBroadcast(1025, 104, 3),  // vendor discovery
                Dns("cloud.ednet-living.com"),
                UdpVendor("cloud.ednet-living.com", 5000, 156, 3)};
  } else if (ident == "EdnetCam") {
    p.persona = Persona("ipcam-cube", "EdnetCam/3.5", {1, 3, 6, 15, 28});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                ArpResolve(),
                Ping(56),
                SsdpSearch("urn:schemas-upnp-org:device:InternetGatewayDevice:1", 3),
                Dns("cam.ednet.de"),
                HttpGet("cam.ednet.de", "/cgi-bin/hi3510/param.cgi", 860),
                Dns("ddns.ednet.de"),
                TcpVendor("ddns.ednet.de", 8080, 96, 1)};
  } else if (ident == "EdimaxCam") {
    p.persona = Persona("EDIMAX-IC3115", "Edimax IC-3115W", {1, 3, 6, 15});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                SsdpNotify("urn:schemas-upnp-org:device:Basic:1", 2, 49152),
                Dns("www.myedimax.com"),
                HttpPost("www.myedimax.com", "/camera/register", 520, 40),
                Dns("ic.myedimax.com"),
                TcpVendor("ic.myedimax.com", 8766, 140, 2)};
  } else if (ident == "Lightify") {
    p.persona = Persona("Lightify-Gateway", "OsramLightify/1.1.2",
                        {1, 3, 6, 15, 42, 119});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                Icmpv6(),
                Dns("lightify.osram.com"),
                Https("ssl.lightify.com", 3, 280, 30),
                Ntp("pool.ntp.org")};
  } else if (ident == "WeMoInsightSwitch") {
    p.persona = Persona("WeMo.Insight", "Unspecified, UPnP/1.0, Unspecified",
                        {1, 3, 6, 15});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                SsdpNotify("urn:Belkin:device:insight:1", 3, 49153),
                SsdpSearch("upnp:rootdevice", 2),
                Dns("prod1.wemo2.com"),
                Https("prod1.wemo2.com", 2, 430, 40),
                UdpVendor("nat.wemo2.com", 3478, 62, 2),  // STUN keep-alive
                Ntp()};
  } else if (ident == "WeMoLink") {
    p.persona = Persona("WeMo.Link", "Unspecified, UPnP/1.0, Unspecified",
                        {1, 3, 6, 15, 28});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                SsdpNotify("urn:Belkin:device:bridge:1", 3, 49154),
                MdnsAnnounce("_wemo._tcp.local", "WeMo Link", 2),
                Dns("prod1.wemo2.com"),
                Https("tunnel.wemo2.com", 3, 350, 30),
                Ntp()};
  } else if (ident == "WeMoSwitch") {
    p.persona = Persona("WeMo.Switch", "Unspecified, UPnP/1.0, Unspecified",
                        {1, 3, 6});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                SsdpNotify("urn:Belkin:device:controllee:1", 3, 49153),
                SsdpSearch("upnp:rootdevice", 1),
                Dns("prod1.wemo2.com"),
                Https("prod1.wemo2.com", 1, 260, 25),
                Ntp()};
  } else if (ident == "D-LinkHomeHub") {
    p.persona = Persona("DCH-G020", "dlink-hub/2.0", {1, 3, 6, 15, 42});
    p.script = {Dhcp(),
                ArpProbe(),
                ArpResolve(),
                MdnsAnnounce("_dhnap._tcp.local", "DCH-G020", 3),
                UdpBroadcast(62976, 148, 2),
                Dns("signal.mydlink.com"),
                Https("signal.mydlink.com", 3, 330, 35),
                Ntp("ntp1.dlink.com")};
  } else if (ident == "D-LinkDoorSensor") {
    // Z-Wave sensor: hub-mediated registration burst.
    p.persona = Persona("dlink-zwave", "dlink-hub/2.0", {1, 3, 6});
    p.script = {Bootp(),
                Dhcp(),
                UdpBroadcast(62976, 92, 1),
                Dns("mydlink.com"),
                Https("mydlink.com", 1, 150, 15)};
  } else if (ident == "D-LinkDayCam") {
    p.persona = Persona("DCS-930L", "dcs-cam/1.14", {1, 3, 6, 15, 28, 42});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                Dns("dcs.mydlink.com"),
                HttpGet("dcs.mydlink.com", "/common/info.cgi", 940),
                TcpVendor("dcs.mydlink.com", 554, 188, 1),  // RTSP probe
                Ntp("ntp1.dlink.com")};
  } else if (ident == "D-LinkCam") {
    p.persona = Persona("DCH-935L", "dch-cam/2.02", {1, 3, 6, 15, 42});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                Icmpv6(),
                Dns("dch.mydlink.com"),
                Https("dch.mydlink.com", 2, 390, 40),
                UdpVendor("dch.mydlink.com", 8080, 118, 2),
                Ntp("ntp1.dlink.com")};
  } else if (info.cluster == SimilarityCluster::kDlinkHomeSensors) {
    // D-LinkSwitch / D-LinkWaterSensor / D-LinkSiren / D-LinkSensor:
    // identical hardware and firmware — one shared setup behaviour.
    // The paper observes the plug (device 1 of Table III) is slightly more
    // separable than the other three; it exposes an extra HNAP poll with
    // moderate probability (energy readout).
    p.persona = Persona("dlink-smartdev", "dlink-hnap/1.0", {1, 3, 6, 15, 28});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                MdnsAnnounce("_dhnap._tcp.local", "D-Link Smart Device", 2),
                Dns("mydlink.com"),
                Https("dsp.mydlink.com", 2, 256, 45),
                HttpGet("mydlink.com", "/HNAP1/", 512)};
    // Shared episode-to-episode variation (both in sequence and in counts):
    // re-announcement and an optional extra keep-alive burst occur in any
    // family member with the same probability, so they add within-type
    // variance without separating the siblings.
    {
      SetupStep reannounce =
          MdnsAnnounce("_dhnap._tcp.local", "D-Link Smart Device", 1);
      reannounce.probability = 0.5;
      p.script.push_back(reannounce);
      p.script.push_back(Https("dsp.mydlink.com", 1, 256, 45, /*prob=*/0.45));
      SetupStep arp_refresh = ArpResolve();
      arp_refresh.probability = 0.35;
      p.script.push_back(arp_refresh);
    }
    // Weak per-model markers: the products expose slightly different HNAP
    // endpoints (energy readout, leak status, alarm poll, motion config)
    // that appear in only part of the episodes, so the family remains
    // heavily confusable while each member keeps a small edge for its own
    // classifier — the structure behind Table III's diagonal.
    if (ident == "D-LinkSwitch") {
      p.script.push_back(HttpPost("dsp.mydlink.com", "/HNAP1/", 208, 20, 80));
      p.script.back().probability = 0.6;
    } else if (ident == "D-LinkWaterSensor") {
      p.script.push_back(Https("dsp.mydlink.com", 1, 312, 20, /*prob=*/0.5));
    } else if (ident == "D-LinkSiren") {
      p.script.push_back(HttpGet("mydlink.com", "/HNAP1/alarm", 384));
      p.script.back().probability = 0.45;
    } else if (ident == "D-LinkSensor") {
      p.script.push_back(UdpBroadcast(62976, 92, 1, 0.45));
    }
  } else if (info.cluster == SimilarityCluster::kTplinkPlugs) {
    // TP-LinkPlugHS110 / HS100: identical firmware; hostnames HS110/HS100
    // have equal length so even the DHCP discover sizes match.
    p.persona = Persona(ident == "TP-LinkPlugHS110" ? "HS110" : "HS100",
                        "tplink-smartplug/1.2", {1, 3, 6, 15, 28});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                UdpBroadcast(9999, 138, 2),  // TP-Link discovery protocol
                Dns("devs.tplinkcloud.com"),
                Https("devs.tplinkcloud.com", 2, 200, 40),
                Ntp("time.tp-link.com")};
    // Shared within-family variation.
    p.script.push_back(UdpBroadcast(9999, 138, 1, 0.5));
    p.script.push_back(Https("devs.tplinkcloud.com", 1, 200, 40, 0.4));
    if (ident == "TP-LinkPlugHS110") {
      // Energy-monitoring model: occasional extra emeter report.
      p.script.push_back(UdpBroadcast(9999, 170, 1, 0.5));
    }
  } else if (info.cluster == SimilarityCluster::kEdimaxPlugs) {
    p.persona = Persona(ident == "EdimaxPlug1101W" ? "SP1101W" : "SP2101W",
                        "edimax-plug/2.08", {1, 3, 6, 15});
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                SsdpSearch("urn:schemas-upnp-org:device:Basic:1", 2),
                Dns("sp.myedimax.com"),
                HttpPost("sp.myedimax.com", "/plug/register", 180, 30),
                TcpVendor("sp.myedimax.com", 8090, 124, 1)};
    // Shared within-family variation.
    p.script.push_back(SsdpSearch("urn:schemas-upnp-org:device:Basic:1", 1));
    p.script.back().probability = 0.5;
    p.script.push_back(TcpVendor("sp.myedimax.com", 8090, 124, 1, 0.4));
    if (ident == "EdimaxPlug2101W") {
      // Metering model: occasional extra usage upload.
      p.script.push_back(TcpVendor("sp.myedimax.com", 8090, 156, 1, 0.5));
    }
  } else if (info.cluster == SimilarityCluster::kSmarterAppliances) {
    // SmarterCoffee / iKettle2: same ESP8266 module and firmware stack;
    // identical hostname/persona (MSS 536, registered ephemeral ports).
    p.persona = Persona("smarter-device", "Smarter/2.0", {1, 3, 6}, 4097, 536);
    p.script = {Wifi(),
                Dhcp(),
                ArpProbe(),
                UdpBroadcast(2081, 58, 3),  // smarter discovery beacon
                TcpVendor("api.smarter.am", 2081, 74, 2)};
    // Shared within-family variation.
    p.script.push_back(UdpBroadcast(2081, 58, 1, 0.5));
    p.script.push_back(TcpVendor("api.smarter.am", 2081, 74, 1, 0.4));
    if (ident == "SmarterCoffee") {
      // Carafe/strength status frames unique to the coffee machine.
      p.script.push_back(UdpBroadcast(2081, 66, 1, 0.5));
    }
  } else {
    throw std::out_of_range("no profile for device type " + ident);
  }
  return p;
}

void ApplyFirmwareUpdate(DeviceProfile& p, DeviceTypeId id) {
  const DeviceTypeInfo& info = GetDeviceType(id);
  // A firmware update changes the observable setup behaviour: patched
  // stacks typically move plain-HTTP registration to TLS, change message
  // sizes, request more DHCP options and drop legacy discovery broadcasts.
  p.persona.dhcp_param_request.push_back(42);
  p.persona.dhcp_param_request.push_back(119);
  // Vendor SDK updates moved constrained stacks from legacy registered-range
  // ephemeral ports to the IANA dynamic range — visible in the port-class
  // features of every flow (this is what made the Smarter update so
  // recognisable in the paper's data collection).
  if (p.persona.ephemeral_port_base < 49152) {
    p.persona.ephemeral_port_base = 49152;
  }
  for (auto& step : p.script) {
    if (step.kind == StepKind::kHttpPost || step.kind == StepKind::kHttpGet) {
      step.kind = StepKind::kHttpsSession;
      step.count = 2;
      step.size += 64;
    } else if (step.kind == StepKind::kUdpBroadcast) {
      step.count = std::max(1, step.count - 1);
      step.size += 40;
    } else if (step.kind == StepKind::kHttpsSession) {
      step.size += 48;
    } else if (step.kind == StepKind::kTcpVendor) {
      step.size += 56;
      step.count += 1;
    }
  }
  // Updated firmware fetches the release manifest on first boot.
  SetupStep manifest = Https(info.cloud_endpoints.front(), 1, 520, 30);
  p.script.push_back(manifest);
}

}  // namespace

DeviceProfile GetSetupProfile(DeviceTypeId id, FirmwareVersion firmware) {
  DeviceProfile p = BuildFactoryProfile(id);
  if (firmware == FirmwareVersion::kUpdated) ApplyFirmwareUpdate(p, id);
  return p;
}

DeviceProfile GetBackgroundDeviceProfile(BackgroundDeviceKind kind) {
  DeviceProfile p;
  switch (kind) {
    case BackgroundDeviceKind::kSmartphone:
      // A phone joining WiFi: rich DHCP option list, mDNS device
      // discovery, captive-portal probe, burst of app TLS traffic to many
      // distinct endpoints — far more diverse than any IoT device.
      p.persona = Persona("Johns-iPhone", "CFNetwork/1410 Darwin/22",
                          {1, 121, 3, 6, 15, 119, 252}, 49160);
      p.script = {Wifi(),
                  Dhcp(),
                  ArpProbe(),
                  Icmpv6(),
                  MdnsQuery("_companion-link._tcp.local"),
                  MdnsAnnounce("_rdlink._tcp.local", "Johns iPhone", 2),
                  HttpGet("captive.apple.example", "/hotspot-detect.html", 190),
                  Https("push.apple.example", 4, 900, 400),
                  Https("metrics.social.example", 3, 1200, 600),
                  Https("cdn.video.example", 6, 1400, 200),
                  Ntp("time.apple.example")};
      break;
    case BackgroundDeviceKind::kLaptop:
      p.persona = Persona("marias-laptop", "Mozilla/5.0", {1, 3, 6, 15, 119},
                          49700);
      p.script = {Wifi(),
                  Dhcp(),
                  ArpProbe(),
                  Icmpv6(),
                  MdnsAnnounce("_workstation._tcp.local", "marias-laptop", 2),
                  Dns("sync.browser.example"),
                  Https("sync.browser.example", 5, 1100, 500),
                  Https("mail.example", 4, 800, 350),
                  HttpGet("ocsp.pki.example", "/status", 1500),
                  Ntp("pool.ntp.org")};
      break;
    case BackgroundDeviceKind::kSmartTv:
      p.persona = Persona("LivingRoomTV", "SmartTV/7.0", {1, 3, 6, 15, 42},
                          36000);
      p.script = {Wifi(),
                  Dhcp(),
                  ArpProbe(),
                  SsdpNotify("urn:dial-multiscreen-org:service:dial:1", 3,
                             56789),
                  SsdpSearch("urn:schemas-upnp-org:device:MediaRenderer:1", 2),
                  Dns("api.tvplatform.example"),
                  Https("api.tvplatform.example", 3, 700, 300),
                  Https("ads.tvplatform.example", 2, 450, 150),
                  Ntp()};
      break;
  }
  return p;
}

DeviceProfile GetStandbyProfile(DeviceTypeId id) {
  const DeviceTypeInfo& info = GetDeviceType(id);
  DeviceProfile setup = BuildFactoryProfile(id);
  DeviceProfile p;
  p.persona = setup.persona;
  // Standby traffic: periodic keep-alives to the primary cloud endpoint
  // plus the discovery chatter the device type uses. Heartbeat sizes and
  // cadence are type-specific (derived from the setup persona), giving the
  // legacy-mode identifier a weaker but usable behavioural signal.
  const std::string& endpoint = info.cloud_endpoints.front();
  const auto base =
      static_cast<int>(64 + (info.identifier.size() * 7) % 96);
  for (int cycle = 0; cycle < 3; ++cycle) {
    SetupStep hb;
    if (info.connectivity.wifi || info.connectivity.ethernet) {
      hb = Https(endpoint, 1, base, base / 8);
    } else {
      hb = UdpVendor(endpoint, 5005, base, 1);
    }
    hb.delay_ns = 20'000'000'000;  // 20 s between heartbeats
    p.script.push_back(hb);
    // Devices with local discovery re-announce periodically.
    for (const auto& step : setup.script) {
      if (step.kind == StepKind::kMdnsAnnounce ||
          step.kind == StepKind::kSsdpNotify) {
        SetupStep announce = step;
        announce.count = 1;
        announce.probability = 0.6;
        announce.delay_ns = 5'000'000'000;
        p.script.push_back(announce);
        break;
      }
    }
    if (cycle == 0) {
      SetupStep arp = ArpResolve();
      arp.delay_ns = 1'000'000'000;
      p.script.push_back(arp);
    }
  }
  // Standby traffic presumes the device already holds a lease; prepend a
  // silent DHCP renewal so the runner learns the device address.
  SetupStep renew = Dhcp();
  renew.delay_ns = 0;
  p.script.insert(p.script.begin(), renew);
  return p;
}

}  // namespace sentinel::devices
