// Per-device-type behaviour profiles: the vendor-specific setup scripts
// (and standby scripts for legacy-mode identification, paper Sect. VIII-A).
#pragma once

#include "devices/catalog.h"
#include "devices/script.h"

namespace sentinel::devices {

/// Firmware generation of a device instance. Software updates change a
/// device's fingerprint (paper Sect. VIII-B); the updated profile differs
/// from the factory one the way a patched firmware would (changed message
/// sizes, an added TLS exchange, a removed legacy broadcast).
enum class FirmwareVersion : std::uint8_t {
  kFactory = 0,
  kUpdated = 1,
};

/// Setup-phase profile for a device type.
/// Throws std::out_of_range for an unknown id.
DeviceProfile GetSetupProfile(DeviceTypeId id,
                              FirmwareVersion firmware = FirmwareVersion::kFactory);

/// Standby/operational traffic profile (periodic heartbeats, keep-alives):
/// the traffic available for fingerprinting devices already installed in a
/// legacy network.
DeviceProfile GetStandbyProfile(DeviceTypeId id);

/// Non-IoT devices present in every real home network. They are not in
/// the identification catalog: the system must classify them as unknown
/// device-types (strict isolation) rather than confuse them with an IoT
/// type — the paper's design implies general-purpose devices get manually
/// whitelisted by the user.
enum class BackgroundDeviceKind : std::uint8_t {
  kSmartphone = 0,
  kLaptop = 1,
  kSmartTv = 2,
};

DeviceProfile GetBackgroundDeviceProfile(BackgroundDeviceKind kind);

}  // namespace sentinel::devices
