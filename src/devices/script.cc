#include "devices/script.h"

namespace sentinel::devices {

namespace {

constexpr net::MacAddress kMdnsMac({0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb});
constexpr net::MacAddress kSsdpMac({0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa});
const net::Ipv4Address kMdnsIp(224, 0, 0, 251);
const net::Ipv4Address kSsdpIp(239, 255, 255, 250);
const net::Ipv4Address kLimitedBroadcast(255, 255, 255, 255);

}  // namespace

ScriptRunner::ScriptRunner(NetworkEnvironment& env, net::MacAddress device_mac,
                           std::uint64_t start_time_ns, ml::Rng& rng)
    : env_(env),
      mac_(device_mac),
      now_ns_(start_time_ns),
      rng_(rng),
      next_port_(49152) {}

capture::Trace ScriptRunner::Run(const DeviceProfile& profile) {
  trace_ = capture::Trace{};
  persona_ = &profile.persona;
  next_port_ = profile.persona.ephemeral_port_base;
  for (const auto& step : profile.script) {
    if (step.probability < 1.0) {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(rng_) > step.probability) continue;
    }
    Pause(step.delay_ns);
    Execute(step, profile);
  }
  return std::move(trace_);
}

void ScriptRunner::Execute(const SetupStep& step,
                           const DeviceProfile& profile) {
  switch (step.kind) {
    case StepKind::kWifiAssociate:
      DoWifiAssociate();
      break;
    case StepKind::kDhcpExchange:
      DoDhcp(profile.persona);
      break;
    case StepKind::kBootpRequest:
      DoBootp();
      break;
    case StepKind::kArpProbeAnnounce:
      DoArpProbeAnnounce();
      break;
    case StepKind::kArpResolve:
      DoArpResolve();
      break;
    case StepKind::kIcmpv6Setup:
      DoIcmpv6Setup();
      break;
    case StepKind::kIcmpPingGateway:
      DoPingGateway(step);
      break;
    case StepKind::kMdnsQuery:
      DoMdnsQuery(step);
      break;
    case StepKind::kMdnsAnnounce:
      DoMdnsAnnounce(step);
      break;
    case StepKind::kSsdpMSearch:
      DoSsdpMSearch(step);
      break;
    case StepKind::kSsdpNotify:
      DoSsdpNotify(step, profile.persona);
      break;
    case StepKind::kDnsQuery:
      DoDnsQuery(step);
      break;
    case StepKind::kNtpSync:
      DoNtpSync(step);
      break;
    case StepKind::kHttpGet:
      DoHttpGet(step, profile.persona);
      break;
    case StepKind::kHttpPost:
      DoHttpPost(step, profile.persona);
      break;
    case StepKind::kHttpsSession:
      DoHttpsSession(step, profile.persona);
      break;
    case StepKind::kUdpVendor:
      DoUdpVendor(step);
      break;
    case StepKind::kUdpBroadcast:
      DoUdpBroadcast(step);
      break;
    case StepKind::kTcpVendor:
      DoTcpVendor(step);
      break;
    case StepKind::kLlcFrame:
      DoLlcFrame(step);
      break;
  }
}

void ScriptRunner::Pause(std::uint64_t mean_ns) {
  if (mean_ns == 0) return;
  std::uniform_int_distribution<std::uint64_t> jitter(mean_ns / 2,
                                                      mean_ns * 3 / 2);
  now_ns_ += jitter(rng_);
}

void ScriptRunner::SmallPause() {
  std::uniform_int_distribution<std::uint64_t> jitter(1'000'000, 8'000'000);
  now_ns_ += jitter(rng_);
}

std::uint16_t ScriptRunner::NextEphemeralPort() {
  const std::uint16_t port = next_port_;
  next_port_ = static_cast<std::uint16_t>(next_port_ + 1);
  if (next_port_ < persona_->ephemeral_port_base) {
    next_port_ = persona_->ephemeral_port_base;
  }
  return port;
}

int ScriptRunner::JitteredSize(const SetupStep& step) {
  if (step.size_jitter <= 0) return step.size;
  std::uniform_int_distribution<int> d(-step.size_jitter, step.size_jitter);
  const int v = step.size + d(rng_);
  return v < 0 ? 0 : v;
}

net::Ipv4Meta ScriptRunner::IpMeta() {
  net::Ipv4Meta meta;
  meta.ttl = persona_->ip_ttl;
  std::uniform_int_distribution<std::uint32_t> id(1, 65535);
  meta.identification = static_cast<std::uint16_t>(id(rng_));
  meta.options.router_alert = persona_->ip_router_alert;
  meta.options.padding = persona_->ip_padding;
  return meta;
}

void ScriptRunner::JoinMulticastGroup(net::Ipv4Address group) {
  if (!has_ip_) return;
  if (!joined_groups_.insert(group.value()).second) return;
  trace_.Append(net::BuildIgmpFrame(now_ns_, mac_, device_ip_,
                                    net::IgmpMessage::Join(group)));
  SmallPause();
}

net::Ipv4Address ScriptRunner::Resolve(const std::string& name) {
  auto it = resolved_.find(name);
  if (it != resolved_.end()) return it->second;
  // First contact: the device asks the gateway's resolver.
  SetupStep dns;
  dns.name = name;
  DoDnsQuery(dns);
  const net::Ipv4Address ip = env_.ResolveEndpoint(name);
  resolved_.emplace(name, ip);
  return ip;
}

void ScriptRunner::DoWifiAssociate() {
  // WPA2 4-way handshake: messages 1 and 3 from the authenticator
  // (gateway), 2 and 4 from the device.
  for (int i = 1; i <= 4; ++i) {
    const bool from_device = (i % 2 == 0);
    trace_.Append(net::BuildEapolFrame(
        now_ns_, from_device ? mac_ : env_.gateway_mac(),
        from_device ? env_.gateway_mac() : mac_,
        net::EapolFrame::KeyHandshake(i)));
    SmallPause();
  }
}

void ScriptRunner::DoDhcp(const TrafficPersona& persona) {
  std::uniform_int_distribution<std::uint32_t> xid_dist;
  const std::uint32_t xid = xid_dist(rng_);

  auto send_from_device = [&](const net::DhcpMessage& msg,
                              net::Ipv4Address src, net::Ipv4Address dst) {
    net::UdpDatagram udp;
    udp.src_port = net::kPortDhcpClient;
    udp.dst_port = net::kPortDhcpServer;
    net::ByteWriter w;
    msg.Encode(w);
    udp.payload = std::move(w).Take();
    trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, net::MacAddress::Broadcast(),
                                      src, dst, udp, IpMeta()));
  };
  auto send_from_gateway = [&](const net::DhcpMessage& msg) {
    net::UdpDatagram udp;
    udp.src_port = net::kPortDhcpServer;
    udp.dst_port = net::kPortDhcpClient;
    net::ByteWriter w;
    msg.Encode(w);
    udp.payload = std::move(w).Take();
    trace_.Append(net::BuildUdp4Frame(now_ns_, env_.gateway_mac(), mac_,
                                      env_.gateway_ip(), kLimitedBroadcast,
                                      udp));
  };

  const auto discover =
      net::DhcpMessage::Discover(mac_, xid, persona.dhcp_hostname,
                                 persona.dhcp_param_request);
  send_from_device(discover, net::Ipv4Address::Any(), kLimitedBroadcast);
  // Occasional retransmission before the offer arrives, as busy radios do.
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng_) < 0.25) {
    SmallPause();
    send_from_device(discover, net::Ipv4Address::Any(), kLimitedBroadcast);
  }
  SmallPause();

  if (!has_ip_) {
    device_ip_ = env_.AllocateAddress();
    has_ip_ = true;
  }
  send_from_gateway(
      net::DhcpMessage::Offer(discover, device_ip_, env_.gateway_ip()));
  SmallPause();

  const auto request = net::DhcpMessage::Request(
      mac_, xid, device_ip_, env_.gateway_ip(), persona.dhcp_hostname);
  send_from_device(request, net::Ipv4Address::Any(), kLimitedBroadcast);
  SmallPause();
  send_from_gateway(
      net::DhcpMessage::Ack(request, device_ip_, env_.gateway_ip()));
}

void ScriptRunner::DoBootp() {
  std::uniform_int_distribution<std::uint32_t> xid_dist;
  net::UdpDatagram udp;
  udp.src_port = net::kPortDhcpClient;
  udp.dst_port = net::kPortDhcpServer;
  net::ByteWriter w;
  net::DhcpMessage::BootpRequest(mac_, xid_dist(rng_)).Encode(w);
  udp.payload = std::move(w).Take();
  trace_.Append(net::BuildUdp4Frame(now_ns_, mac_,
                                    net::MacAddress::Broadcast(),
                                    net::Ipv4Address::Any(), kLimitedBroadcast,
                                    udp, IpMeta()));
}

void ScriptRunner::DoArpProbeAnnounce() {
  if (!has_ip_) return;
  for (int i = 0; i < 2; ++i) {
    trace_.Append(net::BuildArpFrame(now_ns_, mac_,
                                     net::MacAddress::Broadcast(),
                                     net::ArpPacket::Probe(mac_, device_ip_)));
    SmallPause();
  }
  trace_.Append(net::BuildArpFrame(now_ns_, mac_, net::MacAddress::Broadcast(),
                                   net::ArpPacket::Announce(mac_, device_ip_)));
}

void ScriptRunner::DoArpResolve() {
  if (!has_ip_) return;
  net::ArpPacket req;
  req.operation = net::ArpOperation::kRequest;
  req.sender_mac = mac_;
  req.sender_ip = device_ip_;
  req.target_ip = env_.gateway_ip();
  trace_.Append(net::BuildArpFrame(now_ns_, mac_, net::MacAddress::Broadcast(),
                                   req));
  SmallPause();
  net::ArpPacket reply;
  reply.operation = net::ArpOperation::kReply;
  reply.sender_mac = env_.gateway_mac();
  reply.sender_ip = env_.gateway_ip();
  reply.target_mac = mac_;
  reply.target_ip = device_ip_;
  trace_.Append(net::BuildArpFrame(now_ns_, env_.gateway_mac(), mac_, reply));
}

void ScriptRunner::DoIcmpv6Setup() {
  const net::Ipv6Address link_local = net::Ipv6Address::LinkLocalFromMac(mac_);
  const net::Ipv6Address all_nodes = net::Ipv6Address::AllNodesMulticast();
  const net::MacAddress v6_multicast_mac({0x33, 0x33, 0x00, 0x00, 0x00, 0x01});

  trace_.Append(net::BuildIcmpv6Frame(
      now_ns_, mac_, v6_multicast_mac, link_local, all_nodes,
      net::Icmpv6Message::NeighborSolicitation(link_local, mac_)));
  SmallPause();
  trace_.Append(net::BuildIcmpv6Frame(
      now_ns_, mac_, v6_multicast_mac, link_local, all_nodes,
      net::Icmpv6Message::RouterSolicitation(mac_)));
  SmallPause();
  trace_.Append(net::BuildIcmpv6Frame(now_ns_, mac_, v6_multicast_mac,
                                      link_local, all_nodes,
                                      net::Icmpv6Message::Mldv2Report()));
}

void ScriptRunner::DoPingGateway(const SetupStep& step) {
  if (!has_ip_) return;
  std::uniform_int_distribution<std::uint32_t> id(1, 65535);
  const auto ident = static_cast<std::uint16_t>(id(rng_));
  const int payload = step.size > 0 ? JitteredSize(step) : 32;
  const auto request = net::IcmpMessage::EchoRequest(
      ident, 1, static_cast<std::size_t>(payload));
  trace_.Append(net::BuildIcmp4Frame(now_ns_, mac_, env_.gateway_mac(),
                                     device_ip_, env_.gateway_ip(), request,
                                     IpMeta()));
  SmallPause();
  trace_.Append(net::BuildIcmp4Frame(now_ns_, env_.gateway_mac(), mac_,
                                     env_.gateway_ip(), device_ip_,
                                     net::IcmpMessage::EchoReply(request)));
}

void ScriptRunner::DoMdnsQuery(const SetupStep& step) {
  if (!has_ip_) return;
  JoinMulticastGroup(kMdnsIp);
  net::UdpDatagram udp;
  udp.src_port = net::kPortMdns;
  udp.dst_port = net::kPortMdns;
  net::ByteWriter w;
  net::DnsMessage::MdnsQuery(step.name).Encode(w);
  udp.payload = std::move(w).Take();
  trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, kMdnsMac, device_ip_,
                                    kMdnsIp, udp, IpMeta()));
}

void ScriptRunner::DoMdnsAnnounce(const SetupStep& step) {
  if (!has_ip_) return;
  JoinMulticastGroup(kMdnsIp);
  net::UdpDatagram udp;
  udp.src_port = net::kPortMdns;
  udp.dst_port = net::kPortMdns;
  net::ByteWriter w;
  net::DnsMessage::MdnsAnnounce(step.extra, step.name, device_ip_).Encode(w);
  udp.payload = std::move(w).Take();
  for (int i = 0; i < step.count; ++i) {
    trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, kMdnsMac, device_ip_,
                                      kMdnsIp, udp, IpMeta()));
    if (i + 1 < step.count) SmallPause();
  }
}

void ScriptRunner::DoSsdpMSearch(const SetupStep& step) {
  if (!has_ip_) return;
  JoinMulticastGroup(kSsdpIp);
  const std::uint16_t src_port = NextEphemeralPort();
  net::ByteWriter w;
  net::SsdpMessage::MSearch(step.name).Encode(w);
  const auto payload = std::move(w).Take();
  for (int i = 0; i < step.count; ++i) {
    net::UdpDatagram udp;
    udp.src_port = src_port;
    udp.dst_port = net::kPortSsdp;
    udp.payload = payload;
    trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, kSsdpMac, device_ip_,
                                      kSsdpIp, udp, IpMeta()));
    if (i + 1 < step.count) SmallPause();
  }
}

void ScriptRunner::DoSsdpNotify(const SetupStep& step,
                                const TrafficPersona& persona) {
  if (!has_ip_) return;
  JoinMulticastGroup(kSsdpIp);
  const std::string location =
      "http://" + device_ip_.ToString() + ":" +
      std::to_string(step.port != 0 ? step.port : 49153) + "/setup.xml";
  net::ByteWriter w;
  net::SsdpMessage::NotifyAlive(step.name, location, persona.user_agent)
      .Encode(w);
  const auto payload = std::move(w).Take();
  for (int i = 0; i < step.count; ++i) {
    net::UdpDatagram udp;
    udp.src_port = NextEphemeralPort();
    udp.dst_port = net::kPortSsdp;
    udp.payload = payload;
    trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, kSsdpMac, device_ip_,
                                      kSsdpIp, udp, IpMeta()));
    if (i + 1 < step.count) SmallPause();
  }
}

void ScriptRunner::DoDnsQuery(const SetupStep& step) {
  if (!has_ip_) return;
  std::uniform_int_distribution<std::uint32_t> id(1, 65535);
  const auto query_id = static_cast<std::uint16_t>(id(rng_));
  const auto query = net::DnsMessage::Query(query_id, step.name);

  net::UdpDatagram udp;
  udp.src_port = NextEphemeralPort();
  udp.dst_port = net::kPortDns;
  net::ByteWriter w;
  query.Encode(w);
  udp.payload = std::move(w).Take();
  trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, env_.gateway_mac(),
                                    device_ip_, env_.dns_server(), udp,
                                    IpMeta()));
  SmallPause();

  net::UdpDatagram resp;
  resp.src_port = net::kPortDns;
  resp.dst_port = udp.src_port;
  net::ByteWriter rw;
  net::DnsMessage::Response(query, env_.ResolveEndpoint(step.name)).Encode(rw);
  resp.payload = std::move(rw).Take();
  trace_.Append(net::BuildUdp4Frame(now_ns_, env_.gateway_mac(), mac_,
                                    env_.dns_server(), device_ip_, resp));
}

void ScriptRunner::DoNtpSync(const SetupStep& step) {
  if (!has_ip_) return;
  const net::Ipv4Address server =
      step.name.empty() ? env_.gateway_ip() : Resolve(step.name);
  const net::MacAddress server_mac = env_.PublicEndpointMac(server);

  net::UdpDatagram udp;
  udp.src_port = NextEphemeralPort();
  udp.dst_port = net::kPortNtp;
  net::ByteWriter w;
  net::NtpPacket::ClientRequest(now_ns_).Encode(w);
  udp.payload = std::move(w).Take();
  trace_.Append(net::BuildUdp4Frame(now_ns_, mac_, server_mac, device_ip_,
                                    server, udp, IpMeta()));
  SmallPause();

  net::UdpDatagram resp;
  resp.src_port = net::kPortNtp;
  resp.dst_port = udp.src_port;
  net::ByteWriter rw;
  net::NtpPacket::ServerReply(net::NtpPacket{}, now_ns_).Encode(rw);
  resp.payload = std::move(rw).Take();
  trace_.Append(net::BuildUdp4Frame(now_ns_, server_mac, mac_, server,
                                    device_ip_, resp));
}

void ScriptRunner::TcpSession(
    net::Ipv4Address dst_ip, std::uint16_t dst_port,
    const std::vector<std::vector<std::uint8_t>>& client_payloads,
    const std::vector<std::vector<std::uint8_t>>& server_payloads) {
  const net::MacAddress peer_mac = env_.PublicEndpointMac(dst_ip);
  const std::uint16_t src_port = NextEphemeralPort();
  std::uniform_int_distribution<std::uint32_t> isn;
  std::uint32_t client_seq = isn(rng_);
  std::uint32_t server_seq = isn(rng_);

  auto device_sends = [&](net::TcpSegment seg) {
    seg.src_port = src_port;
    seg.dst_port = dst_port;
    trace_.Append(net::BuildTcp4Frame(now_ns_, mac_, peer_mac, device_ip_,
                                      dst_ip, seg, IpMeta()));
  };
  auto server_sends = [&](net::TcpSegment seg) {
    seg.src_port = dst_port;
    seg.dst_port = src_port;
    trace_.Append(net::BuildTcp4Frame(now_ns_, peer_mac, mac_, dst_ip,
                                      device_ip_, seg));
  };

  // Handshake.
  net::TcpSegment syn =
      net::TcpSegment::Syn(src_port, dst_port, client_seq, persona_->tcp_mss);
  device_sends(syn);
  ++client_seq;
  SmallPause();
  net::TcpSegment synack;
  synack.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  synack.seq = server_seq;
  synack.ack = client_seq;
  synack.options.mss = 1460;
  server_sends(synack);
  ++server_seq;
  SmallPause();
  net::TcpSegment ack;
  ack.flags = net::TcpFlags::kAck;
  ack.seq = client_seq;
  ack.ack = server_seq;
  device_sends(ack);

  // Interleaved application data.
  const std::size_t rounds =
      std::max(client_payloads.size(), server_payloads.size());
  for (std::size_t i = 0; i < rounds; ++i) {
    if (i < client_payloads.size()) {
      SmallPause();
      net::TcpSegment data;
      data.flags = net::TcpFlags::kPsh | net::TcpFlags::kAck;
      data.seq = client_seq;
      data.ack = server_seq;
      data.payload = client_payloads[i];
      client_seq += static_cast<std::uint32_t>(data.payload.size());
      device_sends(data);
    }
    if (i < server_payloads.size()) {
      SmallPause();
      net::TcpSegment data;
      data.flags = net::TcpFlags::kPsh | net::TcpFlags::kAck;
      data.seq = server_seq;
      data.ack = client_seq;
      data.payload = server_payloads[i];
      server_seq += static_cast<std::uint32_t>(data.payload.size());
      server_sends(data);
      SmallPause();
      net::TcpSegment client_ack;
      client_ack.flags = net::TcpFlags::kAck;
      client_ack.seq = client_seq;
      client_ack.ack = server_seq;
      device_sends(client_ack);
    }
  }

  // Teardown initiated by the device.
  SmallPause();
  net::TcpSegment fin;
  fin.flags = net::TcpFlags::kFin | net::TcpFlags::kAck;
  fin.seq = client_seq;
  fin.ack = server_seq;
  device_sends(fin);
  SmallPause();
  net::TcpSegment finack;
  finack.flags = net::TcpFlags::kFin | net::TcpFlags::kAck;
  finack.seq = server_seq;
  finack.ack = client_seq + 1;
  server_sends(finack);
  SmallPause();
  net::TcpSegment last;
  last.flags = net::TcpFlags::kAck;
  last.seq = client_seq + 1;
  last.ack = server_seq + 1;
  device_sends(last);
}

void ScriptRunner::DoHttpGet(const SetupStep& step,
                             const TrafficPersona& persona) {
  if (!has_ip_) return;
  const net::Ipv4Address dst = Resolve(step.name);
  net::ByteWriter req;
  net::HttpMessage::Get(step.extra.empty() ? "/" : step.extra, step.name,
                        persona.user_agent)
      .Encode(req);
  net::ByteWriter resp;
  net::HttpMessage::Ok(static_cast<std::size_t>(
                           step.size > 0 ? JitteredSize(step) : 512))
      .Encode(resp);
  TcpSession(dst, step.port != 0 ? step.port : net::kPortHttp,
             {std::move(req).Take()}, {std::move(resp).Take()});
}

void ScriptRunner::DoHttpPost(const SetupStep& step,
                              const TrafficPersona& persona) {
  if (!has_ip_) return;
  const net::Ipv4Address dst = Resolve(step.name);
  net::ByteWriter req;
  net::HttpMessage::Post(step.extra.empty() ? "/api" : step.extra, step.name,
                         persona.user_agent,
                         static_cast<std::size_t>(JitteredSize(step)))
      .Encode(req);
  net::ByteWriter resp;
  net::HttpMessage::Ok(128).Encode(resp);
  TcpSession(dst, step.port != 0 ? step.port : net::kPortHttp,
             {std::move(req).Take()}, {std::move(resp).Take()});
}

void ScriptRunner::DoHttpsSession(const SetupStep& step,
                                  const TrafficPersona& persona) {
  if (!has_ip_) return;
  (void)persona;
  const net::Ipv4Address dst = Resolve(step.name);

  std::vector<std::vector<std::uint8_t>> client, server;
  net::ByteWriter hello;
  net::TlsRecord::ClientHello(step.name).Encode(hello);
  client.push_back(std::move(hello).Take());
  net::ByteWriter shello;
  net::TlsRecord::ServerHello().Encode(shello);
  server.push_back(std::move(shello).Take());

  for (int i = 0; i < step.count; ++i) {
    net::ByteWriter app;
    net::TlsRecord::ApplicationData(
        static_cast<std::size_t>(JitteredSize(step) > 0 ? JitteredSize(step)
                                                        : 256))
        .Encode(app);
    client.push_back(std::move(app).Take());
    net::ByteWriter sapp;
    net::TlsRecord::ApplicationData(384).Encode(sapp);
    server.push_back(std::move(sapp).Take());
  }
  TcpSession(dst, step.port != 0 ? step.port : net::kPortHttps, client,
             server);
}

void ScriptRunner::DoUdpVendor(const SetupStep& step) {
  if (!has_ip_) return;
  const net::Ipv4Address dst = Resolve(step.name);
  for (int i = 0; i < step.count; ++i) {
    net::UdpDatagram udp;
    udp.src_port = NextEphemeralPort();
    udp.dst_port = step.port;
    udp.payload.assign(static_cast<std::size_t>(JitteredSize(step)), 0x55);
    trace_.Append(net::BuildUdp4Frame(now_ns_, mac_,
                                      env_.PublicEndpointMac(dst), device_ip_,
                                      dst, udp, IpMeta()));
    if (i + 1 < step.count) SmallPause();
  }
}

void ScriptRunner::DoUdpBroadcast(const SetupStep& step) {
  if (!has_ip_) return;
  for (int i = 0; i < step.count; ++i) {
    net::UdpDatagram udp;
    udp.src_port = step.port;
    udp.dst_port = step.port;
    udp.payload.assign(static_cast<std::size_t>(JitteredSize(step)), 0xab);
    trace_.Append(net::BuildUdp4Frame(now_ns_, mac_,
                                      net::MacAddress::Broadcast(), device_ip_,
                                      env_.subnet_broadcast(), udp, IpMeta()));
    if (i + 1 < step.count) SmallPause();
  }
}

void ScriptRunner::DoTcpVendor(const SetupStep& step) {
  if (!has_ip_) return;
  const net::Ipv4Address dst = Resolve(step.name);
  std::vector<std::vector<std::uint8_t>> client, server;
  for (int i = 0; i < step.count; ++i) {
    client.emplace_back(static_cast<std::size_t>(JitteredSize(step)), 0x77);
    server.emplace_back(static_cast<std::size_t>(64), 0x78);
  }
  TcpSession(dst, step.port, client, server);
}

void ScriptRunner::DoLlcFrame(const SetupStep& step) {
  trace_.Append(net::BuildLlcFrame(
      now_ns_, mac_, net::MacAddress({0x01, 0x80, 0xc2, 0x00, 0x00, 0x00}),
      static_cast<std::size_t>(step.size > 0 ? JitteredSize(step) : 38)));
}

}  // namespace sentinel::devices
