// Device setup scripts: a declarative description of the protocol exchanges
// a device performs when inducted into the network, plus the runner that
// executes a script into a byte-level capture trace.
//
// Scripts are behavioural fingerprint generators: the *sequence* of steps,
// the protocols involved, the endpoints contacted and the message sizes are
// the properties the paper's fingerprint captures, so each device profile
// encodes its vendor-specific setup procedure as one of these scripts.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "capture/trace.h"
#include "devices/environment.h"
#include "ml/rng.h"

namespace sentinel::devices {

enum class StepKind : std::uint8_t {
  kWifiAssociate,    // EAPoL 4-way handshake
  kDhcpExchange,     // DISCOVER/OFFER/REQUEST/ACK (+ optional re-tx)
  kBootpRequest,     // legacy plain BOOTP request
  kArpProbeAnnounce, // RFC 5227 probe + gratuitous announce
  kArpResolve,       // ARP request for the gateway + reply
  kIcmpv6Setup,      // RS + NS + MLDv2 burst
  kIcmpPingGateway,  // ICMP echo to the gateway
  kMdnsQuery,        // PTR query for `name` service
  kMdnsAnnounce,     // service announcement: instance `extra`, service `name`
  kSsdpMSearch,      // M-SEARCH with ST `name`, `count` repeats
  kSsdpNotify,       // NOTIFY ssdp:alive bursts
  kDnsQuery,         // A query for `name` + response from gateway resolver
  kNtpSync,          // NTP request/reply with `name` server (via gateway)
  kHttpGet,          // HTTP GET `extra` from host `name`
  kHttpPost,         // HTTP POST of `size` bytes to host `name`
  kHttpsSession,     // TLS session to `name`: handshake + `count` app records
  kUdpVendor,        // proprietary UDP datagram(s) to `name`:`port`
  kUdpBroadcast,     // proprietary UDP broadcast on `port`
  kTcpVendor,        // proprietary TCP exchange to `name`:`port`
  kLlcFrame,         // IEEE 802.3/LLC frame (hub devices)
};

struct SetupStep {
  StepKind kind = StepKind::kDhcpExchange;
  /// Primary name: DNS/SNI hostname, mDNS/SSDP service, NTP server.
  std::string name;
  /// Secondary string: HTTP path, mDNS instance, SSDP NT.
  std::string extra;
  /// Repeat count for bursty steps (SSDP notifies, app-data records).
  int count = 1;
  /// Base payload size in bytes where applicable.
  int size = 0;
  /// Uniform +/- jitter applied to `size` per execution.
  int size_jitter = 0;
  /// Destination port for vendor-proprietary steps.
  std::uint16_t port = 0;
  /// Step executes with this probability (optional behaviours).
  double probability = 1.0;
  /// Mean pause before the step; actual pause is jittered.
  std::uint64_t delay_ns = 60'000'000;  // 60 ms
};

/// Static, per-type traffic parameters that shape every step.
struct TrafficPersona {
  std::string dhcp_hostname;          // option 12 value
  std::string user_agent;             // HTTP User-Agent
  std::vector<std::uint8_t> dhcp_param_request;  // option 55 contents
  /// First ephemeral source port; embedded stacks differ in range.
  std::uint16_t ephemeral_port_base = 49152;
  /// TCP MSS advertised in SYNs (1460 for full-size stacks, smaller for
  /// constrained modules such as the ESP8266 in Smarter appliances).
  std::uint16_t tcp_mss = 1460;
  std::uint8_t ip_ttl = 64;
  /// Some stacks emit IPv4 router-alert/padding options (IGMP-adjacent).
  bool ip_router_alert = false;
  bool ip_padding = false;
};

/// A full device profile: persona + ordered setup script.
struct DeviceProfile {
  TrafficPersona persona;
  std::vector<SetupStep> script;
};

/// Executes `profile` for one device instance and appends every frame (both
/// the device's and its peers') to a trace.
class ScriptRunner {
 public:
  ScriptRunner(NetworkEnvironment& env, net::MacAddress device_mac,
               std::uint64_t start_time_ns, ml::Rng& rng);

  /// Runs the whole script; returns the capture trace of the episode.
  capture::Trace Run(const DeviceProfile& profile);

  /// Device IP after DHCP (valid once a kDhcpExchange step executed).
  [[nodiscard]] net::Ipv4Address device_ip() const { return device_ip_; }
  [[nodiscard]] std::uint64_t now_ns() const { return now_ns_; }

 private:
  void Execute(const SetupStep& step, const DeviceProfile& profile);

  // Step implementations append frames to trace_ and advance now_ns_.
  void DoWifiAssociate();
  void DoDhcp(const TrafficPersona& persona);
  void DoBootp();
  void DoArpProbeAnnounce();
  void DoArpResolve();
  void DoIcmpv6Setup();
  void DoPingGateway(const SetupStep& step);
  void DoMdnsQuery(const SetupStep& step);
  void DoMdnsAnnounce(const SetupStep& step);
  void DoSsdpMSearch(const SetupStep& step);
  void DoSsdpNotify(const SetupStep& step, const TrafficPersona& persona);
  void DoDnsQuery(const SetupStep& step);
  void DoNtpSync(const SetupStep& step);
  void DoHttpGet(const SetupStep& step, const TrafficPersona& persona);
  void DoHttpPost(const SetupStep& step, const TrafficPersona& persona);
  void DoHttpsSession(const SetupStep& step, const TrafficPersona& persona);
  void DoUdpVendor(const SetupStep& step);
  void DoUdpBroadcast(const SetupStep& step);
  void DoTcpVendor(const SetupStep& step);
  void DoLlcFrame(const SetupStep& step);

  /// Resolves `name`, emitting a DNS exchange the first time it is seen.
  net::Ipv4Address Resolve(const std::string& name);
  /// Emits an IGMPv2 join (router-alert option, TTL 1) the first time the
  /// device uses a multicast `group`, as real mDNS/SSDP stacks do.
  void JoinMulticastGroup(net::Ipv4Address group);
  /// Advances the clock by roughly `mean_ns` (+/- 50% jitter).
  void Pause(std::uint64_t mean_ns);
  /// Small intra-exchange gap (1-8 ms).
  void SmallPause();
  std::uint16_t NextEphemeralPort();
  int JitteredSize(const SetupStep& step);
  net::Ipv4Meta IpMeta();

  // TCP helpers: emit a full client session carrying `client_payloads`
  // (device->server) interleaved with server responses.
  void TcpSession(net::Ipv4Address dst_ip, std::uint16_t dst_port,
                  const std::vector<std::vector<std::uint8_t>>& client_payloads,
                  const std::vector<std::vector<std::uint8_t>>& server_payloads);

  NetworkEnvironment& env_;
  net::MacAddress mac_;
  net::Ipv4Address device_ip_;
  bool has_ip_ = false;
  std::uint64_t now_ns_;
  ml::Rng& rng_;
  const TrafficPersona* persona_ = nullptr;
  std::uint16_t next_port_;
  std::unordered_map<std::string, net::Ipv4Address> resolved_;
  std::unordered_set<std::uint32_t> joined_groups_;
  capture::Trace trace_;
};

}  // namespace sentinel::devices
