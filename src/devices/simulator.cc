#include "devices/simulator.h"

#include <algorithm>

namespace sentinel::devices {

DeviceSimulator::DeviceSimulator(std::uint64_t seed) : rng_(seed) {}

net::MacAddress DeviceSimulator::MakeInstanceMac(const DeviceTypeInfo& info) {
  std::uniform_int_distribution<std::uint32_t> nic(0, 0xffffff);
  const std::uint32_t suffix = nic(rng_);
  return net::MacAddress({info.oui[0], info.oui[1], info.oui[2],
                          static_cast<std::uint8_t>(suffix >> 16),
                          static_cast<std::uint8_t>(suffix >> 8),
                          static_cast<std::uint8_t>(suffix)});
}

SimulatedEpisode DeviceSimulator::RunSetupEpisode(DeviceTypeId type,
                                                  FirmwareVersion firmware) {
  const DeviceTypeInfo& info = GetDeviceType(type);
  SimulatedEpisode episode;
  episode.type = type;
  episode.device_mac = MakeInstanceMac(info);

  ScriptRunner runner(env_, episode.device_mac, clock_ns_, rng_);
  episode.trace = runner.Run(GetSetupProfile(type, firmware));
  episode.device_ip = runner.device_ip();
  // Advance the shared clock past this episode (episodes do not overlap in
  // the paper's collection methodology either).
  clock_ns_ = runner.now_ns() + 10'000'000'000;
  return episode;
}

SimulatedEpisode DeviceSimulator::RunStandbyEpisode(DeviceTypeId type) {
  const DeviceTypeInfo& info = GetDeviceType(type);
  SimulatedEpisode episode;
  episode.type = type;
  episode.device_mac = MakeInstanceMac(info);

  ScriptRunner runner(env_, episode.device_mac, clock_ns_, rng_);
  episode.trace = runner.Run(GetStandbyProfile(type));
  episode.device_ip = runner.device_ip();
  clock_ns_ = runner.now_ns() + 10'000'000'000;
  return episode;
}

SimulatedEpisode DeviceSimulator::RunBackgroundEpisode(
    BackgroundDeviceKind kind) {
  SimulatedEpisode episode;
  episode.type = -1;
  // Phones and laptops use locally-administered (randomized) MACs.
  std::uniform_int_distribution<std::uint64_t> nic(0, 0xffffffffffull);
  episode.device_mac =
      net::MacAddress::FromUint64(0x060000000000ull | nic(rng_));

  ScriptRunner runner(env_, episode.device_mac, clock_ns_, rng_);
  episode.trace = runner.Run(GetBackgroundDeviceProfile(kind));
  episode.device_ip = runner.device_ip();
  clock_ns_ = runner.now_ns() + 10'000'000'000;
  return episode;
}

DeviceSimulator::ConcurrentSetup DeviceSimulator::RunConcurrentSetupEpisodes(
    const std::vector<DeviceTypeId>& types) {
  ConcurrentSetup out;
  const std::uint64_t base = clock_ns_;
  std::uint64_t latest_end = base;
  for (const auto type : types) {
    const DeviceTypeInfo& info = GetDeviceType(type);
    SimulatedEpisode episode;
    episode.type = type;
    episode.device_mac = MakeInstanceMac(info);
    ScriptRunner runner(env_, episode.device_mac, base, rng_);
    episode.trace = runner.Run(GetSetupProfile(type));
    episode.device_ip = runner.device_ip();
    latest_end = std::max(latest_end, runner.now_ns());
    out.merged.Append(episode.trace);
    out.episodes.push_back(std::move(episode));
  }
  out.merged.SortByTime();
  clock_ns_ = latest_end + 10'000'000'000;
  return out;
}

std::vector<net::ParsedPacket> DeviceSimulator::DevicePackets(
    const SimulatedEpisode& episode) {
  std::vector<net::ParsedPacket> out;
  for (const auto& packet : episode.trace.Parse()) {
    if (packet.src_mac == episode.device_mac) out.push_back(packet);
  }
  return out;
}

features::Fingerprint DeviceSimulator::ExtractFingerprint(
    const SimulatedEpisode& episode) {
  return features::Fingerprint::FromPackets(DevicePackets(episode));
}

namespace {

FingerprintDataset GenerateDataset(std::size_t n_per_type, std::uint64_t seed,
                                   bool standby) {
  DeviceSimulator simulator(seed);
  FingerprintDataset dataset;
  const std::size_t type_count = DeviceTypeCount();
  dataset.fingerprints.reserve(type_count * n_per_type);
  for (std::size_t t = 0; t < type_count; ++t) {
    for (std::size_t i = 0; i < n_per_type; ++i) {
      const auto episode =
          standby ? simulator.RunStandbyEpisode(static_cast<DeviceTypeId>(t))
                  : simulator.RunSetupEpisode(static_cast<DeviceTypeId>(t));
      auto fp = DeviceSimulator::ExtractFingerprint(episode);
      dataset.fixed.push_back(features::FixedFingerprint::FromFingerprint(fp));
      dataset.fingerprints.push_back(std::move(fp));
      dataset.labels.push_back(static_cast<int>(t));
    }
  }
  return dataset;
}

}  // namespace

FingerprintDataset GenerateFingerprintDataset(std::size_t n_per_type,
                                              std::uint64_t seed) {
  return GenerateDataset(n_per_type, seed, /*standby=*/false);
}

FingerprintDataset GenerateStandbyFingerprintDataset(std::size_t n_per_type,
                                                     std::uint64_t seed) {
  return GenerateDataset(n_per_type, seed, /*standby=*/true);
}

}  // namespace sentinel::devices
