// High-level device-behaviour simulator: stands in for the paper's lab of
// 27 physical devices (Sect. VI-A). Each call simulates one setup episode
// of one device instance and returns the byte-level capture a gateway
// running tcpdump would have recorded.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/trace.h"
#include "devices/catalog.h"
#include "devices/environment.h"
#include "devices/profiles.h"
#include "features/fingerprint.h"

namespace sentinel::devices {

struct SimulatedEpisode {
  DeviceTypeId type = 0;
  net::MacAddress device_mac;
  net::Ipv4Address device_ip;
  capture::Trace trace;  // all frames, both directions
};

class DeviceSimulator {
 public:
  /// `seed` drives every stochastic choice; the same seed reproduces the
  /// same capture byte-for-byte.
  explicit DeviceSimulator(std::uint64_t seed = 42);

  /// Simulates one setup episode ("hard reset + walk through the vendor's
  /// setup procedure", as the paper's test scripts did).
  SimulatedEpisode RunSetupEpisode(
      DeviceTypeId type, FirmwareVersion firmware = FirmwareVersion::kFactory);

  /// Simulates a standby/operational period (legacy-installation mode,
  /// Sect. VIII-A).
  SimulatedEpisode RunStandbyEpisode(DeviceTypeId type);

  /// Simulates a non-IoT device (phone/laptop/TV) joining the network.
  /// `type` in the returned episode is -1: these are not catalog types and
  /// the identifier is expected to report them unknown.
  SimulatedEpisode RunBackgroundEpisode(BackgroundDeviceKind kind);

  /// Simulates several devices being set up *at the same time* (a family
  /// unboxing gifts): all episodes start at the same instant and their
  /// frames interleave on the wire. Returns the per-device episodes plus
  /// the merged, time-sorted capture — the stream a real gateway monitor
  /// has to demultiplex per MAC.
  struct ConcurrentSetup {
    std::vector<SimulatedEpisode> episodes;
    capture::Trace merged;
  };
  ConcurrentSetup RunConcurrentSetupEpisodes(
      const std::vector<DeviceTypeId>& types);

  /// Device-originated packets of an episode, in order — the stream the
  /// fingerprinter consumes.
  static std::vector<net::ParsedPacket> DevicePackets(
      const SimulatedEpisode& episode);

  /// Convenience: full pipeline from episode to fingerprints.
  static features::Fingerprint ExtractFingerprint(
      const SimulatedEpisode& episode);

 private:
  net::MacAddress MakeInstanceMac(const DeviceTypeInfo& info);

  NetworkEnvironment env_;
  ml::Rng rng_;
  std::uint64_t clock_ns_ = 1'000'000'000;
};

/// A labelled fingerprint dataset: `n_per_type` setup episodes for every
/// catalog device type (paper: 20 x 27 = 540). Returns parallel vectors of
/// variable-length fingerprints and labels.
struct FingerprintDataset {
  std::vector<features::Fingerprint> fingerprints;
  std::vector<features::FixedFingerprint> fixed;
  std::vector<int> labels;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

FingerprintDataset GenerateFingerprintDataset(std::size_t n_per_type,
                                              std::uint64_t seed = 42);

/// Same shape, but fingerprints come from standby/operational episodes —
/// the training material for legacy-installation identification
/// (paper Sect. VIII-A).
FingerprintDataset GenerateStandbyFingerprintDataset(std::size_t n_per_type,
                                                     std::uint64_t seed = 42);

}  // namespace sentinel::devices
