#include "eval/experiment.h"

#include <chrono>

#include "features/edit_distance.h"

namespace sentinel::eval {

namespace {
using Clock = std::chrono::steady_clock;

double ToNs(Clock::duration d) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}
}  // namespace

namespace {

// Everything one fold contributes to the aggregate outcome, accumulated
// privately while folds run in parallel and merged in fold order.
struct FoldPartial {
  ml::ConfusionMatrix confusion{0};
  std::vector<std::size_t> unknown_per_type;
  std::vector<std::size_t> candidates_histogram;
  std::size_t total_identifications = 0;
  std::size_t multi_match_count = 0;
  std::size_t edit_distance_total = 0;
  std::vector<double> classification_ns;
  std::vector<double> discrimination_ns;
  std::vector<double> identification_ns;
};

}  // namespace

CrossValidationOutcome RunCrossValidation(
    const devices::FingerprintDataset& dataset,
    const CrossValidationConfig& config, util::ThreadPool* pool,
    obs::MetricsRegistry* metrics) {
  const std::size_t type_count = devices::DeviceTypeCount();
  CrossValidationOutcome outcome;
  outcome.confusion = ml::ConfusionMatrix(type_count);
  outcome.unknown_per_type.assign(type_count, 0);
  outcome.candidates_histogram.assign(type_count + 1, 0);

  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    ml::Rng fold_rng(ml::DeriveSeed(config.seed, rep));
    const auto folds =
        ml::StratifiedKFold(dataset.labels, config.folds, fold_rng);

    // Folds are independent experiments (each derives its identifier seed
    // from (seed, rep, fold) and holds its own model), so they evaluate in
    // parallel; nested parallelism inside Train() lets idle workers help
    // whichever fold is still training.
    std::vector<FoldPartial> partials(folds.size());
    ml::ForEachFold(folds, pool, [&](std::size_t f) {
      const auto& fold = folds[f];
      FoldPartial& part = partials[f];
      part.confusion = ml::ConfusionMatrix(type_count);
      part.unknown_per_type.assign(type_count, 0);
      part.candidates_histogram.assign(type_count + 1, 0);

      std::vector<core::LabelledFingerprint> train;
      train.reserve(fold.train_indices.size());
      for (const std::size_t i : fold.train_indices) {
        train.push_back(core::LabelledFingerprint{
            &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
      }
      core::IdentifierConfig id_config = config.identifier;
      id_config.seed = ml::DeriveSeed(config.seed, rep * 1000 + f);
      core::DeviceIdentifier identifier(id_config);
      identifier.set_thread_pool(pool);
      identifier.set_metrics(metrics);
      identifier.Train(train);

      // The fold's whole test split goes through one batched bank sweep
      // (verdicts are bit-identical to per-probe Identify); each probe's
      // wall time is reported as its even share of the batch.
      std::vector<core::DeviceIdentifier::FingerprintRef> probes;
      probes.reserve(fold.test_indices.size());
      for (const std::size_t i : fold.test_indices) {
        probes.push_back({&dataset.fingerprints[i], &dataset.fixed[i]});
      }
      const auto t0 = Clock::now();
      const auto fold_results = identifier.IdentifyBatch(probes);
      const auto batch_ns = ToNs(Clock::now() - t0);
      const double share =
          probes.empty() ? 0.0 : batch_ns / static_cast<double>(probes.size());

      for (std::size_t p = 0; p < fold.test_indices.size(); ++p) {
        const std::size_t i = fold.test_indices[p];
        const auto& result = fold_results[p];

        ++part.total_identifications;
        part.classification_ns.push_back(
            static_cast<double>(result.classification_time.count()));
        part.identification_ns.push_back(share);
        if (result.matched_types.size() > 1) {
          ++part.multi_match_count;
          part.discrimination_ns.push_back(
              static_cast<double>(result.discrimination_time.count()));
        }
        part.edit_distance_total += result.edit_distance_count;
        const std::size_t candidates = result.matched_types.size();
        if (candidates < part.candidates_histogram.size())
          ++part.candidates_histogram[candidates];

        const auto actual = static_cast<std::size_t>(dataset.labels[i]);
        if (result.IsKnown()) {
          part.confusion.Add(actual, static_cast<std::size_t>(*result.type));
        } else {
          ++part.unknown_per_type[actual];
        }
      }
    });

    for (const auto& part : partials) {
      outcome.confusion.Merge(part.confusion);
      for (std::size_t a = 0; a < type_count; ++a)
        outcome.unknown_per_type[a] += part.unknown_per_type[a];
      for (std::size_t c = 0; c < part.candidates_histogram.size(); ++c)
        outcome.candidates_histogram[c] += part.candidates_histogram[c];
      outcome.total_identifications += part.total_identifications;
      outcome.multi_match_count += part.multi_match_count;
      outcome.edit_distance_total += part.edit_distance_total;
      outcome.classification_ns.insert(outcome.classification_ns.end(),
                                       part.classification_ns.begin(),
                                       part.classification_ns.end());
      outcome.discrimination_ns.insert(outcome.discrimination_ns.end(),
                                       part.discrimination_ns.begin(),
                                       part.discrimination_ns.end());
      outcome.identification_ns.insert(outcome.identification_ns.end(),
                                       part.identification_ns.begin(),
                                       part.identification_ns.end());
    }
  }
  return outcome;
}

StepTimings MeasureStepTimings(const devices::FingerprintDataset& dataset,
                               const CrossValidationConfig& config,
                               std::size_t probe_count,
                               util::ThreadPool* pool,
                               obs::MetricsRegistry* metrics) {
  StepTimings out;
  obs::Histogram* stage_fingerprint_ns =
      metrics != nullptr
          ? &metrics->GetHistogram(
                "sentinel_stage_fingerprint_ns",
                "fingerprint assembly time when a setup phase completes")
          : nullptr;
  obs::Histogram* stage_identify_ns =
      metrics != nullptr
          ? &metrics->GetHistogram(
                "sentinel_stage_identify_ns",
                "device-type identification time (Security Service "
                "assessment)")
          : nullptr;
  // Train on the full dataset (timing, not accuracy, is measured here).
  std::vector<core::LabelledFingerprint> train;
  train.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    train.push_back(core::LabelledFingerprint{
        &dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
  }
  core::DeviceIdentifier identifier(config.identifier);
  identifier.set_thread_pool(pool);
  identifier.set_metrics(metrics);
  identifier.Train(train);
  // The probe loops below time individual pipeline steps; keep them
  // single-threaded so the measurements match the paper's per-step costs.
  identifier.set_thread_pool(nullptr);

  ml::Rng rng(ml::DeriveSeed(config.seed, 0xabcd));
  std::uniform_int_distribution<std::size_t> pick(0, dataset.size() - 1);

  std::vector<double> single_cls, single_disc, extraction, all_cls, discs, ids;

  // Single classification: time one per-type binary forest directly (the
  // identifier-level call adds the open-set reference check, which belongs
  // to the discrimination column).
  {
    ml::Dataset data(features::kFPrimeDim);
    for (std::size_t i = 0; i < dataset.size(); ++i)
      data.Add(dataset.fixed[i].ToVector(), dataset.labels[i] == 0 ? 1 : 0);
    ml::RandomForest forest;
    ml::RandomForestConfig forest_config = config.identifier.forest;
    forest.Train(data, forest_config, pool, metrics);
    for (std::size_t n = 0; n < probe_count; ++n) {
      const auto row = dataset.fixed[pick(rng)].ToVector();
      const auto t0 = Clock::now();
      (void)forest.PositiveProba(row);
      single_cls.push_back(ToNs(Clock::now() - t0));
    }
  }

  // Single discrimination: one normalized edit distance between two
  // fingerprints of similar types.
  for (std::size_t n = 0; n < probe_count; ++n) {
    const std::size_t a = pick(rng);
    const std::size_t b = pick(rng);
    const auto t0 = Clock::now();
    (void)features::NormalizedEditDistance(dataset.fingerprints[a],
                                           dataset.fingerprints[b]);
    single_disc.push_back(ToNs(Clock::now() - t0));
  }

  // Fingerprint extraction: regenerate an episode and extract.
  {
    devices::DeviceSimulator simulator(ml::DeriveSeed(config.seed, 0x77));
    for (std::size_t n = 0; n < std::min<std::size_t>(probe_count, 54); ++n) {
      const auto episode = simulator.RunSetupEpisode(
          static_cast<devices::DeviceTypeId>(n % devices::DeviceTypeCount()));
      const auto packets = devices::DeviceSimulator::DevicePackets(episode);
      const auto t0 = Clock::now();
      const auto fp = features::Fingerprint::FromPackets(packets);
      (void)features::FixedFingerprint::FromFingerprint(fp);
      extraction.push_back(ToNs(Clock::now() - t0));
      if (stage_fingerprint_ns != nullptr)
        stage_fingerprint_ns->Observe(extraction.back());
    }
  }

  // Full identifications: 27 classifications + discrimination when needed.
  double discrimination_count_sum = 0.0;
  std::size_t discrimination_ids = 0;
  for (std::size_t n = 0; n < probe_count; ++n) {
    const std::size_t i = pick(rng);
    const auto t0 = Clock::now();
    const auto result =
        identifier.Identify(dataset.fingerprints[i], dataset.fixed[i]);
    ids.push_back(ToNs(Clock::now() - t0));
    if (stage_identify_ns != nullptr) stage_identify_ns->Observe(ids.back());
    all_cls.push_back(static_cast<double>(result.classification_time.count()));
    if (result.matched_types.size() > 1) {
      discs.push_back(static_cast<double>(result.discrimination_time.count()));
      discrimination_count_sum +=
          static_cast<double>(result.edit_distance_count);
      ++discrimination_ids;
    }
  }

  out.single_classification_ns = ml::ComputeMeanStd(single_cls);
  out.single_discrimination_ns = ml::ComputeMeanStd(single_disc);
  out.fingerprint_extraction_ns = ml::ComputeMeanStd(extraction);
  out.all_classifications_ns = ml::ComputeMeanStd(all_cls);
  out.discriminations_ns = ml::ComputeMeanStd(discs);
  out.identification_ns = ml::ComputeMeanStd(ids);
  out.mean_discriminations_per_id =
      discrimination_ids > 0
          ? discrimination_count_sum / static_cast<double>(discrimination_ids)
          : 0.0;
  return out;
}

}  // namespace sentinel::eval
