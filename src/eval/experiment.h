// Evaluation harness reproducing the paper's protocol (Sect. VI-B):
// stratified 10-fold cross-validation repeated 10 times over a dataset of
// 540 fingerprints (27 types x 20 episodes); per fold, one binary Random
// Forest per type trained with all n positives and 10*n sampled negatives;
// multi-match fingerprints discriminated by edit distance over 5 reference
// fingerprints per candidate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/device_identifier.h"
#include "devices/simulator.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"

namespace sentinel::eval {

struct CrossValidationConfig {
  std::size_t folds = 10;
  std::size_t repetitions = 10;
  core::IdentifierConfig identifier;
  std::uint64_t seed = 99;
};

/// Aggregated outcome across all repetitions and folds.
struct CrossValidationOutcome {
  ml::ConfusionMatrix confusion{0};
  /// Test fingerprints that were rejected by every classifier ("new
  /// device-type" verdicts), counted per actual type.
  std::vector<std::size_t> unknown_per_type;
  std::size_t total_identifications = 0;
  /// How many identifications needed the discrimination stage.
  std::size_t multi_match_count = 0;
  /// Edit-distance computations across all identifications.
  std::size_t edit_distance_total = 0;
  /// Candidate types per discrimination (paper: "between two and five").
  std::vector<std::size_t> candidates_histogram;  // index = candidate count

  // Per-identification timings (nanoseconds), for Table IV.
  std::vector<double> classification_ns;   // all-classifier pass
  std::vector<double> discrimination_ns;   // only when stage 2 ran
  std::vector<double> identification_ns;   // end-to-end

  [[nodiscard]] double PerTypeAccuracy(std::size_t type) const {
    return confusion.PerClassAccuracy(type);
  }
  [[nodiscard]] double OverallAccuracy() const {
    return confusion.OverallAccuracy();
  }
};

/// Runs the full protocol on a pre-generated dataset. With a non-null
/// `pool`, the folds of each repetition evaluate in parallel (each fold
/// trains and tests its own identifier, which also borrows the pool for
/// forest training); per-fold results are merged in fold order, so the
/// accuracy/confusion outcome is identical to a sequential run. Only the
/// recorded wall-clock timings vary with scheduling, as they always do.
/// With a non-null `metrics`, every fold identifier records its bank-scan
/// and discrimination telemetry into the shared registry (counters are
/// atomic, so concurrent folds aggregate correctly).
CrossValidationOutcome RunCrossValidation(
    const devices::FingerprintDataset& dataset,
    const CrossValidationConfig& config, util::ThreadPool* pool = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

/// Single-step timing measurements for Table IV, measured on a trained
/// identifier over the given dataset.
struct StepTimings {
  ml::MeanStd single_classification_ns;  // one Random Forest
  ml::MeanStd single_discrimination_ns;  // one edit-distance computation
  ml::MeanStd fingerprint_extraction_ns;
  ml::MeanStd all_classifications_ns;    // 27 classifiers
  ml::MeanStd discriminations_ns;        // per identification that needed it
  ml::MeanStd identification_ns;         // end-to-end
  double mean_discriminations_per_id = 0.0;
};

/// `pool` accelerates the one-off training of the measured identifier; the
/// timed probe sections always run sequentially so the per-step numbers
/// stay comparable with the paper's single-core measurements. With a
/// non-null `metrics`, each probe's extraction and identification times
/// are also observed into the `sentinel_stage_fingerprint_ns` /
/// `sentinel_stage_identify_ns` histograms (the same series the live
/// gateway records), so the Table IV bench and production telemetry share
/// one exposition path.
StepTimings MeasureStepTimings(const devices::FingerprintDataset& dataset,
                               const CrossValidationConfig& config,
                               std::size_t probe_count = 200,
                               util::ThreadPool* pool = nullptr,
                               obs::MetricsRegistry* metrics = nullptr);

}  // namespace sentinel::eval
