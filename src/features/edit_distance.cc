#include "features/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.h"

namespace sentinel::features {

std::size_t EditDistance(std::span<const PacketFeatureVector> a,
                         std::span<const PacketFeatureVector> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;

  // Three-row rolling OSA dynamic program: prev2 = d[i-2], prev = d[i-1],
  // cur = d[i].
  std::vector<std::size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;

  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1,        // deletion
                         cur[j - 1] + 1,     // insertion
                         prev[j - 1] + cost  // substitution
      });
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + cost);  // transposition
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double NormalizedEditDistance(const Fingerprint& a, const Fingerprint& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  const std::size_t d = EditDistance(a.packets(), b.packets());
  // The OSA distance is bounded by the longer sequence length, so the
  // normalized value the tie-breaker ranks on is always in [0, 1].
  SENTINEL_CHECK(d <= longest)
      << "edit distance " << d << " exceeds longer fingerprint length "
      << longest;
  return static_cast<double>(d) / static_cast<double>(longest);
}

namespace {

constexpr std::uint32_t kEmptySlot = 0xffffffffu;

std::uint64_t HashPacket(const PacketFeatureVector& packet) {
  // FNV-1a over the feature words: equal packets hash equal, and every
  // index hit is still verified by full packet equality, so hash quality
  // only affects probe length, never ids.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint32_t value : packet) {
    h = (h ^ value) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void PacketInterner::Intern(std::span<const PacketFeatureVector> packets,
                            std::vector<std::uint32_t>& out) {
  // Growing the table invalidates any previously built index.
  slots_.clear();
  slot_mask_ = 0;
  out.clear();
  out.reserve(packets.size());
  for (const auto& packet : packets) {
    std::uint32_t id = 0;
    for (; id < keys_.size(); ++id) {
      if (keys_[id] == packet) break;
    }
    if (id == keys_.size()) keys_.push_back(packet);
    out.push_back(id);
  }
}

void PacketInterner::Freeze() {
  slots_.clear();
  slot_mask_ = 0;
  if (keys_.empty()) return;
  std::size_t capacity = 8;
  while (capacity < keys_.size() * 2) capacity *= 2;
  slots_.assign(capacity, kEmptySlot);
  slot_mask_ = static_cast<std::uint32_t>(capacity - 1);
  for (std::uint32_t id = 0; id < keys_.size(); ++id) {
    std::uint32_t slot =
        static_cast<std::uint32_t>(HashPacket(keys_[id])) & slot_mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = id;
  }
}

std::uint32_t PacketInterner::LookupLinear(
    const PacketFeatureVector& packet) const {
  std::uint32_t id = 0;
  for (; id < keys_.size(); ++id) {
    if (keys_[id] == packet) break;
  }
  return id;  // keys_.size() when absent
}

std::uint32_t PacketInterner::LookupIndexed(
    const PacketFeatureVector& packet) const {
  std::uint32_t slot =
      static_cast<std::uint32_t>(HashPacket(packet)) & slot_mask_;
  while (true) {
    const std::uint32_t id = slots_[slot];
    if (id == kEmptySlot) return static_cast<std::uint32_t>(keys_.size());
    if (keys_[id] == packet) return id;
    slot = (slot + 1) & slot_mask_;
  }
}

void PacketInterner::InternReadOnly(
    std::span<const PacketFeatureVector> packets,
    std::vector<PacketFeatureVector>& overflow,
    std::vector<std::uint32_t>& out) const {
  overflow.clear();
  out.clear();
  out.reserve(packets.size());
  const std::uint32_t table = static_cast<std::uint32_t>(keys_.size());
  const bool indexed = !slots_.empty();
  for (const auto& packet : packets) {
    const std::uint32_t id =
        indexed ? LookupIndexed(packet) : LookupLinear(packet);
    if (id < table) {
      out.push_back(id);
      continue;
    }
    // Unknown to the frozen table: id past its end, equal unknown packets
    // mapped to one id so id equality stays equivalent to packet equality.
    std::uint32_t extra = 0;
    for (; extra < overflow.size(); ++extra) {
      if (overflow[extra] == packet) break;
    }
    if (extra == overflow.size()) overflow.push_back(packet);
    out.push_back(table + extra);
  }
}

bool BuildMyersPattern(std::span<const std::uint32_t> ids,
                       std::size_t id_space, EditDistanceScratch& scratch) {
  if (ids.size() > 64) return false;
  scratch.peq.assign(id_space, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] < id_space) scratch.peq[ids[i]] |= std::uint64_t{1} << i;
  }
  return true;
}

bool BuildMyersPatternSparse(std::span<const std::uint32_t> ids,
                             std::size_t id_space,
                             EditDistanceScratch& scratch) {
  if (ids.size() > 64) return false;
  if (scratch.peq.size() < id_space) scratch.peq.resize(id_space, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] < id_space) scratch.peq[ids[i]] |= std::uint64_t{1} << i;
  }
  return true;
}

void ClearMyersPattern(std::span<const std::uint32_t> ids,
                       EditDistanceScratch& scratch) {
  for (const std::uint32_t id : ids) {
    if (id < scratch.peq.size()) scratch.peq[id] = 0;
  }
}

std::size_t MyersDistance(std::size_t pattern_length,
                          std::span<const std::uint32_t> text,
                          const EditDistanceScratch& scratch) {
  const std::size_t n = pattern_length;
  if (n == 0) return text.size();
  SENTINEL_CHECK(n <= 64) << "Myers pattern length " << n << " exceeds 64";
  // Myers 1999 bit-vector Levenshtein as formulated by Hyyro 2001: Pv/Mv
  // track the +1/-1 vertical deltas of the current DP column; score is the
  // column's last cell, i.e. d(pattern, text[0..j]).
  std::uint64_t pv = ~std::uint64_t{0};
  std::uint64_t mv = 0;
  std::size_t score = n;
  const std::uint64_t high = std::uint64_t{1} << (n - 1);
  for (const std::uint32_t c : text) {
    const std::uint64_t eq = c < scratch.peq.size() ? scratch.peq[c] : 0;
    const std::uint64_t xv = eq | mv;
    const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    std::uint64_t ph = mv | ~(xh | pv);
    std::uint64_t mh = pv & xh;
    if (ph & high) {
      ++score;
    } else if (mh & high) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

namespace {

// Shared banded program: T is either PacketFeatureVector (direct) or an
// interned id (std::uint32_t). Only equality of elements is consumed, so
// both instantiations compute the same distances.
template <typename T>
BoundedDistance BoundedEditDistanceImpl(std::span<const T> a,
                                        std::span<const T> b,
                                        std::size_t cutoff,
                                        EditDistanceScratch& scratch) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return {m, m > cutoff};
  if (m == 0) return {n, n > cutoff};
  // Length-difference lower bound: every alignment needs at least
  // |n - m| insertions or deletions.
  const std::size_t diff = n > m ? n - m : m - n;
  if (diff > cutoff) return {diff, true};

  // Banded three-row OSA program. kInf marks cells outside the |i-j| <=
  // cutoff band: their true distance is >= |i-j| > cutoff, so clamping
  // them to cutoff+1 preserves exactness for any result <= cutoff (values
  // along a DP path never decrease, so a path through a clamped cell ends
  // > cutoff and is never selected when the true distance is in band).
  const std::size_t kInf = cutoff + 1;
  scratch.prev2.assign(m + 1, kInf);
  scratch.prev.assign(m + 1, kInf);
  scratch.cur.assign(m + 1, kInf);
  auto& prev2 = scratch.prev2;
  auto& prev = scratch.prev;
  auto& cur = scratch.cur;
  for (std::size_t j = 0; j <= std::min(m, cutoff); ++j) prev[j] = j;
  std::size_t prev_min = 0;

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t lo = i > cutoff ? i - cutoff : 1;
    const std::size_t hi = std::min(m, i + cutoff);
    cur[0] = i <= cutoff ? i : kInf;
    // Band edges the recurrence may read before they are written this
    // round (insertion at j = lo, and the next rows' prev/prev2 reads just
    // outside their own windows) are pinned to the out-of-band sentinel.
    if (lo > 1) cur[lo - 1] = kInf;
    std::size_t row_min = cur[0];
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      std::size_t v = std::min({prev[j] + 1,        // deletion
                                cur[j - 1] + 1,     // insertion
                                prev[j - 1] + cost  // substitution
      });
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        v = std::min(v, prev2[j - 2] + cost);  // transposition
      }
      v = std::min(v, kInf);
      cur[j] = v;
      row_min = std::min(row_min, v);
    }
    if (hi < m) cur[hi + 1] = kInf;
    // Every cell of a later row is a min over this row and the previous
    // one plus non-negative costs (same-row chains ground at the column-0
    // head, itself > cutoff once i > cutoff), so two consecutive all-
    // exceeding rows certify the final distance exceeds the cutoff.
    if (row_min > cutoff && prev_min > cutoff) return {kInf, true};
    prev_min = row_min;
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  const std::size_t d = prev[m];
  return {d, d > cutoff};
}

// Cutoff selection shared by the two PrunedNormalizedEditDistance
// overloads; Distance is invoked with the chosen cutoff only when pruning
// cannot already be decided from the lengths alone.
template <typename Distance>
PrunedNormalized PrunedNormalizedImpl(std::size_t longest,
                                      std::size_t external_lower_bound,
                                      std::size_t external_upper_bound,
                                      double partial_score, double best_score,
                                      Distance&& bounded_distance) {
  if (longest == 0) return {0.0, false};
  const double denominator = static_cast<double>(longest);
  // useful(d): could an exact distance of d still keep the candidate's
  // score at or below best (a win or a tie)? Evaluated with the exact
  // floating-point expressions the caller's accumulation performs —
  // division and addition are monotone in d, so the predicate is monotone
  // and the pruning decision is certain, not approximate.
  const auto useful = [&](std::size_t d) {
    return partial_score + static_cast<double>(d) / denominator <= best_score;
  };
  std::size_t cutoff;
  if (!(best_score < std::numeric_limits<double>::infinity())) {
    cutoff = longest;  // no best yet — full, exact computation
  } else if (!useful(0)) {
    // Even a zero distance leaves the candidate above best: skip the
    // computation entirely (the returned 0 keeps the caller's running
    // score unchanged, which is already certified above best).
    return {0.0, true};
  } else {
    // Seed at the real-arithmetic crossover, then settle onto the largest
    // useful distance with the exact predicate (at most a step or two).
    double guess = (best_score - partial_score) * denominator;
    if (!(guess >= 0.0)) guess = 0.0;
    if (guess > denominator) guess = denominator;
    cutoff = static_cast<std::size_t>(guess);
    while (cutoff < longest && useful(cutoff + 1)) ++cutoff;
    while (cutoff > 0 && !useful(cutoff)) --cutoff;
  }
  // A caller-certified lower bound above the cutoff decides pruning
  // without running the DP: the true distance is >= bound >= cutoff + 1,
  // which is exactly the certificate the banded program's early-out
  // reports. A sound bound never exceeds longest, so when pruning is
  // disabled (cutoff == longest) this branch cannot fire.
  if (external_lower_bound > cutoff) {
    return {static_cast<double>(cutoff + 1) /
                static_cast<double>(longest),
            true};
  }
  // Pinched bounds determine the distance outright: lower == upper means
  // the true distance IS that value, and it is <= cutoff (the lower-bound
  // branch above did not fire), so the banded program would have returned
  // exactly this.
  if (external_lower_bound == external_upper_bound &&
      external_upper_bound <= longest) {
    return {static_cast<double>(external_upper_bound) / denominator, false};
  }
  // A certified upper bound below the budget cutoff narrows the band to
  // the true distance's width: the result is in band by construction, so
  // the program below returns the exact distance either way.
  const std::size_t run_cutoff = std::min(cutoff, external_upper_bound);
  const BoundedDistance bounded = bounded_distance(run_cutoff);
  SENTINEL_CHECK(!bounded.exceeded || run_cutoff == cutoff)
      << "banded program exceeded a certified upper bound " << run_cutoff;
  if (!bounded.exceeded) {
    SENTINEL_CHECK(bounded.distance <= longest)
        << "edit distance " << bounded.distance
        << " exceeds longer fingerprint length " << longest;
    return {static_cast<double>(bounded.distance) / denominator, false};
  }
  // True distance >= cutoff + 1 and useful(cutoff + 1) is false, so the
  // candidate's score stays strictly above best whatever the exact value
  // is; report the certified normalized lower bound.
  return {static_cast<double>(cutoff + 1) / denominator, true};
}

}  // namespace

BoundedDistance BoundedEditDistance(std::span<const PacketFeatureVector> a,
                                    std::span<const PacketFeatureVector> b,
                                    std::size_t cutoff,
                                    EditDistanceScratch& scratch) {
  return BoundedEditDistanceImpl(a, b, cutoff, scratch);
}

BoundedDistance BoundedEditDistance(std::span<const std::uint32_t> a,
                                    std::span<const std::uint32_t> b,
                                    std::size_t cutoff,
                                    EditDistanceScratch& scratch) {
  return BoundedEditDistanceImpl(a, b, cutoff, scratch);
}

PrunedNormalized PrunedNormalizedEditDistance(const Fingerprint& a,
                                              const Fingerprint& b,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch) {
  return PrunedNormalizedImpl(
      std::max(a.size(), b.size()), 0,
      std::numeric_limits<std::size_t>::max(), partial_score, best_score,
      [&](std::size_t cutoff) {
        return BoundedEditDistanceImpl(
            std::span<const PacketFeatureVector>(a.packets()),
            std::span<const PacketFeatureVector>(b.packets()), cutoff,
            scratch);
      });
}

PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch) {
  return PrunedNormalizedImpl(
      std::max(a.size(), b.size()), 0,
      std::numeric_limits<std::size_t>::max(), partial_score, best_score,
      [&](std::size_t cutoff) {
        return BoundedEditDistanceImpl(a, b, cutoff, scratch);
      });
}

PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              std::size_t external_lower_bound,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch) {
  return PrunedNormalizedImpl(
      std::max(a.size(), b.size()), external_lower_bound,
      std::numeric_limits<std::size_t>::max(), partial_score, best_score,
      [&](std::size_t cutoff) {
        return BoundedEditDistanceImpl(a, b, cutoff, scratch);
      });
}

PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              std::size_t external_lower_bound,
                                              std::size_t external_upper_bound,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch) {
  return PrunedNormalizedImpl(
      std::max(a.size(), b.size()), external_lower_bound,
      external_upper_bound, partial_score, best_score,
      [&](std::size_t cutoff) {
        return BoundedEditDistanceImpl(a, b, cutoff, scratch);
      });
}

}  // namespace sentinel::features
