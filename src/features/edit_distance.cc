#include "features/edit_distance.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace sentinel::features {

std::size_t EditDistance(std::span<const PacketFeatureVector> a,
                         std::span<const PacketFeatureVector> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;

  // Three-row rolling OSA dynamic program: prev2 = d[i-2], prev = d[i-1],
  // cur = d[i].
  std::vector<std::size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;

  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1,        // deletion
                         cur[j - 1] + 1,     // insertion
                         prev[j - 1] + cost  // substitution
      });
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + cost);  // transposition
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double NormalizedEditDistance(const Fingerprint& a, const Fingerprint& b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  const std::size_t d = EditDistance(a.packets(), b.packets());
  // The OSA distance is bounded by the longer sequence length, so the
  // normalized value the tie-breaker ranks on is always in [0, 1].
  SENTINEL_CHECK(d <= longest)
      << "edit distance " << d << " exceeds longer fingerprint length "
      << longest;
  return static_cast<double>(d) / static_cast<double>(longest);
}

}  // namespace sentinel::features
