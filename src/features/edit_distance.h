// Damerau-Levenshtein edit distance over packet sequences (paper
// Sect. IV-B2): fingerprints F are compared as words whose characters are
// whole packet feature vectors; two characters are equal iff all 23
// features match. The variant implemented is optimal string alignment
// (insertion, deletion, substitution, immediate transposition), exactly the
// operation set the paper lists.
#pragma once

#include <cstddef>
#include <span>

#include "features/fingerprint.h"

namespace sentinel::features {

/// Absolute OSA edit distance between two packet sequences.
std::size_t EditDistance(std::span<const PacketFeatureVector> a,
                         std::span<const PacketFeatureVector> b);

/// Distance normalized by the length of the longer sequence, in [0, 1].
/// Two empty fingerprints have distance 0.
double NormalizedEditDistance(const Fingerprint& a, const Fingerprint& b);

}  // namespace sentinel::features
