// Damerau-Levenshtein edit distance over packet sequences (paper
// Sect. IV-B2): fingerprints F are compared as words whose characters are
// whole packet feature vectors; two characters are equal iff all 23
// features match. The variant implemented is optimal string alignment
// (insertion, deletion, substitution, immediate transposition), exactly the
// operation set the paper lists.
//
// Two implementations share the recurrence:
//  - EditDistance / NormalizedEditDistance: the reference full dynamic
//    program (allocates its rows per call).
//  - BoundedEditDistance / PrunedNormalizedEditDistance: the fast path —
//    a length-difference lower bound plus Ukkonen band pruning around the
//    diagonal (cells with |i - j| > cutoff cannot lie on any alignment of
//    cost <= cutoff because d(i, j) >= |i - j|), with caller-owned scratch
//    rows so repeated calls allocate nothing. When the distance is within
//    the cutoff the banded program returns the exact value (bit-identical
//    to the reference); otherwise it reports "exceeded" with a certified
//    lower bound, which is what lets the identifier's tie-break skip
//    reference fingerprints that cannot beat the current best candidate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "features/fingerprint.h"

namespace sentinel::features {

/// Absolute OSA edit distance between two packet sequences.
std::size_t EditDistance(std::span<const PacketFeatureVector> a,
                         std::span<const PacketFeatureVector> b);

/// Distance normalized by the length of the longer sequence, in [0, 1].
/// Two empty fingerprints have distance 0.
double NormalizedEditDistance(const Fingerprint& a, const Fingerprint& b);

/// Reusable dynamic-program rows for the bounded edit distance. One
/// workspace per thread; repeated calls reuse the grown capacity.
struct EditDistanceScratch {
  std::vector<std::size_t> prev2, prev, cur;
  /// Interned id forms of the two sequences (see PacketInterner).
  std::vector<std::uint32_t> ids_a, ids_b;
  /// Distinct unknown packets met during a read-only intern.
  std::vector<PacketFeatureVector> overflow;
  /// Per-id bit masks for the Myers pattern (see BuildMyersPattern).
  std::vector<std::uint64_t> peq;
};

/// Bit-parallel Levenshtein pattern: one position mask per id of the
/// pattern sequence. Because OSA only adds an operation (transposition)
/// to Levenshtein's set, Lev(a, b) is a certified UPPER bound on the OSA
/// distance — the serve path uses it to cap the banded OSA program's
/// cutoff, shrinking the band to the true distance's width while keeping
/// the in-band result exact.
///
/// Builds masks for `ids` (at most 64 elements) over the id space
/// [0, id_space); ids >= id_space are permitted in the pattern (they
/// simply never match any text id below id_space). Reuses scratch.peq.
/// Returns false (leaving scratch untouched) when ids.size() > 64.
bool BuildMyersPattern(std::span<const std::uint32_t> ids,
                       std::size_t id_space, EditDistanceScratch& scratch);

/// Sparse build for large id spaces: instead of zeroing all of peq it
/// relies on peq being all-zero at entry (the state ClearMyersPattern
/// restores), grows it zero-filled to id_space if needed, and ORs in only
/// the pattern ids' bits — O(|ids|) once peq has reached the space's
/// size. Callers must pair every successful build with a
/// ClearMyersPattern over the same ids before the next sparse build.
/// Returns false (leaving peq untouched) when ids.size() > 64.
bool BuildMyersPatternSparse(std::span<const std::uint32_t> ids,
                             std::size_t id_space,
                             EditDistanceScratch& scratch);

/// Zeroes the pattern ids' masks, restoring the all-zero invariant
/// BuildMyersPatternSparse depends on.
void ClearMyersPattern(std::span<const std::uint32_t> ids,
                       EditDistanceScratch& scratch);

/// Exact Levenshtein distance between the pattern prepared by the last
/// BuildMyersPattern on `scratch` (length `pattern_length`, which must
/// match) and `text`, whose ids must all lie below the id_space the
/// pattern was built with. O(|text|) word operations (Myers 1999 /
/// Hyyro 2001).
std::size_t MyersDistance(std::size_t pattern_length,
                          std::span<const std::uint32_t> text,
                          const EditDistanceScratch& scratch);

/// Maps packet feature vectors to dense ids such that two packets get the
/// same id iff they are equal — after interning, the edit-distance DP
/// compares single integers per cell instead of 23-word arrays (three
/// array comparisons per cell once transpositions are checked), without
/// changing any distance. Lookup is a linear scan: fingerprints hold at
/// most a few dozen distinct packets, where a scan over contiguous keys
/// beats hashing.
class PacketInterner {
 public:
  void Clear() {
    keys_.clear();
    slots_.clear();
    slot_mask_ = 0;
  }
  /// Appends unknown packets to the key table and writes one id per input
  /// packet. Ids from earlier Intern() calls on the same (un-Cleared)
  /// table stay valid and comparable. Invalidates a previous Freeze().
  void Intern(std::span<const PacketFeatureVector> packets,
              std::vector<std::uint32_t>& out);
  /// Builds an open-addressing hash index over the current key table so
  /// InternReadOnly does one expected-O(1) probe per packet instead of a
  /// linear scan over the keys. Ids are unchanged (every index hit is
  /// verified by full packet equality against the key it points at), so
  /// freezing is purely an access-path optimization. Call again after any
  /// further Intern().
  void Freeze();
  /// Lookup-only interning against the frozen table (the identifier
  /// pre-interns each type's references at bank-build time, then interns
  /// the probe this way per candidate — const, so concurrent probes can
  /// share the table). Packets absent from the table get consistent ids
  /// past its end, deduplicated through the caller's `overflow` scratch.
  void InternReadOnly(std::span<const PacketFeatureVector> packets,
                      std::vector<PacketFeatureVector>& overflow,
                      std::vector<std::uint32_t>& out) const;
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool frozen() const { return !slots_.empty(); }
  [[nodiscard]] std::size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(PacketFeatureVector) +
           slots_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::uint32_t LookupLinear(
      const PacketFeatureVector& packet) const;
  [[nodiscard]] std::uint32_t LookupIndexed(
      const PacketFeatureVector& packet) const;

  std::vector<PacketFeatureVector> keys_;
  /// Open-addressing index over keys_ (power-of-two size, linear probing,
  /// kEmptySlot marks free). Empty until Freeze().
  std::vector<std::uint32_t> slots_;
  std::uint32_t slot_mask_ = 0;
};

struct BoundedDistance {
  /// Exact OSA distance when !exceeded (bit-identical to EditDistance);
  /// a certified lower bound on it when exceeded.
  std::size_t distance = 0;
  /// True iff the true distance is > cutoff.
  bool exceeded = false;
};

/// Banded OSA distance: exact for distances <= cutoff, early-out
/// otherwise. cutoff >= max(a.size, b.size) degenerates to the full
/// (always-exact) program.
BoundedDistance BoundedEditDistance(std::span<const PacketFeatureVector> a,
                                    std::span<const PacketFeatureVector> b,
                                    std::size_t cutoff,
                                    EditDistanceScratch& scratch);

/// Same program over interned id sequences (see PacketInterner): both
/// spans must have been interned against one shared table, making id
/// equality equivalent to packet equality — the returned distance is then
/// identical to the packet-level one.
BoundedDistance BoundedEditDistance(std::span<const std::uint32_t> a,
                                    std::span<const std::uint32_t> b,
                                    std::size_t cutoff,
                                    EditDistanceScratch& scratch);

struct PrunedNormalized {
  /// !pruned: bit-identical to NormalizedEditDistance(a, b). pruned: a
  /// certified lower bound L on it such that fl(partial_score + L) >
  /// best_score under the caller's left-to-right summation — adding it to
  /// the candidate's running score provably keeps the candidate above the
  /// best score, ties included.
  double value = 0.0;
  bool pruned = false;
};

/// Normalized edit distance with tie-break budget pruning. The caller is
/// accumulating `partial_score` (sum of earlier reference distances, all
/// >= 0) for a candidate competing against `best_score`; this reference
/// can only matter if the candidate's final score could still be <=
/// best_score. The cutoff translation into the integer distance domain is
/// done with the exact floating-point comparisons the caller will perform
/// (monotone in the distance), so the pruning decision is certain: a
/// pruned reference could never have produced a score <= best_score, and
/// in particular never a tie (the identifier's tie-break RNG stream is
/// therefore unchanged). best_score = +infinity disables pruning.
PrunedNormalized PrunedNormalizedEditDistance(const Fingerprint& a,
                                              const Fingerprint& b,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch);

/// Id-sequence variant, for callers that interned both fingerprints
/// against one shared PacketInterner table (the identifier pre-interns
/// each type's references once and the probe per candidate via
/// InternReadOnly). Contract is identical to the fingerprint overload; id
/// sequences preserve lengths, so normalization divides by the same
/// longer length.
PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch);

/// Id-sequence variant taking an additional caller-certified lower bound
/// on the absolute (unnormalized) distance — e.g. the bag bound
/// max(n, m) - |multiset intersection|, valid for OSA because every kept
/// element of an alignment consumes one occurrence from each side while
/// insertions and substitutions each cost 1. When the bound alone already
/// exceeds the budget-derived cutoff the DP is skipped entirely and the
/// same certified normalized bound the banded program would report is
/// returned; otherwise behaves exactly like the overload above (in
/// particular, every non-pruned value is bit-identical). An unsound
/// `external_lower_bound` (one exceeding the true distance) would break
/// the pruning certificate — callers own that proof. Pass 0 to disable.
PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              std::size_t external_lower_bound,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch);

/// Doubly-bounded variant: additionally takes a caller-certified UPPER
/// bound on the absolute distance (e.g. the Levenshtein distance from
/// MyersDistance, which OSA can only improve on). The banded program's
/// cutoff is capped at the upper bound — the true distance is in band by
/// construction, so the band narrows to the distance's actual width with
/// the result still exact. Pruning semantics are unchanged: a reference
/// is skipped with a certified bound exactly when the lower bound clears
/// the budget-derived cutoff, and every non-pruned value is bit-identical
/// to NormalizedEditDistance. Requires lower <= true distance <= upper.
PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              std::size_t external_lower_bound,
                                              std::size_t external_upper_bound,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch);

}  // namespace sentinel::features
