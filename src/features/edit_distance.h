// Damerau-Levenshtein edit distance over packet sequences (paper
// Sect. IV-B2): fingerprints F are compared as words whose characters are
// whole packet feature vectors; two characters are equal iff all 23
// features match. The variant implemented is optimal string alignment
// (insertion, deletion, substitution, immediate transposition), exactly the
// operation set the paper lists.
//
// Two implementations share the recurrence:
//  - EditDistance / NormalizedEditDistance: the reference full dynamic
//    program (allocates its rows per call).
//  - BoundedEditDistance / PrunedNormalizedEditDistance: the fast path —
//    a length-difference lower bound plus Ukkonen band pruning around the
//    diagonal (cells with |i - j| > cutoff cannot lie on any alignment of
//    cost <= cutoff because d(i, j) >= |i - j|), with caller-owned scratch
//    rows so repeated calls allocate nothing. When the distance is within
//    the cutoff the banded program returns the exact value (bit-identical
//    to the reference); otherwise it reports "exceeded" with a certified
//    lower bound, which is what lets the identifier's tie-break skip
//    reference fingerprints that cannot beat the current best candidate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "features/fingerprint.h"

namespace sentinel::features {

/// Absolute OSA edit distance between two packet sequences.
std::size_t EditDistance(std::span<const PacketFeatureVector> a,
                         std::span<const PacketFeatureVector> b);

/// Distance normalized by the length of the longer sequence, in [0, 1].
/// Two empty fingerprints have distance 0.
double NormalizedEditDistance(const Fingerprint& a, const Fingerprint& b);

/// Reusable dynamic-program rows for the bounded edit distance. One
/// workspace per thread; repeated calls reuse the grown capacity.
struct EditDistanceScratch {
  std::vector<std::size_t> prev2, prev, cur;
  /// Interned id forms of the two sequences (see PacketInterner).
  std::vector<std::uint32_t> ids_a, ids_b;
  /// Distinct unknown packets met during a read-only intern.
  std::vector<PacketFeatureVector> overflow;
};

/// Maps packet feature vectors to dense ids such that two packets get the
/// same id iff they are equal — after interning, the edit-distance DP
/// compares single integers per cell instead of 23-word arrays (three
/// array comparisons per cell once transpositions are checked), without
/// changing any distance. Lookup is a linear scan: fingerprints hold at
/// most a few dozen distinct packets, where a scan over contiguous keys
/// beats hashing.
class PacketInterner {
 public:
  void Clear() { keys_.clear(); }
  /// Appends unknown packets to the key table and writes one id per input
  /// packet. Ids from earlier Intern() calls on the same (un-Cleared)
  /// table stay valid and comparable.
  void Intern(std::span<const PacketFeatureVector> packets,
              std::vector<std::uint32_t>& out);
  /// Lookup-only interning against the frozen table (the identifier
  /// pre-interns each type's references at bank-build time, then interns
  /// the probe this way per candidate — const, so concurrent probes can
  /// share the table). Packets absent from the table get consistent ids
  /// past its end, deduplicated through the caller's `overflow` scratch.
  void InternReadOnly(std::span<const PacketFeatureVector> packets,
                      std::vector<PacketFeatureVector>& overflow,
                      std::vector<std::uint32_t>& out) const;
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] std::size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(PacketFeatureVector);
  }

 private:
  std::vector<PacketFeatureVector> keys_;
};

struct BoundedDistance {
  /// Exact OSA distance when !exceeded (bit-identical to EditDistance);
  /// a certified lower bound on it when exceeded.
  std::size_t distance = 0;
  /// True iff the true distance is > cutoff.
  bool exceeded = false;
};

/// Banded OSA distance: exact for distances <= cutoff, early-out
/// otherwise. cutoff >= max(a.size, b.size) degenerates to the full
/// (always-exact) program.
BoundedDistance BoundedEditDistance(std::span<const PacketFeatureVector> a,
                                    std::span<const PacketFeatureVector> b,
                                    std::size_t cutoff,
                                    EditDistanceScratch& scratch);

/// Same program over interned id sequences (see PacketInterner): both
/// spans must have been interned against one shared table, making id
/// equality equivalent to packet equality — the returned distance is then
/// identical to the packet-level one.
BoundedDistance BoundedEditDistance(std::span<const std::uint32_t> a,
                                    std::span<const std::uint32_t> b,
                                    std::size_t cutoff,
                                    EditDistanceScratch& scratch);

struct PrunedNormalized {
  /// !pruned: bit-identical to NormalizedEditDistance(a, b). pruned: a
  /// certified lower bound L on it such that fl(partial_score + L) >
  /// best_score under the caller's left-to-right summation — adding it to
  /// the candidate's running score provably keeps the candidate above the
  /// best score, ties included.
  double value = 0.0;
  bool pruned = false;
};

/// Normalized edit distance with tie-break budget pruning. The caller is
/// accumulating `partial_score` (sum of earlier reference distances, all
/// >= 0) for a candidate competing against `best_score`; this reference
/// can only matter if the candidate's final score could still be <=
/// best_score. The cutoff translation into the integer distance domain is
/// done with the exact floating-point comparisons the caller will perform
/// (monotone in the distance), so the pruning decision is certain: a
/// pruned reference could never have produced a score <= best_score, and
/// in particular never a tie (the identifier's tie-break RNG stream is
/// therefore unchanged). best_score = +infinity disables pruning.
PrunedNormalized PrunedNormalizedEditDistance(const Fingerprint& a,
                                              const Fingerprint& b,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch);

/// Id-sequence variant, for callers that interned both fingerprints
/// against one shared PacketInterner table (the identifier pre-interns
/// each type's references once and the probe per candidate via
/// InternReadOnly). Contract is identical to the fingerprint overload; id
/// sequences preserve lengths, so normalization divides by the same
/// longer length.
PrunedNormalized PrunedNormalizedEditDistance(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b,
                                              double partial_score,
                                              double best_score,
                                              EditDistanceScratch& scratch);

}  // namespace sentinel::features
