#include "features/fingerprint.h"

#include <algorithm>

namespace sentinel::features {

Fingerprint Fingerprint::FromPacketVectors(
    const std::vector<PacketFeatureVector>& vectors) {
  Fingerprint fp;
  fp.packets_.reserve(vectors.size());
  for (const auto& v : vectors) {
    if (!fp.packets_.empty() && fp.packets_.back() == v) continue;
    fp.packets_.push_back(v);
  }
  return fp;
}

Fingerprint Fingerprint::FromPackets(
    const std::vector<net::ParsedPacket>& packets) {
  return FromPacketVectors(FeatureExtractor::ExtractAll(packets));
}

FixedFingerprint FixedFingerprint::FromFingerprint(
    const Fingerprint& fingerprint) {
  FixedFingerprint out;
  std::vector<const PacketFeatureVector*> unique;
  unique.reserve(kFPrimePackets);
  for (const auto& packet : fingerprint.packets()) {
    const bool seen =
        std::any_of(unique.begin(), unique.end(),
                    [&](const PacketFeatureVector* u) { return *u == packet; });
    if (seen) continue;
    unique.push_back(&packet);
    if (unique.size() == kFPrimePackets) break;
  }
  for (std::size_t i = 0; i < unique.size(); ++i) {
    for (std::size_t j = 0; j < kFeatureCount; ++j) {
      out.values_[i * kFeatureCount + j] = static_cast<double>((*unique[i])[j]);
    }
  }
  out.packet_count_ = unique.size();
  return out;
}

}  // namespace sentinel::features
