#include "features/fingerprint.h"

#include <algorithm>

#include "util/check.h"

namespace sentinel::features {

Fingerprint Fingerprint::FromPacketVectors(
    const std::vector<PacketFeatureVector>& vectors) {
  Fingerprint fp;
  fp.packets_.reserve(vectors.size());
  for (const auto& v : vectors) {
    if (!fp.packets_.empty() && fp.packets_.back() == v) continue;
    fp.packets_.push_back(v);
  }
  // Duplicate removal is monotone: it never grows the sequence, and the
  // result has no consecutive duplicates (pi != pi+1, paper Sect. IV-A).
  SENTINEL_CHECK(fp.packets_.size() <= vectors.size())
      << "duplicate removal grew the fingerprint: " << vectors.size()
      << " -> " << fp.packets_.size();
  SENTINEL_DCHECK(std::adjacent_find(fp.packets_.begin(), fp.packets_.end()) ==
                  fp.packets_.end())
      << "consecutive duplicate survived FromPacketVectors";
  return fp;
}

Fingerprint Fingerprint::FromPackets(
    const std::vector<net::ParsedPacket>& packets) {
  return FromPacketVectors(FeatureExtractor::ExtractAll(packets));
}

FixedFingerprint FixedFingerprint::FromFingerprint(
    const Fingerprint& fingerprint) {
  FixedFingerprint out;
  std::vector<const PacketFeatureVector*> unique;
  unique.reserve(kFPrimePackets);
  for (const auto& packet : fingerprint.packets()) {
    const bool seen =
        std::any_of(unique.begin(), unique.end(),
                    [&](const PacketFeatureVector* u) { return *u == packet; });
    if (seen) continue;
    unique.push_back(&packet);
    if (unique.size() == kFPrimePackets) break;
  }
  SENTINEL_CHECK(unique.size() <= kFPrimePackets)
      << "F' holds at most " << kFPrimePackets << " unique packets, got "
      << unique.size();
  for (std::size_t i = 0; i < unique.size(); ++i) {
    for (std::size_t j = 0; j < kFeatureCount; ++j) {
      out.values_[i * kFeatureCount + j] = static_cast<double>((*unique[i])[j]);
    }
  }
  out.packet_count_ = unique.size();
  // F' is exactly kFPrimeDim wide with zero padding past the encoded
  // packets (the classifier bank depends on the fixed width).
  static_assert(kFPrimeDim == kFPrimePackets * kFeatureCount);
  SENTINEL_DCHECK(std::all_of(
      out.values_.begin() +
          static_cast<std::ptrdiff_t>(unique.size() * kFeatureCount),
      out.values_.end(), [](double v) { return v == 0.0; }))
      << "F' padding not zeroed";
  return out;
}

}  // namespace sentinel::features
