// Device fingerprints (paper Sect. IV-A).
//
// F  — variable-length fingerprint: the sequence of per-packet feature
//      vectors of the setup phase, with consecutive duplicates removed.
// F' — fixed-length fingerprint: the first kFPrimePackets (12) *unique*
//      packet vectors of F concatenated into a 276-value vector,
//      zero-padded when F has fewer unique packets.
#pragma once

#include <cstdint>
#include <vector>

#include "features/packet_features.h"

namespace sentinel::features {

/// Number of packets concatenated into F' (paper: 12 — "long enough to
/// distinguish device-types and short enough to be fully filled").
inline constexpr std::size_t kFPrimePackets = 12;
/// Dimensionality of F' (12 packets x 23 features).
inline constexpr std::size_t kFPrimeDim = kFPrimePackets * kFeatureCount;

/// Variable-length fingerprint F.
class Fingerprint {
 public:
  Fingerprint() = default;

  /// Builds F from raw per-packet vectors, dropping each packet that equals
  /// its immediate predecessor (pi == pi+1 in the paper's notation).
  static Fingerprint FromPacketVectors(
      const std::vector<PacketFeatureVector>& vectors);

  /// Builds F directly from a device's parsed setup-phase packets.
  static Fingerprint FromPackets(
      const std::vector<net::ParsedPacket>& packets);

  [[nodiscard]] const std::vector<PacketFeatureVector>& packets() const {
    return packets_;
  }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

 private:
  std::vector<PacketFeatureVector> packets_;
};

/// Fixed-length fingerprint F' as a flat numeric vector usable by standard
/// machine-learning algorithms.
class FixedFingerprint {
 public:
  FixedFingerprint() { values_.fill(0.0); }

  /// Derives F' from F: concatenates the first 12 *unique* packet vectors
  /// (uniqueness over the whole prefix, not just consecutive) and pads with
  /// zeros if fewer exist.
  static FixedFingerprint FromFingerprint(const Fingerprint& fingerprint);

  [[nodiscard]] const std::array<double, kFPrimeDim>& values() const {
    return values_;
  }
  [[nodiscard]] std::vector<double> ToVector() const {
    return {values_.begin(), values_.end()};
  }
  /// Number of real (non-padding) packets encoded.
  [[nodiscard]] std::size_t packet_count() const { return packet_count_; }

  friend bool operator==(const FixedFingerprint&,
                         const FixedFingerprint&) = default;

 private:
  std::array<double, kFPrimeDim> values_{};
  std::size_t packet_count_ = 0;
};

}  // namespace sentinel::features
