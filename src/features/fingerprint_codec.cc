#include "features/fingerprint_codec.h"

#include <limits>

#include "util/check.h"

namespace sentinel::features {

namespace {
constexpr std::uint8_t kVersion = 1;

void WriteMagic(net::ByteWriter& w, char a, char b, char c) {
  w.WriteU8(static_cast<std::uint8_t>(a));
  w.WriteU8(static_cast<std::uint8_t>(b));
  w.WriteU8(static_cast<std::uint8_t>(c));
  w.WriteU8(kVersion);
}

void ExpectMagic(net::ByteReader& r, char a, char b, char c,
                 const char* what) {
  if (r.ReadU8() != static_cast<std::uint8_t>(a) ||
      r.ReadU8() != static_cast<std::uint8_t>(b) ||
      r.ReadU8() != static_cast<std::uint8_t>(c)) {
    throw net::CodecError(std::string("bad magic for ") + what);
  }
  const std::uint8_t version = r.ReadU8();
  if (version != kVersion)
    throw net::CodecError(std::string("unsupported ") + what + " version " +
                          std::to_string(version));
}
}  // namespace

void EncodeFingerprint(net::ByteWriter& w, const Fingerprint& fingerprint) {
  if (fingerprint.size() > std::numeric_limits<std::uint16_t>::max())
    throw net::CodecError("fingerprint too long to encode: " +
                          std::to_string(fingerprint.size()) + " packets");
  WriteMagic(w, 'S', 'F', 'P');
  w.WriteU16(static_cast<std::uint16_t>(fingerprint.size()));
  for (const auto& packet : fingerprint.packets())
    for (const auto value : packet) w.WriteU32(value);
}

Fingerprint DecodeFingerprint(net::ByteReader& r) {
  ExpectMagic(r, 'S', 'F', 'P', "fingerprint");
  const std::uint16_t count = r.ReadU16();
  // Reject truncated input before sizing buffers from the (untrusted)
  // count, so a 7-byte hostile message cannot cost a multi-megabyte
  // allocation.
  const std::size_t need =
      std::size_t{count} * kFeatureCount * sizeof(std::uint32_t);
  if (r.remaining() < need)
    throw net::CodecError("fingerprint truncated: need " +
                          std::to_string(need) + " bytes, have " +
                          std::to_string(r.remaining()));
  std::vector<PacketFeatureVector> packets(count);
  for (auto& packet : packets)
    for (auto& value : packet) value = r.ReadU32();
  // Construct without re-deduplication: the encoded form is already F.
  // FromPacketVectors would drop legitimately repeated (non-consecutive)
  // packets only if consecutive — encoded F has no consecutive duplicates
  // by construction, so the round trip is exact.
  return Fingerprint::FromPacketVectors(packets);
}

void EncodeFixedFingerprint(net::ByteWriter& w,
                            const FixedFingerprint& fixed) {
  SENTINEL_CHECK(fixed.packet_count() <= kFPrimePackets)
      << "F' encodes at most " << kFPrimePackets << " packets, got "
      << fixed.packet_count();
  WriteMagic(w, 'S', 'F', 'X');
  w.WriteU16(static_cast<std::uint16_t>(fixed.packet_count()));
  for (const double value : fixed.values())
    w.WriteU32(static_cast<std::uint32_t>(value));
}

FixedFingerprint DecodeFixedFingerprint(net::ByteReader& r) {
  ExpectMagic(r, 'S', 'F', 'X', "fixed fingerprint");
  const std::uint16_t count = r.ReadU16();
  // A hostile count above kFPrimePackets would index past the fixed
  // kFPrimeDim value block below — reject it as malformed input.
  if (count > kFPrimePackets)
    throw net::CodecError("fixed fingerprint claims " + std::to_string(count) +
                          " packets; F' holds at most " +
                          std::to_string(kFPrimePackets));
  // Rebuild through a synthetic Fingerprint so invariants (packet_count,
  // padding) are re-established by the same code path used everywhere.
  std::vector<PacketFeatureVector> packets(count);
  std::array<double, kFPrimeDim> values{};
  for (auto& value : values) value = r.ReadU32();
  for (std::size_t p = 0; p < count; ++p) {
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      SENTINEL_DCHECK_BOUNDS(p * kFeatureCount + f, values.size());
      packets[p][f] =
          static_cast<std::uint32_t>(values[p * kFeatureCount + f]);
    }
  }
  return FixedFingerprint::FromFingerprint(
      Fingerprint::FromPacketVectors(packets));
}

std::vector<std::uint8_t> SerializeFingerprint(const Fingerprint& fingerprint) {
  net::ByteWriter w;
  EncodeFingerprint(w, fingerprint);
  return std::move(w).Take();
}

Fingerprint ParseFingerprint(std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  return DecodeFingerprint(r);
}

}  // namespace sentinel::features
