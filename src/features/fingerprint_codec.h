// Wire serialization for fingerprints. The Security Gateway "sends device
// fingerprints to the IoT Security Service for identification" (paper
// Sect. III-A); this is the compact, versioned binary format that crosses
// that boundary (and persists fingerprints to disk for offline training).
//
// Format (big-endian):
//   Fingerprint F:        magic 'S''F''P' ver(1) | u16 packet_count |
//                         packet_count x 23 x u32
//   FixedFingerprint F':  magic 'S''F''X' ver(1) | u16 packet_count |
//                         276 x u32 (values are integral by construction)
#pragma once

#include <vector>

#include "features/fingerprint.h"
#include "net/byte_io.h"

namespace sentinel::features {

void EncodeFingerprint(net::ByteWriter& w, const Fingerprint& fingerprint);
Fingerprint DecodeFingerprint(net::ByteReader& r);

void EncodeFixedFingerprint(net::ByteWriter& w, const FixedFingerprint& fixed);
FixedFingerprint DecodeFixedFingerprint(net::ByteReader& r);

/// Convenience one-shot helpers.
std::vector<std::uint8_t> SerializeFingerprint(const Fingerprint& fingerprint);
Fingerprint ParseFingerprint(std::span<const std::uint8_t> bytes);

}  // namespace sentinel::features
