#include "features/packet_features.h"

#include "util/check.h"

namespace sentinel::features {

std::string FeatureName(std::size_t i) {
  static constexpr const char* kNames[kFeatureCount] = {
      "ARP",     "LLC",        "IP",           "ICMP",
      "ICMPv6",  "EAPoL",      "TCP",          "UDP",
      "HTTP",    "HTTPS",      "DHCP",         "BOOTP",
      "SSDP",    "DNS",        "MDNS",         "NTP",
      "ip_padding", "ip_router_alert", "packet_size", "raw_data",
      "dest_ip_counter", "src_port_class", "dst_port_class"};
  return i < kFeatureCount ? kNames[i] : "?";
}

PacketFeatureVector FeatureExtractor::Extract(const net::ParsedPacket& p) {
  PacketFeatureVector f{};
  // The 16 protocol flags share numbering with net::Protocol, and every
  // named index must land inside the 23-wide Table I vector.
  static_assert(static_cast<std::size_t>(net::kProtocolCount) <= kFeatureCount,
                "protocol flags exceed the packet feature vector");
  static_assert(kFeatDstPortClass == kFeatureCount - 1,
                "feature indices out of sync with kFeatureCount");
  for (std::size_t i = 0; i < static_cast<std::size_t>(net::kProtocolCount);
       ++i) {
    f[i] = p.protocols.Has(static_cast<net::Protocol>(i)) ? 1u : 0u;
  }
  f[kFeatIpPadding] = p.ip_opt_padding ? 1u : 0u;
  f[kFeatIpRouterAlert] = p.ip_opt_router_alert ? 1u : 0u;
  f[kFeatPacketSize] = p.size_bytes;
  f[kFeatRawData] = p.has_raw_data ? 1u : 0u;

  if (p.dst_ip.has_value()) {
    auto [it, inserted] = destination_order_.try_emplace(
        *p.dst_ip, static_cast<std::uint32_t>(destination_order_.size() + 1));
    f[kFeatDestIpCounter] = it->second;
  } else {
    f[kFeatDestIpCounter] = 0;
  }

  f[kFeatSrcPortClass] =
      p.src_port ? static_cast<std::uint32_t>(net::ClassifyPort(*p.src_port))
                 : 0u;
  f[kFeatDstPortClass] =
      p.dst_port ? static_cast<std::uint32_t>(net::ClassifyPort(*p.dst_port))
                 : 0u;
  return f;
}

std::vector<PacketFeatureVector> FeatureExtractor::ExtractAll(
    const std::vector<net::ParsedPacket>& packets) {
  FeatureExtractor extractor;
  std::vector<PacketFeatureVector> out;
  out.reserve(packets.size());
  for (const auto& p : packets) out.push_back(extractor.Extract(p));
  return out;
}

}  // namespace sentinel::features
