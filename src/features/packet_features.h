// The 23 per-packet features of Table I and the stateful extractor that
// computes them over a device's setup-phase packet stream.
//
// Feature order (normative, used by F and F'):
//   0 ARP    1 LLC    2 IP     3 ICMP   4 ICMPv6  5 EAPoL
//   6 TCP    7 UDP    8 HTTP   9 HTTPS 10 DHCP   11 BOOTP
//  12 SSDP  13 DNS   14 MDNS  15 NTP   16 ip_padding  17 ip_router_alert
//  18 packet_size (int)       19 raw_data
//  20 dest_ip_counter (int)   21 src_port_class  22 dst_port_class
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"

namespace sentinel::features {

inline constexpr std::size_t kFeatureCount = 23;

/// One packet's feature vector. All features are stored as unsigned
/// integers; binary features take values {0,1}.
using PacketFeatureVector = std::array<std::uint32_t, kFeatureCount>;

/// Indices into PacketFeatureVector. The first 16 match the Protocol enum.
enum FeatureIndex : std::size_t {
  kFeatArp = 0,
  kFeatLlc,
  kFeatIp,
  kFeatIcmp,
  kFeatIcmpv6,
  kFeatEapol,
  kFeatTcp,
  kFeatUdp,
  kFeatHttp,
  kFeatHttps,
  kFeatDhcp,
  kFeatBootp,
  kFeatSsdp,
  kFeatDns,
  kFeatMdns,
  kFeatNtp,
  kFeatIpPadding,
  kFeatIpRouterAlert,
  kFeatPacketSize,
  kFeatRawData,
  kFeatDestIpCounter,
  kFeatSrcPortClass,
  kFeatDstPortClass,
};

/// Human-readable feature name for index `i` (used by reports and docs).
std::string FeatureName(std::size_t i);

/// Computes Table I feature vectors for a single device's packet stream.
///
/// The extractor is stateful: the destination-IP counter maps each distinct
/// destination address to the order in which the device first contacted it
/// (1, 2, 3, ...), so extraction must see packets in capture order and one
/// extractor must be used per device per setup episode.
class FeatureExtractor {
 public:
  FeatureExtractor() = default;

  /// Extracts the feature vector for the next packet of this device.
  PacketFeatureVector Extract(const net::ParsedPacket& packet);

  /// Convenience: extracts all packets in order with a fresh counter.
  static std::vector<PacketFeatureVector> ExtractAll(
      const std::vector<net::ParsedPacket>& packets);

  /// Number of distinct destination IPs seen so far.
  [[nodiscard]] std::size_t distinct_destinations() const {
    return destination_order_.size();
  }

 private:
  std::unordered_map<net::IpAddress, std::uint32_t> destination_order_;
};

}  // namespace sentinel::features
