#include "ml/cross_validation.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/trace.h"

namespace sentinel::ml {

std::vector<Fold> StratifiedKFold(const std::vector<int>& labels,
                                  std::size_t k, Rng& rng) {
  if (k < 2) throw std::invalid_argument("StratifiedKFold: k must be >= 2");
  if (labels.empty())
    throw std::invalid_argument("StratifiedKFold: empty labels");

  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[labels[i]].push_back(i);

  // Deal each class round-robin into fold test sets.
  std::vector<std::vector<std::size_t>> test_sets(k);
  std::size_t deal = 0;
  for (auto& [label, indices] : by_class) {
    std::shuffle(indices.begin(), indices.end(), rng);
    for (std::size_t i : indices) {
      test_sets[deal % k].push_back(i);
      ++deal;
    }
  }

  std::vector<Fold> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    folds[f].test_indices = test_sets[f];
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    test_sets[g].begin(), test_sets[g].end());
    }
  }
  return folds;
}

void ForEachFold(const std::vector<Fold>& folds, util::ThreadPool* pool,
                 const std::function<void(std::size_t)>& fn) {
  // Carry any active trace context into the pool workers so the per-fold
  // training/evaluation spans nest under the caller's span (e.g. the
  // `sentinel_evaluate` root opened by `sentinelctl evaluate --trace-out`).
  const obs::TraceContext trace_parent = obs::CurrentTraceContext();
  util::ParallelFor(pool, folds.size(), [&](std::size_t f) {
    obs::ScopedTraceContext trace_carry(trace_parent);
    fn(f);
  });
}

}  // namespace sentinel::ml
