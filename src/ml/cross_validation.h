// Stratified k-fold splitting, matching the paper's evaluation protocol
// (stratified 10-fold cross-validation, repeated 10 times).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/rng.h"

namespace sentinel::ml {

/// One fold: disjoint index sets into the original dataset.
struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Produces `k` stratified folds over examples with the given labels: each
/// class's examples are shuffled and dealt round-robin across folds, so
/// every fold has (as nearly as possible) the same class mix.
/// Throws std::invalid_argument for k < 2 or empty labels.
std::vector<Fold> StratifiedKFold(const std::vector<int>& labels,
                                  std::size_t k, Rng& rng);

}  // namespace sentinel::ml
