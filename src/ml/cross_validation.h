// Stratified k-fold splitting, matching the paper's evaluation protocol
// (stratified 10-fold cross-validation, repeated 10 times).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ml/rng.h"
#include "util/thread_pool.h"

namespace sentinel::ml {

/// One fold: disjoint index sets into the original dataset.
struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Produces `k` stratified folds over examples with the given labels: each
/// class's examples are shuffled and dealt round-robin across folds, so
/// every fold has (as nearly as possible) the same class mix.
/// Throws std::invalid_argument for k < 2 or empty labels.
std::vector<Fold> StratifiedKFold(const std::vector<int>& labels,
                                  std::size_t k, Rng& rng);

/// Runs fn(fold_index) for every fold, in parallel on `pool` when provided
/// (nullptr = sequential, in fold order). Folds are independent by
/// construction, so `fn` must only write per-fold state; callers merge the
/// per-fold results in fold order after this returns, which keeps repeated
/// runs (and N-thread vs 1-thread runs) identical.
void ForEachFold(const std::vector<Fold>& folds, util::ThreadPool* pool,
                 const std::function<void(std::size_t)>& fn);

}  // namespace sentinel::ml
