// Tabular dataset container for the classifiers: dense double feature rows
// plus integer class labels.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace sentinel::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : feature_count_(feature_count) {}

  /// Appends one labelled example. Throws std::invalid_argument if the row
  /// width disagrees with the dataset's feature count.
  void Add(std::vector<double> row, int label) {
    if (feature_count_ == 0) feature_count_ = row.size();
    if (row.size() != feature_count_)
      throw std::invalid_argument("row width mismatch");
    rows_.push_back(std::move(row));
    labels_.push_back(label);
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] std::size_t feature_count() const { return feature_count_; }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }

  /// Largest label value + 1 (0 for an empty dataset).
  [[nodiscard]] int class_count() const {
    int max_label = -1;
    for (int l : labels_)
      if (l > max_label) max_label = l;
    return max_label + 1;
  }

 private:
  std::size_t feature_count_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

}  // namespace sentinel::ml
