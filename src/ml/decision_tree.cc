#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "util/check.h"

namespace sentinel::ml {

namespace {

double GiniFromCounts(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::Train(const Dataset& data,
                         std::span<const std::size_t> indices,
                         const DecisionTreeConfig& config, Rng& rng) {
  nodes_.clear();
  leaf_probas_.clear();
  depth_ = 0;
  class_count_ = data.class_count();
  if (class_count_ < 1 || indices.empty())
    throw std::invalid_argument("DecisionTree::Train: empty training set");
  importances_.assign(data.feature_count(), 0.0);
  total_training_samples_ = indices.size();
  std::vector<std::size_t> idx(indices.begin(), indices.end());
  BuildScratch scratch;
  scratch.values.reserve(idx.size());
  scratch.left_counts.resize(static_cast<std::size_t>(class_count_));
  scratch.total_counts.resize(static_cast<std::size_t>(class_count_));
  scratch.leaf_counts.resize(static_cast<std::size_t>(class_count_));
  scratch.features.resize(data.feature_count());
  Build(data, idx, 0, idx.size(), config, 0, rng, scratch);
  double sum = 0.0;
  for (const double v : importances_) sum += v;
  if (sum > 0.0) {
    for (double& v : importances_) v /= sum;
  }
}

void DecisionTree::Train(const Dataset& data, const DecisionTreeConfig& config,
                         Rng& rng) {
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Train(data, idx, config, rng);
}

std::int32_t DecisionTree::MakeLeaf(const Dataset& data,
                                    std::span<const std::size_t> idx,
                                    BuildScratch& scratch) {
  Node leaf;
  leaf.proba_offset = static_cast<std::int32_t>(leaf_probas_.size());
  auto& counts = scratch.leaf_counts;
  std::fill(counts.begin(), counts.end(), std::size_t{0});
  for (std::size_t i : idx) counts[static_cast<std::size_t>(data.label(i))]++;
  std::size_t best = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    leaf_probas_.push_back(static_cast<double>(counts[c]) /
                           static_cast<double>(idx.size()));
    if (counts[c] > counts[best]) best = c;
  }
  leaf.majority = static_cast<std::int32_t>(best);
  nodes_.push_back(leaf);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::int32_t DecisionTree::Build(const Dataset& data,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 const DecisionTreeConfig& config,
                                 std::size_t depth, Rng& rng,
                                 BuildScratch& scratch) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;
  auto idx = std::span<const std::size_t>(indices).subspan(begin, n);

  // Stopping conditions: purity, depth, sample minimums.
  bool pure = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (data.label(idx[i]) != data.label(idx[0])) {
      pure = false;
      break;
    }
  }
  if (pure || n < config.min_samples_split ||
      (config.max_depth != 0 && depth >= config.max_depth)) {
    return MakeLeaf(data, idx, scratch);
  }

  const std::size_t d = data.feature_count();
  std::size_t mtry = config.max_features;
  if (mtry == 0)
    mtry = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(d))));
  mtry = std::min(mtry, d);

  // Sample mtry distinct candidate features (partial Fisher-Yates).
  auto& features = scratch.features;
  std::iota(features.begin(), features.end(), std::size_t{0});
  for (std::size_t i = 0; i < mtry; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, d - 1);
    std::swap(features[i], features[pick(rng)]);
  }

  struct BestSplit {
    double gain = -1.0;
    std::size_t feature = 0;
    double threshold = 0.0;
  } best;

  const std::size_t k = static_cast<std::size_t>(class_count_);
  auto& total_counts = scratch.total_counts;
  std::fill(total_counts.begin(), total_counts.end(), std::size_t{0});
  for (std::size_t i : idx) total_counts[static_cast<std::size_t>(data.label(i))]++;
  const double parent_gini = GiniFromCounts(total_counts, n);

  auto& values = scratch.values;  // (feature value, label)
  values.resize(n);
  auto& left_counts = scratch.left_counts;

  for (std::size_t fi = 0; fi < mtry; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < n; ++i)
      values[i] = {data.row(idx[i])[f], data.label(idx[i])};
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
    std::size_t n_left = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_counts[static_cast<std::size_t>(values[i].second)]++;
      ++n_left;
      if (values[i].first == values[i + 1].first) continue;
      if (n_left < config.min_samples_leaf ||
          n - n_left < config.min_samples_leaf)
        continue;
      // Gini of the right side from totals minus left.
      double right_sum_sq = 0.0, left_sum_sq = 0.0;
      const std::size_t n_right = n - n_left;
      for (std::size_t c = 0; c < k; ++c) {
        const double pl =
            static_cast<double>(left_counts[c]) / static_cast<double>(n_left);
        const double pr =
            static_cast<double>(total_counts[c] - left_counts[c]) /
            static_cast<double>(n_right);
        left_sum_sq += pl * pl;
        right_sum_sq += pr * pr;
      }
      const double gini_left = 1.0 - left_sum_sq;
      const double gini_right = 1.0 - right_sum_sq;
      const double weighted =
          (static_cast<double>(n_left) * gini_left +
           static_cast<double>(n_right) * gini_right) /
          static_cast<double>(n);
      const double gain = parent_gini - weighted;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = f;
        best.threshold = (values[i].first + values[i + 1].first) / 2.0;
      }
    }
  }

  // Accept zero-gain splits (gain == 0 with a valid threshold): XOR-like
  // interactions yield no first-split gain yet become separable deeper
  // down. Nodes whose candidate features are all constant never reach
  // here (best.gain stays -1), so recursion always shrinks the node.
  if (best.gain < 0.0) return MakeLeaf(data, idx, scratch);

  // Partition indices in place around the chosen split.
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return data.row(i)[best.feature] <= best.threshold; });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return MakeLeaf(data, idx, scratch);

  // Mean-decrease-in-impurity credit for the chosen split.
  importances_[best.feature] +=
      best.gain * static_cast<double>(n) /
      static_cast<double>(total_training_samples_);

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<std::int32_t>(best.feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const std::int32_t left =
      Build(data, indices, begin, mid, config, depth + 1, rng, scratch);
  const std::int32_t right =
      Build(data, indices, mid, end, config, depth + 1, rng, scratch);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

int DecisionTree::Predict(std::span<const double> row) const {
  SENTINEL_CHECK(!nodes_.empty()) << "Predict on an untrained tree";
  std::size_t node = 0;
  while (nodes_[node].left != -1) {
    SENTINEL_DCHECK_BOUNDS(nodes_[node].feature, row.size());
    node = row[static_cast<std::size_t>(nodes_[node].feature)] <=
                   nodes_[node].threshold
               ? static_cast<std::size_t>(nodes_[node].left)
               : static_cast<std::size_t>(nodes_[node].right);
    SENTINEL_DCHECK_BOUNDS(node, nodes_.size());
  }
  return nodes_[node].majority;
}

std::span<const double> DecisionTree::PredictProba(
    std::span<const double> row) const {
  SENTINEL_CHECK(!nodes_.empty()) << "PredictProba on an untrained tree";
  std::size_t node = 0;
  while (nodes_[node].left != -1) {
    SENTINEL_DCHECK_BOUNDS(nodes_[node].feature, row.size());
    node = row[static_cast<std::size_t>(nodes_[node].feature)] <=
                   nodes_[node].threshold
               ? static_cast<std::size_t>(nodes_[node].left)
               : static_cast<std::size_t>(nodes_[node].right);
    SENTINEL_DCHECK_BOUNDS(node, nodes_.size());
  }
  // The leaf's probability block must lie inside leaf_probas_ (Load()
  // re-validates this for deserialized trees; Build() guarantees it for
  // freshly trained ones).
  SENTINEL_CHECK(nodes_[node].proba_offset >= 0 &&
                 static_cast<std::size_t>(nodes_[node].proba_offset) +
                         static_cast<std::size_t>(class_count_) <=
                     leaf_probas_.size())
      << "leaf probability block [" << nodes_[node].proba_offset << ", +"
      << class_count_ << ") outside " << leaf_probas_.size() << " entries";
  return std::span<const double>(leaf_probas_)
      .subspan(static_cast<std::size_t>(nodes_[node].proba_offset),
               static_cast<std::size_t>(class_count_));
}

std::size_t DecisionTree::MemoryBytes() const {
  return nodes_.capacity() * sizeof(Node) +
         leaf_probas_.capacity() * sizeof(double) +
         importances_.capacity() * sizeof(double) + sizeof(*this);
}

// Serialization format (big-endian):
//   'D''T' ver(1) | i32 class_count | u32 depth | u32 node_count |
//   nodes: i32 left, i32 right, i32 feature, f64 threshold,
//          i32 proba_offset, i32 majority |
//   u32 proba_count | proba_count x f64
namespace {
constexpr std::uint8_t kTreeVersion = 1;

void WriteDouble(net::ByteWriter& w, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  w.WriteU64(bits);
}

double ReadDouble(net::ByteReader& r) {
  const std::uint64_t bits = r.ReadU64();
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}
}  // namespace

void DecisionTree::Save(net::ByteWriter& w) const {
  w.WriteU8('D');
  w.WriteU8('T');
  w.WriteU8(kTreeVersion);
  w.WriteU32(static_cast<std::uint32_t>(class_count_));
  w.WriteU32(static_cast<std::uint32_t>(depth_));
  w.WriteU32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    w.WriteU32(static_cast<std::uint32_t>(node.left));
    w.WriteU32(static_cast<std::uint32_t>(node.right));
    w.WriteU32(static_cast<std::uint32_t>(node.feature));
    WriteDouble(w, node.threshold);
    w.WriteU32(static_cast<std::uint32_t>(node.proba_offset));
    w.WriteU32(static_cast<std::uint32_t>(node.majority));
  }
  w.WriteU32(static_cast<std::uint32_t>(leaf_probas_.size()));
  for (const double p : leaf_probas_) WriteDouble(w, p);
}

DecisionTree DecisionTree::Load(net::ByteReader& r) {
  if (r.ReadU8() != 'D' || r.ReadU8() != 'T')
    throw net::CodecError("not a serialized decision tree");
  if (r.ReadU8() != kTreeVersion)
    throw net::CodecError("unsupported decision-tree version");
  DecisionTree tree;
  tree.class_count_ = static_cast<int>(r.ReadU32());
  if (tree.class_count_ < 1)
    throw net::CodecError("decision tree: invalid class count " +
                          std::to_string(tree.class_count_));
  tree.depth_ = r.ReadU32();
  const std::uint32_t node_count = r.ReadU32();
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    node.left = static_cast<std::int32_t>(r.ReadU32());
    node.right = static_cast<std::int32_t>(r.ReadU32());
    node.feature = static_cast<std::int32_t>(r.ReadU32());
    node.threshold = ReadDouble(r);
    node.proba_offset = static_cast<std::int32_t>(r.ReadU32());
    node.majority = static_cast<std::int32_t>(r.ReadU32());
  }
  const std::uint32_t proba_count = r.ReadU32();
  tree.leaf_probas_.resize(proba_count);
  for (double& p : tree.leaf_probas_) p = ReadDouble(r);

  // Structural validation: child/probability indices must be in range so
  // a corrupted file cannot cause out-of-bounds traversal.
  for (const Node& node : tree.nodes_) {
    const bool is_leaf = node.left == -1;
    if (is_leaf) {
      if (node.proba_offset < 0 ||
          static_cast<std::size_t>(node.proba_offset) +
                  static_cast<std::size_t>(tree.class_count_) >
              tree.leaf_probas_.size())
        throw net::CodecError("decision tree: leaf probabilities out of range");
      // The majority label feeds vote-tally indexing in RandomForest.
      if (node.majority < 0 || node.majority >= tree.class_count_)
        throw net::CodecError("decision tree: majority label out of range");
    } else {
      if (node.left < 0 || node.right < 0 ||
          static_cast<std::uint32_t>(node.left) >= node_count ||
          static_cast<std::uint32_t>(node.right) >= node_count)
        throw net::CodecError("decision tree: child index out of range");
      // A negative split feature on an internal node would index
      // row[SIZE_MAX] during Predict.
      if (node.feature < 0)
        throw net::CodecError("decision tree: negative split feature");
    }
  }
  return tree;
}

}  // namespace sentinel::ml
