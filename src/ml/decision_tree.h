// CART decision-tree classifier (Gini impurity, axis-aligned splits), the
// base learner of the Random Forest (Breiman 2001) used for per-device-type
// classification.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/rng.h"
#include "net/byte_io.h"

namespace sentinel::ml {

struct DecisionTreeConfig {
  /// 0 = unlimited depth.
  std::size_t max_depth = 0;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features sampled per split; 0 = floor(sqrt(d)) as is
  /// conventional for classification forests.
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  struct Node {
    // Internal node: feature/threshold valid, children indices set.
    // Leaf: left == -1; proba_offset points into leaf_probas_.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t proba_offset = -1;
    std::int32_t majority = 0;
  };

  /// Trains on the examples of `data` selected by `indices` (with
  /// repetitions allowed, as bootstrap sampling produces).
  void Train(const Dataset& data, std::span<const std::size_t> indices,
             const DecisionTreeConfig& config, Rng& rng);

  /// Trains on the entire dataset.
  void Train(const Dataset& data, const DecisionTreeConfig& config, Rng& rng);

  /// Predicted class label for a feature row.
  [[nodiscard]] int Predict(std::span<const double> row) const;

  /// Per-class probability estimate (training-class frequencies at the
  /// reached leaf). Size = class count seen at training time.
  [[nodiscard]] std::span<const double> PredictProba(
      std::span<const double> row) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// Class-space width seen at training (or load) time.
  [[nodiscard]] int class_count() const { return class_count_; }
  [[nodiscard]] bool trained() const { return !nodes_.empty(); }
  /// Approximate heap footprint in bytes (used by memory-accounting
  /// benchmarks).
  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Mean-decrease-in-impurity importance per feature: for every split,
  /// (node samples / total samples) * Gini gain is credited to the split
  /// feature; the vector sums to 1 (all zeros for a stump). Width = the
  /// training dataset's feature count.
  [[nodiscard]] const std::vector<double>& feature_importances() const {
    return importances_;
  }

  /// Serializes the trained tree (versioned binary; see decision_tree.cc).
  void Save(net::ByteWriter& w) const;
  /// Restores a tree saved with Save(). Throws net::CodecError on
  /// malformed input.
  static DecisionTree Load(net::ByteReader& r);

  /// Read-only structural access for arena compilation (FlatForest lays the
  /// node table and leaf probabilities out into its SoA arena).
  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const double> leaf_probas() const {
    return leaf_probas_;
  }

 private:
  /// Per-Train() scratch reused across every Build() recursion: the
  /// (value, label) sort buffer, the split class tallies and the candidate
  /// feature permutation would otherwise be heap-allocated once per node.
  struct BuildScratch {
    std::vector<std::pair<double, int>> values;  // (feature value, label)
    std::vector<std::size_t> left_counts;
    std::vector<std::size_t> total_counts;
    std::vector<std::size_t> features;
    std::vector<std::size_t> leaf_counts;
  };

  std::int32_t Build(const Dataset& data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end,
                     const DecisionTreeConfig& config, std::size_t depth,
                     Rng& rng, BuildScratch& scratch);
  std::int32_t MakeLeaf(const Dataset& data, std::span<const std::size_t> idx,
                        BuildScratch& scratch);

  std::vector<Node> nodes_;
  std::vector<double> leaf_probas_;
  std::vector<double> importances_;
  std::size_t total_training_samples_ = 0;
  int class_count_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace sentinel::ml
