#include "ml/flat_forest.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace sentinel::ml {

namespace {

/// Margin covering floating-point accumulation error in the early-exit
/// bound test. The running sum and the suffix bounds each carry error of
/// order tree_count * eps (leaf values are in [0, 1]); 1e-9 per tree
/// dwarfs that by six orders of magnitude while staying far below any
/// probability granularity that could matter, so an inconclusive bound
/// simply means the scan keeps evaluating trees — exactness is never at
/// risk, only pruning opportunity.
constexpr double kBoundMarginPerTree = 1e-9;

}  // namespace

FlatForest FlatForest::Compile(const RandomForest& forest) {
  SENTINEL_CHECK(forest.trained()) << "Compile on an untrained forest";
  FlatForest flat;
  flat.class_count_ = forest.class_count();
  const auto& trees = forest.trees();

  std::size_t total_nodes = 0;
  std::size_t total_probas = 0;
  for (const auto& tree : trees) {
    total_nodes += tree.nodes().size();
    total_probas += tree.leaf_probas().size();
  }
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.right_.reserve(total_nodes);
  flat.probas_.reserve(total_probas);
  flat.roots_.reserve(trees.size());

  const std::size_t k = static_cast<std::size_t>(flat.class_count_);
  std::vector<double> min_pos(trees.size(), 0.0);
  std::vector<double> max_pos(trees.size(), 0.0);

  for (std::size_t t = 0; t < trees.size(); ++t) {
    const auto nodes = trees[t].nodes();
    const auto probas = trees[t].leaf_probas();
    const std::int32_t node_base =
        static_cast<std::int32_t>(flat.feature_.size());
    const std::int32_t proba_base =
        static_cast<std::int32_t>(flat.probas_.size());
    flat.roots_.push_back(node_base);  // tree roots are node 0 of each tree
    double tree_min = std::numeric_limits<double>::infinity();
    double tree_max = -std::numeric_limits<double>::infinity();
    for (const auto& node : nodes) {
      if (node.left == -1) {  // leaf
        flat.feature_.push_back(-1);
        flat.threshold_.push_back(0.0);
        flat.left_.push_back(proba_base + node.proba_offset);
        flat.right_.push_back(node.majority);
        if (k >= 2) {
          const double p =
              probas[static_cast<std::size_t>(node.proba_offset) + 1];
          tree_min = std::min(tree_min, p);
          tree_max = std::max(tree_max, p);
        }
      } else {
        flat.feature_.push_back(node.feature);
        flat.threshold_.push_back(node.threshold);
        flat.left_.push_back(node_base + node.left);
        flat.right_.push_back(node_base + node.right);
      }
    }
    flat.probas_.insert(flat.probas_.end(), probas.begin(), probas.end());
    if (k >= 2) {
      min_pos[t] = tree_min;
      max_pos[t] = tree_max;
    }
  }

  // Suffix bounds for the threshold early exit, accumulated back-to-front.
  flat.suffix_min_pos_.assign(trees.size() + 1, 0.0);
  flat.suffix_max_pos_.assign(trees.size() + 1, 0.0);
  for (std::size_t t = trees.size(); t-- > 0;) {
    flat.suffix_min_pos_[t] = flat.suffix_min_pos_[t + 1] + min_pos[t];
    flat.suffix_max_pos_[t] = flat.suffix_max_pos_[t + 1] + max_pos[t];
  }
  return flat;
}

std::size_t FlatForest::LeafIndex(std::span<const double> row,
                                  std::size_t node) const {
  while (feature_[node] >= 0) {
    SENTINEL_DCHECK_BOUNDS(feature_[node], row.size());
    node = row[static_cast<std::size_t>(feature_[node])] <= threshold_[node]
               ? static_cast<std::size_t>(left_[node])
               : static_cast<std::size_t>(right_[node]);
    SENTINEL_DCHECK_BOUNDS(node, feature_.size());
  }
  return node;
}

int FlatForest::Predict(std::span<const double> row) const {
  SENTINEL_CHECK(compiled()) << "Predict on an uncompiled forest";
  const std::size_t k = static_cast<std::size_t>(class_count_);
  std::vector<std::size_t> votes(k, 0);
  const std::size_t tree_total = roots_.size();
  for (std::size_t t = 0; t < tree_total; ++t) {
    const std::size_t leaf =
        LeafIndex(row, static_cast<std::size_t>(roots_[t]));
    const auto label = static_cast<std::size_t>(right_[leaf]);
    SENTINEL_CHECK_BOUNDS(label, votes.size());
    votes[label]++;
    // Early exit: once the leader's margin over every other class exceeds
    // the remaining tree count, no vote pattern can change the argmax (a
    // trailing class can gain at most `remaining` votes, ending strictly
    // below the leader, so the lowest-index tie rule never engages).
    const std::size_t remaining = tree_total - t - 1;
    std::size_t leader = 0;
    for (std::size_t c = 1; c < k; ++c)
      if (votes[c] > votes[leader]) leader = c;
    std::size_t runner_up = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (c == leader) continue;
      runner_up = std::max(runner_up, votes[c]);
    }
    if (votes[leader] - runner_up > remaining)
      return static_cast<int>(leader);
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < k; ++c)
    if (votes[c] > votes[best]) best = c;
  return static_cast<int>(best);
}

void FlatForest::PredictProba(std::span<const double> row,
                              std::span<double> out) const {
  SENTINEL_CHECK(compiled()) << "PredictProba on an uncompiled forest";
  const std::size_t k = static_cast<std::size_t>(class_count_);
  SENTINEL_CHECK(out.size() == k)
      << "PredictProba out size " << out.size() << " != class count " << k;
  std::fill(out.begin(), out.end(), 0.0);
  for (const std::int32_t root : roots_) {
    const std::size_t leaf = LeafIndex(row, static_cast<std::size_t>(root));
    const std::size_t offset = static_cast<std::size_t>(left_[leaf]);
    for (std::size_t c = 0; c < k; ++c) out[c] += probas_[offset + c];
  }
  for (double& v : out) v /= static_cast<double>(roots_.size());
}

std::vector<double> FlatForest::PredictProba(
    std::span<const double> row) const {
  std::vector<double> out(static_cast<std::size_t>(class_count_), 0.0);
  PredictProba(row, out);
  return out;
}

double FlatForest::PositiveProba(std::span<const double> row) const {
  SENTINEL_CHECK(compiled()) << "PositiveProba on an uncompiled forest";
  if (class_count_ < 2) return 0.0;
  // Accumulates only the class-1 leaf entries, in tree order — the same
  // doubles the reference PredictProba sums into slot 1, so the result is
  // bit-identical to RandomForest::PositiveProba.
  double sum = 0.0;
  for (const std::int32_t root : roots_) {
    const std::size_t leaf = LeafIndex(row, static_cast<std::size_t>(root));
    sum += probas_[static_cast<std::size_t>(left_[leaf]) + 1];
  }
  return sum / static_cast<double>(roots_.size());
}

void FlatForest::PredictProbaBatch(std::span<const double> matrix,
                                   std::size_t row_width,
                                   std::span<double> out) const {
  SENTINEL_CHECK(compiled()) << "PredictProbaBatch on an uncompiled forest";
  SENTINEL_CHECK(row_width > 0 && matrix.size() % row_width == 0)
      << "matrix size " << matrix.size() << " not a multiple of row width "
      << row_width;
  const std::size_t rows = matrix.size() / row_width;
  const std::size_t k = static_cast<std::size_t>(class_count_);
  SENTINEL_CHECK(out.size() == rows * k)
      << "out size " << out.size() << " != rows * classes " << rows * k;
  std::fill(out.begin(), out.end(), 0.0);
  for (const std::int32_t root : roots_) {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t leaf =
          LeafIndex(matrix.subspan(r * row_width, row_width),
                    static_cast<std::size_t>(root));
      const std::size_t offset = static_cast<std::size_t>(left_[leaf]);
      double* row_out = &out[r * k];
      for (std::size_t c = 0; c < k; ++c) row_out[c] += probas_[offset + c];
    }
  }
  const double denominator = static_cast<double>(roots_.size());
  for (double& v : out) v /= denominator;
}

void FlatForest::PositiveProbaBatch(std::span<const double> matrix,
                                    std::size_t row_width,
                                    std::span<double> out) const {
  SENTINEL_CHECK(compiled()) << "PositiveProbaBatch on an uncompiled forest";
  SENTINEL_CHECK(row_width > 0 && matrix.size() % row_width == 0)
      << "matrix size " << matrix.size() << " not a multiple of row width "
      << row_width;
  const std::size_t rows = matrix.size() / row_width;
  SENTINEL_CHECK(out.size() == rows)
      << "out size " << out.size() << " != row count " << rows;
  std::fill(out.begin(), out.end(), 0.0);
  if (class_count_ < 2) return;
  for (const std::int32_t root : roots_) {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t leaf =
          LeafIndex(matrix.subspan(r * row_width, row_width),
                    static_cast<std::size_t>(root));
      out[r] += probas_[static_cast<std::size_t>(left_[leaf]) + 1];
    }
  }
  const double denominator = static_cast<double>(roots_.size());
  for (double& v : out) v /= denominator;
}

FlatForest::ThresholdVerdict FlatForest::PositiveProbaThreshold(
    std::span<const double> row, double threshold) const {
  SENTINEL_CHECK(compiled())
      << "PositiveProbaThreshold on an uncompiled forest";
  ThresholdVerdict verdict;
  if (class_count_ < 2) {
    verdict.probability = 0.0;
    verdict.accepted = verdict.probability >= threshold;
    return verdict;
  }
  const std::size_t tree_total = roots_.size();
  const double denominator = static_cast<double>(tree_total);
  const double margin = kBoundMarginPerTree * denominator;
  double sum = 0.0;
  for (std::size_t t = 0; t < tree_total; ++t) {
    const std::size_t leaf =
        LeafIndex(row, static_cast<std::size_t>(roots_[t]));
    sum += probas_[static_cast<std::size_t>(left_[leaf]) + 1];
    verdict.trees_evaluated = static_cast<std::uint32_t>(t + 1);
    if (t + 1 == tree_total) break;  // full scan — exact probability below
    // Certified final-probability bounds: the remaining trees contribute
    // between their per-tree minimum and maximum class-1 leaf values
    // (precomputed suffix sums); the margin absorbs every floating-point
    // rounding difference between these bound expressions and the exact
    // sequential accumulation the reference performs.
    const double upper = (sum + suffix_max_pos_[t + 1] + margin) / denominator;
    if (upper < threshold) {
      verdict.accepted = false;
      verdict.early_exit = true;
      verdict.probability = upper;
      return verdict;
    }
    const double lower = (sum + suffix_min_pos_[t + 1] - margin) / denominator;
    if (lower >= threshold) {
      verdict.accepted = true;
      verdict.early_exit = true;
      verdict.probability = lower;
      return verdict;
    }
  }
  verdict.probability = sum / denominator;
  verdict.accepted = verdict.probability >= threshold;
  return verdict;
}

std::size_t FlatForest::MemoryBytes() const {
  return feature_.capacity() * sizeof(std::int32_t) +
         threshold_.capacity() * sizeof(double) +
         left_.capacity() * sizeof(std::int32_t) +
         right_.capacity() * sizeof(std::int32_t) +
         probas_.capacity() * sizeof(double) +
         roots_.capacity() * sizeof(std::int32_t) +
         suffix_min_pos_.capacity() * sizeof(double) +
         suffix_max_pos_.capacity() * sizeof(double) + sizeof(*this);
}

}  // namespace sentinel::ml
