// Arena-compiled Random Forest evaluator — the identification fast path's
// stage-1 engine. Compile() flattens a trained RandomForest into one
// contiguous structure-of-arrays node arena (separate feature / threshold /
// child arrays, leaves resolved to offsets into a shared probability
// table, trees laid out back-to-back in tree order), so scanning a
// classifier bank walks cache-linear arrays instead of chasing 40-byte
// Node structs across per-tree vectors.
//
// Determinism contract: every evaluation visits leaves in the same tree
// order as the reference RandomForest and accumulates the same doubles
// with the same operations, so Predict / PredictProba / PositiveProba are
// bit-identical to the reference implementations (differentially tested in
// tests/ml/test_flat_forest.cc). The threshold early-exit variant returns
// an exact accept/reject verdict but only a certified probability *bound*
// when it exits early — callers that need the exact probability use
// PositiveProba.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/random_forest.h"

namespace sentinel::ml {

class FlatForest {
 public:
  FlatForest() = default;

  /// Flattens `forest` (which must be trained) into the arena. The source
  /// forest is not retained; recompile after retraining or loading.
  static FlatForest Compile(const RandomForest& forest);

  [[nodiscard]] bool compiled() const { return !roots_.empty(); }
  [[nodiscard]] std::size_t tree_count() const { return roots_.size(); }
  [[nodiscard]] int class_count() const { return class_count_; }
  [[nodiscard]] std::size_t node_count() const { return feature_.size(); }
  /// Heap footprint of the arena (all SoA arrays + bound tables).
  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Majority-vote prediction, bit-identical to RandomForest::Predict.
  /// Stops scanning trees once the vote margin exceeds the number of
  /// remaining trees (the winner is then decided regardless of how the
  /// rest vote, including the argmax lowest-index tie rule).
  [[nodiscard]] int Predict(std::span<const double> row) const;

  /// Mean leaf class-frequency estimate, accumulated in tree order into
  /// `out` (size class_count). Bit-identical to RandomForest::PredictProba.
  void PredictProba(std::span<const double> row, std::span<double> out) const;
  [[nodiscard]] std::vector<double> PredictProba(
      std::span<const double> row) const;

  /// Probability of class 1, bit-identical to RandomForest::PositiveProba
  /// (which sums the same class-1 leaf entries in the same tree order).
  [[nodiscard]] double PositiveProba(std::span<const double> row) const;

  /// Batch variant over a row-major matrix (`row_width` doubles per row).
  /// Writes one class_count-wide probability block per row into `out`
  /// (size = rows * class_count). Trees iterate in the outer loop so the
  /// arena stays cache-hot across rows; each row's accumulation still
  /// happens in tree order, keeping every row bit-identical to the
  /// single-row PredictProba.
  void PredictProbaBatch(std::span<const double> matrix, std::size_t row_width,
                         std::span<double> out) const;

  /// Positive-class-only batch variant: out[r] = PositiveProba(row r),
  /// bit-identical per row.
  void PositiveProbaBatch(std::span<const double> matrix,
                          std::size_t row_width, std::span<double> out) const;

  /// Outcome of a threshold-gated scan (the classifier-bank accept test).
  struct ThresholdVerdict {
    /// Exact: equals (PositiveProba(row) >= threshold) always, whether or
    /// not the scan exited early.
    bool accepted = false;
    /// True when the scan stopped before the last tree because the
    /// remaining trees' certified positive-probability bounds could no
    /// longer change the verdict.
    bool early_exit = false;
    /// Exact PositiveProba when !early_exit. On an early exit: a certified
    /// bound consistent with the verdict — an upper bound (< threshold)
    /// for rejects, a lower bound (>= threshold) for accepts.
    double probability = 0.0;
    std::uint32_t trees_evaluated = 0;
  };

  /// Accept test with tree-vote early exit. After each tree the running
  /// class-1 sum is combined with precomputed per-tree suffix bounds on
  /// the remaining trees' class-1 leaf values (plus an epsilon covering
  /// floating-point accumulation error); when even the optimistic bound
  /// cannot reach the threshold — or the pessimistic one already clears
  /// it — the verdict is decided and the scan stops. Forests with fewer
  /// than two classes reject (PositiveProba is 0 there).
  [[nodiscard]] ThresholdVerdict PositiveProbaThreshold(
      std::span<const double> row, double threshold) const;

 private:
  [[nodiscard]] std::size_t LeafIndex(std::span<const double> row,
                                      std::size_t node) const;

  // SoA node arena. For node i:
  //   feature_[i] >= 0: internal — threshold_[i] splits, children at
  //     left_[i] / right_[i] (absolute arena indices);
  //   feature_[i] == -1: leaf — left_[i] is the absolute offset of its
  //     class_count-wide block in probas_, right_[i] its majority label.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> probas_;
  /// Root node index per tree, in tree order.
  std::vector<std::int32_t> roots_;
  /// suffix_min_pos_[t] / suffix_max_pos_[t]: sum over trees u >= t of the
  /// smallest / largest class-1 leaf value of tree u (0 when class_count
  /// < 2). Size tree_count + 1; entry [tree_count] is 0.
  std::vector<double> suffix_min_pos_;
  std::vector<double> suffix_max_pos_;
  int class_count_ = 0;
};

}  // namespace sentinel::ml
