#include "ml/metrics.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sentinel::ml {

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  if (other.n_ != n_)
    throw std::invalid_argument("confusion matrix size mismatch");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t sum = 0;
  for (auto c : cells_) sum += c;
  return sum;
}

std::size_t ConfusionMatrix::RowTotal(std::size_t actual) const {
  std::size_t sum = 0;
  for (std::size_t j = 0; j < n_; ++j) sum += At(actual, j);
  return sum;
}

double ConfusionMatrix::PerClassAccuracy(std::size_t actual) const {
  const std::size_t row = RowTotal(actual);
  if (row == 0) return 0.0;
  return static_cast<double>(At(actual, actual)) / static_cast<double>(row);
}

double ConfusionMatrix::OverallAccuracy() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < n_; ++i) diag += At(i, i);
  return static_cast<double>(diag) / static_cast<double>(all);
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& labels) const {
  std::ostringstream out;
  out << "A\\P";
  for (std::size_t j = 0; j < n_; ++j) {
    out << '\t' << (j < labels.size() ? labels[j] : std::to_string(j + 1));
  }
  out << '\n';
  for (std::size_t i = 0; i < n_; ++i) {
    out << (i < labels.size() ? labels[i] : std::to_string(i + 1));
    for (std::size_t j = 0; j < n_; ++j) out << '\t' << At(i, j);
    out << '\n';
  }
  return out.str();
}

double Accuracy(const std::vector<int>& actual,
                const std::vector<int>& predicted) {
  if (actual.size() != predicted.size())
    throw std::invalid_argument("label vector size mismatch");
  if (actual.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    if (actual[i] == predicted[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(actual.size());
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.stdev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace sentinel::ml
