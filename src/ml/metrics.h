// Classification metrics: accuracy, per-class accuracy (the quantity of
// Fig. 5) and confusion matrices (Table III).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sentinel::ml {

/// Square confusion matrix over `class_count` classes. Rows = actual class,
/// columns = predicted class, as in the paper's Table III.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t class_count)
      : n_(class_count), cells_(class_count * class_count, 0) {}

  void Add(std::size_t actual, std::size_t predicted, std::size_t count = 1) {
    cells_.at(actual * n_ + predicted) += count;
  }
  void Merge(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t At(std::size_t actual, std::size_t predicted) const {
    return cells_.at(actual * n_ + predicted);
  }
  [[nodiscard]] std::size_t class_count() const { return n_; }
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t RowTotal(std::size_t actual) const;

  /// Fraction of row `actual` on the diagonal — the per-type "ratio of
  /// correct identification". Returns 0 for empty rows.
  [[nodiscard]] double PerClassAccuracy(std::size_t actual) const;
  /// Overall fraction of diagonal mass.
  [[nodiscard]] double OverallAccuracy() const;

  /// Pretty table (optionally with row/column labels) for report output.
  [[nodiscard]] std::string ToString(
      const std::vector<std::string>& labels = {}) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;
};

/// Plain accuracy over parallel label vectors.
double Accuracy(const std::vector<int>& actual,
                const std::vector<int>& predicted);

/// Mean and (sample) standard deviation of a series.
struct MeanStd {
  double mean = 0.0;
  double stdev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace sentinel::ml
