#include "ml/random_forest.h"

#include <algorithm>
#include <stdexcept>

#include "obs/profiler.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sentinel::ml {

void RandomForest::Train(const Dataset& data, const RandomForestConfig& config,
                         util::ThreadPool* pool,
                         obs::MetricsRegistry* metrics) {
  if (data.empty())
    throw std::invalid_argument("RandomForest::Train: empty dataset");
  if (config.tree_count == 0)
    throw std::invalid_argument("RandomForest::Train: zero trees");
  obs::Histogram* tree_hist =
      metrics != nullptr
          ? &metrics->GetHistogram("sentinel_ml_tree_train_ns",
                                   "single-tree bagging + CART training time")
          : nullptr;
  obs::ScopedTimer forest_timer(
      metrics != nullptr
          ? &metrics->GetHistogram("sentinel_ml_forest_train_ns",
                                   "whole-forest training time")
          : nullptr);
  obs::ScopedSpan forest_span("sentinel_ml_forest_train");
  SENTINEL_PROFILE_SCOPE("ml.forest_train");
  if (forest_span.enabled())
    forest_span.AddArg("trees", std::to_string(config.tree_count));
  trees_.clear();
  trees_.resize(config.tree_count);
  class_count_ = data.class_count();

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.bootstrap_fraction *
                                  static_cast<double>(data.size())));
  // Each tree records its out-of-bag predictions in a private list; the
  // shared votes[i][c] tally is built from those lists in tree order after
  // the (possibly parallel) training loop, keeping the result independent
  // of scheduling.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> oob_local(
      config.tree_count);

  util::ParallelFor(pool, config.tree_count, [&](std::size_t t) {
    obs::ScopedTimer tree_timer(tree_hist);
    Rng rng(DeriveSeed(config.seed, t));
    std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);
    std::vector<std::size_t> bootstrap(sample_size);
    std::vector<bool> in_bag(data.size(), false);
    for (auto& i : bootstrap) {
      i = pick(rng);
      in_bag[i] = true;
    }
    trees_[t].Train(data, bootstrap, config.tree, rng);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (in_bag[i]) continue;
      oob_local[t].emplace_back(
          static_cast<std::uint32_t>(i),
          static_cast<std::uint32_t>(trees_[t].Predict(data.row(i))));
    }
  });

  // Out-of-bag vote tally: votes[i][c] over trees whose bootstrap missed i.
  std::vector<std::vector<std::uint32_t>> oob_votes(
      data.size(),
      std::vector<std::uint32_t>(static_cast<std::size_t>(class_count_), 0));
  for (const auto& local : oob_local)
    for (const auto& [i, c] : local) oob_votes[i][c]++;

  std::size_t scored = 0, correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint32_t best_votes = 0;
    std::size_t best_class = 0;
    std::uint32_t total = 0;
    for (std::size_t c = 0; c < oob_votes[i].size(); ++c) {
      total += oob_votes[i][c];
      if (oob_votes[i][c] > best_votes) {
        best_votes = oob_votes[i][c];
        best_class = c;
      }
    }
    if (total == 0) continue;  // always in-bag
    ++scored;
    if (static_cast<int>(best_class) == data.label(i)) ++correct;
  }
  oob_accuracy_ = scored == 0 ? std::numeric_limits<double>::quiet_NaN()
                              : static_cast<double>(correct) /
                                    static_cast<double>(scored);
  if (metrics != nullptr) {
    metrics
        ->GetCounter("sentinel_ml_trees_trained_total",
                     "decision trees trained across all forests")
        .Increment(config.tree_count);
    if (scored > 0) {
      metrics
          ->GetGauge("sentinel_ml_oob_accuracy",
                     "out-of-bag accuracy of the most recently trained forest")
          .Set(oob_accuracy_);
      metrics
          ->GetCounter("sentinel_ml_oob_scored_total",
                       "training examples with at least one out-of-bag vote")
          .Increment(scored);
    }
  }
}

int RandomForest::Predict(std::span<const double> row) const {
  std::vector<std::size_t> votes(static_cast<std::size_t>(class_count_), 0);
  for (const auto& tree : trees_) {
    const int label = tree.Predict(row);
    SENTINEL_CHECK_BOUNDS(label, votes.size());
    votes[static_cast<std::size_t>(label)]++;
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c)
    if (votes[c] > votes[best]) best = c;
  return static_cast<int>(best);
}

std::vector<double> RandomForest::PredictProba(
    std::span<const double> row) const {
  std::vector<double> proba(static_cast<std::size_t>(class_count_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.PredictProba(row);
    for (std::size_t c = 0; c < proba.size() && c < p.size(); ++c)
      proba[c] += p[c];
  }
  for (auto& v : proba) v /= static_cast<double>(trees_.size());
  return proba;
}

std::vector<std::vector<double>> RandomForest::PredictProba(
    std::span<const std::vector<double>> rows, util::ThreadPool* pool) const {
  std::vector<std::vector<double>> out(rows.size());
  util::ParallelFor(pool, rows.size(),
                    [&](std::size_t i) { out[i] = PredictProba(rows[i]); });
  return out;
}

double RandomForest::PositiveProba(std::span<const double> row) const {
  if (class_count_ < 2) return class_count_ == 1 ? 0.0 : 0.0;
  return PredictProba(row)[1];
}

std::size_t RandomForest::MemoryBytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& tree : trees_) total += tree.MemoryBytes();
  return total;
}

std::vector<double> RandomForest::FeatureImportances() const {
  std::vector<double> out;
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importances();
    if (out.empty()) out.assign(imp.size(), 0.0);
    for (std::size_t f = 0; f < imp.size() && f < out.size(); ++f)
      out[f] += imp[f];
  }
  if (!trees_.empty()) {
    for (double& v : out) v /= static_cast<double>(trees_.size());
  }
  return out;
}

void RandomForest::Save(net::ByteWriter& w) const {
  w.WriteU8('R');
  w.WriteU8('F');
  w.WriteU8(1);  // version
  w.WriteU32(static_cast<std::uint32_t>(class_count_));
  w.WriteU32(static_cast<std::uint32_t>(trees_.size()));
  for (const auto& tree : trees_) tree.Save(w);
}

RandomForest RandomForest::Load(net::ByteReader& r) {
  if (r.ReadU8() != 'R' || r.ReadU8() != 'F')
    throw net::CodecError("not a serialized random forest");
  if (r.ReadU8() != 1)
    throw net::CodecError("unsupported random-forest version");
  RandomForest forest;
  forest.class_count_ = static_cast<int>(r.ReadU32());
  if (forest.class_count_ < 1)
    throw net::CodecError("random forest: invalid class count " +
                          std::to_string(forest.class_count_));
  const std::uint32_t tree_count = r.ReadU32();
  forest.trees_.reserve(tree_count);
  for (std::uint32_t i = 0; i < tree_count; ++i) {
    DecisionTree tree = DecisionTree::Load(r);
    // Per-tree labels index the forest-wide vote tally, so every tree
    // must agree with the forest on the class space.
    if (tree.class_count() != forest.class_count_)
      throw net::CodecError(
          "random forest: tree class count " +
          std::to_string(tree.class_count()) + " != forest class count " +
          std::to_string(forest.class_count_));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

}  // namespace sentinel::ml
