// Random Forest classifier (Breiman 2001): bagged CART trees with per-split
// feature subsampling. The paper trains one *binary* forest per device-type
// (Sect. IV-B1); the implementation is general multiclass.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "ml/decision_tree.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace sentinel::ml {

struct RandomForestConfig {
  std::size_t tree_count = 30;
  DecisionTreeConfig tree;
  /// Bootstrap sample size as a fraction of the training set (1.0 = classic
  /// bagging with replacement at full size).
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 1;
};

class RandomForest {
 public:
  /// Trains `config.tree_count` trees on bootstrap resamples of `data`.
  /// With a non-null `pool` the trees train in parallel; each tree's RNG is
  /// derived from (config.seed, tree index) and out-of-bag votes are
  /// tallied per tree and merged in tree order after the join, so the
  /// trained forest (and its Save() bytes and oob_accuracy()) is
  /// bit-identical to a sequential run. With a non-null `metrics`, training
  /// records per-tree and whole-forest timing histograms plus the OOB
  /// accuracy gauge; timing never feeds back into the model, so the trained
  /// bytes are identical with metrics on or off.
  void Train(const Dataset& data, const RandomForestConfig& config,
             util::ThreadPool* pool = nullptr,
             obs::MetricsRegistry* metrics = nullptr);

  /// Majority-vote class prediction.
  [[nodiscard]] int Predict(std::span<const double> row) const;

  /// Mean of the trees' leaf class-frequency estimates; index = class.
  [[nodiscard]] std::vector<double> PredictProba(
      std::span<const double> row) const;

  /// Batch variant: one probability vector per input row, in input order.
  /// Rows are scored in parallel on `pool` when provided (each row's
  /// result is independent, so the output is identical either way).
  [[nodiscard]] std::vector<std::vector<double>> PredictProba(
      std::span<const std::vector<double>> rows,
      util::ThreadPool* pool = nullptr) const;

  /// Probability of class 1 — convenience for the binary per-device-type
  /// classifiers.
  [[nodiscard]] double PositiveProba(std::span<const double> row) const;

  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] bool trained() const { return !trees_.empty(); }
  /// Read-only tree access for arena compilation (see ml/flat_forest.h).
  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }
  [[nodiscard]] int class_count() const { return class_count_; }
  [[nodiscard]] std::size_t MemoryBytes() const;

  /// Mean feature importances across the forest's trees (normalized MDI).
  /// Empty before training or after Load() (importances are a training
  /// artefact and are not serialized).
  [[nodiscard]] std::vector<double> FeatureImportances() const;

  /// Out-of-bag accuracy estimated during Train(): each example is scored
  /// by the trees whose bootstrap sample excluded it. Returns NaN when no
  /// example was out of bag (tiny datasets) or the forest was Load()ed.
  [[nodiscard]] double oob_accuracy() const { return oob_accuracy_; }

  /// Serializes the trained forest; Load() restores it. The IoT Security
  /// Service persists its per-type classifier bank this way.
  void Save(net::ByteWriter& w) const;
  static RandomForest Load(net::ByteReader& r);

 private:
  std::vector<DecisionTree> trees_;
  int class_count_ = 0;
  double oob_accuracy_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace sentinel::ml
