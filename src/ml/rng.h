// Deterministic PRNG used across training, simulation and evaluation so
// every experiment in this repository is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace sentinel::ml {

using Rng = std::mt19937_64;

/// Constant-cost seedable generator (splitmix64) for short per-item
/// random streams. std::mt19937_64 pays ~2us of state initialization and
/// first-twist per construction — three orders of magnitude more than
/// the handful of draws a discrimination tie-break consumes — so hot
/// paths that seed a fresh stream per probe use this engine instead.
/// Satisfies UniformRandomBitGenerator; splitmix64 is a bijective
/// counter-mix whose full 64-bit output passes BigCrush, more than
/// enough for reference picks and tie coins.
class SmallRng {
 public:
  using result_type = std::uint64_t;
  explicit SmallRng(std::uint64_t seed) : state_(seed) {}
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives an independent child seed from a parent seed and a stream index
/// (splitmix64 finalizer), so parallel components get decorrelated streams.
constexpr std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace sentinel::ml
