// Deterministic PRNG used across training, simulation and evaluation so
// every experiment in this repository is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace sentinel::ml {

using Rng = std::mt19937_64;

/// Derives an independent child seed from a parent seed and a stream index
/// (splitmix64 finalizer), so parallel components get decorrelated streams.
constexpr std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace sentinel::ml
