#include "net/address.h"

#include <charconv>
#include <cstdio>

namespace sentinel::net {

namespace {

// Parses a 2-digit hex byte at `text[pos]`, returns -1 on failure.
int ParseHexByte(std::string_view text, std::size_t pos) {
  if (pos + 2 > text.size()) return -1;
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data() + pos, text.data() + pos + 2, value, 16);
  if (ec != std::errc{} || ptr != text.data() + pos + 2) return -1;
  return value;
}

}  // namespace

std::optional<MacAddress> MacAddress::Parse(std::string_view text) {
  // Expected layout: XX?XX?XX?XX?XX?XX with ':' or '-' separators.
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = static_cast<std::size_t>(i) * 3;
    if (i > 0) {
      const char sep = text[pos - 1];
      if (sep != ':' && sep != '-') return std::nullopt;
    }
    const int byte = ParseHexByte(text, pos);
    if (byte < 0) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(byte);
  }
  return MacAddress(octets);
}

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return std::string(buf);
}

std::uint64_t MacAddress::ToUint64() const {
  std::uint64_t v = 0;
  for (auto o : octets_) v = (v << 8) | o;
  return v;
}

MacAddress MacAddress::FromUint64(std::uint64_t value) {
  std::array<std::uint8_t, 6> octets{};
  for (int i = 5; i >= 0; --i) {
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    value >>= 8;
  }
  return MacAddress(octets);
}

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    int octet = -1;
    auto [ptr, ec] =
        std::from_chars(text.data() + pos, text.data() + text.size(), octet);
    if (ec != std::errc{} || octet < 0 || octet > 255) return std::nullopt;
    pos = static_cast<std::size_t>(ptr - text.data());
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address(value);
}

bool Ipv4Address::IsPrivate() const {
  const std::uint32_t v = value_;
  return (v >> 24) == 10 ||                        // 10/8
         (v >> 20) == 0xac1 ||                     // 172.16/12
         (v >> 16) == 0xc0a8 ||                    // 192.168/16
         (v >> 16) == 0xa9fe;                      // 169.254/16 link-local
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return std::string(buf);
}

Ipv6Address Ipv6Address::LinkLocalFromMac(const MacAddress& mac) {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0xfe;
  bytes[1] = 0x80;
  const auto& o = mac.octets();
  // EUI-64: flip U/L bit, insert ff:fe in the middle.
  bytes[8] = static_cast<std::uint8_t>(o[0] ^ 0x02);
  bytes[9] = o[1];
  bytes[10] = o[2];
  bytes[11] = 0xff;
  bytes[12] = 0xfe;
  bytes[13] = o[3];
  bytes[14] = o[4];
  bytes[15] = o[5];
  return Ipv6Address(bytes);
}

Ipv6Address Ipv6Address::AllNodesMulticast() {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0xff;
  bytes[1] = 0x02;
  bytes[15] = 0x01;
  return Ipv6Address(bytes);
}

std::string Ipv6Address::ToString() const {
  std::string out;
  out.reserve(40);
  char buf[6];
  for (int g = 0; g < 8; ++g) {
    const unsigned group =
        (static_cast<unsigned>(bytes_[static_cast<std::size_t>(g) * 2]) << 8) |
        bytes_[static_cast<std::size_t>(g) * 2 + 1];
    std::snprintf(buf, sizeof(buf), g == 0 ? "%x" : ":%x", group);
    out += buf;
  }
  return out;
}

}  // namespace sentinel::net
