// Address value types for the sentinel network stack: MAC, IPv4, IPv6 and a
// tagged union over the two IP families. All types are trivially copyable
// value types with total ordering and std::hash support so they can be used
// directly as keys in flow tables and rule caches.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

namespace sentinel::net {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Parses "aa:bb:cc:dd:ee:ff" or "AA-BB-CC-DD-EE-FF".
  /// Returns std::nullopt on malformed input.
  static std::optional<MacAddress> Parse(std::string_view text);

  /// Broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress Broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  [[nodiscard]] bool IsBroadcast() const { return *this == Broadcast(); }
  /// Group bit (I/G) of the first octet: multicast or broadcast destination.
  [[nodiscard]] bool IsMulticast() const { return (octets_[0] & 0x01) != 0; }
  /// Locally-administered bit (U/L) of the first octet.
  [[nodiscard]] bool IsLocallyAdministered() const {
    return (octets_[0] & 0x02) != 0;
  }

  /// Lower-case colon-separated textual form.
  [[nodiscard]] std::string ToString() const;

  /// Numeric value of the address in the low 48 bits.
  [[nodiscard]] std::uint64_t ToUint64() const;
  static MacAddress FromUint64(std::uint64_t value);

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address held in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad "192.168.1.20". Returns std::nullopt on bad input.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  static constexpr Ipv4Address Any() { return Ipv4Address(0); }
  static constexpr Ipv4Address Broadcast() {
    return Ipv4Address(0xffffffffu);
  }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] bool IsMulticast() const {
    return (value_ >> 28) == 0xe;  // 224.0.0.0/4
  }
  [[nodiscard]] bool IsPrivate() const;
  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(const Ipv4Address&,
                                    const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address as 16 network-order bytes.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  constexpr explicit Ipv6Address(std::array<std::uint8_t, 16> bytes)
      : bytes_(bytes) {}

  /// Builds a link-local (fe80::/64) address with a EUI-64-style suffix
  /// derived from a MAC address, as IoT devices do during setup.
  static Ipv6Address LinkLocalFromMac(const MacAddress& mac);

  /// All-nodes multicast ff02::1.
  static Ipv6Address AllNodesMulticast();

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] bool IsMulticast() const { return bytes_[0] == 0xff; }
  /// Canonical-ish textual form (full groups, no ::-compression beyond
  /// leading-zero trimming within groups).
  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

/// Either an IPv4 or an IPv6 address; used where the fingerprinting layer
/// needs a single comparable "destination address" key (Table I destination
/// IP counter).
class IpAddress {
 public:
  IpAddress() : addr_(Ipv4Address{}) {}
  IpAddress(Ipv4Address v4) : addr_(v4) {}          // NOLINT implicit
  IpAddress(Ipv6Address v6) : addr_(std::move(v6)) {}  // NOLINT implicit

  [[nodiscard]] bool IsV4() const {
    return std::holds_alternative<Ipv4Address>(addr_);
  }
  [[nodiscard]] bool IsV6() const { return !IsV4(); }
  [[nodiscard]] const Ipv4Address& v4() const {
    return std::get<Ipv4Address>(addr_);
  }
  [[nodiscard]] const Ipv6Address& v6() const {
    return std::get<Ipv6Address>(addr_);
  }
  [[nodiscard]] bool IsMulticast() const {
    return IsV4() ? v4().IsMulticast() : v6().IsMulticast();
  }
  [[nodiscard]] std::string ToString() const {
    return IsV4() ? v4().ToString() : v6().ToString();
  }

  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;

 private:
  std::variant<Ipv4Address, Ipv6Address> addr_;
};

}  // namespace sentinel::net

template <>
struct std::hash<sentinel::net::MacAddress> {
  std::size_t operator()(const sentinel::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.ToUint64());
  }
};

template <>
struct std::hash<sentinel::net::Ipv4Address> {
  std::size_t operator()(const sentinel::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<sentinel::net::Ipv6Address> {
  std::size_t operator()(const sentinel::net::Ipv6Address& a) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull;
    for (auto b : a.bytes()) h = (h ^ b) * 0x100000001b3ull;
    return h;
  }
};

template <>
struct std::hash<sentinel::net::IpAddress> {
  std::size_t operator()(const sentinel::net::IpAddress& a) const noexcept {
    if (a.IsV4()) return std::hash<sentinel::net::Ipv4Address>{}(a.v4());
    return std::hash<sentinel::net::Ipv6Address>{}(a.v6());
  }
};
