#include "net/arp.h"

#include "net/protocols.h"

namespace sentinel::net {

namespace {
constexpr std::uint16_t kHardwareEthernet = 1;
constexpr std::uint8_t kMacLen = 6;
constexpr std::uint8_t kIpv4Len = 4;

MacAddress ReadMac(ByteReader& r) {
  auto span = r.ReadBytes(6);
  std::array<std::uint8_t, 6> a{};
  std::copy(span.begin(), span.end(), a.begin());
  return MacAddress(a);
}
}  // namespace

ArpPacket ArpPacket::Probe(const MacAddress& sender, Ipv4Address candidate) {
  ArpPacket p;
  p.operation = ArpOperation::kRequest;
  p.sender_mac = sender;
  p.sender_ip = Ipv4Address::Any();
  p.target_mac = MacAddress{};
  p.target_ip = candidate;
  return p;
}

ArpPacket ArpPacket::Announce(const MacAddress& sender, Ipv4Address ip) {
  ArpPacket p;
  p.operation = ArpOperation::kRequest;
  p.sender_mac = sender;
  p.sender_ip = ip;
  p.target_mac = MacAddress{};
  p.target_ip = ip;
  return p;
}

void ArpPacket::Encode(ByteWriter& w) const {
  w.WriteU16(kHardwareEthernet);
  w.WriteU16(kEtherTypeIpv4);
  w.WriteU8(kMacLen);
  w.WriteU8(kIpv4Len);
  w.WriteU16(static_cast<std::uint16_t>(operation));
  w.WriteBytes(sender_mac.octets());
  w.WriteU32(sender_ip.value());
  w.WriteBytes(target_mac.octets());
  w.WriteU32(target_ip.value());
}

ArpPacket ArpPacket::Decode(ByteReader& r) {
  const std::uint16_t hw = r.ReadU16();
  const std::uint16_t proto = r.ReadU16();
  const std::uint8_t hw_len = r.ReadU8();
  const std::uint8_t proto_len = r.ReadU8();
  if (hw != kHardwareEthernet || proto != kEtherTypeIpv4 || hw_len != kMacLen ||
      proto_len != kIpv4Len) {
    throw CodecError("unsupported ARP hardware/protocol combination");
  }
  ArpPacket p;
  const std::uint16_t op = r.ReadU16();
  if (op != 1 && op != 2) throw CodecError("invalid ARP operation");
  p.operation = static_cast<ArpOperation>(op);
  p.sender_mac = ReadMac(r);
  p.sender_ip = Ipv4Address(r.ReadU32());
  p.target_mac = ReadMac(r);
  p.target_ip = Ipv4Address(r.ReadU32());
  return p;
}

}  // namespace sentinel::net
