// ARP (RFC 826) for IPv4 over Ethernet, including gratuitous ARP and ARP
// probe forms used by devices during address acquisition.
#pragma once

#include <cstdint>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

enum class ArpOperation : std::uint16_t {
  kRequest = 1,
  kReply = 2,
};

struct ArpPacket {
  ArpOperation operation = ArpOperation::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  static constexpr std::size_t kSize = 28;

  /// ARP probe (RFC 5227): sender IP 0.0.0.0, asking about `candidate`.
  static ArpPacket Probe(const MacAddress& sender, Ipv4Address candidate);
  /// Gratuitous ARP announcing ownership of `ip`.
  static ArpPacket Announce(const MacAddress& sender, Ipv4Address ip);

  void Encode(ByteWriter& w) const;
  static ArpPacket Decode(ByteReader& r);
};

}  // namespace sentinel::net
