// Bounds-checked big-endian byte readers/writers used by all wire codecs.
// Network byte order (big endian) is the default; pcap headers use the
// explicit *Le variants.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sentinel::net {

/// Error thrown when a codec reads past the end of a buffer or encounters a
/// structurally invalid message.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends integers and byte ranges to a growable buffer in network order.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void WriteU8(std::uint8_t v) { buffer_.push_back(v); }
  void WriteU16(std::uint16_t v) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }
  void WriteU32(std::uint32_t v) {
    WriteU16(static_cast<std::uint16_t>(v >> 16));
    WriteU16(static_cast<std::uint16_t>(v));
  }
  void WriteU64(std::uint64_t v) {
    WriteU32(static_cast<std::uint32_t>(v >> 32));
    WriteU32(static_cast<std::uint32_t>(v));
  }
  void WriteU16Le(std::uint16_t v) {
    buffer_.push_back(static_cast<std::uint8_t>(v));
    buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void WriteU32Le(std::uint32_t v) {
    WriteU16Le(static_cast<std::uint16_t>(v));
    WriteU16Le(static_cast<std::uint16_t>(v >> 16));
  }
  void WriteBytes(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }
  void WriteString(std::string_view s) {
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }
  void WriteZeros(std::size_t count) {
    buffer_.insert(buffer_.end(), count, std::uint8_t{0});
  }

  /// Overwrites two bytes at `offset` (for length/checksum backpatching).
  void PatchU16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buffer_.size()) throw CodecError("PatchU16 out of range");
    buffer_[offset] = static_cast<std::uint8_t>(v >> 8);
    buffer_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> Take() && {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential reader over a fixed byte span; every access is bounds-checked
/// and throws CodecError on overrun so malformed frames cannot cause UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == data_.size(); }

  std::uint8_t ReadU8() {
    Require(1);
    return data_[pos_++];
  }
  std::uint16_t ReadU16() {
    Require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t ReadU32() {
    const std::uint32_t hi = ReadU16();
    return (hi << 16) | ReadU16();
  }
  std::uint64_t ReadU64() {
    const std::uint64_t hi = ReadU32();
    return (hi << 32) | ReadU32();
  }
  std::uint16_t ReadU16Le() {
    Require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        std::uint16_t{data_[pos_]} | (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t ReadU32Le() {
    const std::uint32_t lo = ReadU16Le();
    return lo | (std::uint32_t{ReadU16Le()} << 16);
  }
  std::span<const std::uint8_t> ReadBytes(std::size_t count) {
    Require(count);
    auto out = data_.subspan(pos_, count);
    pos_ += count;
    return out;
  }
  void Skip(std::size_t count) {
    Require(count);
    pos_ += count;
  }
  /// Peeks without consuming.
  [[nodiscard]] std::uint8_t PeekU8() const {
    if (remaining() < 1) throw CodecError("peek past end");
    return data_[pos_];
  }
  /// Remaining bytes as a span (not consumed).
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return data_.subspan(pos_);
  }

 private:
  void Require(std::size_t count) const {
    if (remaining() < count)
      throw CodecError("read past end of buffer (need " +
                       std::to_string(count) + ", have " +
                       std::to_string(remaining()) + ")");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace sentinel::net
