#include "net/checksum.h"

namespace sentinel::net {

void InternetChecksum::Add(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum_ += std::uint32_t{data[i]} << 8;
}

void InternetChecksum::AddU16(std::uint16_t v) { sum_ += v; }

std::uint16_t InternetChecksum::Finalize() const {
  std::uint32_t sum = sum_;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t Checksum(std::span<const std::uint8_t> data) {
  InternetChecksum sum;
  sum.Add(data);
  return sum.Finalize();
}

void AddPseudoHeader(InternetChecksum& sum, Ipv4Address src, Ipv4Address dst,
                     std::uint8_t protocol, std::uint16_t length) {
  sum.AddU32(src.value());
  sum.AddU32(dst.value());
  sum.AddU16(protocol);
  sum.AddU16(length);
}

}  // namespace sentinel::net
