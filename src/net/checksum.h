// RFC 1071 internet checksum, used by IPv4, ICMP, UDP and TCP codecs.
#pragma once

#include <cstdint>
#include <span>

#include "net/address.h"

namespace sentinel::net {

/// Running one's-complement sum that can be fed incrementally (header,
/// pseudo-header, payload) and finalized once.
class InternetChecksum {
 public:
  /// Adds a byte range. Ranges may be added in any order as long as each
  /// range starts at an even offset of the conceptual message, which holds
  /// for all header/payload splits used here.
  void Add(std::span<const std::uint8_t> data);
  void AddU16(std::uint16_t v);
  void AddU32(std::uint32_t v) {
    AddU16(static_cast<std::uint16_t>(v >> 16));
    AddU16(static_cast<std::uint16_t>(v));
  }

  /// One's-complement of the folded sum.
  [[nodiscard]] std::uint16_t Finalize() const;

 private:
  std::uint32_t sum_ = 0;
};

/// Checksums a single contiguous range.
std::uint16_t Checksum(std::span<const std::uint8_t> data);

/// Adds the IPv4 pseudo-header (src, dst, protocol, length) used by UDP/TCP.
void AddPseudoHeader(InternetChecksum& sum, Ipv4Address src, Ipv4Address dst,
                     std::uint8_t protocol, std::uint16_t length);

}  // namespace sentinel::net
