#include "net/dhcp.h"

namespace sentinel::net {

namespace {
constexpr std::uint32_t kMagicCookie = 0x63825363;
constexpr std::uint8_t kOptMessageType = 53;
constexpr std::uint8_t kOptRequestedIp = 50;
constexpr std::uint8_t kOptServerId = 54;
constexpr std::uint8_t kOptHostname = 12;
constexpr std::uint8_t kOptParamRequestList = 55;
constexpr std::uint8_t kOptEnd = 255;

DhcpOption MakeTypeOption(DhcpMessageType t) {
  return DhcpOption{kOptMessageType, {static_cast<std::uint8_t>(t)}};
}

DhcpOption MakeIpOption(std::uint8_t code, Ipv4Address ip) {
  const std::uint32_t v = ip.value();
  return DhcpOption{code,
                    {static_cast<std::uint8_t>(v >> 24),
                     static_cast<std::uint8_t>(v >> 16),
                     static_cast<std::uint8_t>(v >> 8),
                     static_cast<std::uint8_t>(v)}};
}

DhcpOption MakeStringOption(std::uint8_t code, const std::string& s) {
  return DhcpOption{code, std::vector<std::uint8_t>(s.begin(), s.end())};
}
}  // namespace

std::optional<DhcpMessageType> DhcpMessage::MessageType() const {
  for (const auto& opt : options) {
    if (opt.code == kOptMessageType && opt.data.size() == 1)
      return static_cast<DhcpMessageType>(opt.data[0]);
  }
  return std::nullopt;
}

DhcpMessage DhcpMessage::Discover(
    const MacAddress& mac, std::uint32_t xid, const std::string& hostname,
    const std::vector<std::uint8_t>& param_request) {
  DhcpMessage m;
  m.op = 1;
  m.transaction_id = xid;
  m.flags = 0x8000;
  m.client_mac = mac;
  m.options.push_back(MakeTypeOption(DhcpMessageType::kDiscover));
  if (!hostname.empty())
    m.options.push_back(MakeStringOption(kOptHostname, hostname));
  if (!param_request.empty())
    m.options.push_back(DhcpOption{kOptParamRequestList, param_request});
  return m;
}

DhcpMessage DhcpMessage::Request(const MacAddress& mac, std::uint32_t xid,
                                 Ipv4Address requested, Ipv4Address server,
                                 const std::string& hostname) {
  DhcpMessage m;
  m.op = 1;
  m.transaction_id = xid;
  m.flags = 0x8000;
  m.client_mac = mac;
  m.options.push_back(MakeTypeOption(DhcpMessageType::kRequest));
  m.options.push_back(MakeIpOption(kOptRequestedIp, requested));
  m.options.push_back(MakeIpOption(kOptServerId, server));
  if (!hostname.empty())
    m.options.push_back(MakeStringOption(kOptHostname, hostname));
  return m;
}

DhcpMessage DhcpMessage::Offer(const DhcpMessage& discover, Ipv4Address offered,
                               Ipv4Address server) {
  DhcpMessage m;
  m.op = 2;
  m.transaction_id = discover.transaction_id;
  m.your_ip = offered;
  m.server_ip = server;
  m.client_mac = discover.client_mac;
  m.options.push_back(MakeTypeOption(DhcpMessageType::kOffer));
  m.options.push_back(MakeIpOption(kOptServerId, server));
  return m;
}

DhcpMessage DhcpMessage::Ack(const DhcpMessage& request, Ipv4Address assigned,
                             Ipv4Address server) {
  DhcpMessage m;
  m.op = 2;
  m.transaction_id = request.transaction_id;
  m.your_ip = assigned;
  m.server_ip = server;
  m.client_mac = request.client_mac;
  m.options.push_back(MakeTypeOption(DhcpMessageType::kAck));
  m.options.push_back(MakeIpOption(kOptServerId, server));
  return m;
}

DhcpMessage DhcpMessage::BootpRequest(const MacAddress& mac,
                                      std::uint32_t xid) {
  DhcpMessage m;
  m.op = 1;
  m.transaction_id = xid;
  m.client_mac = mac;
  // No options: the encoder emits a plain BOOTP message without the cookie.
  return m;
}

void DhcpMessage::Encode(ByteWriter& w) const {
  w.WriteU8(op);
  w.WriteU8(1);  // htype: Ethernet
  w.WriteU8(6);  // hlen
  w.WriteU8(0);  // hops
  w.WriteU32(transaction_id);
  w.WriteU16(seconds);
  w.WriteU16(flags);
  w.WriteU32(client_ip.value());
  w.WriteU32(your_ip.value());
  w.WriteU32(server_ip.value());
  w.WriteU32(gateway_ip.value());
  w.WriteBytes(client_mac.octets());
  w.WriteZeros(10);   // chaddr padding
  w.WriteZeros(64);   // sname
  w.WriteZeros(128);  // file
  if (!options.empty()) {
    w.WriteU32(kMagicCookie);
    for (const auto& opt : options) {
      w.WriteU8(opt.code);
      w.WriteU8(static_cast<std::uint8_t>(opt.data.size()));
      w.WriteBytes(opt.data);
    }
    w.WriteU8(kOptEnd);
  }
}

DhcpMessage DhcpMessage::Decode(ByteReader& r) {
  DhcpMessage m;
  m.op = r.ReadU8();
  const std::uint8_t htype = r.ReadU8();
  const std::uint8_t hlen = r.ReadU8();
  if (htype != 1 || hlen != 6) throw CodecError("unsupported DHCP hardware");
  r.ReadU8();  // hops
  m.transaction_id = r.ReadU32();
  m.seconds = r.ReadU16();
  m.flags = r.ReadU16();
  m.client_ip = Ipv4Address(r.ReadU32());
  m.your_ip = Ipv4Address(r.ReadU32());
  m.server_ip = Ipv4Address(r.ReadU32());
  m.gateway_ip = Ipv4Address(r.ReadU32());
  auto mac = r.ReadBytes(6);
  std::array<std::uint8_t, 6> a{};
  std::copy(mac.begin(), mac.end(), a.begin());
  m.client_mac = MacAddress(a);
  r.Skip(10 + 64 + 128);
  if (r.remaining() >= 4) {
    const std::uint32_t cookie = r.ReadU32();
    if (cookie != kMagicCookie) throw CodecError("bad DHCP magic cookie");
    while (r.remaining() > 0) {
      const std::uint8_t code = r.ReadU8();
      if (code == kOptEnd) break;
      if (code == 0) continue;  // pad
      const std::uint8_t len = r.ReadU8();
      auto data = r.ReadBytes(len);
      m.options.push_back(
          DhcpOption{code, std::vector<std::uint8_t>(data.begin(), data.end())});
    }
  }
  return m;
}

}  // namespace sentinel::net
