// DHCP / BOOTP codec (RFC 2131). IoT devices run the full
// DISCOVER/OFFER/REQUEST/ACK exchange during setup; some older stacks send
// plain BOOTP (no option 53), which Table I counts as a separate feature.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

enum class DhcpMessageType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kDecline = 4,
  kAck = 5,
  kNak = 6,
  kRelease = 7,
  kInform = 8,
};

struct DhcpOption {
  std::uint8_t code = 0;
  std::vector<std::uint8_t> data;
};

struct DhcpMessage {
  std::uint8_t op = 1;  // 1 = BOOTREQUEST, 2 = BOOTREPLY
  std::uint32_t transaction_id = 0;
  std::uint16_t seconds = 0;
  std::uint16_t flags = 0;  // 0x8000 = broadcast
  Ipv4Address client_ip;    // ciaddr
  Ipv4Address your_ip;      // yiaddr
  Ipv4Address server_ip;    // siaddr
  Ipv4Address gateway_ip;   // giaddr
  MacAddress client_mac;    // chaddr
  /// Options after the magic cookie. Plain BOOTP messages have none.
  std::vector<DhcpOption> options;

  /// Message type from option 53, or nullopt for plain BOOTP.
  [[nodiscard]] std::optional<DhcpMessageType> MessageType() const;
  /// True when the message carries the DHCP magic cookie + options.
  [[nodiscard]] bool IsDhcp() const { return !options.empty(); }

  static DhcpMessage Discover(const MacAddress& mac, std::uint32_t xid,
                              const std::string& hostname,
                              const std::vector<std::uint8_t>& param_request);
  static DhcpMessage Request(const MacAddress& mac, std::uint32_t xid,
                             Ipv4Address requested, Ipv4Address server,
                             const std::string& hostname);
  static DhcpMessage Offer(const DhcpMessage& discover, Ipv4Address offered,
                           Ipv4Address server);
  static DhcpMessage Ack(const DhcpMessage& request, Ipv4Address assigned,
                         Ipv4Address server);
  /// Legacy BOOTP request (no options); a few hub devices emit these.
  static DhcpMessage BootpRequest(const MacAddress& mac, std::uint32_t xid);

  void Encode(ByteWriter& w) const;
  static DhcpMessage Decode(ByteReader& r);
};

}  // namespace sentinel::net
