#include "net/dns.h"

namespace sentinel::net {

namespace {

void EncodeRecord(ByteWriter& w, const DnsRecord& rec) {
  EncodeDnsName(w, rec.name);
  w.WriteU16(static_cast<std::uint16_t>(rec.type));
  w.WriteU16(rec.klass);
  w.WriteU32(rec.ttl);
  w.WriteU16(static_cast<std::uint16_t>(rec.rdata.size()));
  w.WriteBytes(rec.rdata);
}

DnsRecord DecodeRecord(ByteReader& r, std::span<const std::uint8_t> full) {
  DnsRecord rec;
  rec.name = DecodeDnsName(r, full);
  rec.type = static_cast<DnsType>(r.ReadU16());
  rec.klass = r.ReadU16();
  rec.ttl = r.ReadU32();
  const std::uint16_t rdlen = r.ReadU16();
  auto data = r.ReadBytes(rdlen);
  rec.rdata.assign(data.begin(), data.end());
  return rec;
}

}  // namespace

void EncodeDnsName(ByteWriter& w, const std::string& name) {
  std::size_t start = 0;
  while (start < name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = dot - start;
    if (len == 0 || len > 63) throw CodecError("bad DNS label length");
    w.WriteU8(static_cast<std::uint8_t>(len));
    w.WriteString(std::string_view(name).substr(start, len));
    start = dot + 1;
  }
  w.WriteU8(0);
}

std::string DecodeDnsName(ByteReader& r, std::span<const std::uint8_t> full) {
  std::string out;
  int jumps = 0;
  ByteReader* cur = &r;
  // Storage for pointer-following readers; at most one level deep at a time,
  // but chains are allowed up to a jump budget.
  std::vector<ByteReader> chain;
  chain.reserve(4);
  while (true) {
    const std::uint8_t len = cur->ReadU8();
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {  // compression pointer
      const std::uint16_t offset =
          static_cast<std::uint16_t>((std::uint16_t{len} & 0x3f) << 8) |
          cur->ReadU8();
      if (++jumps > 8) throw CodecError("DNS compression loop");
      if (offset >= full.size()) throw CodecError("DNS pointer out of range");
      chain.emplace_back(full.subspan(offset));
      cur = &chain.back();
      continue;
    }
    if ((len & 0xc0) != 0) throw CodecError("bad DNS label flags");
    auto label = cur->ReadBytes(len);
    if (!out.empty()) out += '.';
    out.append(label.begin(), label.end());
  }
  return out;
}

DnsRecord DnsRecord::A(const std::string& name, Ipv4Address ip,
                       std::uint32_t ttl) {
  DnsRecord rec;
  rec.name = name;
  rec.type = DnsType::kA;
  rec.ttl = ttl;
  const std::uint32_t v = ip.value();
  rec.rdata = {static_cast<std::uint8_t>(v >> 24),
               static_cast<std::uint8_t>(v >> 16),
               static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v)};
  return rec;
}

DnsRecord DnsRecord::Ptr(const std::string& name, const std::string& target,
                         std::uint32_t ttl) {
  DnsRecord rec;
  rec.name = name;
  rec.type = DnsType::kPtr;
  rec.ttl = ttl;
  ByteWriter w;
  EncodeDnsName(w, target);
  rec.rdata = std::move(w).Take();
  return rec;
}

DnsMessage DnsMessage::Query(std::uint16_t id, const std::string& name,
                             DnsType type) {
  DnsMessage m;
  m.id = id;
  m.flags = 0x0100;
  m.questions.push_back(DnsQuestion{name, type, 1});
  return m;
}

DnsMessage DnsMessage::Response(const DnsMessage& query,
                                Ipv4Address answer_ip) {
  DnsMessage m;
  m.id = query.id;
  m.flags = 0x8180;  // response, RD, RA
  m.questions = query.questions;
  if (!query.questions.empty())
    m.answers.push_back(DnsRecord::A(query.questions.front().name, answer_ip));
  return m;
}

DnsMessage DnsMessage::MdnsAnnounce(const std::string& instance,
                                    const std::string& service,
                                    Ipv4Address ip) {
  DnsMessage m;
  m.id = 0;
  m.flags = 0x8400;  // response, authoritative
  m.answers.push_back(DnsRecord::Ptr(service, instance + "." + service));
  m.additional.push_back(DnsRecord::A(instance + ".local", ip));
  return m;
}

DnsMessage DnsMessage::MdnsQuery(const std::string& service) {
  DnsMessage m;
  m.id = 0;
  m.flags = 0x0000;
  m.questions.push_back(DnsQuestion{service, DnsType::kPtr, 1});
  return m;
}

void DnsMessage::Encode(ByteWriter& w) const {
  w.WriteU16(id);
  w.WriteU16(flags);
  w.WriteU16(static_cast<std::uint16_t>(questions.size()));
  w.WriteU16(static_cast<std::uint16_t>(answers.size()));
  w.WriteU16(static_cast<std::uint16_t>(authority.size()));
  w.WriteU16(static_cast<std::uint16_t>(additional.size()));
  for (const auto& q : questions) {
    EncodeDnsName(w, q.name);
    w.WriteU16(static_cast<std::uint16_t>(q.type));
    w.WriteU16(q.klass);
  }
  for (const auto& rec : answers) EncodeRecord(w, rec);
  for (const auto& rec : authority) EncodeRecord(w, rec);
  for (const auto& rec : additional) EncodeRecord(w, rec);
}

DnsMessage DnsMessage::Decode(ByteReader& r) {
  const auto full = r.rest();
  DnsMessage m;
  m.id = r.ReadU16();
  m.flags = r.ReadU16();
  const std::uint16_t qd = r.ReadU16();
  const std::uint16_t an = r.ReadU16();
  const std::uint16_t ns = r.ReadU16();
  const std::uint16_t ar = r.ReadU16();
  for (int i = 0; i < qd; ++i) {
    DnsQuestion q;
    q.name = DecodeDnsName(r, full);
    q.type = static_cast<DnsType>(r.ReadU16());
    q.klass = r.ReadU16();
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an; ++i) m.answers.push_back(DecodeRecord(r, full));
  for (int i = 0; i < ns; ++i) m.authority.push_back(DecodeRecord(r, full));
  for (int i = 0; i < ar; ++i) m.additional.push_back(DecodeRecord(r, full));
  return m;
}

}  // namespace sentinel::net
