// DNS message codec (RFC 1035) with name compression on decode; also used
// for mDNS (RFC 6762), which shares the wire format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

enum class DnsType : std::uint16_t {
  kA = 1,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kSrv = 33,
  kAny = 255,
};

struct DnsQuestion {
  std::string name;  // dotted form, e.g. "time.nist.gov"
  DnsType type = DnsType::kA;
  std::uint16_t klass = 1;  // IN; mDNS sets the top bit for unicast-response
};

struct DnsRecord {
  std::string name;
  DnsType type = DnsType::kA;
  std::uint16_t klass = 1;
  std::uint32_t ttl = 120;
  std::vector<std::uint8_t> rdata;

  static DnsRecord A(const std::string& name, Ipv4Address ip,
                     std::uint32_t ttl = 120);
  static DnsRecord Ptr(const std::string& name, const std::string& target,
                       std::uint32_t ttl = 4500);
};

struct DnsMessage {
  std::uint16_t id = 0;
  std::uint16_t flags = 0x0100;  // standard query, RD
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;
  std::vector<DnsRecord> authority;
  std::vector<DnsRecord> additional;

  [[nodiscard]] bool IsResponse() const { return (flags & 0x8000) != 0; }

  static DnsMessage Query(std::uint16_t id, const std::string& name,
                          DnsType type = DnsType::kA);
  static DnsMessage Response(const DnsMessage& query, Ipv4Address answer_ip);
  /// mDNS announcement of `instance` offering `service` (e.g.
  /// "_hue._tcp.local"), as service-discovery capable devices send.
  static DnsMessage MdnsAnnounce(const std::string& instance,
                                 const std::string& service, Ipv4Address ip);
  /// mDNS query for a service type (QU question, id 0, no RD).
  static DnsMessage MdnsQuery(const std::string& service);

  void Encode(ByteWriter& w) const;
  static DnsMessage Decode(ByteReader& r);
};

/// Encodes a dotted name into DNS label format (no compression).
void EncodeDnsName(ByteWriter& w, const std::string& name);
/// Decodes a possibly-compressed name from `r`, using `full` for pointer
/// targets.
std::string DecodeDnsName(ByteReader& r, std::span<const std::uint8_t> full);

}  // namespace sentinel::net
