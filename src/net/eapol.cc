#include "net/eapol.h"

namespace sentinel::net {

EapolFrame EapolFrame::KeyHandshake(int index) {
  EapolFrame f;
  f.type = EapolType::kKey;
  // EAPOL-Key descriptor: 95 bytes fixed; messages 2 and 3 carry key data.
  std::size_t body_size = 95;
  if (index == 2) body_size += 22;   // WPA IE
  if (index == 3) body_size += 56;   // encrypted GTK KDE
  f.body.assign(body_size, 0);
  if (!f.body.empty()) f.body[0] = 2;  // descriptor type: RSN
  return f;
}

void EapolFrame::Encode(ByteWriter& w) const {
  w.WriteU8(version);
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU16(static_cast<std::uint16_t>(body.size()));
  w.WriteBytes(body);
}

EapolFrame EapolFrame::Decode(ByteReader& r) {
  EapolFrame f;
  f.version = r.ReadU8();
  f.type = static_cast<EapolType>(r.ReadU8());
  const std::uint16_t len = r.ReadU16();
  auto body = r.ReadBytes(len);
  f.body.assign(body.begin(), body.end());
  return f;
}

}  // namespace sentinel::net
