// EAPoL (IEEE 802.1X) codec — the 4-way WPA2 key handshake frames visible
// when a device authenticates to the gateway's WiFi interface.
#pragma once

#include <cstdint>
#include <vector>

#include "net/byte_io.h"

namespace sentinel::net {

enum class EapolType : std::uint8_t {
  kEapPacket = 0,
  kStart = 1,
  kLogoff = 2,
  kKey = 3,
};

struct EapolFrame {
  std::uint8_t version = 2;  // 802.1X-2004
  EapolType type = EapolType::kKey;
  std::vector<std::uint8_t> body;

  /// Message `index` (1-4) of a WPA2 4-way handshake with a realistic body
  /// size (95-byte key frame + optional key data).
  static EapolFrame KeyHandshake(int index);

  void Encode(ByteWriter& w) const;
  static EapolFrame Decode(ByteReader& r);
};

}  // namespace sentinel::net
