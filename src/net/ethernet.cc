#include "net/ethernet.h"

namespace sentinel::net {

void EthernetHeader::Encode(ByteWriter& w) const {
  w.WriteBytes(dst.octets());
  w.WriteBytes(src.octets());
  w.WriteU16(ether_type);
}

EthernetHeader EthernetHeader::Decode(ByteReader& r) {
  EthernetHeader h;
  auto dst = r.ReadBytes(6);
  auto src = r.ReadBytes(6);
  std::array<std::uint8_t, 6> d{}, s{};
  std::copy(dst.begin(), dst.end(), d.begin());
  std::copy(src.begin(), src.end(), s.begin());
  h.dst = MacAddress(d);
  h.src = MacAddress(s);
  h.ether_type = r.ReadU16();
  return h;
}

void LlcHeader::Encode(ByteWriter& w) const {
  w.WriteU8(dsap);
  w.WriteU8(ssap);
  w.WriteU8(control);
}

LlcHeader LlcHeader::Decode(ByteReader& r) {
  LlcHeader h;
  h.dsap = r.ReadU8();
  h.ssap = r.ReadU8();
  h.control = r.ReadU8();
  return h;
}

}  // namespace sentinel::net
