// Ethernet II and IEEE 802.3/LLC framing.
#pragma once

#include <cstdint>
#include <optional>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

/// Ethernet II header (dst, src, ethertype). For IEEE 802.3 frames the
/// type field instead carries the payload length (<= 1500) and an LLC
/// header follows; see LlcHeader.
struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;  // or length if <= 1500

  static constexpr std::size_t kSize = 14;
  /// True when the type/length field is an IEEE 802.3 length, meaning an
  /// LLC header follows instead of an Ethernet II payload.
  [[nodiscard]] bool IsLengthField() const { return ether_type <= 1500; }

  void Encode(ByteWriter& w) const;
  static EthernetHeader Decode(ByteReader& r);
};

/// IEEE 802.2 LLC header (DSAP/SSAP/control), as emitted by some IoT hubs
/// (e.g. spanning-tree or vendor discovery frames).
struct LlcHeader {
  std::uint8_t dsap = 0x42;
  std::uint8_t ssap = 0x42;
  std::uint8_t control = 0x03;

  static constexpr std::size_t kSize = 3;

  void Encode(ByteWriter& w) const;
  static LlcHeader Decode(ByteReader& r);
};

}  // namespace sentinel::net
