#include "net/frame.h"

namespace sentinel::net {

namespace {

bool PortIs(const ParsedPacket& p, std::uint16_t port) {
  return (p.src_port && *p.src_port == port) ||
         (p.dst_port && *p.dst_port == port);
}

// Application-protocol attribution by well-known port, mirroring what a
// passive monitor (and the paper's scapy-based extractor) can infer without
// payload inspection. DHCP additionally requires the magic cookie, which
// distinguishes it from plain BOOTP.
void ClassifyApplication(ParsedPacket& p,
                         std::span<const std::uint8_t> transport_payload,
                         bool is_tcp) {
  bool recognized = false;
  if (!is_tcp) {
    if (PortIs(p, kPortDhcpServer) || PortIs(p, kPortDhcpClient)) {
      p.protocols.Set(Protocol::kBootp);
      recognized = true;
      // DHCP proper: BOOTP body (236 bytes) followed by the magic cookie.
      if (transport_payload.size() >= 240 && transport_payload[236] == 0x63 &&
          transport_payload[237] == 0x82 && transport_payload[238] == 0x53 &&
          transport_payload[239] == 0x63) {
        p.protocols.Set(Protocol::kDhcp);
      }
    } else if (PortIs(p, kPortDns)) {
      p.protocols.Set(Protocol::kDns);
      recognized = true;
    } else if (PortIs(p, kPortMdns)) {
      p.protocols.Set(Protocol::kMdns);
      recognized = true;
    } else if (PortIs(p, kPortSsdp)) {
      p.protocols.Set(Protocol::kSsdp);
      recognized = true;
    } else if (PortIs(p, kPortNtp)) {
      p.protocols.Set(Protocol::kNtp);
      recognized = true;
    }
  } else {
    if (PortIs(p, kPortHttp) || PortIs(p, kPortHttpAlt)) {
      p.protocols.Set(Protocol::kHttp);
    } else if (PortIs(p, kPortHttps) || PortIs(p, kPortHttpsAlt)) {
      p.protocols.Set(Protocol::kHttps);
    }
    // HTTP bodies and TLS records are opaque to the monitor: any non-empty
    // TCP payload counts as raw data.
  }
  if (!transport_payload.empty() && !recognized) p.has_raw_data = true;
}

void ParseIpv4(ParsedPacket& p, ByteReader& r) {
  std::size_t payload_len = 0;
  const Ipv4Header ip = Ipv4Header::Decode(r, payload_len);
  p.protocols.Set(Protocol::kIp);
  p.src_ip = IpAddress(ip.src);
  p.dst_ip = IpAddress(ip.dst);
  p.ip_opt_padding = ip.options.padding;
  p.ip_opt_router_alert = ip.options.router_alert;
  if (payload_len > r.remaining()) throw CodecError("IPv4 payload truncated");

  switch (ip.protocol) {
    case kIpProtoIcmp: {
      p.protocols.Set(Protocol::kIcmp);
      const IcmpMessage icmp = IcmpMessage::Decode(r, payload_len);
      if (!icmp.payload.empty()) p.has_raw_data = true;
      break;
    }
    case kIpProtoUdp: {
      p.protocols.Set(Protocol::kUdp);
      const UdpDatagram udp = UdpDatagram::Decode(r);
      p.src_port = udp.src_port;
      p.dst_port = udp.dst_port;
      ClassifyApplication(p, udp.payload, /*is_tcp=*/false);
      break;
    }
    case kIpProtoTcp: {
      p.protocols.Set(Protocol::kTcp);
      const TcpSegment tcp = TcpSegment::Decode(r, payload_len);
      p.src_port = tcp.src_port;
      p.dst_port = tcp.dst_port;
      ClassifyApplication(p, tcp.payload, /*is_tcp=*/true);
      break;
    }
    case kIpProtoIgmp: {
      // IGMP is not one of Table I's application protocols, but it is a
      // recognized header (no raw data) and carries the router-alert IP
      // option the fingerprint does track.
      IgmpMessage::Decode(r);
      break;
    }
    default:
      if (payload_len > 0) p.has_raw_data = true;
      break;
  }
}

void ParseIpv6(ParsedPacket& p, ByteReader& r) {
  std::size_t payload_len = 0;
  const Ipv6Header ip = Ipv6Header::Decode(r, payload_len);
  p.protocols.Set(Protocol::kIp);
  p.src_ip = IpAddress(ip.src);
  p.dst_ip = IpAddress(ip.dst);
  if (payload_len > r.remaining()) throw CodecError("IPv6 payload truncated");

  switch (ip.next_header) {
    case kIpProtoIcmpv6: {
      p.protocols.Set(Protocol::kIcmpv6);
      Icmpv6Message::Decode(r, payload_len);
      break;
    }
    case kIpProtoUdp: {
      p.protocols.Set(Protocol::kUdp);
      const UdpDatagram udp = UdpDatagram::Decode(r);
      p.src_port = udp.src_port;
      p.dst_port = udp.dst_port;
      ClassifyApplication(p, udp.payload, /*is_tcp=*/false);
      break;
    }
    case kIpProtoTcp: {
      p.protocols.Set(Protocol::kTcp);
      const TcpSegment tcp = TcpSegment::Decode(r, payload_len);
      p.src_port = tcp.src_port;
      p.dst_port = tcp.dst_port;
      ClassifyApplication(p, tcp.payload, /*is_tcp=*/true);
      break;
    }
    default:
      if (payload_len > 0) p.has_raw_data = true;
      break;
  }
}

}  // namespace

ParsedPacket ParseFrame(const Frame& frame) {
  ByteReader r(frame.bytes);
  const EthernetHeader eth = EthernetHeader::Decode(r);

  ParsedPacket p;
  p.timestamp_ns = frame.timestamp_ns;
  p.src_mac = eth.src;
  p.dst_mac = eth.dst;
  p.size_bytes = static_cast<std::uint32_t>(frame.bytes.size());

  if (eth.IsLengthField()) {
    p.protocols.Set(Protocol::kLlc);
    LlcHeader::Decode(r);
    if (r.remaining() > 0) p.has_raw_data = true;
    return p;
  }

  switch (eth.ether_type) {
    case kEtherTypeArp:
      p.protocols.Set(Protocol::kArp);
      ArpPacket::Decode(r);
      break;
    case kEtherTypeEapol:
      p.protocols.Set(Protocol::kEapol);
      EapolFrame::Decode(r);
      break;
    case kEtherTypeIpv4:
      ParseIpv4(p, r);
      break;
    case kEtherTypeIpv6:
      ParseIpv6(p, r);
      break;
    default:
      // Unknown ethertype: visible but unattributable payload.
      if (r.remaining() > 0) p.has_raw_data = true;
      break;
  }
  return p;
}

namespace {

Frame Finish(std::uint64_t ts_ns, ByteWriter&& w) {
  Frame f;
  f.timestamp_ns = ts_ns;
  f.bytes = std::move(w).Take();
  return f;
}

ByteWriter StartEthernet(const MacAddress& src, const MacAddress& dst,
                         std::uint16_t ether_type) {
  ByteWriter w(128);
  EthernetHeader{dst, src, ether_type}.Encode(w);
  return w;
}

}  // namespace

Frame BuildArpFrame(std::uint64_t ts_ns, const MacAddress& src,
                    const MacAddress& dst, const ArpPacket& arp) {
  ByteWriter w = StartEthernet(src, dst, kEtherTypeArp);
  arp.Encode(w);
  return Finish(ts_ns, std::move(w));
}

Frame BuildEapolFrame(std::uint64_t ts_ns, const MacAddress& src,
                      const MacAddress& dst, const EapolFrame& eapol) {
  ByteWriter w = StartEthernet(src, dst, kEtherTypeEapol);
  eapol.Encode(w);
  return Finish(ts_ns, std::move(w));
}

Frame BuildLlcFrame(std::uint64_t ts_ns, const MacAddress& src,
                    const MacAddress& dst, std::size_t payload_size) {
  const std::uint16_t length =
      static_cast<std::uint16_t>(LlcHeader::kSize + payload_size);
  ByteWriter w = StartEthernet(src, dst, length);
  LlcHeader{}.Encode(w);
  w.WriteZeros(payload_size);
  return Finish(ts_ns, std::move(w));
}

namespace {

Frame BuildIpv4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, Ipv4Address src_ip,
                     Ipv4Address dst_ip, std::uint8_t protocol,
                     const Ipv4Meta& meta,
                     std::span<const std::uint8_t> payload) {
  ByteWriter w = StartEthernet(src_mac, dst_mac, kEtherTypeIpv4);
  Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.protocol = protocol;
  ip.ttl = meta.ttl;
  ip.identification = meta.identification;
  ip.options = meta.options;
  ip.Encode(w, payload);
  return Finish(ts_ns, std::move(w));
}

}  // namespace

Frame BuildUdp4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, Ipv4Address src_ip,
                     Ipv4Address dst_ip, const UdpDatagram& udp,
                     const Ipv4Meta& meta) {
  ByteWriter payload;
  udp.Encode(payload, src_ip, dst_ip);
  return BuildIpv4Frame(ts_ns, src_mac, dst_mac, src_ip, dst_ip, kIpProtoUdp,
                        meta, payload.bytes());
}

Frame BuildTcp4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, Ipv4Address src_ip,
                     Ipv4Address dst_ip, const TcpSegment& tcp,
                     const Ipv4Meta& meta) {
  ByteWriter payload;
  tcp.Encode(payload, src_ip, dst_ip);
  return BuildIpv4Frame(ts_ns, src_mac, dst_mac, src_ip, dst_ip, kIpProtoTcp,
                        meta, payload.bytes());
}

Frame BuildIcmp4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                      const MacAddress& dst_mac, Ipv4Address src_ip,
                      Ipv4Address dst_ip, const IcmpMessage& icmp,
                      const Ipv4Meta& meta) {
  ByteWriter payload;
  icmp.Encode(payload);
  return BuildIpv4Frame(ts_ns, src_mac, dst_mac, src_ip, dst_ip, kIpProtoIcmp,
                        meta, payload.bytes());
}

MacAddress MulticastMacFor(Ipv4Address group) {
  const std::uint32_t v = group.value();
  return MacAddress({0x01, 0x00, 0x5e,
                     static_cast<std::uint8_t>((v >> 16) & 0x7f),
                     static_cast<std::uint8_t>(v >> 8),
                     static_cast<std::uint8_t>(v)});
}

Frame BuildIgmpFrame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     Ipv4Address src_ip, const IgmpMessage& igmp) {
  ByteWriter payload;
  igmp.Encode(payload);
  Ipv4Meta meta;
  meta.ttl = 1;
  meta.options.router_alert = true;
  return BuildIpv4Frame(ts_ns, src_mac, MulticastMacFor(igmp.group), src_ip,
                        igmp.group, kIpProtoIgmp, meta, payload.bytes());
}

Frame BuildIcmpv6Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                       const MacAddress& dst_mac, const Ipv6Address& src_ip,
                       const Ipv6Address& dst_ip, const Icmpv6Message& msg) {
  ByteWriter payload;
  msg.Encode(payload, src_ip, dst_ip);
  ByteWriter w = StartEthernet(src_mac, dst_mac, kEtherTypeIpv6);
  Ipv6Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.next_header = kIpProtoIcmpv6;
  ip.Encode(w, payload.bytes());
  return Finish(ts_ns, std::move(w));
}

Frame BuildUdp6Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, const Ipv6Address& src_ip,
                     const Ipv6Address& dst_ip, const UdpDatagram& udp) {
  ByteWriter payload;
  udp.EncodeNoChecksum(payload);
  ByteWriter w = StartEthernet(src_mac, dst_mac, kEtherTypeIpv6);
  Ipv6Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.next_header = kIpProtoUdp;
  ip.hop_limit = 255;
  ip.Encode(w, payload.bytes());
  return Finish(ts_ns, std::move(w));
}

}  // namespace sentinel::net
