// Full-stack frame construction and parsing.
//
// A Frame is the raw on-the-wire byte image of one Ethernet frame plus its
// capture timestamp — exactly what tcpdump/libpcap would hand the Security
// Gateway. ParseFrame() decodes the protocol stack and produces a
// ParsedPacket summary carrying everything the Table I feature extractor
// needs (protocol flags, IP options, addresses, ports, size, raw-data flag).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/address.h"
#include "net/arp.h"
#include "net/dhcp.h"
#include "net/dns.h"
#include "net/eapol.h"
#include "net/ethernet.h"
#include "net/http.h"
#include "net/icmp.h"
#include "net/igmp.h"
#include "net/ipv4.h"
#include "net/ipv6.h"
#include "net/ntp.h"
#include "net/protocols.h"
#include "net/ssdp.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace sentinel::net {

/// One captured Ethernet frame: wire bytes + capture timestamp.
struct Frame {
  std::uint64_t timestamp_ns = 0;
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] std::size_t size() const { return bytes.size(); }
};

/// Protocol-stack summary of a frame, sufficient for fingerprinting
/// (payloads are deliberately not retained beyond the raw-data flag, so the
/// pipeline works identically on encrypted traffic).
struct ParsedPacket {
  std::uint64_t timestamp_ns = 0;
  MacAddress src_mac;
  MacAddress dst_mac;
  ProtocolSet protocols;
  std::optional<IpAddress> src_ip;
  std::optional<IpAddress> dst_ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  bool ip_opt_padding = false;
  bool ip_opt_router_alert = false;
  std::uint32_t size_bytes = 0;
  /// Unparsed payload above the recognized headers (HTTP bodies, TLS
  /// records, vendor-proprietary UDP — anything a passive monitor cannot
  /// attribute to a known application protocol).
  bool has_raw_data = false;
};

/// Parses the protocol stack of `frame`. Throws CodecError on frames too
/// malformed to attribute to a source MAC; tolerates unknown upper layers
/// (they simply set has_raw_data).
ParsedPacket ParseFrame(const Frame& frame);

// ---- Builders -------------------------------------------------------------
// Each builder returns a complete, checksummed wire frame. Builders are
// used both by the device-behaviour simulator and by tests.

Frame BuildArpFrame(std::uint64_t ts_ns, const MacAddress& src,
                    const MacAddress& dst, const ArpPacket& arp);

Frame BuildEapolFrame(std::uint64_t ts_ns, const MacAddress& src,
                      const MacAddress& dst, const EapolFrame& eapol);

/// IEEE 802.3 + LLC frame with `payload_size` opaque payload bytes.
Frame BuildLlcFrame(std::uint64_t ts_ns, const MacAddress& src,
                    const MacAddress& dst, std::size_t payload_size);

struct Ipv4Meta {
  std::uint8_t ttl = 64;
  std::uint16_t identification = 0;
  Ipv4Options options;
};

Frame BuildUdp4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, Ipv4Address src_ip,
                     Ipv4Address dst_ip, const UdpDatagram& udp,
                     const Ipv4Meta& meta = {});

Frame BuildTcp4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, Ipv4Address src_ip,
                     Ipv4Address dst_ip, const TcpSegment& tcp,
                     const Ipv4Meta& meta = {});

Frame BuildIcmp4Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                      const MacAddress& dst_mac, Ipv4Address src_ip,
                      Ipv4Address dst_ip, const IcmpMessage& icmp,
                      const Ipv4Meta& meta = {});

/// IGMP membership report/leave for `group`, addressed to the group's
/// multicast MAC, TTL 1, with the Router Alert IP option set (RFC 2236).
Frame BuildIgmpFrame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     Ipv4Address src_ip, const IgmpMessage& igmp);

/// Multicast MAC address for an IPv4 multicast group (01:00:5e + low 23
/// bits of the group address).
MacAddress MulticastMacFor(Ipv4Address group);

Frame BuildIcmpv6Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                       const MacAddress& dst_mac, const Ipv6Address& src_ip,
                       const Ipv6Address& dst_ip, const Icmpv6Message& msg);

/// UDP over IPv6 (mDNS over v6 and similar).
Frame BuildUdp6Frame(std::uint64_t ts_ns, const MacAddress& src_mac,
                     const MacAddress& dst_mac, const Ipv6Address& src_ip,
                     const Ipv6Address& dst_ip, const UdpDatagram& udp);

}  // namespace sentinel::net
