#include "net/http.h"

namespace sentinel::net {

HttpMessage HttpMessage::Get(const std::string& path, const std::string& host,
                             const std::string& user_agent) {
  HttpMessage m;
  m.start_line = "GET " + path + " HTTP/1.1";
  m.headers = {{"Host", host},
               {"User-Agent", user_agent},
               {"Accept", "*/*"},
               {"Connection", "keep-alive"}};
  return m;
}

HttpMessage HttpMessage::Post(const std::string& path, const std::string& host,
                              const std::string& user_agent,
                              std::size_t body_size) {
  HttpMessage m;
  m.start_line = "POST " + path + " HTTP/1.1";
  m.body.assign(body_size, std::uint8_t{'x'});
  m.headers = {{"Host", host},
               {"User-Agent", user_agent},
               {"Content-Type", "application/json"},
               {"Content-Length", std::to_string(body_size)}};
  return m;
}

HttpMessage HttpMessage::Ok(std::size_t body_size) {
  HttpMessage m;
  m.start_line = "HTTP/1.1 200 OK";
  m.body.assign(body_size, std::uint8_t{'y'});
  m.headers = {{"Content-Type", "application/json"},
               {"Content-Length", std::to_string(body_size)}};
  return m;
}

void HttpMessage::Encode(ByteWriter& w) const {
  w.WriteString(start_line);
  w.WriteString("\r\n");
  for (const auto& [name, value] : headers) {
    w.WriteString(name);
    w.WriteString(": ");
    w.WriteString(value);
    w.WriteString("\r\n");
  }
  w.WriteString("\r\n");
  w.WriteBytes(body);
}

HttpMessage HttpMessage::Decode(ByteReader& r) {
  auto bytes = r.ReadBytes(r.remaining());
  const std::string text(bytes.begin(), bytes.end());
  HttpMessage m;
  std::size_t pos = text.find("\r\n");
  if (pos == std::string::npos) throw CodecError("HTTP: missing start line");
  m.start_line = text.substr(0, pos);
  pos += 2;
  while (pos < text.size()) {
    const std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string::npos) throw CodecError("HTTP: unterminated header");
    if (eol == pos) {  // blank line: body follows
      pos = eol + 2;
      m.body.assign(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    text.end());
      return m;
    }
    const std::string line = text.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) throw CodecError("HTTP: bad header");
    std::size_t vstart = colon + 1;
    while (vstart < line.size() && line[vstart] == ' ') ++vstart;
    m.headers.emplace_back(line.substr(0, colon), line.substr(vstart));
    pos = eol + 2;
  }
  return m;
}

TlsRecord TlsRecord::ClientHello(const std::string& sni_hostname) {
  TlsRecord rec;
  rec.content_type = TlsContentType::kHandshake;
  // Handshake header (type=1 ClientHello) + plausible hello body with the
  // SNI hostname embedded so record sizes track endpoint names, as real
  // ClientHellos do.
  ByteWriter body;
  body.WriteU8(1);  // ClientHello
  const std::size_t fixed = 2 + 32 + 1 + 32 + 2 + 16 + 2 + 9 + sni_hostname.size();
  body.WriteU8(0);
  body.WriteU16(static_cast<std::uint16_t>(fixed));
  body.WriteU16(0x0303);   // client version
  body.WriteZeros(32);     // random
  body.WriteU8(32);        // session id length
  body.WriteZeros(32);
  body.WriteU16(16);       // cipher suites length
  body.WriteZeros(16);
  body.WriteU16(0x0100);   // compression
  body.WriteU16(0);        // extension type: server_name
  body.WriteU16(static_cast<std::uint16_t>(sni_hostname.size() + 5));
  body.WriteU16(static_cast<std::uint16_t>(sni_hostname.size() + 3));
  body.WriteU8(0);  // host_name
  body.WriteU16(static_cast<std::uint16_t>(sni_hostname.size()));
  body.WriteString(sni_hostname);
  rec.fragment = std::move(body).Take();
  return rec;
}

TlsRecord TlsRecord::ServerHello() {
  TlsRecord rec;
  rec.content_type = TlsContentType::kHandshake;
  rec.fragment.assign(90, 0);
  rec.fragment[0] = 2;  // ServerHello
  return rec;
}

TlsRecord TlsRecord::ApplicationData(std::size_t size) {
  TlsRecord rec;
  rec.content_type = TlsContentType::kApplicationData;
  rec.fragment.assign(size, 0xaa);
  return rec;
}

void TlsRecord::Encode(ByteWriter& w) const {
  w.WriteU8(static_cast<std::uint8_t>(content_type));
  w.WriteU16(version);
  w.WriteU16(static_cast<std::uint16_t>(fragment.size()));
  w.WriteBytes(fragment);
}

TlsRecord TlsRecord::Decode(ByteReader& r) {
  TlsRecord rec;
  rec.content_type = static_cast<TlsContentType>(r.ReadU8());
  rec.version = r.ReadU16();
  const std::uint16_t len = r.ReadU16();
  auto frag = r.ReadBytes(len);
  rec.fragment.assign(frag.begin(), frag.end());
  return rec;
}

}  // namespace sentinel::net
