// HTTP/1.1 request/response text codec and a minimal TLS record header
// builder for HTTPS traffic. The fingerprinter never reads payloads, but
// realistic byte-level traffic needs plausible message bodies and sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/byte_io.h"

namespace sentinel::net {

struct HttpMessage {
  /// "GET /setup HTTP/1.1" or "HTTP/1.1 200 OK".
  std::string start_line;
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<std::uint8_t> body;

  static HttpMessage Get(const std::string& path, const std::string& host,
                         const std::string& user_agent);
  static HttpMessage Post(const std::string& path, const std::string& host,
                          const std::string& user_agent,
                          std::size_t body_size);
  static HttpMessage Ok(std::size_t body_size);

  [[nodiscard]] bool IsRequest() const {
    return start_line.rfind("HTTP/", 0) != 0;
  }

  void Encode(ByteWriter& w) const;
  static HttpMessage Decode(ByteReader& r);
};

/// TLS record content types.
enum class TlsContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// One TLS record (header + opaque fragment). Enough structure to emit a
/// realistic-looking ClientHello/ServerHello/AppData exchange on port 443.
struct TlsRecord {
  TlsContentType content_type = TlsContentType::kHandshake;
  std::uint16_t version = 0x0303;  // TLS 1.2
  std::vector<std::uint8_t> fragment;

  static TlsRecord ClientHello(const std::string& sni_hostname);
  static TlsRecord ServerHello();
  static TlsRecord ApplicationData(std::size_t size);

  void Encode(ByteWriter& w) const;
  static TlsRecord Decode(ByteReader& r);
};

}  // namespace sentinel::net
