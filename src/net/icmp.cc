#include "net/icmp.h"

#include "net/checksum.h"
#include "net/protocols.h"

namespace sentinel::net {

IcmpMessage IcmpMessage::EchoRequest(std::uint16_t id, std::uint16_t seq,
                                     std::size_t payload_size) {
  IcmpMessage m;
  m.type = 8;
  m.identifier = id;
  m.sequence = seq;
  m.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i)
    m.payload[i] = static_cast<std::uint8_t>(i);
  return m;
}

IcmpMessage IcmpMessage::EchoReply(const IcmpMessage& request) {
  IcmpMessage m = request;
  m.type = 0;
  return m;
}

void IcmpMessage::Encode(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.WriteU8(type);
  w.WriteU8(code);
  w.WriteU16(0);  // checksum placeholder
  w.WriteU16(identifier);
  w.WriteU16(sequence);
  w.WriteBytes(payload);
  w.PatchU16(start + 2, Checksum(w.bytes().subspan(start)));
}

IcmpMessage IcmpMessage::Decode(ByteReader& r, std::size_t length) {
  if (length < 8) throw CodecError("ICMP message too short");
  IcmpMessage m;
  m.type = r.ReadU8();
  m.code = r.ReadU8();
  r.ReadU16();  // checksum
  m.identifier = r.ReadU16();
  m.sequence = r.ReadU16();
  auto rest = r.ReadBytes(length - 8);
  m.payload.assign(rest.begin(), rest.end());
  return m;
}

Icmpv6Message Icmpv6Message::RouterSolicitation(const MacAddress& source_mac) {
  Icmpv6Message m;
  m.type = Icmpv6Type::kRouterSolicitation;
  m.body.assign(4, 0);  // reserved
  // Source link-layer address option (type 1, length 1).
  m.body.push_back(1);
  m.body.push_back(1);
  const auto& o = source_mac.octets();
  m.body.insert(m.body.end(), o.begin(), o.end());
  return m;
}

Icmpv6Message Icmpv6Message::NeighborSolicitation(const Ipv6Address& target,
                                                  const MacAddress& source_mac) {
  Icmpv6Message m;
  m.type = Icmpv6Type::kNeighborSolicitation;
  m.body.assign(4, 0);  // reserved
  m.body.insert(m.body.end(), target.bytes().begin(), target.bytes().end());
  m.body.push_back(1);  // source link-layer option
  m.body.push_back(1);
  const auto& o = source_mac.octets();
  m.body.insert(m.body.end(), o.begin(), o.end());
  return m;
}

Icmpv6Message Icmpv6Message::Mldv2Report() {
  Icmpv6Message m;
  m.type = Icmpv6Type::kMldv2Report;
  // Reserved (2) + number of records (2) = 0: empty report is enough for
  // fingerprinting, which never inspects the body.
  m.body.assign(4, 0);
  return m;
}

void Icmpv6Message::Encode(ByteWriter& w, const Ipv6Address& src,
                           const Ipv6Address& dst) const {
  const std::size_t start = w.size();
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU8(code);
  w.WriteU16(0);  // checksum placeholder
  w.WriteBytes(body);

  InternetChecksum sum;
  sum.Add(src.bytes());
  sum.Add(dst.bytes());
  const std::uint32_t length = static_cast<std::uint32_t>(4 + body.size());
  sum.AddU32(length);
  sum.AddU32(kIpProtoIcmpv6);
  sum.Add(w.bytes().subspan(start));
  w.PatchU16(start + 2, sum.Finalize());
}

Icmpv6Message Icmpv6Message::Decode(ByteReader& r, std::size_t length) {
  if (length < 4) throw CodecError("ICMPv6 message too short");
  Icmpv6Message m;
  m.type = static_cast<Icmpv6Type>(r.ReadU8());
  m.code = r.ReadU8();
  r.ReadU16();  // checksum
  auto rest = r.ReadBytes(length - 4);
  m.body.assign(rest.begin(), rest.end());
  return m;
}

}  // namespace sentinel::net
