// ICMP (v4) echo and ICMPv6 (neighbour discovery, router solicitation,
// multicast listener report) codecs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

/// ICMPv4 message. Payload carried verbatim.
struct IcmpMessage {
  std::uint8_t type = 8;  // echo request
  std::uint8_t code = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;

  static IcmpMessage EchoRequest(std::uint16_t id, std::uint16_t seq,
                                 std::size_t payload_size);
  static IcmpMessage EchoReply(const IcmpMessage& request);

  [[nodiscard]] bool IsEchoRequest() const { return type == 8; }
  [[nodiscard]] bool IsEchoReply() const { return type == 0; }

  void Encode(ByteWriter& w) const;
  static IcmpMessage Decode(ByteReader& r, std::size_t length);
};

/// Common ICMPv6 message types seen during device setup.
enum class Icmpv6Type : std::uint8_t {
  kRouterSolicitation = 133,
  kRouterAdvertisement = 134,
  kNeighborSolicitation = 135,
  kNeighborAdvertisement = 136,
  kMldv2Report = 143,
};

struct Icmpv6Message {
  Icmpv6Type type = Icmpv6Type::kRouterSolicitation;
  std::uint8_t code = 0;
  std::vector<std::uint8_t> body;  // type-specific body after the checksum

  static Icmpv6Message RouterSolicitation(const MacAddress& source_mac);
  static Icmpv6Message NeighborSolicitation(const Ipv6Address& target,
                                            const MacAddress& source_mac);
  static Icmpv6Message Mldv2Report();

  /// Encodes with a pseudo-header checksum over src/dst.
  void Encode(ByteWriter& w, const Ipv6Address& src,
              const Ipv6Address& dst) const;
  static Icmpv6Message Decode(ByteReader& r, std::size_t length);
};

}  // namespace sentinel::net
