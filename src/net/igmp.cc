#include "net/igmp.h"

#include "net/checksum.h"

namespace sentinel::net {

void IgmpMessage::Encode(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU8(max_response_time);
  w.WriteU16(0);  // checksum placeholder
  w.WriteU32(group.value());
  w.PatchU16(start + 2, Checksum(w.bytes().subspan(start, kSize)));
}

IgmpMessage IgmpMessage::Decode(ByteReader& r) {
  IgmpMessage m;
  const std::uint8_t type = r.ReadU8();
  if (type != 0x11 && type != 0x16 && type != 0x17 && type != 0x12)
    throw CodecError("unknown IGMP type");
  m.type = static_cast<IgmpType>(type);
  m.max_response_time = r.ReadU8();
  r.ReadU16();  // checksum
  m.group = Ipv4Address(r.ReadU32());
  return m;
}

}  // namespace sentinel::net
