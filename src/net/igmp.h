// IGMPv2 membership reports/queries (RFC 2236). Devices that speak mDNS or
// SSDP join 224.0.0.251 / 239.255.255.250 first, and IGMP is sent with the
// IPv4 Router Alert option (and TTL 1) — the real-world source of the
// router-alert and padding features in the paper's Table I.
#pragma once

#include <cstdint>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

inline constexpr std::uint8_t kIpProtoIgmp = 2;

enum class IgmpType : std::uint8_t {
  kMembershipQuery = 0x11,
  kMembershipReportV2 = 0x16,
  kLeaveGroup = 0x17,
};

struct IgmpMessage {
  IgmpType type = IgmpType::kMembershipReportV2;
  std::uint8_t max_response_time = 0;
  Ipv4Address group;

  static constexpr std::size_t kSize = 8;

  static IgmpMessage Join(Ipv4Address group) {
    return IgmpMessage{IgmpType::kMembershipReportV2, 0, group};
  }
  static IgmpMessage Leave(Ipv4Address group) {
    return IgmpMessage{IgmpType::kLeaveGroup, 0, group};
  }

  void Encode(ByteWriter& w) const;
  static IgmpMessage Decode(ByteReader& r);
};

}  // namespace sentinel::net
