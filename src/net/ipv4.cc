#include "net/ipv4.h"

#include "net/checksum.h"

namespace sentinel::net {

namespace {
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptRouterAlert = 148;  // copied|class0|number20
}  // namespace

std::size_t Ipv4Options::EncodedSize() const {
  std::size_t len = 0;
  if (router_alert) len += 4;  // kind, length, 2-byte value
  if (padding) len += 4;       // four NOPs keep 4-byte alignment
  return len;
}

void Ipv4Header::Encode(ByteWriter& w,
                        std::span<const std::uint8_t> payload) const {
  const std::size_t header_len = HeaderSize();
  const std::size_t start = w.size();
  const std::uint16_t total_len =
      static_cast<std::uint16_t>(header_len + payload.size());

  w.WriteU8(static_cast<std::uint8_t>(0x40 | (header_len / 4)));  // ver+IHL
  w.WriteU8(dscp_ecn);
  w.WriteU16(total_len);
  w.WriteU16(identification);
  w.WriteU16(static_cast<std::uint16_t>((std::uint16_t{flags} << 13) |
                                        (fragment_offset & 0x1fff)));
  w.WriteU8(ttl);
  w.WriteU8(protocol);
  w.WriteU16(0);  // checksum placeholder
  w.WriteU32(src.value());
  w.WriteU32(dst.value());
  if (options.router_alert) {
    w.WriteU8(kOptRouterAlert);
    w.WriteU8(4);
    w.WriteU16(0);  // Router shall examine packet (RFC 2113)
  }
  if (options.padding) {
    for (int i = 0; i < 4; ++i) w.WriteU8(kOptNop);
  }
  const std::uint16_t cksum =
      Checksum(w.bytes().subspan(start, header_len));
  w.PatchU16(start + 10, cksum);
  w.WriteBytes(payload);
}

Ipv4Header Ipv4Header::Decode(ByteReader& r, std::size_t& payload_length) {
  const std::size_t start = r.position();
  const std::uint8_t ver_ihl = r.ReadU8();
  if ((ver_ihl >> 4) != 4) throw CodecError("not an IPv4 header");
  const std::size_t header_len = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (header_len < 20) throw CodecError("IPv4 IHL too small");

  Ipv4Header h;
  h.dscp_ecn = r.ReadU8();
  const std::uint16_t total_len = r.ReadU16();
  h.identification = r.ReadU16();
  const std::uint16_t flags_frag = r.ReadU16();
  h.flags = static_cast<std::uint8_t>(flags_frag >> 13);
  h.fragment_offset = flags_frag & 0x1fff;
  h.ttl = r.ReadU8();
  h.protocol = r.ReadU8();
  r.ReadU16();  // checksum (verified over the raw bytes below)
  h.src = Ipv4Address(r.ReadU32());
  h.dst = Ipv4Address(r.ReadU32());

  std::size_t options_len = header_len - 20;
  while (options_len > 0) {
    const std::uint8_t kind = r.ReadU8();
    --options_len;
    if (kind == 0) {  // EOL: rest of options area is padding
      h.options.padding = true;
      r.Skip(options_len);
      options_len = 0;
      break;
    }
    if (kind == kOptNop) {
      h.options.padding = true;
      continue;
    }
    if (options_len == 0) throw CodecError("truncated IPv4 option");
    const std::uint8_t opt_len = r.ReadU8();
    --options_len;
    if (opt_len < 2 || opt_len - 2 > static_cast<int>(options_len))
      throw CodecError("bad IPv4 option length");
    if (kind == kOptRouterAlert) h.options.router_alert = true;
    r.Skip(static_cast<std::size_t>(opt_len - 2));
    options_len -= static_cast<std::size_t>(opt_len - 2);
  }

  if (total_len < header_len) throw CodecError("IPv4 total length < header");
  payload_length = total_len - header_len;
  (void)start;
  return h;
}

}  // namespace sentinel::net
