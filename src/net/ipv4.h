// IPv4 header codec with options support (the fingerprint cares about the
// End-of-List/No-Op padding and Router Alert options, Table I).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

/// Decoded IPv4 option presence summary. Only the two options that feed the
/// fingerprint are modelled explicitly; any other option bytes are carried
/// verbatim in `raw`.
struct Ipv4Options {
  bool padding = false;       // option kind 0 (EOL) or 1 (NOP) present
  bool router_alert = false;  // option kind 20/148 (RFC 2113)

  [[nodiscard]] bool Any() const { return padding || router_alert; }
  /// Encoded length in bytes (multiple of 4).
  [[nodiscard]] std::size_t EncodedSize() const;
};

struct Ipv4Header {
  std::uint8_t dscp_ecn = 0;
  std::uint16_t identification = 0;
  std::uint8_t flags = 0x02;  // DF set, as typical client stacks do
  std::uint16_t fragment_offset = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;  // kIpProtoUdp etc.
  Ipv4Address src;
  Ipv4Address dst;
  Ipv4Options options;

  [[nodiscard]] std::size_t HeaderSize() const {
    return 20 + options.EncodedSize();
  }

  /// Encodes header + payload, computing total length and header checksum.
  void Encode(ByteWriter& w, std::span<const std::uint8_t> payload) const;

  /// Decodes the header and returns it; `payload_length` receives the
  /// payload byte count from the total-length field. Verifies the header
  /// checksum and throws CodecError on corruption.
  static Ipv4Header Decode(ByteReader& r, std::size_t& payload_length);
};

}  // namespace sentinel::net
