#include "net/ipv6.h"

namespace sentinel::net {

void Ipv6Header::Encode(ByteWriter& w,
                        std::span<const std::uint8_t> payload) const {
  w.WriteU32((std::uint32_t{6} << 28) |
             (std::uint32_t{traffic_class} << 20) | (flow_label & 0xfffff));
  w.WriteU16(static_cast<std::uint16_t>(payload.size()));
  w.WriteU8(next_header);
  w.WriteU8(hop_limit);
  w.WriteBytes(src.bytes());
  w.WriteBytes(dst.bytes());
  w.WriteBytes(payload);
}

Ipv6Header Ipv6Header::Decode(ByteReader& r, std::size_t& payload_length) {
  const std::uint32_t first = r.ReadU32();
  if ((first >> 28) != 6) throw CodecError("not an IPv6 header");
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>((first >> 20) & 0xff);
  h.flow_label = first & 0xfffff;
  payload_length = r.ReadU16();
  h.next_header = r.ReadU8();
  h.hop_limit = r.ReadU8();
  std::array<std::uint8_t, 16> a{};
  auto s = r.ReadBytes(16);
  std::copy(s.begin(), s.end(), a.begin());
  h.src = Ipv6Address(a);
  s = r.ReadBytes(16);
  std::copy(s.begin(), s.end(), a.begin());
  h.dst = Ipv6Address(a);
  return h;
}

}  // namespace sentinel::net
