// Minimal IPv6 header codec — enough for the ICMPv6 neighbour-discovery and
// mDNS-over-IPv6 traffic IoT devices emit during setup.
#pragma once

#include <cstdint>
#include <span>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint8_t next_header = 0;  // kIpProtoIcmpv6, kIpProtoUdp, ...
  std::uint8_t hop_limit = 255;
  Ipv6Address src;
  Ipv6Address dst;

  static constexpr std::size_t kSize = 40;

  void Encode(ByteWriter& w, std::span<const std::uint8_t> payload) const;
  /// `payload_length` receives the value of the payload-length field.
  static Ipv6Header Decode(ByteReader& r, std::size_t& payload_length);
};

}  // namespace sentinel::net
