#include "net/ntp.h"

namespace sentinel::net {

NtpPacket NtpPacket::ClientRequest(std::uint64_t transmit_timestamp) {
  NtpPacket p;
  p.mode = 3;
  p.transmit_timestamp = transmit_timestamp;
  return p;
}

NtpPacket NtpPacket::ServerReply(const NtpPacket& request,
                                 std::uint64_t server_time) {
  NtpPacket p;
  p.mode = 4;
  p.stratum = 2;
  p.transmit_timestamp = server_time;
  (void)request;
  return p;
}

void NtpPacket::Encode(ByteWriter& w) const {
  w.WriteU8(static_cast<std::uint8_t>((leap << 6) | (version << 3) | mode));
  w.WriteU8(stratum);
  w.WriteU8(poll);
  w.WriteU8(static_cast<std::uint8_t>(precision));
  w.WriteU32(0);  // root delay
  w.WriteU32(0);  // root dispersion
  w.WriteU32(0);  // reference id
  w.WriteU64(0);  // reference timestamp
  w.WriteU64(0);  // origin timestamp
  w.WriteU64(0);  // receive timestamp
  w.WriteU64(transmit_timestamp);
}

NtpPacket NtpPacket::Decode(ByteReader& r) {
  NtpPacket p;
  const std::uint8_t first = r.ReadU8();
  p.leap = first >> 6;
  p.version = (first >> 3) & 0x7;
  p.mode = first & 0x7;
  p.stratum = r.ReadU8();
  p.poll = r.ReadU8();
  p.precision = static_cast<std::int8_t>(r.ReadU8());
  r.Skip(4 + 4 + 4 + 8 + 8 + 8);
  p.transmit_timestamp = r.ReadU64();
  return p;
}

}  // namespace sentinel::net
