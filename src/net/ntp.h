// NTP (RFC 5905) client/server packet codec. Devices sync their clocks
// right after joining the network, typically before opening TLS sessions.
#pragma once

#include <cstdint>

#include "net/byte_io.h"

namespace sentinel::net {

struct NtpPacket {
  std::uint8_t leap = 0;      // leap indicator
  std::uint8_t version = 4;
  std::uint8_t mode = 3;      // 3 = client, 4 = server
  std::uint8_t stratum = 0;
  std::uint8_t poll = 6;
  std::int8_t precision = -20;
  std::uint64_t transmit_timestamp = 0;  // NTP 64-bit format

  static constexpr std::size_t kSize = 48;

  static NtpPacket ClientRequest(std::uint64_t transmit_timestamp);
  static NtpPacket ServerReply(const NtpPacket& request,
                               std::uint64_t server_time);

  void Encode(ByteWriter& w) const;
  static NtpPacket Decode(ByteReader& r);
};

}  // namespace sentinel::net
