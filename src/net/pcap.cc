#include "net/pcap.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "net/byte_io.h"

namespace sentinel::net {

namespace {
constexpr std::uint32_t kMagic = 0xa1b2c3d4;          // native order, usec
constexpr std::uint32_t kMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

std::vector<std::uint8_t> EncodePcap(const std::vector<Frame>& frames) {
  ByteWriter w(24 + frames.size() * 96);
  // Global header, little-endian as is conventional on x86 writers.
  w.WriteU32Le(kMagic);
  w.WriteU16Le(2);   // version major
  w.WriteU16Le(4);   // version minor
  w.WriteU32Le(0);   // thiszone
  w.WriteU32Le(0);   // sigfigs
  w.WriteU32Le(kSnapLen);
  w.WriteU32Le(kLinkTypeEthernet);
  for (const Frame& f : frames) {
    const std::uint64_t usec = f.timestamp_ns / 1000;
    w.WriteU32Le(static_cast<std::uint32_t>(usec / 1000000));
    w.WriteU32Le(static_cast<std::uint32_t>(usec % 1000000));
    w.WriteU32Le(static_cast<std::uint32_t>(f.bytes.size()));  // incl_len
    w.WriteU32Le(static_cast<std::uint32_t>(f.bytes.size()));  // orig_len
    w.WriteBytes(f.bytes);
  }
  return std::move(w).Take();
}

std::vector<Frame> DecodePcap(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint32_t magic = r.ReadU32Le();
  bool swapped = false;
  if (magic == kMagicSwapped) {
    swapped = true;
  } else if (magic != kMagic) {
    throw CodecError("not a classic pcap file (bad magic)");
  }
  auto u16 = [&] { return swapped ? r.ReadU16() : r.ReadU16Le(); };
  auto u32 = [&] { return swapped ? r.ReadU32() : r.ReadU32Le(); };

  u16();  // version major
  u16();  // version minor
  u32();  // thiszone
  u32();  // sigfigs
  u32();  // snaplen
  const std::uint32_t link_type = u32();
  if (link_type != kLinkTypeEthernet)
    throw CodecError("unsupported pcap link type " + std::to_string(link_type));

  std::vector<Frame> frames;
  while (r.remaining() > 0) {
    const std::uint32_t ts_sec = u32();
    const std::uint32_t ts_usec = u32();
    const std::uint32_t incl_len = u32();
    u32();  // orig_len
    if (incl_len > kSnapLen) throw CodecError("pcap record too large");
    auto bytes = r.ReadBytes(incl_len);
    Frame f;
    f.timestamp_ns =
        (std::uint64_t{ts_sec} * 1000000 + ts_usec) * 1000;
    f.bytes.assign(bytes.begin(), bytes.end());
    frames.push_back(std::move(f));
  }
  return frames;
}

namespace {

std::vector<std::uint8_t> EncodeGlobalHeader() {
  ByteWriter w(24);
  w.WriteU32Le(kMagic);
  w.WriteU16Le(2);
  w.WriteU16Le(4);
  w.WriteU32Le(0);
  w.WriteU32Le(0);
  w.WriteU32Le(kSnapLen);
  w.WriteU32Le(kLinkTypeEthernet);
  return std::move(w).Take();
}

}  // namespace

PcapFileSink::PcapFileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {
  if (file_ == nullptr)
    throw std::runtime_error("cannot open " + path + " for writing");
  const auto header = EncodeGlobalHeader();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("short write of pcap header to " + path);
  }
}

PcapFileSink::~PcapFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void PcapFileSink::Append(const Frame& frame) {
  ByteWriter w(16 + frame.bytes.size());
  const std::uint64_t usec = frame.timestamp_ns / 1000;
  w.WriteU32Le(static_cast<std::uint32_t>(usec / 1000000));
  w.WriteU32Le(static_cast<std::uint32_t>(usec % 1000000));
  w.WriteU32Le(static_cast<std::uint32_t>(frame.bytes.size()));
  w.WriteU32Le(static_cast<std::uint32_t>(frame.bytes.size()));
  w.WriteBytes(frame.bytes);
  const auto record = w.bytes();
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size())
    throw std::runtime_error("short write of pcap record");
  std::fflush(file_);
  ++frames_written_;
}

void WritePcapFile(const std::string& path, const std::vector<Frame>& frames) {
  const auto data = EncodePcap(frames);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  if (std::fwrite(data.data(), 1, data.size(), f.get()) != data.size())
    throw std::runtime_error("short write to " + path);
}

std::vector<Frame> ReadPcapFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for reading");
  std::vector<std::uint8_t> data;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
    data.insert(data.end(), buf, buf + n);
  return DecodePcap(data);
}

}  // namespace sentinel::net
