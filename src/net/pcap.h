// Classic libpcap capture-file format (magic 0xa1b2c3d4, LINKTYPE_ETHERNET)
// reader and writer. Lets the toolchain exchange traces with tcpdump or
// Wireshark, standing in for the paper's live libpcap capture path.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/frame.h"

namespace sentinel::net {

/// Writes `frames` as a classic pcap file (microsecond timestamps,
/// Ethernet link type). Throws std::runtime_error on I/O failure.
void WritePcapFile(const std::string& path, const std::vector<Frame>& frames);

/// Reads a classic pcap file produced by WritePcapFile, tcpdump or
/// Wireshark. Handles both byte orders. Throws std::runtime_error on I/O
/// failure and CodecError on malformed content.
std::vector<Frame> ReadPcapFile(const std::string& path);

/// In-memory variants used by tests and by transports that move captures
/// between gateway and security service without touching disk.
std::vector<std::uint8_t> EncodePcap(const std::vector<Frame>& frames);
std::vector<Frame> DecodePcap(std::span<const std::uint8_t> data);

/// Streaming pcap writer: opens the file and writes the global header on
/// construction, appends one record per Append() and flushes each record —
/// the long-running capture path of a gateway that logs everything it
/// monitors (a crash loses at most the frame being written).
class PcapFileSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit PcapFileSink(const std::string& path);
  ~PcapFileSink();

  PcapFileSink(const PcapFileSink&) = delete;
  PcapFileSink& operator=(const PcapFileSink&) = delete;

  /// Appends one frame. Throws std::runtime_error on I/O failure.
  void Append(const Frame& frame);

  [[nodiscard]] std::uint64_t frames_written() const {
    return frames_written_;
  }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t frames_written_ = 0;
};

}  // namespace sentinel::net
