#include "net/protocols.h"

namespace sentinel::net {

std::string_view ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kArp:
      return "ARP";
    case Protocol::kLlc:
      return "LLC";
    case Protocol::kIp:
      return "IP";
    case Protocol::kIcmp:
      return "ICMP";
    case Protocol::kIcmpv6:
      return "ICMPv6";
    case Protocol::kEapol:
      return "EAPoL";
    case Protocol::kTcp:
      return "TCP";
    case Protocol::kUdp:
      return "UDP";
    case Protocol::kHttp:
      return "HTTP";
    case Protocol::kHttps:
      return "HTTPS";
    case Protocol::kDhcp:
      return "DHCP";
    case Protocol::kBootp:
      return "BOOTP";
    case Protocol::kSsdp:
      return "SSDP";
    case Protocol::kDns:
      return "DNS";
    case Protocol::kMdns:
      return "mDNS";
    case Protocol::kNtp:
      return "NTP";
  }
  return "?";
}

}  // namespace sentinel::net
