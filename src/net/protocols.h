// Protocol identifiers shared across the stack: the 16 protocols of the
// paper's Table I plus the numeric constants (ethertypes, IP protocol
// numbers, well-known ports) the codecs need.
#pragma once

#include <cstdint>
#include <string_view>

namespace sentinel::net {

/// The protocols that contribute binary features to the IoT Sentinel packet
/// fingerprint (Table I). Order is normative: feature vectors use it.
enum class Protocol : std::uint8_t {
  // Link layer
  kArp = 0,
  kLlc,
  // Network layer
  kIp,
  kIcmp,
  kIcmpv6,
  kEapol,
  // Transport layer
  kTcp,
  kUdp,
  // Application layer
  kHttp,
  kHttps,
  kDhcp,
  kBootp,
  kSsdp,
  kDns,
  kMdns,
  kNtp,
};

inline constexpr int kProtocolCount = 16;

/// Small value-type set of Protocol flags.
class ProtocolSet {
 public:
  constexpr ProtocolSet() = default;

  constexpr void Set(Protocol p) {
    bits_ |= std::uint32_t{1} << static_cast<unsigned>(p);
  }
  [[nodiscard]] constexpr bool Has(Protocol p) const {
    return (bits_ & (std::uint32_t{1} << static_cast<unsigned>(p))) != 0;
  }
  [[nodiscard]] constexpr bool Empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }

  friend constexpr bool operator==(ProtocolSet, ProtocolSet) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// Human-readable protocol name ("ARP", "mDNS", ...).
std::string_view ProtocolName(Protocol p);

// ---- Ethertypes (Ethernet II) ----
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;
inline constexpr std::uint16_t kEtherTypeEapol = 0x888e;

// ---- IP protocol numbers ----
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoIcmpv6 = 58;

// ---- Well-known ports used for application-protocol detection ----
inline constexpr std::uint16_t kPortHttp = 80;
inline constexpr std::uint16_t kPortHttpAlt = 8080;
inline constexpr std::uint16_t kPortHttps = 443;
inline constexpr std::uint16_t kPortHttpsAlt = 8443;
inline constexpr std::uint16_t kPortDns = 53;
inline constexpr std::uint16_t kPortMdns = 5353;
inline constexpr std::uint16_t kPortSsdp = 1900;
inline constexpr std::uint16_t kPortNtp = 123;
inline constexpr std::uint16_t kPortDhcpServer = 67;
inline constexpr std::uint16_t kPortDhcpClient = 68;

/// Network port classes used by Table I's two port features.
///   no port -> 0, well-known [0,1023] -> 1, registered [1024,49151] -> 2,
///   dynamic [49152,65535] -> 3.
enum class PortClass : std::uint8_t {
  kNone = 0,
  kWellKnown = 1,
  kRegistered = 2,
  kDynamic = 3,
};

constexpr PortClass ClassifyPort(std::uint16_t port) {
  if (port <= 1023) return PortClass::kWellKnown;
  if (port <= 49151) return PortClass::kRegistered;
  return PortClass::kDynamic;
}

}  // namespace sentinel::net
