#include "net/ssdp.h"

namespace sentinel::net {

SsdpMessage SsdpMessage::MSearch(const std::string& search_target,
                                 int mx_seconds) {
  SsdpMessage m;
  m.start_line = "M-SEARCH * HTTP/1.1";
  m.headers = {{"HOST", "239.255.255.250:1900"},
               {"MAN", "\"ssdp:discover\""},
               {"MX", std::to_string(mx_seconds)},
               {"ST", search_target}};
  return m;
}

SsdpMessage SsdpMessage::NotifyAlive(const std::string& notification_type,
                                     const std::string& location_url,
                                     const std::string& server_token) {
  SsdpMessage m;
  m.start_line = "NOTIFY * HTTP/1.1";
  m.headers = {{"HOST", "239.255.255.250:1900"},
               {"CACHE-CONTROL", "max-age=1800"},
               {"LOCATION", location_url},
               {"NT", notification_type},
               {"NTS", "ssdp:alive"},
               {"SERVER", server_token}};
  return m;
}

bool SsdpMessage::IsMSearch() const {
  return start_line.rfind("M-SEARCH", 0) == 0;
}

void SsdpMessage::Encode(ByteWriter& w) const {
  w.WriteString(start_line);
  w.WriteString("\r\n");
  for (const auto& [name, value] : headers) {
    w.WriteString(name);
    w.WriteString(": ");
    w.WriteString(value);
    w.WriteString("\r\n");
  }
  w.WriteString("\r\n");
}

SsdpMessage SsdpMessage::Decode(ByteReader& r) {
  auto bytes = r.ReadBytes(r.remaining());
  const std::string text(bytes.begin(), bytes.end());
  SsdpMessage m;
  std::size_t pos = text.find("\r\n");
  if (pos == std::string::npos) throw CodecError("SSDP: missing start line");
  m.start_line = text.substr(0, pos);
  pos += 2;
  while (pos < text.size()) {
    const std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string::npos || eol == pos) break;  // blank line = end
    const std::string line = text.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) throw CodecError("SSDP: bad header line");
    std::size_t vstart = colon + 1;
    while (vstart < line.size() && line[vstart] == ' ') ++vstart;
    m.headers.emplace_back(line.substr(0, colon), line.substr(vstart));
    pos = eol + 2;
  }
  return m;
}

}  // namespace sentinel::net
