// SSDP (Simple Service Discovery Protocol, UPnP) — HTTP-over-UDP text
// messages sent to 239.255.255.250:1900. Many smart plugs and cameras send
// M-SEARCH and NOTIFY bursts during setup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/byte_io.h"

namespace sentinel::net {

struct SsdpMessage {
  /// Start line, e.g. "M-SEARCH * HTTP/1.1" or "NOTIFY * HTTP/1.1".
  std::string start_line;
  std::vector<std::pair<std::string, std::string>> headers;

  static SsdpMessage MSearch(const std::string& search_target,
                             int mx_seconds = 3);
  static SsdpMessage NotifyAlive(const std::string& notification_type,
                                 const std::string& location_url,
                                 const std::string& server_token);

  [[nodiscard]] bool IsMSearch() const;

  void Encode(ByteWriter& w) const;
  static SsdpMessage Decode(ByteReader& r);
};

/// SSDP multicast destination 239.255.255.250.
inline constexpr std::uint32_t kSsdpMulticastIp = 0xeffffffa;

}  // namespace sentinel::net
