#include "net/tcp.h"

#include "net/checksum.h"
#include "net/protocols.h"

namespace sentinel::net {

namespace {
std::size_t RoundUp4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }
}  // namespace

std::size_t TcpOptions::EncodedSize() const {
  std::size_t n = 0;
  if (mss) n += 4;
  if (window_scale) n += 3;
  if (sack_permitted) n += 2;
  if (timestamps) n += 10;
  return RoundUp4(n);
}

TcpSegment TcpSegment::Syn(std::uint16_t src_port, std::uint16_t dst_port,
                           std::uint32_t seq, std::uint16_t mss) {
  TcpSegment s;
  s.src_port = src_port;
  s.dst_port = dst_port;
  s.seq = seq;
  s.flags = TcpFlags::kSyn;
  s.options.mss = mss;
  s.options.sack_permitted = true;
  return s;
}

void TcpSegment::Encode(ByteWriter& w, Ipv4Address src,
                        Ipv4Address dst) const {
  const std::size_t start = w.size();
  const std::size_t header_len = HeaderSize();
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU32(seq);
  w.WriteU32(ack);
  w.WriteU8(static_cast<std::uint8_t>((header_len / 4) << 4));
  w.WriteU8(flags);
  w.WriteU16(window);
  w.WriteU16(0);  // checksum placeholder
  w.WriteU16(0);  // urgent pointer

  std::size_t opt_bytes = 0;
  if (options.mss) {
    w.WriteU8(2);
    w.WriteU8(4);
    w.WriteU16(*options.mss);
    opt_bytes += 4;
  }
  if (options.window_scale) {
    w.WriteU8(3);
    w.WriteU8(3);
    w.WriteU8(*options.window_scale);
    opt_bytes += 3;
  }
  if (options.sack_permitted) {
    w.WriteU8(4);
    w.WriteU8(2);
    opt_bytes += 2;
  }
  if (options.timestamps) {
    w.WriteU8(8);
    w.WriteU8(10);
    w.WriteU32(0);
    w.WriteU32(0);
    opt_bytes += 10;
  }
  // NOP padding to the 4-byte boundary implied by the data offset.
  while (opt_bytes % 4 != 0) {
    w.WriteU8(1);
    ++opt_bytes;
  }
  w.WriteBytes(payload);

  const std::uint16_t total =
      static_cast<std::uint16_t>(header_len + payload.size());
  InternetChecksum sum;
  AddPseudoHeader(sum, src, dst, kIpProtoTcp, total);
  sum.Add(w.bytes().subspan(start, total));
  w.PatchU16(start + 16, sum.Finalize());
}

TcpSegment TcpSegment::Decode(ByteReader& r, std::size_t total_length) {
  if (total_length < 20) throw CodecError("TCP segment too short");
  TcpSegment s;
  s.src_port = r.ReadU16();
  s.dst_port = r.ReadU16();
  s.seq = r.ReadU32();
  s.ack = r.ReadU32();
  const std::uint8_t offset_byte = r.ReadU8();
  const std::size_t header_len = static_cast<std::size_t>(offset_byte >> 4) * 4;
  if (header_len < 20 || header_len > total_length)
    throw CodecError("bad TCP data offset");
  s.flags = r.ReadU8();
  s.window = r.ReadU16();
  r.ReadU16();  // checksum
  r.ReadU16();  // urgent

  std::size_t opt_len = header_len - 20;
  while (opt_len > 0) {
    const std::uint8_t kind = r.ReadU8();
    --opt_len;
    if (kind == 0) {  // EOL
      r.Skip(opt_len);
      opt_len = 0;
      break;
    }
    if (kind == 1) continue;  // NOP
    if (opt_len == 0) throw CodecError("truncated TCP option");
    const std::uint8_t len = r.ReadU8();
    --opt_len;
    if (len < 2 || static_cast<std::size_t>(len - 2) > opt_len)
      throw CodecError("bad TCP option length");
    switch (kind) {
      case 2:
        if (len != 4) throw CodecError("bad MSS option");
        s.options.mss = r.ReadU16();
        break;
      case 3:
        if (len != 3) throw CodecError("bad window-scale option");
        s.options.window_scale = r.ReadU8();
        break;
      case 4:
        s.options.sack_permitted = true;
        break;
      case 8:
        if (len != 10) throw CodecError("bad timestamp option");
        s.options.timestamps = true;
        r.Skip(8);
        break;
      default:
        r.Skip(static_cast<std::size_t>(len - 2));
        break;
    }
    opt_len -= static_cast<std::size_t>(len - 2);
  }
  auto body = r.ReadBytes(total_length - header_len);
  s.payload.assign(body.begin(), body.end());
  return s;
}

}  // namespace sentinel::net
