// TCP segment codec (RFC 793) with common options (MSS, window scale, SACK
// permitted, timestamps) as emitted by embedded IoT stacks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpOptions {
  std::optional<std::uint16_t> mss;          // kind 2
  std::optional<std::uint8_t> window_scale;  // kind 3
  bool sack_permitted = false;               // kind 4
  bool timestamps = false;                   // kind 8 (values not modelled)

  [[nodiscard]] std::size_t EncodedSize() const;
};

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  TcpOptions options;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t HeaderSize() const {
    return 20 + options.EncodedSize();
  }
  [[nodiscard]] bool Has(std::uint8_t flag) const {
    return (flags & flag) != 0;
  }

  /// Client SYN with typical embedded-stack options.
  static TcpSegment Syn(std::uint16_t src_port, std::uint16_t dst_port,
                        std::uint32_t seq, std::uint16_t mss = 1460);

  void Encode(ByteWriter& w, Ipv4Address src, Ipv4Address dst) const;
  static TcpSegment Decode(ByteReader& r, std::size_t total_length);
};

}  // namespace sentinel::net
