#include "net/udp.h"

#include "net/checksum.h"
#include "net/protocols.h"

namespace sentinel::net {

void UdpDatagram::Encode(ByteWriter& w, Ipv4Address src,
                         Ipv4Address dst) const {
  const std::size_t start = w.size();
  const std::uint16_t length =
      static_cast<std::uint16_t>(kHeaderSize + payload.size());
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU16(length);
  w.WriteU16(0);  // checksum placeholder
  w.WriteBytes(payload);

  InternetChecksum sum;
  AddPseudoHeader(sum, src, dst, kIpProtoUdp, length);
  sum.Add(w.bytes().subspan(start, length));
  std::uint16_t cksum = sum.Finalize();
  if (cksum == 0) cksum = 0xffff;  // RFC 768: 0 means "no checksum"
  w.PatchU16(start + 6, cksum);
}

void UdpDatagram::EncodeNoChecksum(ByteWriter& w) const {
  w.WriteU16(src_port);
  w.WriteU16(dst_port);
  w.WriteU16(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
  w.WriteU16(0);
  w.WriteBytes(payload);
}

UdpDatagram UdpDatagram::Decode(ByteReader& r) {
  UdpDatagram d;
  d.src_port = r.ReadU16();
  d.dst_port = r.ReadU16();
  const std::uint16_t length = r.ReadU16();
  if (length < kHeaderSize) throw CodecError("UDP length too small");
  r.ReadU16();  // checksum
  auto body = r.ReadBytes(length - kHeaderSize);
  d.payload.assign(body.begin(), body.end());
  return d;
}

}  // namespace sentinel::net
