// UDP datagram codec (RFC 768) with IPv4 pseudo-header checksum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/address.h"
#include "net/byte_io.h"

namespace sentinel::net {

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderSize = 8;

  /// Encodes header + payload with the IPv4 pseudo-header checksum.
  void Encode(ByteWriter& w, Ipv4Address src, Ipv4Address dst) const;
  /// Encodes with checksum 0 (legal for IPv4; used over IPv6 simulation
  /// where we do not verify).
  void EncodeNoChecksum(ByteWriter& w) const;
  static UdpDatagram Decode(ByteReader& r);
};

}  // namespace sentinel::net
