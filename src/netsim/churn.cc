#include "netsim/churn.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "util/shard.h"

namespace sentinel::netsim {

namespace {

using util::Mix64;

/// Deterministic generator for the scenario's stochastic choices.
struct Lcg {
  std::uint64_t state;
  std::uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return Mix64(state);
  }
  double NextUnit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
};

net::MacAddress MacForIndex(std::uint64_t i) {
  // Locally administered unicast range so fleet MACs never collide with
  // the gateway's or the catalog simulator's.
  return net::MacAddress({0x02, 0xc4,
                          static_cast<std::uint8_t>(i >> 24),
                          static_cast<std::uint8_t>(i >> 16),
                          static_cast<std::uint8_t>(i >> 8),
                          static_cast<std::uint8_t>(i)});
}

net::Ipv4Address IpForIndex(std::uint64_t i) {
  return net::Ipv4Address(10, static_cast<std::uint8_t>((i >> 16) & 0xff),
                          static_cast<std::uint8_t>((i >> 8) & 0xff),
                          static_cast<std::uint8_t>(i & 0xff));
}

/// A deterministic public endpoint (vendor cloud stand-in) per device.
net::Ipv4Address CloudForIndex(std::uint64_t i) {
  return net::Ipv4Address(52, 8, static_cast<std::uint8_t>((i >> 8) & 0xff),
                          static_cast<std::uint8_t>(i & 0xff));
}

net::Frame MakeUdp(std::uint64_t ts_ns, const net::MacAddress& src,
                   const net::MacAddress& dst, net::Ipv4Address sip,
                   net::Ipv4Address dip, std::uint16_t dport,
                   std::uint16_t payload_byte) {
  net::UdpDatagram udp;
  udp.src_port = 49152;
  udp.dst_port = dport;
  udp.payload = {static_cast<std::uint8_t>(payload_byte),
                 static_cast<std::uint8_t>(payload_byte >> 8), 0x5a};
  return net::BuildUdp4Frame(ts_ns, src, dst, sip, dip, udp);
}

struct ActiveDevice {
  std::uint64_t index = 0;
  std::uint64_t leave_ns = 0;
};

constexpr std::uint64_t kJoinIntervalNs = 250'000'000;  // 4 joins/s
constexpr std::uint64_t kPacketSpacingNs = 400'000'000;  // < idle gap
constexpr std::size_t kSetupBurst = 8;  // >= SetupPhaseConfig::min_packets

}  // namespace

core::AssessmentResult ScriptedAssessor::Assess(
    const features::Fingerprint& full,
    const features::FixedFingerprint& fixed) {
  // Hash the fixed fingerprint's contents so the verdict depends only on
  // the device's traffic, never on call order.
  std::uint64_t h = seed_;
  for (const double v : fixed.values()) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h = Mix64(h ^ bits);
  }
  h = Mix64(h ^ full.size());

  core::AssessmentResult result;
  const std::uint64_t kind = h % 4;
  if (kind == 0) {
    // Unknown device-type: strict by default, no identification.
    result.level = core::IsolationLevel::kStrict;
    return result;
  }
  result.type = static_cast<devices::DeviceTypeId>(h % 1024);
  result.type_identifier = "churn-type-" + std::to_string(h % 1024);
  if (kind == 1) {
    result.level = core::IsolationLevel::kTrusted;
  } else if (kind == 2) {
    result.level = core::IsolationLevel::kRestricted;
    result.allowed_endpoints = {CloudForIndex(h)};
    result.allowed_endpoint_names = {"cloud." + std::to_string(h % 997)};
  } else {
    result.level = core::IsolationLevel::kStrict;
  }
  return result;
}

ChurnReport RunChurnScenario(const ChurnConfig& config,
                             core::SecurityServiceClient& service) {
  ChurnReport report;
  core::SecurityGateway gateway(service, config.gateway);
  const std::size_t port_count = std::max<std::size_t>(config.port_count, 1);
  const sdn::PortId wan_port = gateway.config().wan_port;

  // Frame sinks just count; delivery contents are covered elsewhere.
  std::uint64_t delivered = 0;
  gateway.AttachWan([&](const net::Frame&) { ++delivered; });
  for (std::size_t p = 0; p < port_count; ++p) {
    const auto port = static_cast<sdn::PortId>(wan_port + 1 + p);
    gateway.AttachPort(port, [&](const net::Frame&) { ++delivered; });
  }
  gateway.sentinel().OnIdentification(
      [&](const core::IdentificationEvent&) { ++report.identifications; });
  gateway.sentinel().OnIncident(
      [&](const core::IncidentEvent&) { ++report.incidents; });

  Lcg rng{Mix64(config.seed ^ 0xc0ffee)};
  std::deque<ActiveDevice> active;
  std::vector<std::uint64_t> departed;  // candidates for re-join
  std::uint64_t next_index = 1;
  std::uint64_t frame_seq = 0;
  const net::MacAddress gateway_mac = gateway.config().gateway_mac;
  const net::Ipv4Address gateway_ip = gateway.config().gateway_ip;

  const auto port_for = [&](std::uint64_t index) {
    return static_cast<sdn::PortId>(wan_port + 1 + (Mix64(index) % port_count));
  };
  const auto inject = [&](std::uint64_t index, const net::Frame& frame) {
    const bool forwarded = gateway.Ingress(port_for(index), frame);
    ++report.frames_injected;
    report.verdict_hash ^= Mix64((frame_seq << 1 | (forwarded ? 1u : 0u)) ^
                                 Mix64(index * 0x9e3779b97f4a7c15ull));
    ++frame_seq;
  };

  std::vector<std::uint64_t> all_indices;
  for (std::size_t s = 0; s < config.session_count; ++s) {
    const std::uint64_t now = static_cast<std::uint64_t>(s) * kJoinIntervalNs +
                              1'000'000'000ull;

    // Departures that came due, oldest first.
    while (!active.empty() &&
           (active.front().leave_ns <= now ||
            active.size() >= config.device_count)) {
      const ActiveDevice leaver = active.front();
      active.pop_front();
      const net::MacAddress mac = MacForIndex(leaver.index);
      if (rng.NextUnit() < config.refingerprint_fraction) {
        // The device will be fingerprinted anew on re-join; its flow rules
        // go with it (port disconnect cleanup).
        gateway.sentinel().monitor().Forget(mac);
        gateway.datapath().flow_table().RemoveByMac(mac);
      }
      departed.push_back(leaver.index);
    }

    // Join: mostly fresh devices, sometimes a departed one returning.
    std::uint64_t index;
    if (!departed.empty() && rng.NextUnit() < 0.25) {
      const std::size_t pick = rng.Next() % departed.size();
      index = departed[pick];
      departed[pick] = departed.back();
      departed.pop_back();
    } else {
      index = next_index++;
      all_indices.push_back(index);
    }
    ++report.sessions_started;
    const std::uint64_t lifetime =
        (4 + rng.Next() % 60) * kJoinIntervalNs * 2;
    active.push_back(ActiveDevice{index, now + lifetime});

    const net::MacAddress mac = MacForIndex(index);
    const net::Ipv4Address ip = IpForIndex(index);
    const net::Ipv4Address cloud = CloudForIndex(index);

    // Setup burst: enough packets to satisfy the setup phase, mixing
    // cloud-bound, gateway-bound and broadcast traffic.
    for (std::size_t k = 0; k < kSetupBurst; ++k) {
      const std::uint64_t ts = now + k * kPacketSpacingNs;
      net::Frame frame;
      if (k % 3 == 0) {
        frame = MakeUdp(ts, mac, gateway_mac, ip, cloud, 443,
                        static_cast<std::uint16_t>(k));
      } else if (k % 3 == 1) {
        frame = MakeUdp(ts, mac, gateway_mac, ip, gateway_ip, 53,
                        static_cast<std::uint16_t>(k));
      } else {
        frame = MakeUdp(ts, mac, net::MacAddress::Broadcast(), ip,
                        net::Ipv4Address::Broadcast(), 1900,
                        static_cast<std::uint16_t>(k));
      }
      inject(index, frame);
    }

    // Chatter from earlier joiners keeps their rules warm and exercises
    // installed allow/drop paths.
    const std::uint64_t chatter_base =
        now + kSetupBurst * kPacketSpacingNs;
    for (std::size_t c = 0; c < config.chatter_packets && !active.empty();
         ++c) {
      const ActiveDevice& talker = active[rng.Next() % active.size()];
      const net::MacAddress tmac = MacForIndex(talker.index);
      inject(talker.index,
             MakeUdp(chatter_base + c * 1'000'000, tmac, gateway_mac,
                     IpForIndex(talker.index), CloudForIndex(talker.index),
                     443, static_cast<std::uint16_t>(c + 7)));
    }

    // Let overdue setup phases fingerprint + identify. The idle gap is 5s
    // of sim time, so sessions complete a few joins after their burst.
    gateway.sentinel().FlushIdle(now);
    // Periodic datapath housekeeping (rule timeouts).
    if (s % 64 == 0) gateway.datapath().ExpireFlows(now);
  }

  const std::uint64_t end_ns =
      static_cast<std::uint64_t>(config.session_count) * kJoinIntervalNs +
      3'600'000'000'000ull;
  gateway.sentinel().FlushIdle(end_ns);
  report.sim_duration_ns = end_ns;

  // Final-state hash: flow rules in installation order, then every
  // device's effective isolation level (XOR, order-insensitive).
  std::uint64_t rule_hash = 0x5eed;
  for (const sdn::FlowRule* rule : gateway.datapath().flow_table().Rules()) {
    std::uint64_t h = Mix64(rule->priority * 0x100000001b3ull ^ rule->cookie);
    if (rule->match.eth_src) h = Mix64(h ^ rule->match.eth_src->ToUint64());
    if (rule->match.eth_dst) h = Mix64(h ^ rule->match.eth_dst->ToUint64());
    h = Mix64(h ^ (rule->actions.empty() ? 0xdead : rule->actions.size()));
    rule_hash = Mix64(rule_hash ^ h);  // chained: order matters
  }
  for (const std::uint64_t index : all_indices) {
    const auto level =
        gateway.enforcement().EffectiveLevel(MacForIndex(index));
    rule_hash ^= Mix64(index * 31 + static_cast<std::uint64_t>(level));
  }
  report.rule_hash = rule_hash;

  report.tracked_devices = gateway.sentinel().monitor().tracked_count();
  report.enforcement_rules = gateway.enforcement().rule_count();
  report.flow_rules = gateway.datapath().flow_table().size();
  report.learned_macs = gateway.controller().learned_mac_count();
  report.gateway_memory_bytes = gateway.MemoryBytes();
  report.flow_evictions = gateway.datapath().flow_table().evicted_total();
  report.monitor_evictions = gateway.sentinel().monitor().evicted_total();
  report.controller_evictions = gateway.controller().macs_evicted_total();
  report.enforcement_evictions = gateway.enforcement().evicted_total();
  return report;
}

}  // namespace sentinel::netsim
