// Fleet-churn scenario: devices joining, chattering, leaving and
// re-fingerprinting against a Security Gateway for hours of simulated
// time. This is the workload behind the ROADMAP's serving-scale question —
// does the gateway's MAC-keyed state (monitor sessions, learned MACs, flow
// rules, enforcement rules) stay bounded and its behavior deterministic
// while the device population turns over continuously?
//
// Everything is deterministic: a fixed seed drives joins, lifetimes,
// traffic interleaving and the scripted assessor, so two runs with
// different shard counts (and eviction disabled) must produce identical
// verdict and rule-set hashes — the differential the soak bench and the
// CI smoke job assert.
#pragma once

#include <cstdint>
#include <string>

#include "core/gateway.h"

namespace sentinel::netsim {

/// Deterministic stand-in for the IoT Security Service: assesses a
/// fingerprint to a type/level derived from a hash of the device's fixed
/// fingerprint. No forests, no training — cheap enough for 100k+ joins —
/// while still driving the full identify -> enforce -> flow-rule path.
class ScriptedAssessor : public core::SecurityServiceClient {
 public:
  explicit ScriptedAssessor(std::uint64_t seed = 1) : seed_(seed) {}

  core::AssessmentResult Assess(
      const features::Fingerprint& full,
      const features::FixedFingerprint& fixed) override;

 private:
  std::uint64_t seed_;
};

struct ChurnConfig {
  /// Steady-state active population; joins beyond it displace leavers.
  std::size_t device_count = 256;
  /// Total join events over the scenario (>= device_count). Re-joins of
  /// departed devices count here too.
  std::size_t session_count = 2048;
  /// Device-sourced frames injected per session on top of the setup burst.
  std::size_t chatter_packets = 6;
  /// Fraction (0..1) of leavers whose session is forgotten on departure,
  /// so a re-join runs the whole fingerprint pipeline again.
  double refingerprint_fraction = 0.5;
  /// Physical gateway ports the fleet hashes onto.
  std::size_t port_count = 32;
  std::uint64_t seed = 7;
  /// Gateway knobs — shard counts and eviction caps ride through here.
  core::SecurityGatewayConfig gateway;
};

struct ChurnReport {
  /// XOR-accumulated hash over every injected frame's forwarding outcome.
  /// Order-insensitive, so it is comparable across shard counts even
  /// though map iteration orders differ internally.
  std::uint64_t verdict_hash = 0;
  /// Chained hash over the final flow-rule set in installation order plus
  /// every device's effective isolation level.
  std::uint64_t rule_hash = 0;

  std::uint64_t frames_injected = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t identifications = 0;
  std::uint64_t incidents = 0;
  /// Simulated wall clock covered by the scenario.
  std::uint64_t sim_duration_ns = 0;

  // Final state sizes.
  std::size_t tracked_devices = 0;
  std::size_t enforcement_rules = 0;
  std::size_t flow_rules = 0;
  std::size_t learned_macs = 0;
  std::size_t gateway_memory_bytes = 0;

  // Bounded-memory tier activity.
  std::uint64_t flow_evictions = 0;
  std::uint64_t monitor_evictions = 0;
  std::uint64_t controller_evictions = 0;
  std::uint64_t enforcement_evictions = 0;

  [[nodiscard]] std::uint64_t total_evictions() const {
    return flow_evictions + monitor_evictions + controller_evictions +
           enforcement_evictions;
  }
};

/// Runs the churn scenario against a freshly built gateway. `service` may
/// be any assessor; pass a ScriptedAssessor for large fleets or a trained
/// core::SecurityService for full-fidelity identification.
ChurnReport RunChurnScenario(const ChurnConfig& config,
                             core::SecurityServiceClient& service);

}  // namespace sentinel::netsim
