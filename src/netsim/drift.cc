#include "netsim/drift.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "devices/simulator.h"
#include "features/packet_features.h"
#include "obs/log.h"
#include "util/check.h"
#include "util/shard.h"

namespace sentinel::netsim {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Applies the firmware shift to one episode fingerprint: every packet's
/// size feature scales by (1 + shift), then both fingerprint forms are
/// rebuilt exactly as the feature extractor would have built them.
std::pair<features::Fingerprint, features::FixedFingerprint> ShiftFingerprint(
    const features::Fingerprint& base, double shift) {
  auto packets = base.packets();
  for (auto& packet : packets) {
    packet[features::kFeatPacketSize] = static_cast<std::uint32_t>(
        static_cast<double>(packet[features::kFeatPacketSize]) *
        (1.0 + shift));
  }
  auto full = features::Fingerprint::FromPacketVectors(packets);
  auto fixed = features::FixedFingerprint::FromFingerprint(full);
  return {std::move(full), std::move(fixed)};
}

std::string PsiSeries(int label) {
  return "sentinel_quality_psi{type=\"" + std::to_string(label) + "\"}";
}

}  // namespace

DriftReport RunDriftScenario(const DriftConfig& config,
                             util::ThreadPool* pool) {
  SENTINEL_CHECK(config.bank_types >= 2) << "need at least two trained types";
  SENTINEL_CHECK(config.drifted_type != config.control_type)
      << "drifted and control type must differ";
  SENTINEL_CHECK(static_cast<std::size_t>(config.drifted_type) <
                     config.bank_types &&
                 static_cast<std::size_t>(config.control_type) <
                     config.bank_types)
      << "monitored types must be in the trained bank";
  SENTINEL_CHECK(config.warmup_windows < config.drift_start_window)
      << "baseline must pin before the drift starts";
  SENTINEL_CHECK(config.drift_start_window < config.windows)
      << "drift must start inside the scenario";

  // Train the bank on clean factory-firmware episodes.
  const auto dataset =
      devices::GenerateFingerprintDataset(config.train_episodes, config.seed);
  std::vector<core::LabelledFingerprint> examples;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (static_cast<std::size_t>(dataset.labels[i]) >= config.bank_types)
      continue;
    examples.push_back(
        {&dataset.fingerprints[i], &dataset.fixed[i], dataset.labels[i]});
  }
  core::DeviceIdentifier identifier(core::IdentifierConfig{
      .seed = config.seed});
  identifier.set_thread_pool(pool);
  identifier.Train(examples);

  // Telemetry plane (absent entirely when detached — the differential half
  // of the bit-identical contract).
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::QualityMonitor> monitor;
  std::unique_ptr<obs::TimeSeriesStore> store;
  std::unique_ptr<obs::AlertEngine> engine;
  if (config.attach_monitor) {
    registry = std::make_unique<obs::MetricsRegistry>();
    monitor = std::make_unique<obs::QualityMonitor>(registry.get(),
                                                    config.quality);
    identifier.set_quality_monitor(monitor.get());
    store = std::make_unique<obs::TimeSeriesStore>(
        registry.get(),
        obs::TimeSeriesConfig{.capacity = config.windows + 4});
    engine = std::make_unique<obs::AlertEngine>(store.get(), registry.get());
    for (const int label : {config.drifted_type, config.control_type}) {
      obs::AlertRule rule;
      rule.name = "psi_type_" + std::to_string(label);
      rule.series = PsiSeries(label);
      rule.input = obs::AlertRule::Input::kValue;
      rule.op = obs::AlertRule::Op::kGt;
      rule.threshold = config.psi_threshold;
      rule.for_ns = static_cast<std::int64_t>(config.for_windows *
                                              config.window_period_ns);
      rule.window = 1;
      engine->AddRule(rule);
    }
  }

  DriftReport report;
  devices::DeviceSimulator simulator(util::Mix64(config.seed ^ 0x5eedf00dull));
  const std::string drifted_rule = "psi_type_" +
                                   std::to_string(config.drifted_type);

  for (std::size_t w = 0; w < config.windows; ++w) {
    const double shift =
        w < config.drift_start_window
            ? 0.0
            : config.max_feature_shift *
                  static_cast<double>(w - config.drift_start_window + 1) /
                  static_cast<double>(config.windows -
                                      config.drift_start_window);

    // Fresh setup episodes for both monitored types, drift applied to one.
    std::vector<features::Fingerprint> fulls;
    std::vector<features::FixedFingerprint> fixeds;
    std::vector<int> truths;
    fulls.reserve(2 * config.probes_per_window);
    for (std::size_t p = 0; p < config.probes_per_window; ++p) {
      for (const int label : {config.drifted_type, config.control_type}) {
        const auto episode = simulator.RunSetupEpisode(
            static_cast<devices::DeviceTypeId>(label));
        auto full = devices::DeviceSimulator::ExtractFingerprint(episode);
        if (label == config.drifted_type && shift > 0.0) {
          auto shifted = ShiftFingerprint(full, shift);
          fulls.push_back(std::move(shifted.first));
          fixeds.push_back(std::move(shifted.second));
        } else {
          fixeds.push_back(features::FixedFingerprint::FromFingerprint(full));
          fulls.push_back(std::move(full));
        }
        truths.push_back(label);
      }
    }
    std::vector<core::DeviceIdentifier::FingerprintRef> refs;
    refs.reserve(fulls.size());
    for (std::size_t i = 0; i < fulls.size(); ++i)
      refs.push_back({&fulls[i], &fixeds[i]});
    const auto results = identifier.IdentifyBatch(refs);

    DriftWindow window;
    window.window = w;
    window.feature_shift = shift;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const int verdict =
          results[i].type.has_value() ? *results[i].type : -1;
      report.verdict_hash = util::Mix64(
          report.verdict_hash * 0x9e3779b97f4a7c15ull +
          static_cast<std::uint64_t>(verdict + 2));
      ++report.probes_identified;
      if (verdict == truths[i]) {
        if (truths[i] == config.drifted_type) ++window.drifted_correct;
        if (truths[i] == config.control_type) ++window.control_correct;
      }
    }

    if (config.attach_monitor) {
      if (w + 1 == config.warmup_windows) monitor->PinBaseline();
      monitor->UpdateDrift();
      const auto t =
          static_cast<std::int64_t>((w + 1) * config.window_period_ns);
      store->Sample(t);
      engine->Evaluate(t);
      window.psi_drifted = monitor->Psi(config.drifted_type);
      window.psi_control = monitor->Psi(config.control_type);
      for (const auto& status : engine->Status()) {
        const bool is_drifted = status.rule.name == drifted_rule;
        if (is_drifted) {
          window.drifted_state = status.state;
          if (status.state == obs::AlertState::kPending &&
              report.pending_window < 0)
            report.pending_window = static_cast<int>(w);
          if (status.state == obs::AlertState::kFiring &&
              report.firing_window < 0)
            report.firing_window = static_cast<int>(w);
        } else {
          window.control_state = status.state;
          if (status.state != obs::AlertState::kOk)
            report.control_stayed_ok = false;
        }
      }
    }
    report.trajectory.push_back(window);
  }

  if (report.firing_window >= 0) {
    report.detection_latency_windows =
        report.firing_window - static_cast<int>(config.drift_start_window);
  }
  SENTINEL_LOG_INFO("drift", "scenario_done",
                    {"probes", report.probes_identified},
                    {"pending_window", report.pending_window},
                    {"firing_window", report.firing_window},
                    {"control_ok", report.control_stayed_ok});
  return report;
}

std::string DriftReport::ToJson() const {
  std::string out = "{\n  \"pending_window\": " +
                    std::to_string(pending_window) +
                    ",\n  \"firing_window\": " + std::to_string(firing_window) +
                    ",\n  \"detection_latency_windows\": " +
                    std::to_string(detection_latency_windows) +
                    ",\n  \"control_stayed_ok\": " +
                    (control_stayed_ok ? "true" : "false") +
                    ",\n  \"probes_identified\": " +
                    std::to_string(probes_identified) +
                    ",\n  \"verdict_hash\": " + std::to_string(verdict_hash) +
                    ",\n  \"windows\": [";
  bool first = true;
  for (const DriftWindow& w : trajectory) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"window\": " + std::to_string(w.window) +
           ", \"shift\": " + FormatDouble(w.feature_shift) +
           ", \"psi_drifted\": " + FormatDouble(w.psi_drifted) +
           ", \"psi_control\": " + FormatDouble(w.psi_control) +
           ", \"drifted_state\": \"" +
           obs::AlertStateName(w.drifted_state) + "\"" +
           ", \"control_state\": \"" + obs::AlertStateName(w.control_state) +
           "\"" + ", \"drifted_correct\": " +
           std::to_string(w.drifted_correct) +
           ", \"control_correct\": " + std::to_string(w.control_correct) +
           "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace sentinel::netsim
