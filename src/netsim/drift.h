// Firmware-drift scenario: the end-to-end validation of the quality/drift
// telemetry plane (ISSUE 7, ROADMAP item 4's "does drift trigger
// re-identification?" question).
//
// One device type's post-update firmware gradually shifts its traffic
// shape (every packet's size feature scales by a ramping factor — the kind
// of change a new TLS stack or chattier cloud protocol causes), while a
// control type keeps shipping factory firmware. Both keep joining the
// network window after window; every probe runs through the real trained
// identifier with the QualityMonitor attached, the TimeSeriesStore samples
// the registry once per window, and an AlertEngine rule watches each
// type's `sentinel_quality_psi{type=...}` gauge.
//
// The scenario is deterministic end to end: episodes come from the seeded
// simulator, verdicts from the thread-count-invariant identifier, and the
// PSI inputs are commutative atomic bucket counts — so the PSI trajectory,
// the alert-state sequence and the verdict hash are identical across runs
// and across thread pools. The expected outcome (asserted by
// tests/netsim/test_drift.cc and reported in EXPERIMENTS.md): the drifted
// type's alert walks ok -> pending -> firing in a fixed window, the
// control type never leaves ok.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/device_identifier.h"
#include "obs/alerts.h"
#include "obs/quality.h"
#include "obs/timeseries.h"
#include "util/thread_pool.h"

namespace sentinel::netsim {

struct DriftConfig {
  /// Catalog types in the trained bank (labels 0..bank_types-1).
  std::size_t bank_types = 6;
  /// Training episodes per type.
  std::size_t train_episodes = 6;
  /// The type whose firmware drifts and the unaffected control.
  int drifted_type = 2;
  int control_type = 5;
  /// Windows before the PSI baseline is pinned (clean-traffic warmup).
  /// Long enough that the baseline captures the natural bucket mix of
  /// clean traffic — a degenerate baseline makes every later-appearing
  /// bucket read as drift.
  std::size_t warmup_windows = 6;
  /// Total observation windows (including warmup).
  std::size_t windows = 18;
  /// Setup episodes identified per type per window.
  std::size_t probes_per_window = 16;
  /// First window (0-based) in which the firmware shift applies; the shift
  /// then ramps linearly to max_feature_shift at the final window.
  std::size_t drift_start_window = 8;
  /// Peak relative shift of the packet-size feature (0.35 = +35%).
  double max_feature_shift = 0.35;
  /// Simulated wall-clock per window (drives alert for_duration).
  std::uint64_t window_period_ns = 1'000'000'000;
  /// Alert rule: PSI above this for `for_windows` consecutive windows.
  double psi_threshold = 0.25;
  std::size_t for_windows = 2;
  std::uint64_t seed = 1717;
  /// When false the quality monitor / store / alert engine are never
  /// created — the differential half of the attached-vs-detached
  /// bit-identical contract (verdict_hash must not change).
  bool attach_monitor = true;
  obs::QualityMonitorConfig quality;
};

/// One window of the scenario's telemetry readout.
struct DriftWindow {
  std::size_t window = 0;
  double feature_shift = 0.0;  // relative shift applied this window
  double psi_drifted = 0.0;
  double psi_control = 0.0;
  obs::AlertState drifted_state = obs::AlertState::kOk;
  obs::AlertState control_state = obs::AlertState::kOk;
  /// Probes of each type identified as their true type this window.
  std::size_t drifted_correct = 0;
  std::size_t control_correct = 0;
};

struct DriftReport {
  std::vector<DriftWindow> trajectory;
  /// First window (0-based) each state was reached for the drifted type's
  /// rule; -1 if never.
  int pending_window = -1;
  int firing_window = -1;
  /// True iff the control type's rule stayed ok through every window.
  bool control_stayed_ok = true;
  /// Windows from the first drifted probe to the firing transition
  /// (detection latency); -1 if the alert never fired.
  int detection_latency_windows = -1;
  /// Chained hash over every verdict in probe order — identical across
  /// runs, thread counts and attach_monitor settings.
  std::uint64_t verdict_hash = 0;
  std::size_t probes_identified = 0;

  [[nodiscard]] std::string ToJson() const;
};

/// Runs the scenario. `pool` (nullable) parallelizes training and batched
/// identification; the report is bit-identical with or without it.
DriftReport RunDriftScenario(const DriftConfig& config,
                             util::ThreadPool* pool = nullptr);

}  // namespace sentinel::netsim
