#include "netsim/event_queue.h"

namespace sentinel::netsim {

void EventQueue::ScheduleAt(SimTime when, Callback callback) {
  if (when < now_) when = now_;
  events_.push(Event{when, next_seq_++, std::move(callback)});
}

bool EventQueue::RunNext() {
  if (events_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (shared ownership is cheap here).
  Event event = events_.top();
  events_.pop();
  now_ = event.time;
  event.callback();
  return true;
}

std::size_t EventQueue::Run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && RunNext()) ++count;
  return count;
}

std::size_t EventQueue::RunUntil(SimTime until) {
  std::size_t count = 0;
  while (!events_.empty() && events_.top().time <= until && RunNext()) ++count;
  return count;
}

}  // namespace sentinel::netsim
