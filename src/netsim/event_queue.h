// Discrete-event simulation core: a time-ordered queue of callbacks with a
// deterministic tie-break (FIFO among equal timestamps).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sentinel::netsim {

using SimTime = std::uint64_t;  // nanoseconds since simulation start

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute time `when` (clamped to now()).
  void ScheduleAt(SimTime when, Callback callback);
  /// Schedules `callback` `delay` after the current time.
  void ScheduleAfter(SimTime delay, Callback callback) {
    ScheduleAt(now_ + delay, std::move(callback));
  }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool RunNext();
  /// Runs events until the queue empties or `max_events` have run.
  /// Returns the number of events executed.
  std::size_t Run(std::size_t max_events = SIZE_MAX);
  /// Runs events with timestamps <= `until`.
  std::size_t RunUntil(SimTime until);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sentinel::netsim
