#include "netsim/network.h"

namespace sentinel::netsim {

// ---- SharedMedium ----------------------------------------------------------

SimTime SharedMedium::Transmit(SimTime now, std::size_t bytes) {
  const SimTime start = std::max(now, busy_until_);
  const auto airtime = static_cast<SimTime>(
      static_cast<double>(bytes) * 8.0 / bits_per_ns_);
  busy_until_ = start + airtime + overhead_ns_;
  return busy_until_;
}

// ---- GatewayCpu ------------------------------------------------------------

SimTime GatewayCpu::Process(SimTime now) {
  const SimTime cost = service_ns_ + (filtering_ ? filter_extra_ns_ : 0);
  const SimTime start = std::max(now, busy_until_);
  busy_until_ = start + cost;
  busy_ns_ += cost;
  return busy_until_;
}

double GatewayCpu::Utilization(SimTime window_start, SimTime window_end,
                               double base_load) const {
  if (window_end <= window_start) return base_load;
  const double busy = static_cast<double>(busy_ns_) /
                      static_cast<double>(window_end - window_start);
  const double util = base_load + busy;
  return util > 1.0 ? 1.0 : util;
}

// ---- SimHost ---------------------------------------------------------------

SimHost::SimHost(Network& network, std::string name, net::MacAddress mac,
                 net::Ipv4Address ip, LinkProfile link, sdn::PortId port)
    : network_(network),
      name_(std::move(name)),
      mac_(mac),
      ip_(ip),
      link_(link),
      port_(port) {}

void SimHost::SendFrame(net::Frame frame) {
  ++sent_;
  network_.HostTransmit(*this, std::move(frame));
}

void SimHost::Ping(const SimHost& target,
                   std::function<void(SimTime)> on_rtt, std::size_t payload) {
  const std::uint16_t id = next_icmp_id_++;
  const std::uint16_t seq = 1;
  pending_pings_[(std::uint32_t{id} << 16) | seq] = {
      network_.queue().now(), std::move(on_rtt)};
  auto request = net::IcmpMessage::EchoRequest(id, seq, payload);
  SendFrame(net::BuildIcmp4Frame(network_.queue().now(), mac_, target.mac(),
                                 ip_, target.ip(), request));
}

void SimHost::SendUdp(const SimHost& target, std::uint16_t dst_port,
                      std::size_t payload) {
  net::UdpDatagram udp;
  udp.src_port = next_udp_port_++;
  if (next_udp_port_ < 50000) next_udp_port_ = 50000;
  udp.dst_port = dst_port;
  udp.payload.assign(payload, 0x5a);
  SendFrame(net::BuildUdp4Frame(network_.queue().now(), mac_, target.mac(),
                                ip_, target.ip(), udp));
}

void SimHost::Deliver(const net::Frame& frame) {
  ++received_;
  net::ParsedPacket packet;
  try {
    packet = net::ParseFrame(frame);
  } catch (const net::CodecError&) {
    return;
  }
  if (!packet.protocols.Has(net::Protocol::kIcmp)) return;

  // Re-decode the ICMP body to answer echoes / match replies.
  net::ByteReader r(frame.bytes);
  net::EthernetHeader::Decode(r);
  std::size_t payload_len = 0;
  net::Ipv4Header::Decode(r, payload_len);
  const auto icmp = net::IcmpMessage::Decode(r, payload_len);

  if (icmp.IsEchoRequest()) {
    SendFrame(net::BuildIcmp4Frame(network_.queue().now(), mac_,
                                   packet.src_mac,
                                   ip_, packet.src_ip->v4(),
                                   net::IcmpMessage::EchoReply(icmp)));
    return;
  }
  if (icmp.IsEchoReply()) {
    const std::uint32_t key =
        (std::uint32_t{icmp.identifier} << 16) | icmp.sequence;
    const auto it = pending_pings_.find(key);
    if (it != pending_pings_.end()) {
      const SimTime rtt = network_.queue().now() - it->second.first;
      auto callback = std::move(it->second.second);
      pending_pings_.erase(it);
      if (callback) callback(rtt);
    }
  }
}

// ---- Network ---------------------------------------------------------------

Network::Network(std::uint64_t seed)
    : switch_("security-gateway"),
      controller_(/*learning_switch=*/true),
      cpu_(/*service_ns=*/150'000, /*filter_extra_ns=*/6'000),
      rng_(seed) {
  switch_.SetController(&controller_);
}

SimHost* Network::AddHost(const std::string& name, net::Ipv4Address ip,
                          LinkProfile link) {
  const sdn::PortId port = next_port_++;
  // Locally-administered MAC derived from the port number.
  auto mac = net::MacAddress::FromUint64(0x020000000000ull + port);
  auto host = std::make_unique<SimHost>(*this, name, mac, ip, link, port);
  SimHost* raw = host.get();
  hosts_.push_back(std::move(host));
  switch_.AttachPort(port, [this, raw](const net::Frame& frame) {
    DeliverToHost(*raw, frame);
  });
  return raw;
}

SimHost* Network::HostByIp(net::Ipv4Address ip) {
  for (auto& host : hosts_)
    if (host->ip() == ip) return host.get();
  return nullptr;
}

void Network::InstallStaticForwarding() {
  for (const auto& src : hosts_) {
    for (const auto& dst : hosts_) {
      if (src == dst) continue;
      sdn::FlowRule rule;
      rule.priority = 10;
      rule.match.eth_src = src->mac();
      rule.match.eth_dst = dst->mac();
      rule.actions = {sdn::ActionOutput{dst->port()}};
      switch_.flow_table().Add(std::move(rule));
    }
  }
}

void Network::StartFlow(SimHost& src, const SimHost& dst,
                        double packets_per_second, std::size_t payload,
                        SimTime duration_ns) {
  const auto interval =
      static_cast<SimTime>(1e9 / packets_per_second);
  const SimTime stop = queue_.now() + duration_ns;
  // Desynchronize flows with a random phase. The recurring event holds the
  // callback via shared ownership, but the callback itself captures only a
  // weak reference to avoid an ownership cycle; the network keeps the flow
  // alive in flows_.
  std::uniform_int_distribution<SimTime> phase(0, interval);
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  SimHost* src_ptr = &src;
  const SimHost* dst_ptr = &dst;
  *tick = [this, src_ptr, dst_ptr, payload, interval, stop, weak_tick]() {
    if (queue_.now() >= stop) return;
    src_ptr->SendUdp(*dst_ptr, 7000, payload);
    queue_.ScheduleAfter(interval, [weak_tick]() {
      if (const auto self = weak_tick.lock()) (*self)();
    });
  };
  flows_.push_back(tick);
  queue_.ScheduleAfter(phase(rng_), [weak_tick]() {
    if (const auto self = weak_tick.lock()) (*self)();
  });
}

SimTime Network::LinkDelay(const LinkProfile& link) {
  std::uniform_int_distribution<SimTime> jitter(0, 2 * link.jitter_ns);
  const SimTime base = link.base_latency_ns - link.jitter_ns;
  return base + jitter(rng_);
}

bool Network::LinkDrops(const LinkProfile& link) {
  if (link.loss_probability <= 0.0) return false;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng_) >= link.loss_probability) return false;
  ++frames_lost_;
  return true;
}

void Network::HostTransmit(SimHost& host, net::Frame frame) {
  if (LinkDrops(host.link())) return;
  // WiFi frames first serialize on the shared medium (contention), then
  // propagate; wired links only propagate.
  SimTime tx_done = queue_.now();
  if (host.link().kind == LinkKind::kWifi) {
    tx_done = wifi_.Transmit(queue_.now(), frame.size());
  }
  const SimTime ready = tx_done + LinkDelay(host.link());
  const sdn::PortId port = host.port();
  queue_.ScheduleAt(ready, [this, port, frame = std::move(frame)]() {
    // Arrival at the gateway: queue behind the CPU, then run the datapath.
    SimTime done = cpu_.Process(queue_.now());
    if (cpu_.filtering()) done += filtering_pipeline_ns_;
    queue_.ScheduleAt(done, [this, port, frame]() {
      net::Frame stamped = frame;
      stamped.timestamp_ns = queue_.now();
      switch_.Inject(port, stamped);
    });
  });
}

void Network::DeliverToHost(SimHost& host, const net::Frame& frame) {
  if (LinkDrops(host.link())) return;
  SimTime tx_done = queue_.now();
  if (host.link().kind == LinkKind::kWifi) {
    tx_done = wifi_.Transmit(queue_.now(), frame.size());
  }
  const SimTime ready = tx_done + LinkDelay(host.link());
  SimHost* target = &host;
  queue_.ScheduleAt(ready, [target, frame]() { target->Deliver(frame); });
}

std::size_t Network::GatewayMemoryBytes(std::size_t extra_bytes) const {
  return base_memory_bytes_ + switch_.MemoryBytes() + extra_bytes;
}

}  // namespace sentinel::netsim
