// Simulated gateway network reproducing the paper's lab topology (Fig. 4):
// wireless devices D1..Dn on a shared WiFi medium, wired hosts, a local
// server and a remote (WAN) server, all hanging off a Security-Gateway
// switch. Models:
//   - per-link propagation latency (+jitter),
//   - WiFi airtime contention as a shared single-server medium,
//   - gateway packet processing as a single-server queue with a
//     configurable per-packet service time (the R-Pi CPU),
//   - CPU busy-time and memory accounting for Fig. 6b/6c.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/rng.h"
#include "netsim/event_queue.h"
#include "sdn/controller.h"
#include "sdn/switch.h"

namespace sentinel::netsim {

enum class LinkKind : std::uint8_t {
  kWifi,      // shared medium, contention
  kEthernet,  // dedicated, low latency
  kWan,       // dedicated, higher latency (remote server)
};

struct LinkProfile {
  LinkKind kind = LinkKind::kWifi;
  /// One-way propagation+driver latency.
  SimTime base_latency_ns = 6'000'000;  // 6 ms
  SimTime jitter_ns = 500'000;          // +/- 0.5 ms uniform
  /// Per-frame loss probability on this link (applied independently to
  /// each direction). 0 = lossless, the default for the paper's lab.
  double loss_probability = 0.0;
};

/// Shared WiFi medium: packets serialize over the air one at a time;
/// airtime depends on frame size. Models AP-side contention, the effect
/// behind Fig. 6a's latency-vs-flows curve.
class SharedMedium {
 public:
  explicit SharedMedium(double megabits_per_second = 12.0,
                        SimTime per_frame_overhead_ns = 250'000)
      : bits_per_ns_(megabits_per_second / 1000.0),
        overhead_ns_(per_frame_overhead_ns) {}

  /// Reserves airtime for a frame of `bytes` starting no earlier than
  /// `now`; returns the transmission completion time.
  SimTime Transmit(SimTime now, std::size_t bytes);

  [[nodiscard]] SimTime busy_until() const { return busy_until_; }

 private:
  double bits_per_ns_;
  SimTime overhead_ns_;
  SimTime busy_until_ = 0;
};

/// Gateway CPU model: single-server queue with per-packet service cost.
class GatewayCpu {
 public:
  /// `service_ns` = per-packet forwarding cost; `filter_extra_ns` is added
  /// while filtering is enabled (rule-cache lookup + policy evaluation).
  GatewayCpu(SimTime service_ns, SimTime filter_extra_ns)
      : service_ns_(service_ns), filter_extra_ns_(filter_extra_ns) {}

  void set_filtering(bool on) { filtering_ = on; }
  [[nodiscard]] bool filtering() const { return filtering_; }

  /// Enqueues one packet arriving at `now`; returns the time processing
  /// completes. Accumulates busy time.
  SimTime Process(SimTime now);

  /// CPU utilization over [window_start, window_end): busy fraction plus
  /// the base system load of the R-Pi deployment (~36% in Fig. 6b).
  [[nodiscard]] double Utilization(SimTime window_start, SimTime window_end,
                                   double base_load = 0.36) const;

  void ResetWindow() { busy_ns_ = 0; }
  [[nodiscard]] SimTime busy_ns() const { return busy_ns_; }

 private:
  SimTime service_ns_;
  SimTime filter_extra_ns_;
  bool filtering_ = false;
  SimTime busy_until_ = 0;
  SimTime busy_ns_ = 0;
};

class Network;

/// A simulated host: wireless IoT device, wired server, or WAN server.
class SimHost {
 public:
  SimHost(Network& network, std::string name, net::MacAddress mac,
          net::Ipv4Address ip, LinkProfile link, sdn::PortId port);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::MacAddress mac() const { return mac_; }
  [[nodiscard]] net::Ipv4Address ip() const { return ip_; }
  [[nodiscard]] sdn::PortId port() const { return port_; }
  [[nodiscard]] const LinkProfile& link() const { return link_; }

  /// Sends a raw frame into the network (uplink).
  void SendFrame(net::Frame frame);

  /// Sends an ICMP echo request; `on_rtt` fires with the measured RTT when
  /// the reply arrives.
  void Ping(const SimHost& target, std::function<void(SimTime rtt_ns)> on_rtt,
            std::size_t payload = 56);

  /// Sends one UDP datagram to `target`.
  void SendUdp(const SimHost& target, std::uint16_t dst_port,
               std::size_t payload);

  /// Delivery from the network (downlink). Echo requests are answered.
  void Deliver(const net::Frame& frame);

  [[nodiscard]] std::uint64_t received_count() const { return received_; }
  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }

 private:
  Network& network_;
  std::string name_;
  net::MacAddress mac_;
  net::Ipv4Address ip_;
  LinkProfile link_;
  sdn::PortId port_;
  std::uint16_t next_icmp_id_ = 1;
  std::uint16_t next_udp_port_ = 50000;
  std::unordered_map<std::uint32_t, std::pair<SimTime, std::function<void(SimTime)>>>
      pending_pings_;  // key = (id<<16)|seq
  std::uint64_t received_ = 0;
  std::uint64_t sent_ = 0;
};

/// The simulated network: switch + controller + hosts + media.
class Network {
 public:
  explicit Network(std::uint64_t seed = 7);

  /// Adds a host on the next free port. Returned pointer is stable and
  /// owned by the network.
  SimHost* AddHost(const std::string& name, net::Ipv4Address ip,
                   LinkProfile link);

  /// Installs exact bidirectional forwarding rules for every host pair
  /// (static forwarding; keeps latency benchmarks independent of the
  /// learning path).
  void InstallStaticForwarding();

  /// Starts a constant-rate UDP flow src -> dst. Flows run until
  /// `duration_ns` elapses.
  void StartFlow(SimHost& src, const SimHost& dst, double packets_per_second,
                 std::size_t payload, SimTime duration_ns);

  /// Runs the simulation until the event queue drains (or max_events).
  std::size_t Run(std::size_t max_events = SIZE_MAX) {
    return queue_.Run(max_events);
  }
  std::size_t RunUntil(SimTime until) { return queue_.RunUntil(until); }

  EventQueue& queue() { return queue_; }
  sdn::SoftwareSwitch& gateway_switch() { return switch_; }
  sdn::Controller& controller() { return controller_; }
  GatewayCpu& cpu() { return cpu_; }
  ml::Rng& rng() { return rng_; }
  [[nodiscard]] SimHost* HostByIp(net::Ipv4Address ip);

  /// Gateway process memory: baseline footprint plus live datapath state.
  /// `extra_bytes` lets callers account state held by higher layers (the
  /// Sentinel enforcement-rule cache).
  [[nodiscard]] std::size_t GatewayMemoryBytes(std::size_t extra_bytes = 0) const;

  /// Frames dropped by lossy links so far (both directions).
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }

  // -- internal plumbing used by SimHost ------------------------------------
  void HostTransmit(SimHost& host, net::Frame frame);

 private:
  void DeliverToHost(SimHost& host, const net::Frame& frame);
  SimTime LinkDelay(const LinkProfile& link);
  bool LinkDrops(const LinkProfile& link);

  EventQueue queue_;
  sdn::SoftwareSwitch switch_;
  sdn::Controller controller_;
  GatewayCpu cpu_;
  /// Userspace redirection cost per gateway pass while filtering is on
  /// (the wireless-isolation OVS detour of Sect. V) — adds latency without
  /// consuming CPU budget.
  SimTime filtering_pipeline_ns_ = 120'000;
  SharedMedium wifi_;
  ml::Rng rng_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  /// Keeps flow generators alive for the network's lifetime (their events
  /// hold only weak references).
  std::vector<std::shared_ptr<std::function<void()>>> flows_;
  sdn::PortId next_port_ = 1;
  std::uint64_t frames_lost_ = 0;
  /// Baseline gateway process footprint (OS + controller runtime) — the
  /// flat component of Fig. 6c.
  std::size_t base_memory_bytes_ = 38ull * 1024 * 1024;
};

}  // namespace sentinel::netsim
