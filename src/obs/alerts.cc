#include "obs/alerts.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/log.h"
#include "util/check.h"

namespace sentinel::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* InputName(AlertRule::Input input) {
  switch (input) {
    case AlertRule::Input::kValue:
      return "value";
    case AlertRule::Input::kRate:
      return "rate";
    case AlertRule::Input::kDelta:
      return "delta";
  }
  return "value";
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk:
      return "ok";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "ok";
}

AlertEngine::AlertEngine(const TimeSeriesStore* store,
                         MetricsRegistry* registry)
    : store_(store), registry_(registry) {
  SENTINEL_CHECK(store_ != nullptr) << "alert engine needs a series store";
  if (registry_ != nullptr) {
    transitions_total_ = &registry_->GetCounter(
        "sentinel_alerts_transitions_total", "alert rule state transitions");
  }
}

void AlertEngine::AddRule(const AlertRule& rule) {
  SENTINEL_CHECK(!rule.name.empty() && !rule.series.empty())
      << "alert rule needs a name and a series";
  SENTINEL_CHECK(rule.window >= 1) << rule.name << ": window must be >= 1";
  MutexLock lock(mutex_);
  RuleSlot slot;
  slot.rule = rule;
  if (registry_ != nullptr) {
    slot.state_gauge = &registry_->GetGauge(
        "sentinel_alert_state{rule=\"" + rule.name + "\"}",
        "alert rule state: 0 ok, 1 pending, 2 firing");
    slot.state_gauge->Set(0.0);
  }
  rules_.push_back(std::move(slot));
}

std::size_t AlertEngine::rule_count() const {
  MutexLock lock(mutex_);
  return rules_.size();
}

std::size_t AlertEngine::LoadRules(const std::string& text) {
  std::size_t added = 0;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token) || token[0] == '#') continue;
    const auto fail = [&](const std::string& what) {
      throw std::runtime_error("alert rules line " +
                               std::to_string(line_number) + ": " + what);
    };
    if (token != "alert") fail("expected 'alert', got '" + token + "'");
    AlertRule rule;
    if (!(fields >> rule.name)) fail("missing rule name");
    bool have_series = false;
    bool have_threshold = false;
    while (fields >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) fail("expected key=value, got '" + token + "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "series") {
          rule.series = value;
          have_series = true;
        } else if (key == "input") {
          if (value == "value") {
            rule.input = AlertRule::Input::kValue;
          } else if (value == "rate") {
            rule.input = AlertRule::Input::kRate;
          } else if (value == "delta") {
            rule.input = AlertRule::Input::kDelta;
          } else {
            fail("unknown input '" + value + "'");
          }
        } else if (key == "op") {
          if (value == "gt") {
            rule.op = AlertRule::Op::kGt;
          } else if (value == "lt") {
            rule.op = AlertRule::Op::kLt;
          } else {
            fail("unknown op '" + value + "'");
          }
        } else if (key == "threshold") {
          rule.threshold = std::stod(value);
          have_threshold = true;
        } else if (key == "for") {
          rule.for_ns = static_cast<std::int64_t>(std::stod(value) * 1e9);
        } else if (key == "window") {
          rule.window = static_cast<std::size_t>(std::stoul(value));
        } else {
          fail("unknown key '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        fail("bad number in '" + token + "'");
      } catch (const std::out_of_range&) {
        fail("number out of range in '" + token + "'");
      }
    }
    if (!have_series) fail("rule '" + rule.name + "' missing series=");
    if (!have_threshold) fail("rule '" + rule.name + "' missing threshold=");
    AddRule(rule);
    ++added;
  }
  return added;
}

std::size_t AlertEngine::LoadRulesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open alert rules file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return LoadRules(text.str());
}

void AlertEngine::Transition(RuleSlot& slot, AlertState next,
                             double value) {
  if (slot.state == next) return;
  SENTINEL_LOG_INFO("alerts", "transition", {"rule", slot.rule.name},
                    {"series", slot.rule.series},
                    {"from", AlertStateName(slot.state)},
                    {"to", AlertStateName(next)}, {"value", value},
                    {"threshold", slot.rule.threshold});
  slot.state = next;
  if (next == AlertState::kOk) slot.since_ns = 0;
  if (transitions_total_ != nullptr) transitions_total_->Increment();
  if (slot.state_gauge != nullptr)
    slot.state_gauge->Set(next == AlertState::kOk        ? 0.0
                          : next == AlertState::kPending ? 1.0
                                                         : 2.0);
}

void AlertEngine::Evaluate(std::int64_t now_ns) {
  MutexLock lock(mutex_);
  for (RuleSlot& slot : rules_) {
    const TimeSeriesStore::WindowStats stats =
        store_->Window(slot.rule.series, slot.rule.window);
    slot.last_samples = stats.samples;
    if (stats.samples == 0) {
      // No telemetry (yet) for this series: not an alert.
      slot.last_value = 0.0;
      Transition(slot, AlertState::kOk, 0.0);
      continue;
    }
    double value = stats.last;
    if (slot.rule.input == AlertRule::Input::kRate) value = stats.rate_per_s;
    if (slot.rule.input == AlertRule::Input::kDelta) value = stats.delta;
    slot.last_value = value;
    const bool condition = slot.rule.op == AlertRule::Op::kGt
                               ? value > slot.rule.threshold
                               : value < slot.rule.threshold;
    if (!condition) {
      Transition(slot, AlertState::kOk, value);
      continue;
    }
    if (slot.state == AlertState::kOk) {
      slot.since_ns = now_ns;
      Transition(slot, AlertState::kPending, value);
    }
    if (slot.state == AlertState::kPending &&
        now_ns - slot.since_ns >= slot.rule.for_ns) {
      Transition(slot, AlertState::kFiring, value);
    }
  }
}

std::vector<AlertEngine::RuleStatus> AlertEngine::Status() const {
  MutexLock lock(mutex_);
  std::vector<RuleStatus> out;
  out.reserve(rules_.size());
  for (const RuleSlot& slot : rules_) {
    RuleStatus status;
    status.rule = slot.rule;
    status.state = slot.state;
    status.since_ns = slot.since_ns;
    status.last_value = slot.last_value;
    status.last_samples = slot.last_samples;
    out.push_back(std::move(status));
  }
  return out;
}

std::string AlertEngine::RenderJson() const {
  const std::vector<RuleStatus> statuses = Status();
  std::size_t pending = 0;
  std::size_t firing = 0;
  std::string out = "{\n  \"rules\": [";
  bool first = true;
  for (const RuleStatus& status : statuses) {
    if (status.state == AlertState::kPending) ++pending;
    if (status.state == AlertState::kFiring) ++firing;
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": " + JsonQuote(status.rule.name) +
           ", \"series\": " + JsonQuote(status.rule.series) +
           ", \"input\": " + JsonQuote(InputName(status.rule.input)) +
           ", \"op\": " +
           JsonQuote(status.rule.op == AlertRule::Op::kGt ? "gt" : "lt") +
           ", \"threshold\": " + FormatDouble(status.rule.threshold) +
           ", \"for_s\": " +
           FormatDouble(static_cast<double>(status.rule.for_ns) * 1e-9) +
           ", \"window\": " + std::to_string(status.rule.window) +
           ", \"state\": " + JsonQuote(AlertStateName(status.state)) +
           ", \"since_ns\": " + std::to_string(status.since_ns) +
           ", \"value\": " + FormatDouble(status.last_value) +
           ", \"samples\": " + std::to_string(status.last_samples) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"pending\": " + std::to_string(pending) +
         ",\n  \"firing\": " + std::to_string(firing) + "\n}\n";
  return out;
}

}  // namespace sentinel::obs
