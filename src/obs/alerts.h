// Alert rule engine over the time-series store: Prometheus-style
// `threshold` + `for_duration` semantics on any sampled series.
//
// Each rule names a series, an input transform (the windowed value, rate or
// delta), a comparison and a hold duration. Evaluate(now_ns) — called by
// the sampler right after TimeSeriesStore::Sample — walks every rule:
//
//   condition false              -> ok      (pending/firing reset)
//   condition true, held < for   -> pending (since first true evaluation)
//   condition true, held >= for  -> firing
//
// A rule whose series does not exist (yet) or has no samples evaluates to
// ok — absence of telemetry is not an alert. Every state transition emits
// one structured log line (`alerts` component) and increments
// `sentinel_alerts_transitions_total`, and the full rule state is
// exposable as JSON for the /alerts endpoint.
//
// Rules load from a small line-based config file:
//
//   # comment
//   alert high_unknown_rate series=sentinel_identifier_unknown_total
//         input=rate op=gt threshold=0.5 for=30 window=10
//
// (one rule per line; `for` in seconds, `window` in samples; input
// defaults to value, window to 10.) Evaluation takes the engine mutex, so Status()/RenderJson()
// scrapers never observe a half-updated rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

struct AlertRule {
  enum class Input { kValue, kRate, kDelta };
  enum class Op { kGt, kLt };

  std::string name;
  std::string series;
  Input input = Input::kValue;
  Op op = Op::kGt;
  double threshold = 0.0;
  /// How long the condition must hold before pending escalates to firing.
  std::int64_t for_ns = 0;
  /// Samples of the series consulted per evaluation.
  std::size_t window = 10;
};

enum class AlertState { kOk, kPending, kFiring };

[[nodiscard]] const char* AlertStateName(AlertState state);

class AlertEngine {
 public:
  /// `store` must outlive the engine. `registry` (optional) receives the
  /// transition counter and per-rule state gauges.
  explicit AlertEngine(const TimeSeriesStore* store,
                       MetricsRegistry* registry = nullptr);

  void AddRule(const AlertRule& rule);
  [[nodiscard]] std::size_t rule_count() const;

  /// Parses `text` (the rules-file format above) and adds every rule.
  /// Throws std::runtime_error naming the offending line on a syntax
  /// error. Returns the number of rules added.
  std::size_t LoadRules(const std::string& text);
  std::size_t LoadRulesFile(const std::string& path);

  /// Evaluates every rule against the store. Call after each
  /// TimeSeriesStore::Sample with the same timestamp.
  void Evaluate(std::int64_t now_ns);

  struct RuleStatus {
    AlertRule rule;
    AlertState state = AlertState::kOk;
    /// Timestamp of the first true evaluation of the current episode
    /// (pending/firing only).
    std::int64_t since_ns = 0;
    /// The input value at the last evaluation (0 before any evaluation).
    double last_value = 0.0;
    std::size_t last_samples = 0;
  };

  [[nodiscard]] std::vector<RuleStatus> Status() const;

  /// {"rules": [{"name": ..., "state": "firing", ...}, ...],
  ///  "firing": N, "pending": N}.
  [[nodiscard]] std::string RenderJson() const;

 private:
  struct RuleSlot {
    AlertRule rule;
    AlertState state = AlertState::kOk;
    std::int64_t since_ns = 0;
    double last_value = 0.0;
    std::size_t last_samples = 0;
    Gauge* state_gauge = nullptr;  // 0 ok / 1 pending / 2 firing
  };

  void Transition(RuleSlot& slot, AlertState next, double value)
      SENTINEL_REQUIRES(mutex_);

  const TimeSeriesStore* const store_;
  MetricsRegistry* const registry_;
  Counter* transitions_total_ = nullptr;

  mutable Mutex mutex_{"obs.alerts"};
  std::vector<RuleSlot> rules_ SENTINEL_GUARDED_BY(mutex_);
};

}  // namespace sentinel::obs
