#include "obs/build_info.h"

namespace sentinel::obs {

const std::string& BuildVersion() {
  static const std::string kVersion =
#if defined(SENTINEL_VERSION)
      SENTINEL_VERSION;
#else
      "dev";
#endif
  return kVersion;
}

const std::string& BuildCompiler() {
  static const std::string kCompiler =
#if defined(__clang__)
      std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
      std::string("gcc ") + __VERSION__;
#else
      "unknown";
#endif
  return kCompiler;
}

StandardMetrics RegisterStandardMetrics(MetricsRegistry& registry) {
  Gauge& info = registry.GetGauge(
      "sentinel_build_info{version=\"" + BuildVersion() + "\",compiler=\"" +
          BuildCompiler() + "\"}",
      "build metadata; value is always 1");
  info.Set(1.0);
  StandardMetrics handles;
  handles.uptime_seconds = &registry.GetGauge(
      "sentinel_uptime_seconds", "seconds since this process registered");
  return handles;
}

}  // namespace sentinel::obs
