// Standard process-level metrics every exposition should carry:
// `sentinel_build_info{version=...,compiler=...}` (constant 1, the usual
// Prometheus idiom for attaching build metadata to a scrape) and
// `sentinel_uptime_seconds`, which the caller's sampler keeps current via
// the returned gauge handle.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace sentinel::obs {

struct StandardMetrics {
  /// Update with seconds-since-start at each sampling tick.
  Gauge* uptime_seconds = nullptr;
};

/// The version string baked into sentinel_build_info (the project version
/// from CMake when available, "dev" otherwise).
[[nodiscard]] const std::string& BuildVersion();

/// A short compiler identification ("gcc 13.2.0" style).
[[nodiscard]] const std::string& BuildCompiler();

/// Registers sentinel_build_info (set to 1) and sentinel_uptime_seconds
/// (set to 0) in `registry` and returns the handles the caller keeps
/// updating. Idempotent per registry.
StandardMetrics RegisterStandardMetrics(MetricsRegistry& registry);

}  // namespace sentinel::obs
