#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "util/check.h"

namespace sentinel::obs {

namespace {

std::string FormatNumber(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* DeviceEventKindName(DeviceEventKind kind) {
  switch (kind) {
    case DeviceEventKind::kFirstSeen:
      return "first_seen";
    case DeviceEventKind::kPacketObserved:
      return "packet";
    case DeviceEventKind::kCaptureComplete:
      return "capture_complete";
    case DeviceEventKind::kFingerprintReady:
      return "fingerprint";
    case DeviceEventKind::kClassifierVote:
      return "classifier_vote";
    case DeviceEventKind::kTieBreakScore:
      return "tie_break";
    case DeviceEventKind::kVerdict:
      return "verdict";
    case DeviceEventKind::kVulnerabilityHit:
      return "vulnerability";
    case DeviceEventKind::kEnforcementLevel:
      return "enforcement";
    case DeviceEventKind::kFlowRuleInstalled:
      return "flow_rule";
    case DeviceEventKind::kIncident:
      return "incident";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  SENTINEL_CHECK(config_.events_per_device > 0)
      << "flight recorder needs a positive per-device capacity";
  SENTINEL_CHECK(config_.max_devices > 0)
      << "flight recorder needs a positive device capacity";
}

FlightRecorder::DeviceJournal& FlightRecorder::JournalFor(
    const net::MacAddress& mac) {
  auto it = journals_.find(mac);
  if (it == journals_.end()) {
    if (journals_.size() >= config_.max_devices) {
      // Evict the journal that has been quiet longest.
      auto victim = journals_.begin();
      for (auto cur = journals_.begin(); cur != journals_.end(); ++cur) {
        if (cur->second.last_update_sequence <
            victim->second.last_update_sequence) {
          victim = cur;
        }
      }
      journals_.erase(victim);
    }
    it = journals_.try_emplace(mac).first;
    it->second.first_seen_sequence = sequence_;
  }
  it->second.last_update_sequence = ++sequence_;
  return it->second;
}

void FlightRecorder::Record(const net::MacAddress& mac, DeviceEvent event) {
  MutexLock lock(mutex_);
  DeviceJournal& journal = JournalFor(mac);
  if (journal.ring.size() < config_.events_per_device) {
    journal.ring.push_back(std::move(event));
  } else {
    journal.ring[journal.next] = std::move(event);
  }
  journal.next = (journal.next + 1) % config_.events_per_device;
  ++journal.total;
}

void FlightRecorder::SetTraceId(const net::MacAddress& mac,
                                TraceId trace_id) {
  MutexLock lock(mutex_);
  JournalFor(mac).trace_id = trace_id;
}

TraceId FlightRecorder::trace_id(const net::MacAddress& mac) const {
  MutexLock lock(mutex_);
  const auto it = journals_.find(mac);
  return it == journals_.end() ? 0 : it->second.trace_id;
}

bool FlightRecorder::Known(const net::MacAddress& mac) const {
  MutexLock lock(mutex_);
  return journals_.contains(mac);
}

std::vector<net::MacAddress> FlightRecorder::Devices() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::uint64_t, net::MacAddress>> ordered;
  ordered.reserve(journals_.size());
  for (const auto& [mac, journal] : journals_) {
    ordered.emplace_back(journal.first_seen_sequence, mac);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<net::MacAddress> out;
  out.reserve(ordered.size());
  for (const auto& [sequence, mac] : ordered) out.push_back(mac);
  return out;
}

std::vector<DeviceEvent> FlightRecorder::Events(
    const net::MacAddress& mac) const {
  MutexLock lock(mutex_);
  const auto it = journals_.find(mac);
  if (it == journals_.end()) return {};
  const DeviceJournal& journal = it->second;
  std::vector<DeviceEvent> out;
  out.reserve(journal.ring.size());
  const std::size_t start =
      journal.ring.size() < config_.events_per_device ? 0 : journal.next;
  for (std::size_t i = 0; i < journal.ring.size(); ++i) {
    out.push_back(journal.ring[(start + i) % journal.ring.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_events(const net::MacAddress& mac) const {
  MutexLock lock(mutex_);
  const auto it = journals_.find(mac);
  return it == journals_.end() ? 0 : it->second.total;
}

std::string FlightRecorder::RenderJson(const net::MacAddress& mac) const {
  const TraceId trace = trace_id(mac);
  const std::uint64_t total = total_events(mac);
  const auto events = Events(mac);
  std::string out = "{\"mac\": " + JsonQuote(mac.ToString()) +
                    ", \"trace_id\": " + std::to_string(trace) +
                    ", \"events_total\": " + std::to_string(total) +
                    ", \"events\": [";
  bool first = true;
  for (const auto& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"kind\": ";
    out += JsonQuote(DeviceEventKindName(event.kind));
    out += ", \"t_ns\": " + std::to_string(event.timestamp_ns);
    if (!event.label.empty()) out += ", \"label\": " + JsonQuote(event.label);
    out += ", \"value\": " + FormatNumber(event.value) +
           ", \"extra\": " + FormatNumber(event.extra) +
           ", \"flag\": " + (event.flag ? std::string("true")
                                        : std::string("false")) +
           "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string FlightRecorder::Explain(const net::MacAddress& mac) const {
  const TraceId trace = trace_id(mac);
  const std::uint64_t total = total_events(mac);
  const auto events = Events(mac);
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "== %s (trace %llu, %llu events) ==\n",
                mac.ToString().c_str(),
                static_cast<unsigned long long>(trace),
                static_cast<unsigned long long>(total));
  out += line;
  if (events.empty()) {
    out += "no journal for this device\n";
    return out;
  }
  if (total > events.size()) {
    std::snprintf(line, sizeof(line),
                  "(ring wrapped: oldest %llu events overwritten)\n",
                  static_cast<unsigned long long>(total - events.size()));
    out += line;
  }

  std::size_t packets_accepted = 0;
  std::size_t packets_rejected = 0;
  bool votes_header = false;
  bool tiebreak_header = false;
  const auto FlushPackets = [&] {
    if (packets_accepted == 0 && packets_rejected == 0) return;
    std::snprintf(line, sizeof(line),
                  "setup-phase packets: %zu accepted, %zu after the phase\n",
                  packets_accepted, packets_rejected);
    out += line;
    packets_accepted = 0;
    packets_rejected = 0;
  };
  for (const auto& event : events) {
    if (event.kind != DeviceEventKind::kPacketObserved) FlushPackets();
    if (event.kind != DeviceEventKind::kClassifierVote) votes_header = false;
    if (event.kind != DeviceEventKind::kTieBreakScore) tiebreak_header = false;
    switch (event.kind) {
      case DeviceEventKind::kFirstSeen:
        out += "first seen on the network\n";
        break;
      case DeviceEventKind::kPacketObserved:
        ++(event.flag ? packets_accepted : packets_rejected);
        break;
      case DeviceEventKind::kCaptureComplete:
        std::snprintf(line, sizeof(line),
                      "capture complete: %.0f packets, %.0f after duplicate "
                      "removal\n",
                      event.value, event.extra);
        out += line;
        break;
      case DeviceEventKind::kFingerprintReady:
        std::snprintf(line, sizeof(line),
                      "fingerprint ready: F spans %.0f packets, F' packs "
                      "%.0f\n",
                      event.value, event.extra);
        out += line;
        break;
      case DeviceEventKind::kClassifierVote:
        if (!votes_header) {
          std::snprintf(line, sizeof(line),
                        "classifier votes (accept threshold %.2f):\n",
                        event.extra);
          out += line;
          votes_header = true;
        }
        std::snprintf(line, sizeof(line), "  [%s] %-24s p=%.3f\n",
                      event.flag ? "accept" : "reject", event.label.c_str(),
                      event.value);
        out += line;
        break;
      case DeviceEventKind::kTieBreakScore:
        if (!tiebreak_header) {
          out += "tie-break dissimilarity scores (lower wins):\n";
          tiebreak_header = true;
        }
        std::snprintf(line, sizeof(line), "  %-24s %.4f\n",
                      event.label.c_str(), event.value);
        out += line;
        break;
      case DeviceEventKind::kVerdict:
        std::snprintf(line, sizeof(line), "verdict: %s\n",
                      event.flag ? event.label.c_str()
                                 : "UNKNOWN device-type");
        out += line;
        break;
      case DeviceEventKind::kVulnerabilityHit:
        std::snprintf(line, sizeof(line), "vulnerability: %s (CVSS %.1f)\n",
                      event.label.c_str(), event.value);
        out += line;
        break;
      case DeviceEventKind::kEnforcementLevel:
        std::snprintf(line, sizeof(line),
                      "enforcement: %s (%.0f allowlisted endpoints)\n",
                      event.label.c_str(), event.value);
        out += line;
        break;
      case DeviceEventKind::kFlowRuleInstalled:
        std::snprintf(line, sizeof(line), "flow rule: %s\n",
                      event.label.c_str());
        out += line;
        break;
      case DeviceEventKind::kIncident:
        std::snprintf(line, sizeof(line), "incident: %s\n",
                      event.label.c_str());
        out += line;
        break;
    }
  }
  FlushPackets();
  return out;
}

}  // namespace sentinel::obs
