// Per-device flight recorder: a bounded ring journal of every step of a
// device's identification story — first sighting, setup-phase packets,
// fingerprint completion, each per-type classifier's accept/reject with
// its probability, every edit-distance tie-break score, vulnerability-DB
// hits, the enforcement level and the flow rules installed. This is the
// debugging surface metrics cannot give: `sentinelctl explain <mac>`
// renders the journal as a verdict narrative and the telemetry endpoint
// serves it as JSON under /devices/<mac>.
//
// Bounds: at most `events_per_device` journal entries per MAC (oldest
// overwritten first) and `max_devices` journals (least-recently-updated
// evicted first), so recorder memory is constant no matter how long the
// gateway runs. Components hold a `FlightRecorder*` defaulting to
// nullptr; detached call sites are a single branch, and recording never
// feeds back into identification, so journalled runs stay bit-identical
// to unjournalled ones.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

enum class DeviceEventKind : std::uint8_t {
  kFirstSeen = 0,
  kPacketObserved = 1,     // flag: accepted into the setup capture
  kCaptureComplete = 2,    // value: packets captured, extra: after dedup
  kFingerprintReady = 3,   // value: F rows, extra: F' packet count
  kClassifierVote = 4,     // label: type, value: proba, extra: threshold,
                           // flag: accepted
  kTieBreakScore = 5,      // label: type, value: dissimilarity score
  kVerdict = 6,            // label: type or "unknown", flag: known
  kVulnerabilityHit = 7,   // label: CVE id, value: CVSS score
  kEnforcementLevel = 8,   // label: isolation level, value: allowlist size
  kFlowRuleInstalled = 9,  // label: rule description
  kIncident = 10,          // label: denial reason
};

/// Stable lower-snake name for exports ("classifier_vote", ...).
const char* DeviceEventKindName(DeviceEventKind kind);

struct DeviceEvent {
  DeviceEventKind kind = DeviceEventKind::kFirstSeen;
  /// Packet/episode time where one exists, else 0 (the recorder does not
  /// read clocks — journal content stays deterministic for a given run).
  std::uint64_t timestamp_ns = 0;
  std::string label;
  double value = 0.0;
  double extra = 0.0;
  bool flag = false;
};

struct FlightRecorderConfig {
  std::size_t events_per_device = 512;
  std::size_t max_devices = 1024;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const net::MacAddress& mac, DeviceEvent event);

  /// Associates the device's journal with its span-trace id so the two
  /// provenance surfaces cross-reference.
  void SetTraceId(const net::MacAddress& mac, TraceId trace_id);
  [[nodiscard]] TraceId trace_id(const net::MacAddress& mac) const;

  [[nodiscard]] bool Known(const net::MacAddress& mac) const;
  /// Journalled devices in first-seen order.
  [[nodiscard]] std::vector<net::MacAddress> Devices() const;
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<DeviceEvent> Events(
      const net::MacAddress& mac) const;
  /// Events ever recorded for `mac` (>= Events().size() once wrapped).
  [[nodiscard]] std::uint64_t total_events(const net::MacAddress& mac) const;

  /// JSON journal for /devices/<mac>:
  /// {"mac": ..., "trace_id": ..., "events_total": ..., "events": [...]}.
  [[nodiscard]] std::string RenderJson(const net::MacAddress& mac) const;
  /// Human-readable verdict narrative (`sentinelctl explain`).
  [[nodiscard]] std::string Explain(const net::MacAddress& mac) const;

 private:
  struct DeviceJournal {
    TraceId trace_id = 0;
    std::uint64_t first_seen_sequence = 0;
    std::uint64_t last_update_sequence = 0;
    std::vector<DeviceEvent> ring;
    std::size_t next = 0;
    std::uint64_t total = 0;
  };

  DeviceJournal& JournalFor(const net::MacAddress& mac)
      SENTINEL_REQUIRES(mutex_);

  FlightRecorderConfig config_;
  mutable Mutex mutex_{"obs.flight_recorder"};
  std::unordered_map<net::MacAddress, DeviceJournal> journals_
      SENTINEL_GUARDED_BY(mutex_);
  std::uint64_t sequence_ SENTINEL_GUARDED_BY(mutex_) = 0;
};

}  // namespace sentinel::obs
