// Minimal JSON string escaping shared by the observability exporters
// (metrics registry, span tracer, flight recorder). Escapes the two
// mandatory characters plus control bytes; everything else passes through
// verbatim (all emitted keys are ASCII, values may carry arbitrary bytes).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace sentinel::obs {

inline void AppendJsonEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

inline std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonEscaped(out, s);
  return out;
}

}  // namespace sentinel::obs
