#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

namespace {

// ordering: relaxed — the threshold is an independent scalar config value;
// no other memory is published through it (the first-caller CAS only
// resolves init races, any winner is acceptable).
std::atomic<int> g_threshold{-1};  // -1 = not yet initialized from env

sentinel::Mutex g_sink_mutex{"obs.log_sink"};
std::function<void(std::string_view)> g_sink SENTINEL_GUARDED_BY(g_sink_mutex);

LogLevel InitThresholdFromEnv() {
  const char* env = std::getenv("SENTINEL_LOG");
  return env == nullptr ? LogLevel::kOff : ParseLogLevel(env);
}

bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '=' || c == '"' || c == '\\' || c == '\n' ||
        c == '\t')
      return true;
  }
  return false;
}

void AppendValue(std::string& line, const std::string& value) {
  if (!NeedsQuoting(value)) {
    line += value;
    return;
  }
  line += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') line += '\\';
    if (c == '\n') {
      line += "\\n";
      continue;
    }
    line += c;
  }
  line += '"';
}

}  // namespace

LogLevel ParseLogLevel(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "off";
}

LogLevel LogThreshold() {
  int current = g_threshold.load(std::memory_order_relaxed);
  if (current < 0) {
    const LogLevel from_env = InitThresholdFromEnv();
    // First caller wins; a concurrent SetLogThreshold() overrides anyway.
    int expected = -1;
    g_threshold.compare_exchange_strong(expected, static_cast<int>(from_env),
                                        std::memory_order_relaxed);
    current = g_threshold.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(current);
}

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Log(LogLevel level, std::string_view component, std::string_view event,
         std::initializer_list<LogField> fields) {
  if (!LogEnabled(level)) return;

  const auto now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::string line;
  line.reserve(96);
  line += "ts=" + std::to_string(now_ns);
  line += " level=";
  line += LogLevelName(level);
  line += " component=";
  line += component;
  line += " event=";
  line += event;
  for (const auto& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    AppendValue(line, field.value);
  }

  MutexLock lock(g_sink_mutex);
  if (g_sink) {
    g_sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void SetLogSink(std::function<void(std::string_view)> sink) {
  MutexLock lock(g_sink_mutex);
  g_sink = std::move(sink);
}

}  // namespace sentinel::obs
