// Leveled structured logging, off by default. The `SENTINEL_LOG`
// environment variable selects the threshold (trace|debug|info|warn|error,
// anything else or unset = off); records are single `key=value` lines on
// stderr so they grep/awk cleanly:
//
//   ts=1723790461123456789 level=info component=thread_pool event=started
//   threads=8 source=env
//
// The level check is a relaxed atomic load, so disabled call sites cost one
// branch; the SENTINEL_LOG_* macros additionally skip field construction
// entirely when the level is off.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

namespace sentinel::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Parses a level name ("debug"); unknown names map to kOff.
LogLevel ParseLogLevel(std::string_view name);
const char* LogLevelName(LogLevel level);

/// Current threshold: initialized from SENTINEL_LOG on first use.
LogLevel LogThreshold();
/// Overrides the threshold at runtime (tests, sentinelctl flags).
void SetLogThreshold(LogLevel level);

inline bool LogEnabled(LogLevel level) {
  return level >= LogThreshold() && LogThreshold() != LogLevel::kOff;
}

/// One key=value pair. Arithmetic values format via to_string; everything
/// string-like is copied. Values containing spaces, quotes or '=' are
/// double-quoted on output.
struct LogField {
  template <typename T>
  LogField(std::string_view k, T&& v) : key(k) {
    using D = std::decay_t<T>;
    if constexpr (std::is_same_v<D, bool>) {
      value = v ? "true" : "false";
    } else if constexpr (std::is_arithmetic_v<D>) {
      value = std::to_string(v);
    } else {
      value = std::string(std::string_view(v));
    }
  }

  std::string_view key;
  std::string value;
};

/// Emits one record (if `level` passes the threshold — callers using the
/// macros below have already checked, but Log() re-checks so direct calls
/// are safe too).
void Log(LogLevel level, std::string_view component, std::string_view event,
         std::initializer_list<LogField> fields = {});

/// Redirects output (default: stderr). Pass nullptr to restore stderr.
/// The sink receives the fully formatted line without the trailing newline.
void SetLogSink(std::function<void(std::string_view)> sink);

}  // namespace sentinel::obs

// The field list is pasted back verbatim by __VA_ARGS__, so braced fields
// ({"key", value}) survive macro expansion. Fields are only evaluated when
// the level is enabled.
#define SENTINEL_LOG_AT(level_, component_, event_, ...)             \
  do {                                                               \
    if (::sentinel::obs::LogEnabled(level_)) {                       \
      ::sentinel::obs::Log(level_, component_, event_,               \
                           {__VA_ARGS__});                           \
    }                                                                \
  } while (0)

#define SENTINEL_LOG_TRACE(component_, event_, ...)                 \
  SENTINEL_LOG_AT(::sentinel::obs::LogLevel::kTrace, component_,    \
                  event_ __VA_OPT__(, ) __VA_ARGS__)
#define SENTINEL_LOG_DEBUG(component_, event_, ...)                 \
  SENTINEL_LOG_AT(::sentinel::obs::LogLevel::kDebug, component_,    \
                  event_ __VA_OPT__(, ) __VA_ARGS__)
#define SENTINEL_LOG_INFO(component_, event_, ...)                  \
  SENTINEL_LOG_AT(::sentinel::obs::LogLevel::kInfo, component_,     \
                  event_ __VA_OPT__(, ) __VA_ARGS__)
#define SENTINEL_LOG_WARN(component_, event_, ...)                  \
  SENTINEL_LOG_AT(::sentinel::obs::LogLevel::kWarn, component_,     \
                  event_ __VA_OPT__(, ) __VA_ARGS__)
#define SENTINEL_LOG_ERROR(component_, event_, ...)                 \
  SENTINEL_LOG_AT(::sentinel::obs::LogLevel::kError, component_,    \
                  event_ __VA_OPT__(, ) __VA_ARGS__)
