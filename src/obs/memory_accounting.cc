#include "obs/memory_accounting.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sentinel::obs {

void MemoryAccounting::Registration::Release() {
  if (registry_ == nullptr) return;
  registry_->Unregister(id_);
  registry_ = nullptr;
}

MemoryAccounting::Registration MemoryAccounting::Register(std::string path,
                                                          Sampler sampler) {
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  entries_[id] = Entry{std::move(path), std::move(sampler)};
  return Registration(this, id);
}

void MemoryAccounting::Unregister(std::uint64_t id) {
  MutexLock lock(mutex_);
  entries_.erase(id);
}

std::vector<MemoryAccounting::Component> MemoryAccounting::Sample() const {
  std::map<std::string, std::size_t> merged;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, entry] : entries_) {
      merged[entry.path] += entry.sampler ? entry.sampler() : 0;
    }
  }
  std::vector<Component> components;
  components.reserve(merged.size());
  for (const auto& [path, bytes] : merged) {
    components.push_back(Component{path, bytes});
  }
  return components;
}

std::size_t MemoryAccounting::TotalBytes() const {
  std::size_t total = 0;
  for (const Component& component : Sample()) total += component.bytes;
  return total;
}

std::size_t MemoryAccounting::component_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

namespace {

MemoryAccounting::Node* FindOrAddChild(MemoryAccounting::Node& parent,
                                       const std::string& name) {
  for (MemoryAccounting::Node& child : parent.children) {
    if (child.name == name) return &child;
  }
  parent.children.emplace_back();
  parent.children.back().name = name;
  return &parent.children.back();
}

std::size_t FinishTotals(MemoryAccounting::Node& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const MemoryAccounting::Node& a,
               const MemoryAccounting::Node& b) { return a.name < b.name; });
  node.total_bytes = node.self_bytes;
  for (MemoryAccounting::Node& child : node.children) {
    node.total_bytes += FinishTotals(child);
  }
  return node.total_bytes;
}

void AppendNodeJson(std::string& out, const MemoryAccounting::Node& node) {
  out += "{\"name\":";
  AppendJsonEscaped(out, node.name);
  out += ",\"self_bytes\":" + std::to_string(node.self_bytes);
  out += ",\"total_bytes\":" + std::to_string(node.total_bytes);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out += ',';
    AppendNodeJson(out, node.children[i]);
  }
  out += "]}";
}

}  // namespace

MemoryAccounting::Node MemoryAccounting::Tree() const {
  Node root;
  root.name = "(total)";
  for (const Component& component : Sample()) {
    Node* node = &root;
    std::size_t start = 0;
    while (start <= component.path.size()) {
      const std::size_t slash = component.path.find('/', start);
      const std::size_t end =
          slash == std::string::npos ? component.path.size() : slash;
      if (end > start) {
        node = FindOrAddChild(*node, component.path.substr(start, end - start));
      }
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
    node->self_bytes += component.bytes;
  }
  FinishTotals(root);
  return root;
}

std::string MemoryAccounting::RenderJson() const {
  const std::vector<Component> components = Sample();
  std::size_t total = 0;
  for (const Component& component : components) total += component.bytes;

  std::string out;
  out.reserve(512);
  out += "{\"total_bytes\":" + std::to_string(total);
  out += ",\"rss_bytes\":" + std::to_string(ProcessResidentBytes());
  out += ",\"components\":[";
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"path\":";
    AppendJsonEscaped(out, components[i].path);
    out += ",\"bytes\":" + std::to_string(components[i].bytes) + "}";
  }
  out += "],\"tree\":";
  AppendNodeJson(out, Tree());
  out += "}";
  return out;
}

std::size_t ProcessResidentBytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long size_pages = 0;     // NOLINT(runtime/int)
  unsigned long long resident_pages = 0; // NOLINT(runtime/int)
  const int fields =
      std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);  // NOLINT(runtime/int)
  if (page <= 0) return 0;
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page);
#else
  return 0;
#endif
}

}  // namespace sentinel::obs
