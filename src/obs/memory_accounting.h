// Unified memory attribution: a registry federating the `MemoryBytes()`
// estimators scattered across the gateway (model banks, flow tables,
// match caches, session tables, interners) into one live component tree.
//
// Components register a named sampler — a callback returning their
// current byte estimate — under a slash-separated path such as
// "identifier/model_bank" or "gateway/switch/flow_table". Sampling walks
// every registered callback and rolls the results up by path segment, so
// /memory answers both "how big is the whole gateway" and "which shard
// family grew" from one scrape. Registration is RAII: the returned
// Registration unregisters in its destructor, so a component that dies
// simply vanishes from the next sample instead of dangling.
//
// Contract:
// - Samplers run under the registry mutex on the scrape path (never
//   per-packet); they should be cheap and must not re-enter the
//   registry. They may take their component's own locks — the existing
//   MemoryBytes() implementations already do.
// - Registrations must not outlive the registry (the usual member-order
//   discipline: the registry outlives the components it observes).
// - The numbers are the components' own estimates — heap bookkeeping
//   overhead is not modelled, exactly as with the raw MemoryBytes()
//   calls this replaces. ProcessResidentBytes() (the OS view) is
//   reported alongside for the gap.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

class MemoryAccounting {
 public:
  using Sampler = std::function<std::size_t()>;

  MemoryAccounting() = default;
  MemoryAccounting(const MemoryAccounting&) = delete;
  MemoryAccounting& operator=(const MemoryAccounting&) = delete;

  /// RAII handle; unregisters on destruction. Default-constructed or
  /// moved-from handles are inert.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept
        : registry_(other.registry_), id_(other.id_) {
      other.registry_ = nullptr;
    }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    ~Registration() { Release(); }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

    [[nodiscard]] bool active() const { return registry_ != nullptr; }
    void Release();

   private:
    friend class MemoryAccounting;
    Registration(MemoryAccounting* registry, std::uint64_t id)
        : registry_(registry), id_(id) {}

    MemoryAccounting* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Registers `sampler` under `path` ("a/b/c"). Multiple samplers may
  /// share a path; their bytes add up.
  [[nodiscard]] Registration Register(std::string path, Sampler sampler);

  /// One registered component's current estimate.
  struct Component {
    std::string path;
    std::size_t bytes = 0;
  };

  /// Samples every registered component, sorted by path (same-path
  /// samplers merged). Runs the samplers under the registry mutex.
  [[nodiscard]] std::vector<Component> Sample() const;

  /// Path-segment rollup of Sample(). `self_bytes` is what samplers
  /// registered exactly at this path reported; `total_bytes` adds all
  /// descendants.
  struct Node {
    std::string name;
    std::size_t self_bytes = 0;
    std::size_t total_bytes = 0;
    std::vector<Node> children;  // sorted by name
  };
  [[nodiscard]] Node Tree() const;

  /// Sum over all components.
  [[nodiscard]] std::size_t TotalBytes() const;

  [[nodiscard]] std::size_t component_count() const;

  /// {"total_bytes": N, "rss_bytes": R, "components": [{"path", "bytes"},
  ///  ...], "tree": {recursive nodes}}. Serves /memory and the diag
  /// bundle.
  [[nodiscard]] std::string RenderJson() const;

 private:
  friend class Registration;

  void Unregister(std::uint64_t id);

  struct Entry {
    std::string path;
    Sampler sampler;
  };

  mutable Mutex mutex_{"obs.memory_accounting"};
  std::map<std::uint64_t, Entry> entries_ SENTINEL_GUARDED_BY(mutex_);
  std::uint64_t next_id_ SENTINEL_GUARDED_BY(mutex_) = 1;
};

/// Resident-set size of the calling process in bytes (/proc/self/statm);
/// 0 where unavailable.
[[nodiscard]] std::size_t ProcessResidentBytes();

}  // namespace sentinel::obs
