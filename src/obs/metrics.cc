#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "obs/json.h"

namespace sentinel::obs {

namespace {

void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// Values render at full round-trip precision; bucket bounds use compact %g
// ("1e+06") since the chosen bounds are exact in either form.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatBound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// `name` may encode Prometheus labels inline (`name{key="value"}`); HELP
// and TYPE lines must carry only the base name.
std::string_view BaseName(const std::string& name) {
  const std::size_t brace = name.find('{');
  return std::string_view(name).substr(
      0, brace == std::string::npos ? name.size() : brace);
}

// Splices a histogram sample suffix before any inline label block and merges
// an optional extra label, so labelled histograms render valid sample names:
// m{type="3"} + "_bucket" + le="x"  ->  m_bucket{type="3",le="x"}.
std::string SpliceSuffix(const std::string& name, const char* suffix,
                         const std::string& extra_label = "") {
  const std::size_t brace = name.find('{');
  std::string out;
  if (brace == std::string::npos) {
    out = name + suffix;
    if (!extra_label.empty()) out += "{" + extra_label + "}";
    return out;
  }
  out = name.substr(0, brace) + suffix + name.substr(brace);
  if (!extra_label.empty()) {
    out.back() = ',';
    out += extra_label + "}";
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBoundsNs();
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    // ordering: relaxed — pre-publication zeroing in the constructor.
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicAdd(sum_squares_, value * value);
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.sum_squares = sum_squares_.load(std::memory_order_relaxed);
  snap.buckets.reserve(bounds_.size() + 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    snap.buckets.emplace_back(bounds_[i], cumulative);
  }
  cumulative += buckets_[bounds_.size()].load(std::memory_order_relaxed);
  snap.buckets.emplace_back(std::numeric_limits<double>::infinity(),
                            cumulative);
  return snap;
}

double Histogram::Snapshot::Mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Histogram::Snapshot::Stdev() const {
  if (count == 0) return 0.0;
  const double mean = Mean();
  const double variance =
      std::max(0.0, sum_squares / static_cast<double>(count) - mean * mean);
  return std::sqrt(variance);
}

const std::vector<double>& Histogram::DefaultLatencyBoundsNs() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    // 1 µs .. 10 s in 1-2-5 steps; sub-microsecond observations land in
    // the first bucket, pathological stalls in +Inf.
    for (double decade = 1e3; decade <= 1e10; decade *= 10.0) {
      b.push_back(decade);
      if (decade < 1e10) {
        b.push_back(decade * 2.0);
        b.push_back(decade * 5.0);
      }
    }
    return b;
  }();
  return kBounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  sentinel::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot.value) {
    slot.help = help;
    slot.value = std::make_unique<Counter>();
  }
  return *slot.value;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  sentinel::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot.value) {
    slot.help = help;
    slot.value = std::make_unique<Gauge>();
  }
  return *slot.value;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  sentinel::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot.value) {
    slot.help = help;
    slot.value = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot.value;
}

void MetricsRegistry::VisitInstruments(
    const std::function<void(const std::string&, const Counter&)>& counter_fn,
    const std::function<void(const std::string&, const Gauge&)>& gauge_fn,
    const std::function<void(const std::string&, const Histogram&)>&
        histogram_fn) const {
  sentinel::MutexLock lock(mutex_);
  if (counter_fn) {
    for (const auto& [name, counter] : counters_) counter_fn(name, *counter.value);
  }
  if (gauge_fn) {
    for (const auto& [name, gauge] : gauges_) gauge_fn(name, *gauge.value);
  }
  if (histogram_fn) {
    for (const auto& [name, histogram] : histograms_)
      histogram_fn(name, *histogram.value);
  }
}

std::string MetricsRegistry::RenderPrometheus() const {
  sentinel::MutexLock lock(mutex_);
  std::string out;
  // Labelled series (`name{...}`) sharing a base name sit adjacent in the
  // lexicographic map; their HELP/TYPE header renders once per base.
  std::string_view previous_base;
  const auto header = [&](const std::string& name, const std::string& help,
                          const char* type) {
    const std::string_view base = BaseName(name);
    if (base == previous_base) return;
    previous_base = base;
    if (!help.empty())
      out += "# HELP " + std::string(base) + " " + help + "\n";
    out += "# TYPE " + std::string(base) + " " + type + "\n";
  };
  for (const auto& [name, counter] : counters_) {
    header(name, counter.help, "counter");
    out += name + " " + std::to_string(counter.value->Value()) + "\n";
  }
  previous_base = {};
  for (const auto& [name, gauge] : gauges_) {
    header(name, gauge.help, "gauge");
    out += name + " " + FormatDouble(gauge.value->Value()) + "\n";
  }
  previous_base = {};
  for (const auto& [name, histogram] : histograms_) {
    header(name, histogram.help, "histogram");
    const auto snap = histogram.value->Read();
    for (const auto& [bound, cumulative] : snap.buckets) {
      const std::string le =
          std::isinf(bound) ? "+Inf" : FormatBound(bound);
      out += SpliceSuffix(name, "_bucket", "le=\"" + le + "\"") + " " +
             std::to_string(cumulative) + "\n";
    }
    out += SpliceSuffix(name, "_sum") + " " + FormatDouble(snap.sum) + "\n";
    out += SpliceSuffix(name, "_count") + " " + std::to_string(snap.count) +
           "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  sentinel::MutexLock lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, name);
    out += ": " + std::to_string(counter.value->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, name);
    out += ": " + FormatDouble(gauge.value->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const auto snap = histogram.value->Read();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, name);
    out += ": {\"count\": " + std::to_string(snap.count) +
           ", \"sum\": " + FormatDouble(snap.sum) +
           ", \"mean\": " + FormatDouble(snap.Mean()) +
           ", \"stdev\": " + FormatDouble(snap.Stdev()) + ", \"buckets\": [";
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      const auto& [bound, cumulative] = snap.buckets[i];
      out += "{\"le\": ";
      if (std::isinf(bound)) {
        out += "\"+Inf\"";
      } else {
        out += FormatBound(bound);
      }
      out += ", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::WriteFile(const std::string& path, bool json) const {
  const std::string body = json ? RenderJson() : RenderPrometheus();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size())
    throw std::runtime_error("short write to " + path);
}

namespace {
// ordering: release on install / acquire on read — a front end builds the
// registry, then publishes the pointer; consumers that observe it must see
// the fully constructed object.
std::atomic<MetricsRegistry*> g_default_registry{nullptr};
}  // namespace

MetricsRegistry* DefaultRegistry() {
  return g_default_registry.load(std::memory_order_acquire);
}

void SetDefaultRegistry(MetricsRegistry* registry) {
  g_default_registry.store(registry, std::memory_order_release);
}

}  // namespace sentinel::obs
