// Dependency-free observability substrate: a thread-safe registry of named
// counters, gauges and fixed-bucket latency histograms, exposable as
// Prometheus-style text or JSON.
//
// Design constraints (ROADMAP: "fast as the hardware allows"):
// - Every instrument is lock-free on the hot path (relaxed atomics; the
//   registry mutex guards registration only, and handles returned by
//   Get*() stay valid for the registry's lifetime).
// - Instrumented components hold plain pointers that default to nullptr;
//   with no registry attached the instrumentation reduces to one branch —
//   no clock reads, no allocation — so uninstrumented runs stay
//   bit-identical to pre-instrumentation builds.
// - Exposition renders in deterministic (lexicographic) name order so
//   metric dumps diff cleanly across runs.
//
// Naming scheme (see DESIGN.md "Observability"): `sentinel_<subsystem>_
// <name>` with `_total` for counters and `_ns` for nanosecond histograms;
// pipeline stages share the `sentinel_stage_<stage>_ns` family.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  // ordering: relaxed — a monotonic event count; readers want an eventual
  // total, never an ordering edge with other memory.
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument (worker counts, cache sizes, accuracies).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  // ordering: relaxed — last-writer-wins sample; no cross-field invariant
  // hangs off it, so no ordering edge is needed.
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus semantics: `bounds` are inclusive
/// upper bounds, plus an implicit +Inf bucket; sum and sum-of-squares are
/// tracked so mean/stdev (the ml::MeanStd the benches print) derive
/// directly from the exposition data.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double sum_squares = 0.0;
    /// (upper bound, cumulative count); the final entry is +Inf.
    std::vector<std::pair<double, std::uint64_t>> buckets;

    [[nodiscard]] double Mean() const;
    [[nodiscard]] double Stdev() const;
  };
  [[nodiscard]] Snapshot Read() const;

  [[nodiscard]] std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Default bounds for nanosecond latencies: 1 µs .. 10 s, roughly
  /// logarithmic (1-2-5 per decade).
  static const std::vector<double>& DefaultLatencyBoundsNs();

 private:
  std::vector<double> bounds_;
  // ordering: relaxed (all four) — each bucket/aggregate is independently
  // monotonic; Read() tolerates a torn-across-fields snapshot by design
  // (Prometheus scrape semantics), so no acquire/release pairing exists.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> sum_squares_{0.0};
};

/// Thread-safe name -> instrument registry. Get*() registers on first use
/// and returns the same instance on every subsequent call; references stay
/// valid for the registry's lifetime, so components resolve their handles
/// once and touch only atomics afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "",
                          std::vector<double> bounds = {});

  /// Enumerates every registered instrument (in lexicographic name order)
  /// under the registry mutex. The references handed to the callbacks stay
  /// valid for the registry's lifetime, so consumers that snapshot
  /// instruments periodically (the time-series store) can cache them and
  /// touch only atomics on later visits. Any callback may be null.
  void VisitInstruments(
      const std::function<void(const std::string&, const Counter&)>& counter_fn,
      const std::function<void(const std::string&, const Gauge&)>& gauge_fn,
      const std::function<void(const std::string&, const Histogram&)>&
          histogram_fn) const;

  /// Prometheus text exposition format, metrics in lexicographic order.
  /// Names may carry an inline label block (`name{key="value"}`); the HELP
  /// and TYPE header lines then use the base name, emitted once per base
  /// even when several labelled series share it.
  [[nodiscard]] std::string RenderPrometheus() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] std::string RenderJson() const;
  /// Writes one of the above to `path`; throws std::runtime_error on I/O
  /// failure.
  void WriteFile(const std::string& path, bool json = false) const;

 private:
  template <typename T>
  struct Named {
    std::string help;
    std::unique_ptr<T> value;
  };

  mutable Mutex mutex_{"metrics.registry"};
  std::map<std::string, Named<Counter>> counters_ SENTINEL_GUARDED_BY(mutex_);
  std::map<std::string, Named<Gauge>> gauges_ SENTINEL_GUARDED_BY(mutex_);
  std::map<std::string, Named<Histogram>> histograms_
      SENTINEL_GUARDED_BY(mutex_);
};

/// Process-wide default registry: nullptr (observability off) unless a
/// front end installs one. Components that cannot be handed a registry
/// explicitly (e.g. a ThreadPool constructed inside a bench) consult this
/// at construction time.
MetricsRegistry* DefaultRegistry();
void SetDefaultRegistry(MetricsRegistry* registry);

/// RAII swap of the process-wide default registry: installs `registry` for
/// the scope and restores whatever was installed before, even on early
/// return or exception. The standard way for tests and benches to attach a
/// registry without leaking it into later code.
class ScopedDefaultRegistry {
 public:
  explicit ScopedDefaultRegistry(MetricsRegistry* registry)
      : previous_(DefaultRegistry()) {
    SetDefaultRegistry(registry);
  }
  ~ScopedDefaultRegistry() { SetDefaultRegistry(previous_); }
  ScopedDefaultRegistry(const ScopedDefaultRegistry&) = delete;
  ScopedDefaultRegistry& operator=(const ScopedDefaultRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace sentinel::obs
