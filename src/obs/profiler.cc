#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>

#include "obs/json.h"
#include "util/lock_telemetry.h"

namespace sentinel::obs {

namespace {

// ordering: release on install / acquire on read — SetCurrent publishes
// the Profiler object (its arena pointers, instance id) to every thread
// that later observes the pointer; mirrors the default-registry pattern.
std::atomic<Profiler*> g_current_profiler{nullptr};

// ordering: relaxed — id generator; uniqueness needs atomicity only.
std::atomic<std::uint64_t> g_next_instance_id{1};

/// Thread-local (profiler instance id -> tree) cache. The id check makes
/// a stale pointer from a destroyed profiler unreachable: a new profiler
/// reusing the same address still gets a fresh id, so the cache misses
/// and re-registers.
struct TlsTreeCache {
  std::uint64_t instance_id = 0;
  Profiler::ThreadTree* tree = nullptr;
};
thread_local TlsTreeCache t_tree_cache;

}  // namespace

std::uint64_t ProfileNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Profiler::ThreadTree::ThreadTree(std::size_t cap)
    : capacity(cap < 2 ? 2 : cap),
      nodes(std::make_unique<FrameNode[]>(capacity)) {
  nodes[0].name = "(root)";
  nodes[1].name = "(overflow)";
  nodes[1].parent = 0;
  node_count = 2;
  // Pre-link the overflow node before the tree is visible to snapshots,
  // so overflowed samples always render under the root.
  // ordering: relaxed — happens-before is provided by the profiler
  // mutex when the tree is handed out.
  nodes[0].first_child.store(1, std::memory_order_relaxed);
}

std::uint32_t Profiler::ThreadTree::FindOrAddChild(std::uint32_t parent,
                                                   const char* name) {
  FrameNode& parent_node = nodes[parent];
  // ordering: acquire — pairs with the release link stores below so a
  // found node's name/parent are visible (also on the owner's own
  // re-entry, where it is trivially satisfied).
  std::uint32_t child = parent_node.first_child.load(std::memory_order_acquire);
  std::uint32_t last = 0;
  while (child != 0) {
    FrameNode& candidate = nodes[child];
    // Literal pointer identity first; strcmp covers sites that pass the
    // same text from different translation units.
    if (candidate.name == name || std::strcmp(candidate.name, name) == 0) {
      return child;
    }
    last = child;
    child = candidate.next_sibling.load(std::memory_order_acquire);
  }
  if (node_count >= capacity) {
    // ordering: relaxed — statistics only; see ThreadTree.
    dropped.fetch_add(1, std::memory_order_relaxed);
    return 1;  // the pre-linked "(overflow)" node
  }
  const auto index = static_cast<std::uint32_t>(node_count);
  FrameNode& node = nodes[index];
  node.name = name;
  node.parent = parent;
  node_count += 1;
  // ordering: release — publishes the initialised node through the
  // child link; pairs with the acquire traversal above and in
  // Snapshot().
  if (last == 0) {
    parent_node.first_child.store(index, std::memory_order_release);
  } else {
    nodes[last].next_sibling.store(index, std::memory_order_release);
  }
  return index;
}

Profiler::Profiler(ProfilerConfig config)
    : config_(config),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
}

Profiler::~Profiler() = default;

Profiler* Profiler::Current() {
  return g_current_profiler.load(std::memory_order_acquire);
}

void Profiler::SetCurrent(Profiler* profiler) {
  g_current_profiler.store(profiler, std::memory_order_release);
}

Profiler::ThreadTree* Profiler::TreeForCurrentThread() {
  TlsTreeCache& cache = t_tree_cache;
  if (cache.instance_id == instance_id_) return cache.tree;
  auto tree = std::make_unique<ThreadTree>(config_.max_nodes_per_thread);
  ThreadTree* raw = tree.get();
  {
    MutexLock lock(mutex_);
    threads_.push_back(std::move(tree));
  }
  cache.instance_id = instance_id_;
  cache.tree = raw;
  return raw;
}

namespace {

void MergeTree(const Profiler::ThreadTree& tree, std::uint32_t index,
               Profiler::Node& out) {
  const Profiler::ThreadTree::FrameNode& frame = tree.nodes[index];
  // ordering: relaxed — statistics; see FrameNode.
  out.count += frame.count.load(std::memory_order_relaxed);
  out.total_ns += frame.total_ns.load(std::memory_order_relaxed);
  // ordering: acquire — pairs with the owner's release link publication.
  std::uint32_t child = frame.first_child.load(std::memory_order_acquire);
  while (child != 0) {
    const Profiler::ThreadTree::FrameNode& child_frame = tree.nodes[child];
    const char* child_name = child_frame.name;
    auto it = std::find_if(out.children.begin(), out.children.end(),
                           [child_name](const Profiler::Node& node) {
                             return node.name == child_name;
                           });
    if (it == out.children.end()) {
      out.children.emplace_back();
      out.children.back().name = child_name;
      it = out.children.end() - 1;
    }
    MergeTree(tree, child, *it);
    child = child_frame.next_sibling.load(std::memory_order_acquire);
  }
}

/// Drops empty branches (e.g. an unused "(overflow)" node), computes
/// self times and sorts children by name.
void FinishNode(Profiler::Node& node) {
  node.children.erase(
      std::remove_if(node.children.begin(), node.children.end(),
                     [](const Profiler::Node& child) {
                       return child.count == 0 && child.total_ns == 0 &&
                              child.children.empty();
                     }),
      node.children.end());
  std::sort(node.children.begin(), node.children.end(),
            [](const Profiler::Node& a, const Profiler::Node& b) {
              return a.name < b.name;
            });
  std::uint64_t child_total = 0;
  for (Profiler::Node& child : node.children) {
    FinishNode(child);
    child_total += child.total_ns;
  }
  // Open frames can make children transiently outweigh the parent.
  node.self_ns = node.total_ns > child_total ? node.total_ns - child_total : 0;
}

void AppendNodeJson(std::string& out, const Profiler::Node& node) {
  out += "{\"name\":";
  AppendJsonEscaped(out, node.name);
  out += ",\"count\":" + std::to_string(node.count);
  out += ",\"total_ns\":" + std::to_string(node.total_ns);
  out += ",\"self_ns\":" + std::to_string(node.self_ns);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out += ',';
    AppendNodeJson(out, node.children[i]);
  }
  out += "]}";
}

void AppendCollapsed(std::string& out, const Profiler::Node& node,
                     const std::string& prefix) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  if (node.self_ns > 0) {
    out += path;
    out += ' ';
    out += std::to_string(node.self_ns);
    out += '\n';
  }
  for (const Profiler::Node& child : node.children) {
    AppendCollapsed(out, child, path);
  }
}

void AppendText(std::string& out, const Profiler::Node& node, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.name;
  out += "  count=" + std::to_string(node.count);
  out += " total_ns=" + std::to_string(node.total_ns);
  out += " self_ns=" + std::to_string(node.self_ns);
  out += '\n';
  for (const Profiler::Node& child : node.children) {
    AppendText(out, child, depth + 1);
  }
}

}  // namespace

Profiler::Node Profiler::Snapshot() const {
  Node root;
  root.name = "(root)";
  MutexLock lock(mutex_);
  for (const auto& tree : threads_) {
    MergeTree(*tree, 0, root);
  }
  root.count = 0;  // the synthetic root is never entered
  root.total_ns = 0;
  for (const Node& child : root.children) root.total_ns += child.total_ns;
  FinishNode(root);
  root.self_ns = 0;
  return root;
}

std::string Profiler::RenderJson() const {
  const Node root = Snapshot();
  std::string out;
  out.reserve(1024);
  out += "{\"threads\":" + std::to_string(thread_count());
  out += ",\"dropped_paths\":" + std::to_string(dropped_paths());
  out += ",\"root\":";
  AppendNodeJson(out, root);
  out += "}";
  return out;
}

std::string Profiler::RenderCollapsed() const {
  const Node root = Snapshot();
  std::string out;
  for (const Node& child : root.children) {
    AppendCollapsed(out, child, "");
  }
  return out;
}

std::string Profiler::RenderText() const {
  const Node root = Snapshot();
  std::string out;
  out += "profile: threads=" + std::to_string(thread_count());
  out += " dropped_paths=" + std::to_string(dropped_paths());
  out += '\n';
  for (const Node& child : root.children) {
    AppendText(out, child, 0);
  }
  return out;
}

std::size_t Profiler::thread_count() const {
  MutexLock lock(mutex_);
  return threads_.size();
}

std::uint64_t Profiler::dropped_paths() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& tree : threads_) {
    // ordering: relaxed — statistics; see ThreadTree.
    total += tree->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string RenderLockContentionJson() {
  struct MergedSite {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    std::uint64_t wait_ns_total = 0;
    std::uint64_t buckets[kLockWaitBuckets] = {};
  };
  // Registration order is first-use order, which varies run to run;
  // merge duplicates (the same name registered from several objects)
  // and sort for a deterministic exposition.
  std::map<std::string, MergedSite> merged;
  const std::size_t count = LockSiteCount();
  for (std::size_t i = 0; i < count; ++i) {
    const LockSiteStats& site = LockSiteAt(i);
    MergedSite& slot = merged[site.Name()];
    // ordering: relaxed — statistics scrape; see LockSiteStats.
    slot.acquisitions += site.acquisitions.load(std::memory_order_relaxed);
    slot.contended += site.contended.load(std::memory_order_relaxed);
    slot.wait_ns_total += site.wait_ns_total.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kLockWaitBuckets; ++b) {
      slot.buckets[b] += site.wait_buckets[b].load(std::memory_order_relaxed);
    }
  }
  {
    const LockSiteStats& overflow = LockOverflowSite();
    // ordering: relaxed — statistics scrape; see LockSiteStats.
    if (overflow.acquisitions.load(std::memory_order_relaxed) != 0) {
      MergedSite& slot = merged[overflow.Name()];
      slot.acquisitions += overflow.acquisitions.load(std::memory_order_relaxed);
      slot.contended += overflow.contended.load(std::memory_order_relaxed);
      slot.wait_ns_total +=
          overflow.wait_ns_total.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kLockWaitBuckets; ++b) {
        slot.buckets[b] +=
            overflow.wait_buckets[b].load(std::memory_order_relaxed);
      }
    }
  }

  std::string out;
  out.reserve(512);
  out += "{\"enabled\":";
  out += LockTelemetryEnabled() ? "true" : "false";
  out += ",\"sites\":[";
  bool first = true;
  for (const auto& [name, site] : merged) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonEscaped(out, name);
    out += ",\"acquisitions\":" + std::to_string(site.acquisitions);
    out += ",\"contended\":" + std::to_string(site.contended);
    out += ",\"wait_ns_total\":" + std::to_string(site.wait_ns_total);
    out += ",\"wait_histogram\":[";
    for (std::size_t b = 0; b < kLockWaitBuckets; ++b) {
      if (b != 0) out += ',';
      out += "{\"ge_ns\":" + std::to_string(LockWaitBucketFloorNs(b));
      out += ",\"count\":" + std::to_string(site.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace sentinel::obs
