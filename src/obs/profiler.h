// Always-on hierarchical wall-clock profiler. `SENTINEL_PROFILE_SCOPE`
// sites build per-thread trees of named frames (one node per distinct
// call path, not per call), which Snapshot() merges across threads into a
// single self/total-time tree exportable as JSON (/profile endpoint) or
// collapsed-stack lines (flamegraph.pl / speedscope input).
//
// Cost contract (mirrors the metrics registry and tracer, DESIGN.md
// "Performance observability"):
// - Detached (no Profiler installed via SetCurrent) every scope is a
//   single relaxed load + branch: no clock read, no allocation, no
//   writes. Attached runs stay bit-identical to detached runs — the
//   profiler is purely observational, like the tracer and the quality
//   monitor.
// - Attached, entering a previously seen frame is wait-free: a walk of
//   the parent's child list (almost always length 1-2, matched by
//   string-literal pointer identity before strcmp) plus two relaxed
//   fetch_adds on exit. Node creation happens once per distinct
//   (thread, path) and publishes via release stores into the child
//   links, so concurrent Snapshot() readers never see a half-built node.
//   The profiler mutex guards only thread registration and snapshots,
//   which never run per-packet.
// - Memory is bounded: each thread owns a fixed-capacity node arena;
//   when it fills, further new paths collapse into a per-thread
//   "(overflow)" node instead of allocating.
//
// Relation to the rest of the observability plane: ScopedTimer feeds
// latency histograms (distributions of one stage), ScopedSpan records
// individual causally-linked spans (provenance of one decision), and
// ProfileScope aggregates wall time by call path (where does the time
// go overall). The three share call sites — SENTINEL_PROFILE_SCOPE is
// cheap enough to sit beside an existing timer or span — but never
// depend on each other.
//
// Threading: scopes must strictly nest per thread (RAII enforces this)
// and a thread's frames land in that thread's tree — a ParallelFor body
// profiles into the worker's tree, under the worker's root. The
// installed profiler must outlive every scope that observed it;
// front ends install with SetCurrent(&p) and uninstall (SetCurrent
// (nullptr)) before destroying `p`, exactly like SetDefaultRegistry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

struct ProfilerConfig {
  /// Frame-tree nodes per thread (distinct call paths, not calls). New
  /// paths beyond this collapse into the thread's "(overflow)" node.
  std::size_t max_nodes_per_thread = 1024;
};

class Profiler {
 public:
  explicit Profiler(ProfilerConfig config = {});
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Process-wide installed profiler; nullptr = profiling off (every
  /// scope site reduces to one branch). Mirrors DefaultRegistry().
  [[nodiscard]] static Profiler* Current();
  static void SetCurrent(Profiler* profiler);

  /// One node of the merged cross-thread snapshot. `self_ns` is
  /// `total_ns` minus the children's totals, clamped at zero (frames
  /// still open while snapshotting can make children transiently
  /// outweigh their parent).
  struct Node {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::vector<Node> children;  // sorted by name
  };

  /// Merges every thread's tree by frame path under a synthetic
  /// "(root)" node. Safe to call while scopes are running; counts and
  /// times of frames mid-flight are simply not yet included.
  [[nodiscard]] Node Snapshot() const;

  /// {"threads": N, "dropped_paths": D, "root": {recursive nodes}}.
  [[nodiscard]] std::string RenderJson() const;

  /// Collapsed-stack lines "a;b;c <self_ns>\n" (flamegraph.pl /
  /// speedscope input; the value unit is nanoseconds). Nodes with zero
  /// self time are omitted; the synthetic root is not part of paths.
  [[nodiscard]] std::string RenderCollapsed() const;

  /// Indented text tree (count / total / self per frame), for
  /// `sentinelctl profile`.
  [[nodiscard]] std::string RenderText() const;

  /// Threads that have recorded at least one frame.
  [[nodiscard]] std::size_t thread_count() const;
  /// New call paths dropped into "(overflow)" nodes across all threads.
  [[nodiscard]] std::uint64_t dropped_paths() const;

  // ---- Internals shared with ProfileScope ------------------------------

  struct ThreadTree;

  /// The calling thread's tree in this profiler, created on first use.
  /// Cached thread-locally keyed by the profiler's instance id, so the
  /// mutex is paid once per (thread, profiler), not per scope.
  [[nodiscard]] ThreadTree* TreeForCurrentThread();

  [[nodiscard]] std::uint64_t instance_id() const { return instance_id_; }

 private:
  const ProfilerConfig config_;
  const std::uint64_t instance_id_;

  mutable Mutex mutex_{"obs.profiler"};
  std::vector<std::unique_ptr<ThreadTree>> threads_
      SENTINEL_GUARDED_BY(mutex_);
};

/// Per-thread frame tree. Exposed in the header only so ProfileScope can
/// inline its enter/exit fast path; not part of the public API.
struct Profiler::ThreadTree {
  struct FrameNode {
    /// Written by the owning thread before the node is published through
    /// a child link; immutable afterwards. Call sites pass string
    /// literals, so pointer comparison is the sibling-search fast path.
    const char* name = "";
    std::uint32_t parent = 0;
    // ordering: release on link (the owner publishes a fully
    // initialised node by storing its index into first_child /
    // next_sibling) / acquire on traversal — Snapshot() walks these
    // links from another thread and must see name/parent. Index 0 is
    // the root and never a child, so 0 doubles as "no link".
    std::atomic<std::uint32_t> first_child{0};
    std::atomic<std::uint32_t> next_sibling{0};
    // ordering: relaxed (both) — monotonic statistics written only by
    // the owning thread; Snapshot() takes any recent value, the usual
    // scrape contract.
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
  };

  explicit ThreadTree(std::size_t capacity);

  /// Child of `parent` named `name`, created on first sight. Falls back
  /// to the "(overflow)" node (index 1) when the arena is full. Owner
  /// thread only.
  [[nodiscard]] std::uint32_t FindOrAddChild(std::uint32_t parent,
                                             const char* name);

  void AddSample(std::uint32_t node, std::uint64_t elapsed_ns) {
    FrameNode& frame = nodes[node];
    // ordering: relaxed — statistics only; see FrameNode.
    frame.count.fetch_add(1, std::memory_order_relaxed);
    frame.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  }

  const std::size_t capacity;
  /// Fixed arena; never reallocates, so Snapshot() can hold FrameNode
  /// references while the owner appends.
  std::unique_ptr<FrameNode[]> nodes;
  /// Nodes in use. Owner-written; Snapshot() discovers nodes through
  /// the child links, not this count.
  std::size_t node_count = 0;
  /// Innermost open frame of the owning thread (0 = root). Owner only.
  std::uint32_t current = 0;
  // ordering: relaxed — statistics only (new paths collapsed into the
  // overflow node); read by dropped_paths() from other threads.
  std::atomic<std::uint64_t> dropped{0};
};

/// Monotonic nanosecond clock shared by profiler scopes (same clock the
/// benches and ScopedTimer use).
[[nodiscard]] std::uint64_t ProfileNowNs();

/// RAII frame. Disabled (one relaxed load + branch, nothing else) when
/// no profiler is installed.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    Profiler* profiler = Profiler::Current();
    if (profiler == nullptr) return;
    tree_ = profiler->TreeForCurrentThread();
    parent_ = tree_->current;
    node_ = tree_->FindOrAddChild(parent_, name);
    tree_->current = node_;
    start_ns_ = ProfileNowNs();
  }
  ~ProfileScope() {
    if (tree_ == nullptr) return;
    tree_->AddSample(node_, ProfileNowNs() - start_ns_);
    tree_->current = parent_;
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  [[nodiscard]] bool enabled() const { return tree_ != nullptr; }

 private:
  Profiler::ThreadTree* tree_ = nullptr;
  std::uint32_t node_ = 0;
  std::uint32_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// RAII install/uninstall of the process-wide profiler (tests, benches,
/// sentinelctl); mirrors ScopedDefaultRegistry.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler* profiler)
      : previous_(Profiler::Current()) {
    Profiler::SetCurrent(profiler);
  }
  ~ScopedProfiler() { Profiler::SetCurrent(previous_); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* previous_;
};

// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define SENTINEL_PROFILE_CONCAT_INNER(a, b) a##b
#define SENTINEL_PROFILE_CONCAT(a, b) SENTINEL_PROFILE_CONCAT_INNER(a, b)
/// Opens a profiler frame named `name` (a string literal) for the rest
/// of the enclosing block.
#define SENTINEL_PROFILE_SCOPE(name)                             \
  ::sentinel::obs::ProfileScope SENTINEL_PROFILE_CONCAT(         \
      sentinel_profile_scope_, __LINE__)(name)
// NOLINTEND(cppcoreguidelines-macro-usage)

/// JSON exposition of the lock-contention telemetry recorded by the
/// sentinel::Mutex / SharedMutex wrappers (util/lock_telemetry.h):
/// {"enabled": b, "sites": [{"name", "acquisitions", "contended",
/// "wait_ns_total", "wait_histogram": [{"ge_ns", "count"}, ...]}, ...]}
/// with sites of the same name merged and sorted by name. Serves the
/// /locks endpoint and the diag bundle.
[[nodiscard]] std::string RenderLockContentionJson();

}  // namespace sentinel::obs
