#include "obs/quality.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.h"
#include "util/check.h"

namespace sentinel::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<double> DefaultMarginBounds() {
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.05 * i);
  return bounds;
}

std::vector<double> DefaultDissimilarityBounds() {
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.25 * i);
  return bounds;
}

/// Population stability index between two cumulative bucket vectors with
/// identical bounds: `live` = `current` - `baseline` per bucket.
double ComputePsi(const Histogram::Snapshot& baseline,
                  const Histogram::Snapshot& current, double epsilon) {
  SENTINEL_CHECK(baseline.buckets.size() == current.buckets.size())
      << "PSI inputs disagree on bucket count";
  const std::size_t n = baseline.buckets.size();
  const double base_total = static_cast<double>(baseline.count);
  const double live_total =
      static_cast<double>(current.count - baseline.count);
  if (base_total <= 0.0 || live_total <= 0.0) return 0.0;
  double psi = 0.0;
  std::uint64_t base_prev = 0;
  std::uint64_t cur_prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t base_cum = baseline.buckets[i].second;
    const std::uint64_t cur_cum = current.buckets[i].second;
    const double base_in = static_cast<double>(base_cum - base_prev);
    const double live_in =
        static_cast<double>((cur_cum - cur_prev) - (base_cum - base_prev));
    base_prev = base_cum;
    cur_prev = cur_cum;
    const double q = base_in / base_total + epsilon;
    const double p = live_in / live_total + epsilon;
    psi += (p - q) * std::log(p / q);
  }
  return psi;
}

}  // namespace

QualityMonitor::QualityMonitor(MetricsRegistry* registry,
                               QualityMonitorConfig config)
    : registry_(registry), config_(std::move(config)) {
  SENTINEL_CHECK(registry_ != nullptr) << "quality monitor needs a registry";
  identifications_total_ = &registry_->GetCounter(
      "sentinel_quality_identifications_total",
      "verdicts observed by the quality monitor");
  unknown_total_ = &registry_->GetCounter(
      "sentinel_quality_unknown_total",
      "verdicts reported as new/unknown device-types");
  multi_match_total_ = &registry_->GetCounter(
      "sentinel_quality_multi_match_total",
      "verdicts with more than one accepting classifier");
  tiebreak_total_ = &registry_->GetCounter(
      "sentinel_quality_tiebreak_total",
      "equal-dissimilarity tie-break coin flips observed");
  assessments_total_ = &registry_->GetCounter(
      "sentinel_quality_assessments_total",
      "gateway assessment outcomes observed");
  assessments_unknown_total_ = &registry_->GetCounter(
      "sentinel_quality_assessments_unknown_total",
      "gateway assessments that isolated an unknown device");
  margin_all_ = &registry_->GetHistogram(
      "sentinel_quality_margin", "top-1 vs top-2 accept-probability margin",
      config_.margin_bounds.empty() ? DefaultMarginBounds()
                                    : config_.margin_bounds);
}

void QualityMonitor::BindTypes(const std::vector<int>& labels) {
  MutexLock lock(mutex_);
  auto next = std::make_unique<Index>();
  const Index* current = index_.load(std::memory_order_relaxed);
  if (current != nullptr) *next = *current;
  for (const int label : labels) {
    if (std::any_of(next->begin(), next->end(),
                    [&](const auto& entry) { return entry.first == label; }))
      continue;
    auto slot = std::make_unique<TypeSlot>();
    slot->label = label;
    const std::string tag = "{type=\"" + std::to_string(label) + "\"}";
    slot->identifications = &registry_->GetCounter(
        "sentinel_quality_identifications_total" + tag,
        "verdicts observed by the quality monitor");
    slot->rejected = &registry_->GetCounter(
        "sentinel_quality_rejected_total" + tag,
        "probes keyed to a type but still rejected as unknown");
    slot->tiebreaks = &registry_->GetCounter(
        "sentinel_quality_tiebreak_total" + tag,
        "equal-dissimilarity tie-break coin flips observed");
    slot->margin = &registry_->GetHistogram(
        "sentinel_quality_margin" + tag,
        "top-1 vs top-2 accept-probability margin",
        config_.margin_bounds.empty() ? DefaultMarginBounds()
                                      : config_.margin_bounds);
    slot->dissimilarity = &registry_->GetHistogram(
        "sentinel_quality_dissimilarity" + tag,
        "winning tie-break dissimilarity score",
        config_.dissimilarity_bounds.empty() ? DefaultDissimilarityBounds()
                                             : config_.dissimilarity_bounds);
    slot->psi_gauge = &registry_->GetGauge(
        "sentinel_quality_psi" + tag,
        "population stability index (max over the margin and dissimilarity "
        "channels) vs the pinned baseline");
    // A baseline pinned before this type existed: pin the new slot at its
    // (empty) current state so UpdateDrift treats everything it ever
    // observes as live window.
    if (baseline_pinned_.load(std::memory_order_relaxed)) {
      slot->baseline_margin = slot->margin->Read();
      slot->baseline_dissimilarity = slot->dissimilarity->Read();
      slot->has_baseline = true;
    }
    next->emplace_back(label, slot.get());
    slots_.push_back(std::move(slot));
  }
  std::sort(next->begin(), next->end());
  const Index* published = next.get();
  retired_.push_back(std::move(next));
  index_.store(published, std::memory_order_release);
}

void QualityMonitor::Record(const QualitySample& sample) {
  identifications_total_->Increment();
  if (sample.unknown) unknown_total_->Increment();
  if (sample.multi_match) multi_match_total_->Increment();
  if (sample.tie_break_count > 0)
    tiebreak_total_->Increment(sample.tie_break_count);
  const double margin = sample.top1_probability - sample.top2_probability;
  margin_all_->Observe(margin);
  TypeSlot* slot = FindSlot(sample.top_label);
  if (slot == nullptr) return;
  slot->identifications->Increment();
  if (sample.unknown) slot->rejected->Increment();
  if (sample.tie_break_count > 0)
    slot->tiebreaks->Increment(sample.tie_break_count);
  slot->margin->Observe(margin);
  if (!std::isnan(sample.best_dissimilarity))
    slot->dissimilarity->Observe(sample.best_dissimilarity);
}

void QualityMonitor::RecordAssessmentOutcome(bool known) {
  assessments_total_->Increment();
  if (!known) assessments_unknown_total_->Increment();
}

void QualityMonitor::PinBaseline() {
  MutexLock lock(mutex_);
  for (const auto& slot : slots_) {
    slot->baseline_margin = slot->margin->Read();
    slot->baseline_dissimilarity = slot->dissimilarity->Read();
    slot->has_baseline = true;
    slot->psi.store(0.0, std::memory_order_relaxed);
    slot->psi_gauge->Set(0.0);
  }
  baseline_pinned_.store(true, std::memory_order_release);
}

bool QualityMonitor::baseline_pinned() const {
  return baseline_pinned_.load(std::memory_order_acquire);
}

void QualityMonitor::UpdateDrift() {
  MutexLock lock(mutex_);
  for (const auto& slot : slots_) {
    if (!slot->has_baseline) continue;
    const auto channel_psi = [&](const Histogram& live,
                                 const Histogram::Snapshot& baseline) {
      const Histogram::Snapshot current = live.Read();
      const std::uint64_t observed = current.count - baseline.count;
      return observed < config_.min_window_observations
                 ? 0.0
                 : ComputePsi(baseline, current, config_.psi_epsilon);
    };
    const double psi =
        std::max(channel_psi(*slot->margin, slot->baseline_margin),
                 channel_psi(*slot->dissimilarity,
                             slot->baseline_dissimilarity));
    slot->psi.store(psi, std::memory_order_relaxed);
    slot->psi_gauge->Set(psi);
  }
}

double QualityMonitor::Psi(int label) const {
  const TypeSlot* slot = FindSlot(label);
  return slot == nullptr ? 0.0 : slot->psi.load(std::memory_order_relaxed);
}

std::string QualityMonitor::RenderJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\n  \"totals\": {";
  out += "\n    \"identifications\": " +
         std::to_string(identifications_total_->Value());
  out += ",\n    \"unknown\": " + std::to_string(unknown_total_->Value());
  out +=
      ",\n    \"multi_match\": " + std::to_string(multi_match_total_->Value());
  out += ",\n    \"tiebreaks\": " + std::to_string(tiebreak_total_->Value());
  out +=
      ",\n    \"assessments\": " + std::to_string(assessments_total_->Value());
  out += ",\n    \"assessments_unknown\": " +
         std::to_string(assessments_unknown_total_->Value());
  const std::uint64_t total = identifications_total_->Value();
  const double unknown_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(unknown_total_->Value()) /
                       static_cast<double>(total);
  out += ",\n    \"unknown_ratio\": " + FormatDouble(unknown_ratio);
  out += "\n  },\n  \"baseline_pinned\": ";
  out += baseline_pinned_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\n  \"types\": {";
  bool first = true;
  for (const auto& slot : slots_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, std::to_string(slot->label));
    const Histogram::Snapshot margin = slot->margin->Read();
    const Histogram::Snapshot dissimilarity = slot->dissimilarity->Read();
    out += ": {\"identifications\": " +
           std::to_string(slot->identifications->Value()) +
           ", \"rejected\": " + std::to_string(slot->rejected->Value()) +
           ", \"tiebreaks\": " + std::to_string(slot->tiebreaks->Value()) +
           ", \"margin_mean\": " + FormatDouble(margin.Mean()) +
           ", \"margin_count\": " + std::to_string(margin.count) +
           ", \"dissimilarity_mean\": " + FormatDouble(dissimilarity.Mean()) +
           ", \"baseline_count\": " +
           std::to_string(slot->has_baseline ? slot->baseline_margin.count
                                             : 0) +
           ", \"psi\": " +
           FormatDouble(slot->psi.load(std::memory_order_relaxed)) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace sentinel::obs
