// Model-quality monitor: turns each identification verdict into per-type
// quality signals (accept-score margin top-1 vs top-2, tie-break frequency,
// unknown/reject rate, edit-distance tie-break score distributions) and
// runs a deterministic drift detector over them.
//
// Drift detection is the population-stability index between a *pinned
// baseline* and the live window of each type's quality distributions:
//
//   PSI = sum_i (p_i - q_i) * ln(p_i / q_i)
//
// where q is the bucket distribution observed up to the moment
// PinBaseline() was called and p is the distribution of everything observed
// since (both epsilon-floored before normalizing). Each type's reported
// PSI is the max over its two channels — the accept-margin histogram and
// the tie-break dissimilarity histogram. Both matter: a traffic-shape
// change (new firmware) often leaves the random-forest feature votes
// intact while blowing up the edit distance, so the margin channel alone
// is blind to it; a classifier-confusion regression moves margins while
// distances stay put. The inputs are plain bucket counts of deterministic
// verdict quantities, so for a fixed probe stream the PSI trajectory is
// bit-reproducible across runs and thread counts. Conventional reading:
// < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 drifted.
//
// The monitor is pure read-side instrumentation: it only consumes finished
// IdentificationResults and never feeds anything back into the identifier,
// so verdicts and serialized model bytes are bit-identical with a monitor
// attached or not. Record() touches only atomics after an acquire-load of
// an immutable per-bank index, making it safe from concurrent
// IdentifyBatch workers.
//
// All instruments register in the provided MetricsRegistry under
// `sentinel_quality_*`; per-type series carry an inline Prometheus label
// (`sentinel_quality_psi{type="3"}`), which also makes them samplable by
// the TimeSeriesStore and alertable by the AlertEngine for free.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sentinel::obs {

struct QualityMonitorConfig {
  /// Bucket bounds for the accept-margin histograms (margins live in
  /// [-1, 1]; negative only when the bank is empty). Empty = default grid
  /// of 0.05-wide buckets over [0, 1].
  std::vector<double> margin_bounds;
  /// Bucket bounds for the tie-break dissimilarity histograms (scores live
  /// in [0, 5]). Empty = default grid of 0.25-wide buckets.
  std::vector<double> dissimilarity_bounds;
  /// Additive floor applied to each bucket probability before the PSI log
  /// ratio, so empty buckets cannot produce infinities.
  double psi_epsilon = 1e-4;
  /// A channel's live window must hold at least this many observations
  /// before UpdateDrift() computes a PSI for it (it reports 0 until then).
  /// PSI is very noisy on thin live windows — a ~10%-mass bucket has a
  /// ~20% chance of being entirely absent from 16 samples, which alone
  /// reads as PSI ~0.6 — so this floor is what keeps a handful of early
  /// probes from faking a drift signal.
  std::uint64_t min_window_observations = 32;
};

/// One identification verdict, reduced to the quality plane's inputs.
struct QualitySample {
  /// Label the probe keyed to: the verdict type when known, else the
  /// bank's top-probability label (-1 when the bank is empty).
  int top_label = -1;
  double top1_probability = 0.0;
  double top2_probability = 0.0;
  bool unknown = false;
  bool multi_match = false;
  std::uint64_t tie_break_count = 0;
  /// Winning (lowest) dissimilarity score; NaN when discrimination did not
  /// run.
  double best_dissimilarity = 0.0;
};

class QualityMonitor {
 public:
  /// `registry` must outlive the monitor; all quality series register
  /// there.
  explicit QualityMonitor(MetricsRegistry* registry,
                          QualityMonitorConfig config = {});

  /// Publishes the per-type slot index for `labels` (the identifier's
  /// trained label list). Called by DeviceIdentifier on attach and after
  /// every Train()/AddType(); idempotent, and previously bound labels keep
  /// their accumulated state. Samples for labels not (yet) bound count
  /// only toward the global totals.
  void BindTypes(const std::vector<int>& labels);

  /// Records one verdict. Lock-free (atomics only); safe from concurrent
  /// identification threads.
  void Record(const QualitySample& sample);

  /// Records a gateway-level assessment outcome (SentinelModule verdicts,
  /// post enforcement mapping).
  void RecordAssessmentOutcome(bool known);

  /// Pins the current per-type margin and dissimilarity histograms as the
  /// PSI baseline. Everything observed afterwards forms the live window.
  void PinBaseline();
  [[nodiscard]] bool baseline_pinned() const;

  /// Recomputes each bound type's PSI (max over the margin and
  /// dissimilarity channels) from its pinned baseline and updates the
  /// `sentinel_quality_psi{type=...}` gauges. No-op before PinBaseline().
  void UpdateDrift();

  /// Last computed PSI for `label`; 0 before UpdateDrift() or for unbound
  /// labels.
  [[nodiscard]] double Psi(int label) const;

  /// {"totals": {...}, "baseline_pinned": b, "types": {"3": {...}, ...}}.
  [[nodiscard]] std::string RenderJson() const;

 private:
  struct TypeSlot {
    int label = 0;
    Counter* identifications = nullptr;  // probes keyed to this type
    Counter* rejected = nullptr;         // ... that were still rejected
    Counter* tiebreaks = nullptr;
    Histogram* margin = nullptr;
    Histogram* dissimilarity = nullptr;
    Gauge* psi_gauge = nullptr;
    /// Cumulative bucket counts of each channel at PinBaseline() time.
    Histogram::Snapshot baseline_margin;
    Histogram::Snapshot baseline_dissimilarity;
    bool has_baseline = false;
    // ordering: relaxed — last-computed PSI sample read by scrapers; the
    // mutex serializes the writers (UpdateDrift), readers take any recent
    // value.
    std::atomic<double> psi{0.0};
  };

  /// Immutable label -> slot index published to Record() via an atomic
  /// pointer; rebuilt (never mutated) by BindTypes. Sorted by label, so
  /// the per-verdict lookup is a binary search over one or two contiguous
  /// cache lines rather than a tree walk — Record() sits on the identify
  /// hot path and pays this on every verdict.
  using Index = std::vector<std::pair<int, TypeSlot*>>;

  TypeSlot* FindSlot(int label) const {
    const Index* index = index_.load(std::memory_order_acquire);
    if (index == nullptr) return nullptr;
    const auto it = std::lower_bound(
        index->begin(), index->end(), label,
        [](const auto& entry, int want) { return entry.first < want; });
    return it != index->end() && it->first == label ? it->second : nullptr;
  }

  MetricsRegistry* const registry_;
  const QualityMonitorConfig config_;

  // Global (bank-wide) instruments, resolved once at construction.
  Counter* identifications_total_;
  Counter* unknown_total_;
  Counter* multi_match_total_;
  Counter* tiebreak_total_;
  Counter* assessments_total_;
  Counter* assessments_unknown_total_;
  Histogram* margin_all_;

  // guards slots_/retired_/bind+pin, not Record
  mutable Mutex mutex_{"obs.quality"};
  std::vector<std::unique_ptr<TypeSlot>> slots_ SENTINEL_GUARDED_BY(mutex_);
  // Old indices stay readable by in-flight Record() calls.
  std::vector<std::unique_ptr<Index>> retired_ SENTINEL_GUARDED_BY(mutex_);
  // ordering: release on publish (BindTypes builds the new Index fully,
  // then swaps the pointer) / acquire in FindSlot — Record() must see the
  // complete vector behind the pointer without taking mutex_.
  std::atomic<const Index*> index_{nullptr};
  // ordering: relaxed — an idempotent latch flag; writers run under
  // mutex_, readers only branch on it for reporting.
  std::atomic<bool> baseline_pinned_{false};
};

}  // namespace sentinel::obs
