// RAII stage timing. A ScopedTimer constructed with a null histogram is a
// no-op — no clock read, no atomic traffic — which is what lets the hot
// path carry permanent instrumentation without a measurable cost when no
// registry is attached. Timers nest naturally as stack objects (outer span
// = pipeline stage, inner spans = sub-steps), each observing into its own
// histogram on destruction.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace sentinel::obs {

/// Monotonic now() in nanoseconds (steady clock).
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class ScopedTimer {
 public:
  /// Disabled (free) when `histogram` is nullptr.
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(histogram_ ? NowNs() : 0) {}

  /// Convenience: resolves the histogram by name, disabled when `registry`
  /// is nullptr. Name resolution takes the registry lock — hot paths should
  /// pre-resolve a Histogram* instead.
  ScopedTimer(MetricsRegistry* registry, const char* name)
      : ScopedTimer(registry ? &registry->GetHistogram(name) : nullptr) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Ends the span early and records it; idempotent. Returns the elapsed
  /// nanoseconds (0 when disabled or already stopped).
  std::uint64_t Stop() {
    if (histogram_ == nullptr) return 0;
    const std::uint64_t elapsed = NowNs() - start_ns_;
    histogram_->Observe(static_cast<double>(elapsed));
    histogram_ = nullptr;
    return elapsed;
  }

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace sentinel::obs
